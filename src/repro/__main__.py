"""Command-line front door: ``python -m repro <command>``.

Commands
--------
campaign    print the full Frontier-E campaign summary (Figs. 2 & 5 numbers)
scaling     print the Fig. 4 strong/weak scaling table
landscape   print the Fig. 1 simulation-landscape table
utilization print the Fig. 6 vendor and redshift utilization numbers
demo        run a small end-to-end simulation and print its in situ report
lint        run the repo's AST lint rules (see repro.sanitize)
"""

from __future__ import annotations

import argparse
import sys


def cmd_campaign(args) -> int:
    """Frontier-E campaign model summary, or — with ``--spec`` — run a
    real many-universe campaign through the execution engine."""
    if getattr(args, "spec", None):
        return _run_campaign_spec(args)

    from .perfmodel import CampaignModel, hydro_vs_gravity_cost_ratio

    result = CampaignModel().run()
    if getattr(args, "model_trace", None):
        from .perfmodel.campaign import export_schedule

        doc = export_schedule(result, args.model_trace)
        print(f"model trace: {len(doc['traceEvents'])} events "
              f"({len(result.steps)} steps) -> {args.model_trace} "
              f"(open in ui.perfetto.dev)")
    print(f"Frontier-E campaign model ({len(result.steps)} PM steps)")
    print(f"  wall clock        {result.wallclock_hours:8.1f} h   (paper 196)")
    print(f"  node-hours        {result.node_hours / 1e6:8.2f} M  (paper ~1.7)")
    print(f"  data written      {result.total_data_pb:8.1f} PB  (paper >100)")
    print(f"  effective I/O     {result.effective_io_tbps:8.2f} TB/s (paper 5.45)")
    print(f"  GPU residency     {result.gpu_resident_fraction * 100:8.1f} %  (paper 91.2)")
    print("  component fractions:")
    for k, v in sorted(result.fractions.items(), key=lambda kv: -kv[1]):
        print(f"    {k:<12} {v * 100:5.1f}%")
    r = hydro_vs_gravity_cost_ratio()
    print(f"  gravity-only: {r['gravity_only_hours']:.1f} h -> hydro {r['ratio']:.1f}x "
          f"(paper ~16x)")
    return 0


def _run_campaign_spec(args) -> int:
    """Execute a campaign spec file on the pooled engine."""
    from .campaign import CampaignEngine, CampaignSpec
    from .observe import Observatory

    spec = CampaignSpec.load(args.spec)
    workers = args.workers if args.workers else spec.workers
    obs = Observatory(tracing=args.trace is not None)
    engine = CampaignEngine(
        n_workers=workers, max_queue=spec.max_queue, policy=spec.policy,
        cache_bytes=int(spec.cache_mb * (1 << 20)), observe=obs,
    )
    print(f"campaign: {len(spec.jobs)} jobs on {workers} workers "
          f"(queue {spec.max_queue}, policy {spec.policy}, "
          f"cache {spec.cache_mb:.0f} MB)")
    report = engine.run(spec.jobs)
    print(f"  completed {report.n_completed}/{report.n_submitted} "
          f"({report.n_failed} failed, {report.n_rejected} rejected) "
          f"in {report.wall_seconds:.2f} s")
    print(f"  throughput       {report.universes_per_hour:10.1f} universes/h")
    cs = report.cache_stats
    total = cs.get("hits", 0) + cs.get("misses", 0)
    if total:
        print(f"  artifact cache   {cs['hits']}/{total} hits "
              f"({cs['hits'] / total * 100:.0f}%), "
              f"{cs['evictions']} evictions, "
              f"{engine.cache.nbytes / 1e6:.1f} MB resident")
    if report.tenants:
        print(f"  {'tenant':<12} {'done':>5} {'fail':>5} {'wall s':>8} "
              f"{'sim Gyr':>8} {'s/universe':>11}")
        for row in report.tenants:
            print(f"  {row.tenant:<12} {row.jobs_completed:>5} "
                  f"{row.jobs_failed:>5} {row.wall_seconds:>8.2f} "
                  f"{row.sim_gyr:>8.2f} {row.wall_per_universe:>11.2f}")
    for res in report.results:
        if res.status == "failed":
            print(f"  FAILED {res.job.name} ({res.job.tenant}): {res.error}")
    if args.trace is not None:
        obs.export_chrome_trace(args.trace)
        print(f"  trace: {len(obs.tracer.events)} events -> {args.trace}")
    return 0 if report.n_failed == 0 else 1


def cmd_scaling(_args) -> int:
    """Print the Fig. 4 strong/weak scaling table."""
    from .perfmodel import figure4_table, machine_flop_rates

    print(f"{'nodes':>6} {'weak part/s':>12} {'weak eff':>9} "
          f"{'strong s/step':>14} {'strong eff':>11}")
    for p in figure4_table():
        print(f"{p.n_nodes:>6} {p.weak_particles_per_sec:>12.3e} "
              f"{p.weak_efficiency * 100:>8.1f}% "
              f"{p.strong_seconds_per_step:>14.2f} "
              f"{p.strong_efficiency * 100:>10.1f}%")
    rates = machine_flop_rates()
    print(f"Frontier-E: peak {rates['peak_pflops']:.1f} PFLOPs, "
          f"sustained {rates['sustained_pflops']:.1f} PFLOPs")
    return 0


def cmd_landscape(_args) -> int:
    """Print the Fig. 1 simulation-landscape table."""
    from .perfmodel import capability_leap_factor, landscape_catalog

    print(f"{'simulation':<16} {'code':<10} {'type':<13} {'box Gpc':>8} "
          f"{'elements':>10}")
    for s in landscape_catalog():
        kind = "hydro" if s.hydro else "gravity-only"
        print(f"{s.name:<16} {s.code:<10} {kind:<13} {s.box_gpc:>8.2f} "
              f"{s.resolution_elements:>10.2e}")
    print(f"capability leap: {capability_leap_factor():.1f}x")
    return 0


def cmd_utilization(_args) -> int:
    """Print the Fig. 6 utilization numbers."""
    from .gpusim import (
        H100_SXM5,
        MI250X_GCD,
        PVC_TILE,
        peak_utilization,
        sustained_utilization,
    )
    from .perfmodel import rank_utilization_samples

    print("single-node (Fig. 6 left):")
    for d in (MI250X_GCD, PVC_TILE, H100_SXM5):
        print(f"  {d.vendor:<7} sustained {sustained_utilization(d) * 100:5.1f}%  "
              f"peak {peak_utilization(d) * 100:5.1f}%")
    print("full machine (Fig. 6 right, 9000 ranks):")
    for label, a, flat in (("high z", 0.1, False), ("low z", 1.0, False),
                           ("low z Flat", 1.0, True)):
        s = rank_utilization_samples(MI250X_GCD, a=a, n_ranks=9000, flat=flat)
        print(f"  {label:<11} mean {s.mean() * 100:5.1f}%  std {s.std() * 100:4.2f}%")
    return 0


def _run_chaos_demo(args) -> int:
    """Distributed chaos run: kill ranks mid-step, recover, verify.

    Drives a 4-rank-class :class:`DistributedSimulation` under the
    :class:`~repro.resilience.RecoveryCoordinator` with an injected
    fault plan (explicit ``--inject-fault rank:step[:phase]`` kills
    and/or a seeded ``--mtti`` draw), then replays a clean restart from
    the recovery checkpoint on the surviving rank count and checks the
    final states are bit-identical.
    """
    import tempfile

    import numpy as np

    from .campaign.runner import state_hash
    from .observe import Observatory
    from .parallel.distributed_sim import (
        DistributedConfig,
        DistributedSimulation,
    )
    from .resilience import (
        FaultPlan,
        RecoveryCoordinator,
        TieredCheckpointStore,
    )

    rng = np.random.default_rng(args.seed)
    box = 120.0
    centers = rng.uniform(0, box, size=(4, 3))
    pts = [np.mod(c + rng.normal(0, 6.0, size=(24, 3)), box)
           for c in centers]
    pos = np.vstack(pts)
    vel = rng.normal(0, 50.0, size=pos.shape)
    mass = np.full(len(pos), 1.0e10)
    # r_split_cells=0.75 keeps the short-range cutoff inside half a rank
    # domain even after the decomposition shrinks onto the survivors
    cfg = DistributedConfig(
        box=box, pm_grid=32, a_init=0.3, a_final=0.34,
        n_pm_steps=args.steps, r_split_cells=0.75, max_rung=3,
        comm_mode="overlap", subcycle=True, sanitize=True,
    )
    kills = []
    if args.inject_fault:
        kills.extend(FaultPlan.parse(args.inject_fault).kills)
    if args.mtti:
        kills.extend(FaultPlan.from_mtti(
            args.mtti, args.steps, args.ranks, seed=args.seed,
        ).kills)
    plan = FaultPlan(kills) if kills else None
    print(f"chaos demo: {len(pos)} particles on {args.ranks} ranks, "
          f"{args.steps} PM steps, {len(kills)} planned kill(s)")
    for k in kills:
        print(f"  kill rank {k.rank} at step {k.step}"
              + (f" phase {k.phase}" if k.phase else ""))

    obs = Observatory(tracing=args.trace is not None)
    with tempfile.TemporaryDirectory() as ckpt_dir:
        store = TieredCheckpointStore(ckpt_dir, n_nodes=args.ranks)
        coord = RecoveryCoordinator(store, observe=obs)
        res = coord.run(cfg, args.ranks, pos, vel, mass, fault_plan=plan)
        for r in res.recoveries:
            print(f"  recovered: rank {r.failed_rank} died at step "
                  f"{r.failed_step} ({r.failed_phase or 'compute'}); "
                  f"restored step {r.restored_step} from {r.tier}, "
                  f"{r.ranks_before} -> {r.ranks_after} ranks "
                  f"({r.n_requests} requests, {r.n_unsettled} unsettled)")
        print(f"final: a={cfg.a_final:g} on {res.n_ranks_final} ranks "
              f"after {res.n_attempts} attempt(s)")
        print(f"  state hash {state_hash(pos=res.pos, vel=res.vel)[:16]}")
        ok = True
        if res.recoveries:
            last = res.recoveries[-1]
            if last.restored_step is not None:
                point = store.restorable_at(last.restored_step)
                arrays, _meta = store.restore(point)
                ref = DistributedSimulation(last.resumed_config,
                                            last.ranks_after)
                rp, rv, _ids = ref.run(arrays["pos"], arrays["vel"],
                                       arrays["mass"])
                ok = state_hash(pos=rp, vel=rv) == \
                    state_hash(pos=res.pos, vel=res.vel)
                print(f"  clean-restart hash match: {ok}")
        san = coord.last_sim.world.sanitizer
        findings = san.findings if san is not None else []
        print(f"  sanitizer findings: {len(findings)}")
        ok = ok and not findings
    if args.trace is not None:
        obs.export_chrome_trace(args.trace)
        print(f"trace: {len(obs.tracer.events)} events -> {args.trace} "
              f"(open in ui.perfetto.dev)")
    return 0 if ok else 1


def cmd_demo(args) -> int:
    """Run a small end-to-end simulation and print its in situ report."""
    import numpy as np

    if args.ranks > 0:
        return _run_chaos_demo(args)

    from .analysis import InSituPipeline
    from .core.particles import make_gas_dm_pair
    from .core.simulation import Simulation, SimulationConfig
    from .cosmology import PLANCK18, zeldovich_ics
    from .observe import Observatory

    box = 20.0
    ics = zeldovich_ics(args.n, box, PLANCK18, a_init=0.25, seed=args.seed)
    parts = make_gas_dm_pair(
        ics.positions, ics.velocities, ics.particle_mass,
        PLANCK18.omega_b, PLANCK18.omega_m, u_init=20.0, box=box,
    )
    cfg = SimulationConfig(
        box=box, pm_grid=16, a_init=0.25, a_final=0.45,
        n_pm_steps=args.steps, cosmo=PLANCK18, subgrid=True, max_rung=3,
    )
    obs = Observatory(tracing=args.trace is not None)
    sim = Simulation(cfg, parts, observe=obs)
    pipe = InSituPipeline(n_grid=16, min_members=8)
    sim.insitu_hooks.append(pipe)
    print(f"demo: {len(parts)} particles, {args.steps} PM steps")
    records = sim.run()
    for rec, rep in zip(records, pipe.reports):
        print(f"  step {rec.step}: a={rec.a:.3f} substeps={rec.n_substeps} "
              f"halos={rep.n_halos} galaxies={rep.n_galaxies} "
              f"delta_rms={rep.clustering_rms:.3f}")
    p = sim.particles
    print(f"final: {int(p.gas.sum())} gas, {int(p.stars.sum())} stars, "
          f"{int(p.black_holes.sum())} BH; "
          f"T_med={sim.eos.temperature(np.median(p.u[p.gas])):.2e} K")
    if args.trace is not None:
        obs.export_chrome_trace(args.trace)
        n_events = len(obs.tracer.events)
        print(f"trace: {n_events} events -> {args.trace} "
              f"(open in ui.perfetto.dev)")
    return 0


def cmd_ensemble(args) -> int:
    """Plan an ensemble campaign under a node-hour budget (paper §VII)."""
    import numpy as np

    from .constants import FRONTIER_E_PARTICLES
    from .perfmodel import plan_ensemble

    print(f"ensemble planning under {args.budget:.1e} node-hours:")
    for frac, label in ((1.0, "Frontier-E twins"), (1 / 8, "1/8 size"),
                        (1 / 64, "1/64 size")):
        plan = plan_ensemble(args.budget, FRONTIER_E_PARTICLES * frac,
                             hydro=not args.gravity_only)
        cov = plan.covariance_precision()
        cov_str = f"{cov * 100:.1f}%" if np.isfinite(cov) else "undetermined"
        print(f"  {label:<18} {plan.n_members:5d} members "
              f"({plan.members[0].node_hours if plan.members else 0:.2e} "
              f"node-h each) -> covariance precision {cov_str}")
    return 0


def _changed_python_files():
    """Absolute paths of ``.py`` files changed vs the merge-base.

    Diffs the working tree against ``git merge-base HEAD origin/main``
    (first available of origin/main, origin/master, main, master) and
    adds untracked files.  Returns None when not in a git repository
    (the caller falls back to the full tree); an empty list means a
    clean working tree.
    """
    import os
    import subprocess

    def git(*cmd):
        try:
            proc = subprocess.run(
                ["git", *cmd], capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.SubprocessError):
            return None
        return proc.stdout if proc.returncode == 0 else None

    top = git("rev-parse", "--show-toplevel")
    if top is None:
        return None
    top = top.strip()
    base = None
    for ref in ("origin/main", "origin/master", "main", "master"):
        got = git("merge-base", "HEAD", ref)
        if got is not None:
            base = got.strip()
            break
    if base is None:
        return None
    diff = git("diff", "--name-only", base)
    if diff is None:
        return None
    names = set(diff.splitlines())
    untracked = git("ls-files", "--others", "--exclude-standard")
    if untracked is not None:
        names.update(untracked.splitlines())
    return [
        path for name in sorted(names) if name.endswith(".py")
        and os.path.exists(path := os.path.join(top, name))
    ]


def cmd_lint(args) -> int:
    """Run the sanitize lint engine; exit 0 clean / 1 findings / 2 usage."""
    import os

    from .sanitize import (
        DEEP_RULE_NAMES,
        LintEngine,
        apply_baseline,
        deep_analyze,
        deep_rule_descriptors,
        get_rules,
        load_baseline,
        render_json,
        render_text,
        write_baseline,
    )

    rules = None
    deep_rules = None
    if args.rules:
        names = [r.strip() for r in args.rules.split(",") if r.strip()]
        deep_names = [n for n in names if n in DEEP_RULE_NAMES]
        shallow_names = [n for n in names if n not in DEEP_RULE_NAMES]
        if deep_names:
            args.deep = True  # naming a deep rule implies --deep
            deep_rules = deep_names
            rules = []
        if shallow_names or not deep_names:
            try:
                rules = get_rules(shallow_names)
            except KeyError as exc:
                print(
                    f"unknown rule {exc.args[0]!r} "
                    "(see repro.sanitize.rules)",
                    file=sys.stderr,
                )
                return 2
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    baseline = None
    if args.baseline:
        if not os.path.exists(args.baseline):
            print(f"baseline file not found: {args.baseline}", file=sys.stderr)
            return 2
        baseline = load_baseline(args.baseline)

    changed = None
    if args.changed:
        changed = _changed_python_files()
        if changed is not None:
            # --changed narrows the requested paths, never widens them:
            # only changed files under the linted tree(s) count
            roots = [os.path.abspath(p) for p in paths]
            changed = [
                p for p in changed
                if any(os.path.abspath(p) == r
                       or os.path.abspath(p).startswith(r + os.sep)
                       for r in roots)
            ]

    engine = LintEngine(rules=rules)
    shallow_paths = paths if changed is None else changed
    result = engine.lint_paths(shallow_paths)

    deep_descriptors = []
    if args.deep:
        # the deep analyses are whole-program: always build over the
        # full requested tree, then (with --changed) report only the
        # findings landing in changed files
        deep = deep_analyze(paths, root=engine.root, rules=deep_rules)
        deep_descriptors = deep_rule_descriptors(
            tuple(deep_rules) if deep_rules else DEEP_RULE_NAMES
        )
        deep_findings = deep.findings
        if changed is not None:
            keep = {os.path.abspath(p) for p in changed}
            deep_findings = [
                f for f in deep_findings
                if (mod := deep.program.by_rel.get(f.path)) is not None
                and os.path.abspath(mod.path) in keep
            ]
        result.findings.extend(deep_findings)
        result.n_suppressed += deep.n_suppressed
        result.errors.extend(deep.errors)
    if baseline is not None:
        (result.findings, result.n_baseline,
         result.stale_baseline) = apply_baseline(result.findings, baseline)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.write_baseline:
        write_baseline(args.write_baseline, result.findings)
        print(f"wrote baseline with {len(result.findings)} finding(s) "
              f"to {args.write_baseline}")
        return 0

    all_rules = list(engine.rules) + deep_descriptors
    if args.format == "json":
        print(render_json(result, all_rules))
    else:
        print(render_text(result, all_rules))
    return 0 if result.clean else 1


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CRK-HACC / Frontier-E reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    camp = sub.add_parser(
        "campaign",
        help="Frontier-E campaign summary, or run a sweep with --spec",
    )
    camp.add_argument("--spec", metavar="SPEC.json", default=None,
                      help="run a many-universe campaign from a spec file")
    camp.add_argument("--workers", type=int, default=0,
                      help="override the spec's worker-pool size")
    camp.add_argument("--trace", metavar="OUT.json", default=None,
                      help="export a Chrome/Perfetto trace of the campaign")
    camp.add_argument("--model-trace", metavar="OUT.json", default=None,
                      help="export the 625-step model schedule "
                           "(simulated clock) as a Perfetto trace")
    sub.add_parser("scaling", help="Fig. 4 scaling table")
    sub.add_parser("landscape", help="Fig. 1 landscape table")
    sub.add_parser("utilization", help="Fig. 6 utilization numbers")
    demo = sub.add_parser("demo", help="small end-to-end simulation")
    demo.add_argument("--n", type=int, default=7, help="particles per dim")
    demo.add_argument("--steps", type=int, default=3, help="PM steps")
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--trace", metavar="OUT.json", default=None,
                      help="export a Chrome/Perfetto trace of the run")
    demo.add_argument("--ranks", type=int, default=0,
                      help="run the distributed chaos demo on this many "
                           "simulated ranks (0 = serial in situ demo)")
    demo.add_argument("--inject-fault", metavar="RANK:STEP[:PHASE]",
                      default=None,
                      help="kill rank(s) mid-run and recover, e.g. 2:1:rung "
                           "(comma-separate multiple kills)")
    demo.add_argument("--mtti", type=float, default=0.0,
                      help="draw seeded rank deaths with this mean time to "
                           "interruption (in steps)")
    ens = sub.add_parser("ensemble", help="plan an ensemble campaign")
    ens.add_argument("--budget", type=float, default=2.0e7,
                     help="node-hour budget")
    ens.add_argument("--gravity-only", action="store_true")
    lint = sub.add_parser("lint", help="run the repo's AST lint rules")
    lint.add_argument("paths", nargs="*",
                      help="files/directories (default: the repro package)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule subset (default: all)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="suppress findings recorded in this debt file")
    lint.add_argument("--write-baseline", default=None, metavar="FILE",
                      help="record current findings as the debt baseline")
    lint.add_argument("--deep", action="store_true",
                      help="also run the whole-program comm-safety analyses "
                           "(request-lifecycle, collective-divergence, "
                           "span-balance)")
    lint.add_argument("--changed", action="store_true",
                      help="lint only .py files changed vs the merge-base "
                           "with origin/main (full tree outside a git repo)")

    args = parser.parse_args(argv)
    return {
        "campaign": cmd_campaign,
        "scaling": cmd_scaling,
        "landscape": cmd_landscape,
        "utilization": cmd_utilization,
        "demo": cmd_demo,
        "ensemble": cmd_ensemble,
        "lint": cmd_lint,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
