"""repro.backend: kernel-dispatch registry for compiled hot kernels.

Every prior speedup (pair engine, active-set subcycling, comm overlap,
distributed rungs) reduced *how much* work the hot kernels do; this
package makes the kernels themselves faster.  Each hot kernel — the
sorted-CSR segment reductions, the CIC deposit/gather stencils, the
short-range pair force, the CRKSPH moment/pair-derivative inner loops,
the gpusim lane accumulator — is registered under a stable name with a
NumPy reference implementation and, when numba is importable, an
``@njit``-compiled equivalent.  Call sites in ``core/`` fetch the active
implementation through :func:`get_kernel` and never import numba
directly (enforced by the ``backend-discipline`` lint rule).

Backend selection (highest precedence first):

1. the ``REPRO_BACKEND`` environment variable (``numpy`` | ``jit``);
2. the driver config (``SimulationConfig.backend`` /
   ``DistributedConfig.backend``), scoped around the run via
   :func:`use_backend`;
3. the process default (``numpy``).

Requesting ``jit`` without numba installed falls back to ``numpy`` with
a one-time :class:`BackendFallbackWarning` — the full suite passes
unchanged on the reference backend.

Every kernel declares a parity contract against its NumPy reference
(see :class:`~repro.backend.registry.KernelSpec`): ``bit-identical``
(``np.array_equal``) where the reference accumulates sequentially
(bincount / ``np.add.at`` order), or ``roundoff`` with a documented
bound where the reference uses SIMD partial sums (``np.add.reduceat``)
or different libm transcendentals.  Tier-1 asserts the contracts on
serial, subcycled, and 4-rank overlap runs (``tests/backend/``).
"""

from __future__ import annotations

from .registry import (
    BACKENDS,
    BackendFallbackWarning,
    KernelSpec,
    active_backend,
    get_kernel,
    kernel_names,
    kernel_spec,
    numba_available,
    register_kernel,
    resolve_backend,
    select_backend,
    set_backend,
    use_backend,
    warm_up,
)

__all__ = [
    "BACKENDS",
    "BackendFallbackWarning",
    "KernelSpec",
    "active_backend",
    "get_kernel",
    "kernel_names",
    "kernel_spec",
    "numba_available",
    "register_kernel",
    "resolve_backend",
    "select_backend",
    "set_backend",
    "use_backend",
    "warm_up",
]
