"""Numba ``@njit`` implementations of the registered hot kernels.

This module is imported only by :func:`repro.backend.registry._load_jit`
— i.e. only once the ``jit`` backend has actually been activated with
numba importable — so the rest of the package never depends on numba.

Parity discipline (the contracts tier-1 asserts, see each reference
registration):

- **No ``fastmath``** anywhere: reassociation would break even the
  roundoff bounds.
- Kernels whose NumPy reference accumulates sequentially (``bincount`` /
  ``np.add.at`` order) mirror that order operation-for-operation,
  including multiplication associativity, and are bit-identical.
- Kernels whose reference reduces via ``np.add.reduceat`` (SIMD partial
  sums) or evaluates transcendentals through scipy/npymath keep the same
  evaluation order per element but accumulate sequentially, and carry a
  documented roundoff bound instead.

The compiled loops consume the existing sorted-CSR layout
(``SegmentReducer`` plans, ``PairBatch`` pair order), so pair caches and
active-sink row gathers work unchanged on either backend.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import numpy as np
from numba import njit

from .registry import register_kernel

__all__ = ["warm"]


# -- sorted-CSR segment reductions ---------------------------------------------
@njit(cache=True)
def _seg_sum(v, starts, counts, out):
    for s in range(starts.shape[0]):
        c = counts[s]
        if c == 0:
            continue
        lo = starts[s]
        for k in range(lo, lo + c):
            for t in range(v.shape[1]):
                out[s, t] += v[k, t]


@njit(cache=True)
def _seg_max(v, starts, counts, initial, out):
    for s in range(starts.shape[0]):
        c = counts[s]
        if c == 0:
            continue
        lo = starts[s]
        for t in range(v.shape[1]):
            cur = initial
            for k in range(lo, lo + c):
                x = v[k, t]
                # mirrors np.maximum: larger value wins, NaN propagates
                if x > cur or x != x:
                    cur = x
            out[s, t] = cur


def _csr_values(red, values):
    """Permute ``values`` into the reducer's sorted order, flattened 2-D."""
    v = np.asarray(values)
    if red.order is not None:
        v = v[red.order]
    return v, np.ascontiguousarray(v.reshape(v.shape[0], -1))


@register_kernel("scatter.segment_sum_csr", backend="jit")
def seg_sum_csr(red, values):
    v, flat = _csr_values(red, values)
    out = np.zeros((red.num_segments, flat.shape[1]), dtype=flat.dtype)
    _seg_sum(flat, red.starts, red.counts, out)
    return out.reshape((red.num_segments,) + v.shape[1:])


@register_kernel("scatter.segment_max_csr", backend="jit")
def seg_max_csr(red, values, fill):
    v, flat = _csr_values(red, values)
    out = np.full((red.num_segments, flat.shape[1]), fill, dtype=flat.dtype)
    _seg_max(flat, red.starts, red.counts, fill, out)
    return out.reshape((red.num_segments,) + v.shape[1:])


# -- CIC deposit / gather ------------------------------------------------------
@njit(cache=True)
def _cic_deposit(pos, mass, n, cell):
    n3 = n * n * n
    grid = np.zeros(n3)
    tmp = np.empty(n3)
    for ox in range(2):
        for oy in range(2):
            for oz in range(2):
                # per-offset partial grid, added wholesale afterwards:
                # exactly the reference's bincount-per-offset order
                for c in range(n3):
                    tmp[c] = 0.0
                for p in range(pos.shape[0]):
                    xx = pos[p, 0] / cell - 0.5
                    yy = pos[p, 1] / cell - 0.5
                    zz = pos[p, 2] / cell - 0.5
                    ix0 = int(np.floor(xx))
                    iy0 = int(np.floor(yy))
                    iz0 = int(np.floor(zz))
                    fx = xx - np.floor(xx)
                    fy = yy - np.floor(yy)
                    fz = zz - np.floor(zz)
                    wx = fx if ox == 1 else 1.0 - fx
                    wy = fy if oy == 1 else 1.0 - fy
                    wz = fz if oz == 1 else 1.0 - fz
                    ix = (ix0 + ox) % n
                    iy = (iy0 + oy) % n
                    iz = (iz0 + oz) % n
                    tmp[(ix * n + iy) * n + iz] += mass[p] * wx * wy * wz
                for c in range(n3):
                    grid[c] += tmp[c]
    return grid


@register_kernel("pm.cic_deposit", backend="jit")
def cic_deposit(pos, mass, n, box):
    pos = np.ascontiguousarray(pos, dtype=np.float64)
    mass = np.ascontiguousarray(
        np.broadcast_to(np.asarray(mass, dtype=np.float64), (pos.shape[0],))
    )
    cell = box / n
    grid = _cic_deposit(pos, mass, n, cell)
    return grid.reshape(n, n, n) / cell**3


@njit(cache=True)
def _cic_gather(field, pos, cell, n, out):
    for ox in range(2):
        for oy in range(2):
            for oz in range(2):
                for p in range(pos.shape[0]):
                    xx = pos[p, 0] / cell - 0.5
                    yy = pos[p, 1] / cell - 0.5
                    zz = pos[p, 2] / cell - 0.5
                    ix0 = int(np.floor(xx))
                    iy0 = int(np.floor(yy))
                    iz0 = int(np.floor(zz))
                    fx = xx - np.floor(xx)
                    fy = yy - np.floor(yy)
                    fz = zz - np.floor(zz)
                    wx = fx if ox == 1 else 1.0 - fx
                    wy = fy if oy == 1 else 1.0 - fy
                    wz = fz if oz == 1 else 1.0 - fz
                    ix = (ix0 + ox) % n
                    iy = (iy0 + oy) % n
                    iz = (iz0 + oz) % n
                    w = wx * wy * wz
                    for c in range(field.shape[3]):
                        out[p, c] += field[ix, iy, iz, c] * w


@register_kernel("pm.cic_gather", backend="jit")
def cic_gather(field, pos, box):
    n = field.shape[0]
    cell = box / n
    vec = field.ndim == 4
    f4 = field if vec else field.reshape(n, n, n, 1)
    out = np.zeros((pos.shape[0], f4.shape[3]))
    _cic_gather(
        np.ascontiguousarray(f4, dtype=np.float64),
        np.ascontiguousarray(pos, dtype=np.float64),
        cell, n, out,
    )
    return out if vec else out[:, 0]


# -- short-range pair gravity --------------------------------------------------
@njit(cache=True)
def _short_range(pos, mass, pi, pj, rows, r_split, soft, g, box, periodic,
                 out):
    soft2 = soft * soft
    inv_sqrt_pi = 1.0 / math.sqrt(math.pi)
    for k in range(pi.shape[0]):
        i = pi[k]
        j = pj[k]
        dx = pos[i, 0] - pos[j, 0]
        dy = pos[i, 1] - pos[j, 1]
        dz = pos[i, 2] - pos[j, 2]
        if periodic:
            dx -= box[0] * np.round(dx / box[0])
            dy -= box[1] * np.round(dy / box[1])
            dz -= box[2] * np.round(dz / box[2])
        r = math.sqrt(dx * dx + dy * dy + dz * dz)
        kern = r / (r * r + soft2) ** 1.5
        if r_split > 0.0:
            x = r / (2.0 * r_split)
            kern = kern * (
                math.erfc(x)
                + (r / r_split) * inv_sqrt_pi * math.exp(-(x * x))
            )
        if r > 0.0:
            rr = r if r > 1e-300 else 1e-300
            coef = (-g) * (mass[j] * kern) / rr
            row = rows[k]
            out[row, 0] += coef * dx
            out[row, 1] += coef * dy
            out[row, 2] += coef * dz


@register_kernel("gravity.short_range_pairs", backend="jit")
def short_range_pairs(pos, mass, pi, pj, rows, n_out, r_split, softening,
                      box, g_newton):
    out = np.zeros((n_out, 3))
    periodic = box is not None
    box3 = (
        np.broadcast_to(np.asarray(box, dtype=np.float64), (3,)).copy()
        if periodic else np.ones(3)
    )
    _short_range(
        np.ascontiguousarray(pos, dtype=np.float64),
        np.ascontiguousarray(mass, dtype=np.float64),
        np.ascontiguousarray(pi, dtype=np.int64),
        np.ascontiguousarray(pj, dtype=np.int64),
        np.ascontiguousarray(rows, dtype=np.int64),
        float(r_split), float(softening), float(g_newton), box3, periodic,
        out,
    )
    return out


# -- CRK moment accumulation (fused) -------------------------------------------
@njit(cache=True)
def _crk_moments(vj, dx, w, gw, starts, counts, m0, m1, m2, dm0, dm1, dm2):
    for s in range(starts.shape[0]):
        c = counts[s]
        if c == 0:
            continue
        lo = starts[s]
        for k in range(lo, lo + c):
            v = vj[k]
            wk = w[k]
            m0[s] += v * wk
            for b in range(3):
                m1[s, b] += v * (-dx[k, b]) * wk
                dm0[s, b] += v * gw[k, b]
                for c2 in range(3):
                    m2[s, b, c2] += v * (dx[k, b] * dx[k, c2]) * wk
            for a in range(3):
                ga = gw[k, a]
                for b in range(3):
                    t = (-dx[k, b]) * ga
                    if a == b:
                        t = t - wk
                    dm1[s, a, b] += v * t
                    for c2 in range(3):
                        t1 = dx[k, c2] * wk if a == b else 0.0
                        t2 = dx[k, b] * wk if a == c2 else 0.0
                        t3 = (dx[k, b] * dx[k, c2]) * ga
                        dm2[s, a, b, c2] += v * ((t1 + t2) + t3)


@register_kernel("crk.moments", backend="jit")
def crk_moments(vj, dx, w, gw, red):
    arrs = [np.asarray(a, dtype=np.float64) for a in (vj, dx, w, gw)]
    if red.order is not None:
        arrs = [a[red.order] for a in arrs]
    vj, dx, w, gw = (np.ascontiguousarray(a) for a in arrs)
    s = red.num_segments
    m0 = np.zeros(s)
    m1 = np.zeros((s, 3))
    m2 = np.zeros((s, 3, 3))
    dm0 = np.zeros((s, 3))
    dm1 = np.zeros((s, 3, 3))
    dm2 = np.zeros((s, 3, 3, 3))
    _crk_moments(vj, dx, w, gw, red.starts, red.counts,
                 m0, m1, m2, dm0, dm1, dm2)
    return m0, m1, m2, dm0, dm1, dm2


# -- corrected-kernel pair evaluation ------------------------------------------
@njit(cache=True)
def _corrected_pairs(ca, cb, cga, cgb, pi, dx, w, gw, wr, gwr):
    for k in range(pi.shape[0]):
        i = pi[k]
        a = ca[i]
        wk = w[k]
        lin = 1.0 + (cb[i, 0] * dx[k, 0] + cb[i, 1] * dx[k, 1]
                     + cb[i, 2] * dx[k, 2])
        wr[k] = a * lin * wk
        lw = lin * wk
        al = a * lin
        for x in range(3):
            s = (cgb[i, x, 0] * dx[k, 0] + cgb[i, x, 1] * dx[k, 1]
                 + cgb[i, x, 2] * dx[k, 2])
            term1 = cga[i, x] * lw
            term2 = a * (s + cb[i, x]) * wk
            term3 = al * gw[k, x]
            gwr[k, x] = (term1 + term2) + term3


@register_kernel("crk.corrected_pairs", backend="jit")
def corrected_pairs(ca, cb, cga, cgb, pi, dx, w, gw):
    p = len(pi)
    wr = np.empty(p)
    gwr = np.empty((p, 3))
    _corrected_pairs(
        np.ascontiguousarray(ca, dtype=np.float64),
        np.ascontiguousarray(cb, dtype=np.float64),
        np.ascontiguousarray(cga, dtype=np.float64),
        np.ascontiguousarray(cgb, dtype=np.float64),
        np.ascontiguousarray(pi, dtype=np.int64),
        np.ascontiguousarray(dx, dtype=np.float64),
        np.ascontiguousarray(w, dtype=np.float64),
        np.ascontiguousarray(gw, dtype=np.float64),
        wr, gwr,
    )
    return wr, gwr


# -- gpusim lane-order accumulation --------------------------------------------
@njit(cache=True)
def _lane_add(out, idx, vals):
    for k in range(idx.shape[0]):
        out[idx[k]] += vals[k]


@register_kernel("gpusim.lane_scatter_add", backend="jit")
def lane_scatter_add(out, idx, vals):
    _lane_add(
        out,
        np.ascontiguousarray(idx, dtype=np.int64),
        np.ascontiguousarray(vals, dtype=np.float64),
    )
    return out


# -- warm-up -------------------------------------------------------------------
def warm() -> None:
    """Run every compiled wrapper on tiny float64 inputs.

    Forces numba's type-specialised compilation up front; called once
    per process by :func:`repro.backend.registry.warm_up` under the
    ``backend/compile`` span so compile time never lands in step timers.
    """
    ids = np.array([0, 0, 1], dtype=np.int64)
    counts = np.bincount(ids, minlength=2).astype(np.int64)
    red = SimpleNamespace(
        order=None,
        starts=np.ascontiguousarray(
            (np.cumsum(counts) - counts).astype(np.int64)
        ),
        counts=np.ascontiguousarray(counts),
        num_segments=2,
    )
    v = np.arange(3, dtype=np.float64)
    v3 = np.arange(9, dtype=np.float64).reshape(3, 3)
    seg_sum_csr(red, v)
    seg_sum_csr(red, v3)
    seg_max_csr(red, v, 0.0)
    pos = np.array([[0.2, 0.4, 0.6], [0.8, 0.1, 0.3]])
    mass = np.ones(2)
    cic_deposit(pos, mass, 2, 1.0)
    cic_gather(np.zeros((2, 2, 2)), pos, 1.0)
    cic_gather(np.zeros((2, 2, 2, 3)), pos, 1.0)
    pair_i = np.array([0, 1], dtype=np.int64)
    pair_j = np.array([1, 0], dtype=np.int64)
    short_range_pairs(pos, mass, pair_i, pair_j, pair_i, 2, 0.5, 0.01,
                      1.0, 1.0)
    short_range_pairs(pos, mass, pair_i, pair_j, pair_i, 2, 0.0, 0.01,
                      None, 1.0)
    w = np.full(3, 0.5)
    gw = np.full((3, 3), 0.1)
    crk_moments(v, v3, w, gw, red)
    corrected_pairs(np.ones(2), np.zeros((2, 3)), np.zeros((2, 3)),
                    np.zeros((2, 3, 3)), ids[:3] % 2, v3, w, gw)
    lane_scatter_add(np.zeros(2), ids, v)
