"""Kernel registry, backend selection, and JIT warm-up.

The registry maps ``name -> KernelSpec``; a spec owns one implementation
per backend plus the kernel's parity contract.  The NumPy reference is
registered by the module that defines the hot path (``core/scatter.py``,
``core/gravity/pm.py``, ...); the compiled equivalents live in
:mod:`repro.backend.jit_kernels` and are registered lazily the first
time the ``jit`` backend is activated, so importing repro never touches
numba.

Selection is deliberately layered: :func:`resolve_backend` applies the
``REPRO_BACKEND`` env override and the numba-availability fallback to a
request, :func:`use_backend` scopes the result around a driver run (two
simulations with different configured backends coexist in one process),
and :func:`set_backend` moves the process default for scripts/benches.
"""

from __future__ import annotations

import os
import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field

#: recognised backend names, in fallback order
BACKENDS = ("numpy", "jit")

#: env var overriding every configured backend request
ENV_VAR = "REPRO_BACKEND"


class BackendFallbackWarning(RuntimeWarning):
    """Emitted once per process when ``jit`` is requested without numba."""


@dataclass
class KernelSpec:
    """One registered hot kernel: per-backend impls + parity contract.

    ``contract`` is the relation of every non-reference implementation to
    the NumPy reference:

    - ``"bit-identical"`` — ``np.array_equal`` on all outputs.  Claimable
      only when the reference accumulates sequentially (``np.bincount`` /
      ``np.add.at`` order) or the reduction is order-insensitive (max).
    - ``"roundoff"`` — ``np.allclose`` within the documented
      ``rtol``/``atol``.  Used where the reference reduces via
      ``np.add.reduceat`` (SIMD partial sums whose grouping a sequential
      compiled loop cannot reproduce) or evaluates transcendentals
      through a different libm (scipy ``erfc`` vs ``math.erfc``).
    """

    name: str
    contract: str
    rtol: float = 0.0
    atol: float = 0.0
    note: str = ""
    impls: dict = field(default_factory=dict)

    def backends(self) -> tuple:
        return tuple(sorted(self.impls))


_kernels: dict[str, KernelSpec] = {}
_lock = threading.Lock()

#: mutable module state, test-resettable in one place
_state = {
    "backend": None,  # process default; resolved lazily
    "numba_checked": False,
    "numba_ok": False,
    "warned_fallback": False,
    "jit_loaded": False,
    "warmed": False,
}


def register_kernel(name: str, backend: str = "numpy",
                    contract: str = "bit-identical", rtol: float = 0.0,
                    atol: float = 0.0, note: str = ""):
    """Decorator registering one backend implementation of ``name``.

    The contract (and its bound) is declared by the reference
    registration; alternate-backend registrations inherit it and may not
    silently redeclare it.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected {BACKENDS}")

    def deco(fn):
        with _lock:
            spec = _kernels.get(name)
            if spec is None:
                spec = _kernels[name] = KernelSpec(
                    name=name, contract=contract, rtol=rtol, atol=atol,
                    note=note,
                )
            spec.impls[backend] = fn
        return fn

    return deco


def kernel_spec(name: str) -> KernelSpec:
    try:
        return _kernels[name]
    except KeyError:
        raise KeyError(
            f"no kernel registered under {name!r}; known: {kernel_names()}"
        ) from None


def kernel_names() -> list:
    return sorted(_kernels)


def numba_available() -> bool:
    """True when ``import numba`` succeeds (probed once, test-resettable)."""
    if not _state["numba_checked"]:
        try:
            import numba  # noqa: F401
            _state["numba_ok"] = True
        except Exception:
            _state["numba_ok"] = False
        _state["numba_checked"] = True
    return _state["numba_ok"]


def _warn_fallback(requested: str) -> None:
    if not _state["warned_fallback"]:
        _state["warned_fallback"] = True
        warnings.warn(
            f"backend {requested!r} requested but numba is not importable; "
            "falling back to the numpy reference backend "
            "(pip install -e '.[jit]' to enable compiled kernels)",
            BackendFallbackWarning,
            stacklevel=3,
        )


def resolve_backend(requested: str | None = None) -> str:
    """Effective backend for a request: env override > request > default.

    ``jit`` degrades gracefully to ``numpy`` (one-time warning) when
    numba is not importable.
    """
    env = os.environ.get(ENV_VAR, "").strip()
    name = env or requested or "numpy"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r} "
            f"({'via ' + ENV_VAR if env else 'requested'}); "
            f"expected one of {BACKENDS}"
        )
    if name == "jit" and not numba_available():
        _warn_fallback(name)
        name = "numpy"
    return name


def _load_jit() -> None:
    """Import (and thereby register) the compiled implementations once."""
    if not _state["jit_loaded"]:
        from . import jit_kernels  # noqa: F401

        _state["jit_loaded"] = True


def active_backend() -> str:
    """The backend :func:`get_kernel` dispatches to right now."""
    if _state["backend"] is None:
        _state["backend"] = resolve_backend(None)
        if _state["backend"] == "jit":
            _load_jit()
    return _state["backend"]


def set_backend(name: str | None = None) -> str:
    """Set the process-default backend; returns the resolved name."""
    resolved = resolve_backend(name)
    if resolved == "jit":
        _load_jit()
    _state["backend"] = resolved
    return resolved


@contextmanager
def use_backend(name: str | None):
    """Scope the active backend around a block (driver runs, parity tests)."""
    prev = _state["backend"]
    try:
        yield set_backend(name)
    finally:
        _state["backend"] = prev


def get_kernel(name: str, backend: str | None = None):
    """The implementation of ``name`` for the active (or given) backend.

    A backend without a registered implementation for this kernel falls
    through to the NumPy reference, so partially-covered backends stay
    usable.
    """
    spec = kernel_spec(name)
    b = backend if backend is not None else active_backend()
    fn = spec.impls.get(b)
    if fn is None:
        fn = spec.impls.get("numpy")
        if fn is None:
            raise KeyError(
                f"kernel {name!r} has no implementation for backend {b!r} "
                "and no numpy reference to fall back to"
            )
    return fn


def warm_up(observe=None) -> float:
    """Compile every registered jit kernel once (idempotent per process).

    Runs each compiled wrapper on tiny inputs so numba's type-specialised
    compilation happens here — behind a ``backend/compile`` span and a
    ``backend/compile_seconds`` counter — instead of polluting the first
    step's phase timers.  Returns the seconds spent (0.0 when already
    warm or when the jit backend is unavailable).
    """
    if _state["warmed"] or not numba_available():
        return 0.0
    _load_jit()
    from . import jit_kernels

    if observe is None:
        from ..observe import default_observatory

        observe = default_observatory()
    from ..observe.metrics import Timer

    span = observe.tracer.span("backend/compile", cat="backend")
    with Timer(observe.registry.counter("backend/compile_seconds"),
               span) as t:
        jit_kernels.warm()
    _state["warmed"] = True
    return t.seconds


def select_backend(requested: str | None = None, observe=None) -> str:
    """Driver entry point: resolve, warm if compiled, record the choice.

    Returns the resolved backend name the driver should scope its run
    with (``with use_backend(resolved): ...``) and record on its
    ``StepRecord``\\ s.  The selection lands in the metrics registry as
    the ``backend/jit_active`` gauge so benches and traces attribute
    their numbers to the backend that produced them.
    """
    resolved = resolve_backend(requested)
    if resolved == "jit":
        _load_jit()
        warm_up(observe)
    if observe is not None:
        observe.registry.gauge("backend/jit_active").set(
            1.0 if resolved == "jit" else 0.0
        )
    return resolved
