"""Live fault injection: seeded MTTI schedules and explicit rank kills.

A :class:`FaultPlan` is handed to :class:`~repro.parallel.comm.World`
(via ``DistributedSimulation(fault_plan=...)``) and turns the simulated
machine into one that *breaks*: when a rank enters a matching
``(rank, step, phase)`` point it raises a typed
:class:`~repro.parallel.comm.RankFailure` from inside the run — from
compute (the driver's ``timed()`` phase entries, including per-rung
subcycle phases) or from the communication layer itself
(``phase="comm"`` kills fire inside the next blocking or nonblocking
collective post).  The abort then propagates exactly like any real rank
death: peers observe the :class:`~repro.parallel.comm.CommAborted`
cascade and tear their in-flight requests down sanitizer-clean.

Plans are either explicit (:class:`KillSpec` list — deterministic chaos
tests) or drawn from the :mod:`repro.iosim.faults` MTTI model
(:meth:`FaultPlan.from_mtti` — seeded exponential interarrivals in PM-step
units).  Kill steps are *global* step indices: a plan survives a
recovery because the coordinator advances ``step_offset`` on resume, so
step 1 of the resumed run no longer re-matches a step-1 kill that
already fired (each kill fires at most once regardless).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..iosim.faults import interruption_steps
from ..parallel.comm import RankFailure

#: driver phases an MTTI-drawn kill may land in ("comm" fires inside the
#: communication layer; the others inside the matching timed() phase)
DEFAULT_KILL_PHASES = ("short_range", "long_range", "migration", "comm")


@dataclass(frozen=True)
class KillSpec:
    """One scheduled rank death: ``rank`` dies at global ``step``.

    ``phase`` narrows the kill point: a driver phase name (exact key or
    its prefix before ``/`` — ``"rung"`` matches every ``rung/<r>``
    substep phase, killing mid–PM-interval), or ``"comm"`` to fire from
    inside the next collective the rank posts.  ``None`` fires on the
    first phase entered at that step.
    """

    rank: int
    step: int
    phase: str | None = None

    def matches(self, rank: int, step: int, phase: str) -> bool:
        if rank != self.rank or step != self.step:
            return False
        if self.phase is None:
            return True
        return phase == self.phase or phase.split("/", 1)[0] == self.phase


class FaultPlan:
    """A schedule of rank deaths injected into a live distributed run.

    Thread-safe: every simulated rank probes the plan concurrently.
    Each kill fires exactly once (``fired`` records them); a plan can
    therefore ride through the coordinator's restart loop and keep
    firing its *later* kills against the recovered world.  Rank indices
    refer to the current world's rank numbering (after a recovery the
    survivors are renumbered 0..n-2).
    """

    def __init__(self, kills=()):
        self.kills: list[KillSpec] = list(kills)
        self.fired: list[KillSpec] = []
        #: global-step base of the current run segment; the coordinator
        #: sets it to the restored step + 1 on resume so local step 0 of
        #: the resumed run maps to the right global step
        self.step_offset = 0
        self._pending: list[KillSpec] = list(kills)
        self._lock = threading.Lock()
        #: rank -> (global step, phase) most recently entered; comm-layer
        #: kills need it because the transport has no step of its own
        self._current: dict[int, tuple] = {}

    @classmethod
    def single(cls, rank: int, step: int, phase: str | None = None
               ) -> "FaultPlan":
        """The one-kill plan of a deterministic chaos test."""
        return cls([KillSpec(rank, step, phase)])

    @classmethod
    def from_mtti(cls, mtti_steps: float, n_steps: int, n_ranks: int,
                  seed: int = 0, phases=DEFAULT_KILL_PHASES) -> "FaultPlan":
        """Seeded MTTI schedule: exponential interarrivals in step units.

        Interruption times come from the iosim MTTI model
        (:func:`repro.iosim.faults.interruption_steps`); each is assigned
        a uniformly random victim rank and kill phase.  Deterministic in
        ``seed``.
        """
        rng = np.random.default_rng(seed)
        kills = [
            KillSpec(
                rank=int(rng.integers(n_ranks)),
                step=step,
                phase=str(rng.choice(phases)),
            )
            for step in interruption_steps(mtti_steps, n_steps, rng=rng)
        ]
        return cls(kills)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Plan from CLI syntax ``rank:step[:phase]`` (comma-separated)."""
        kills = []
        for part in spec.split(","):
            bits = part.strip().split(":")
            if len(bits) not in (2, 3):
                raise ValueError(
                    f"bad kill spec {part!r} (want rank:step[:phase])"
                )
            kills.append(KillSpec(
                rank=int(bits[0]), step=int(bits[1]),
                phase=bits[2] if len(bits) == 3 else None,
            ))
        return cls(kills)

    # -- injection points ------------------------------------------------------
    def enter(self, rank: int, step: int, phase: str) -> None:
        """Driver hook: ``rank`` is entering ``phase`` of local ``step``.

        Raises :class:`RankFailure` when a pending kill matches.
        """
        gstep = step + self.step_offset
        self._current[rank] = (gstep, phase)
        self._maybe_fire(rank, gstep, phase)

    def on_comm(self, rank: int) -> None:
        """Comm-layer hook: ``rank`` is posting a collective."""
        cur = self._current.get(rank)
        if cur is None:
            return
        self._maybe_fire(rank, cur[0], "comm")

    def _maybe_fire(self, rank: int, gstep: int, phase: str) -> None:
        with self._lock:
            for k in self._pending:
                if k.matches(rank, gstep, phase):
                    self._pending.remove(k)
                    self.fired.append(k)
                    break
            else:
                return
        raise RankFailure(
            rank, step=gstep, phase=phase,
            reason="injected fault (FaultPlan)",
        )
