"""In-run distributed checkpointing: the driver step hook.

A :class:`DistributedCheckpointer` is appended to
``DistributedSimulation.step_hooks`` and runs at the end of every step
body, where the union of per-rank owned arrays is the complete,
consistent global particle set (the closing kick has landed on every
rank; migration only re-homes particles afterwards).  Each rank writes
its shard to its node-local NVMe dir and its buddy's
(:class:`~repro.resilience.store.TieredCheckpointStore`), and every
``pfs_every`` steps the shards are gathered to rank 0 and written as one
merged PFS global — the slower, sparser, but node-death-proof tier.

The hook is structural: every rank runs it at the same step with the
same cadence decisions, so the gather inside stays a matched collective.
Positions are canonicalized (wrapped into the box) before hashing the
bytes to disk, because the driver deliberately drifts unwrapped between
migrations.
"""

from __future__ import annotations

import numpy as np

from .store import TieredCheckpointStore

#: owned-particle fields a checkpoint must carry to restart the driver
CHECKPOINT_FIELDS = ("pos", "vel", "mass", "u", "ids", "gas")


class DistributedCheckpointer:
    """Step hook writing NVMe shards (+ periodic PFS globals).

    ``nodes`` maps the current world's rank index to its storage node
    (the coordinator shrinks this list as ranks die); ``step_offset``
    maps the run's local step index to the global step of the whole
    trajectory so resumed segments keep numbering checkpoints where the
    failed segment stopped.
    """

    def __init__(self, store: TieredCheckpointStore, box: float,
                 every: int = 1, pfs_every: int = 1,
                 nodes=None, step_offset: int = 0):
        if every < 1 or pfs_every < 1:
            raise ValueError("checkpoint cadences must be >= 1")
        self.store = store
        self.box = float(box)
        self.every = int(every)
        self.pfs_every = int(pfs_every)
        self.nodes = (list(nodes) if nodes is not None
                      else list(range(store.n_nodes)))
        self.step_offset = int(step_offset)
        #: global steps this hook has written (rank-shared, append-only
        #: per cadence decision — every rank appends the same values, so
        #: only the set matters; tests read it)
        self.written: list[int] = []

    def __call__(self, comm, istep: int, a: float, my: dict) -> None:
        gstep = istep + self.step_offset
        if gstep % self.every != 0:
            return
        tracer = comm.world.tracer
        arrays = {
            "pos": np.mod(my["pos"], self.box),
            "vel": my["vel"],
            "mass": my["mass"],
            "u": my["u"],
            "ids": my["ids"],
            "gas": my["gas"],
        }
        meta = {"step": gstep, "a": float(a), "n_shards": comm.size}
        node = self.nodes[comm.rank]
        buddy = self.nodes[(comm.rank + 1) % comm.size]
        with tracer.span("io/checkpoint", cat="io", tid=comm.rank,
                         step=gstep, tier="nvme"):
            self.store.write_shard(gstep, comm.rank, arrays, meta,
                                   node=node, buddy_node=buddy)
        if gstep % self.pfs_every == 0:
            # structural collective: the cadence is a pure function of
            # gstep, identical on every rank
            gathered = comm.gather(arrays, root=0)
            if comm.rank == 0:
                merged = {
                    name: np.concatenate([g[name] for g in gathered])
                    for name in arrays
                }
                order = np.argsort(merged["ids"], kind="stable")
                merged = {k: v[order] for k, v in merged.items()}
                gmeta = {"step": gstep, "a": float(a),
                         "n_ranks": comm.size}
                with tracer.span("io/checkpoint", cat="io", tid=comm.rank,
                                 step=gstep, tier="pfs"):
                    self.store.write_global(gstep, merged, gmeta)
        if comm.rank == 0:
            self.written.append(gstep)
