"""Retry/backoff policy for re-admitting failed campaign jobs.

The campaign engine (``CampaignEngine(retry=RetryPolicy(...))``) consults
this policy when a job lands in the ``failed`` terminal state: while
``allows(attempt)`` holds, the job is re-queued (same lane, fresh FIFO
position) and the exponential backoff for that attempt is charged to the
*simulated* clock — the engine accounts it in
``campaign/backoff_sim_s{tenant=...}`` rather than stalling a pool
worker, the same substitution the iosim tiers make for device time.
Jobs the engine *cancelled* (deadline or explicit) are terminal and are
never re-admitted.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff.

    ``max_attempts`` counts every run of the job, including the first;
    ``backoff_s(k)`` is the simulated-clock delay charged after failed
    attempt ``k`` (1-based): ``base * factor**(k-1)``, capped.
    """

    max_attempts: int = 3
    base_backoff_s: float = 1.0
    factor: float = 2.0
    max_backoff_s: float = 300.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.factor < 1:
            raise ValueError("need base_backoff_s >= 0 and factor >= 1")

    def allows(self, attempt: int) -> bool:
        """May a job that just failed its ``attempt``-th run re-enter?"""
        return attempt < self.max_attempts

    def backoff_s(self, attempt: int) -> float:
        """Simulated delay after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        return min(self.base_backoff_s * self.factor ** (attempt - 1),
                   self.max_backoff_s)
