"""Multi-tier checkpoint store with buddy-replicated NVMe shards.

Layout on disk (real files, CRC-protected GenericIO-style blocks via
:mod:`repro.iosim.checkpoint`)::

    <root>/nvme/node000/ckpt_00003.shard001.gio   per-rank shards
    <root>/pfs/ckpt_00002.gio                     merged global copies

The HACC strategy: every rank writes its shard to its *own* node-local
NVMe **and** to its buddy's (``(rank+1) % n``), so a single node death
never destroys the only copy of a shard — the surviving ranks still
hold a complete NVMe set and restart without touching the (slow,
sparser-cadence) parallel file system.  Only when the NVMe set is
incomplete or fails CRC validation (adjacent double failure, torn
shard) does restore fall back to the latest valid PFS global.

``node`` indices name *storage*, not ranks: after a recovery the
surviving world renumbers ranks 0..n-2 but keeps writing to its
original node directories (the coordinator carries the rank→node map),
and :meth:`mark_lost` removes a dead node's directory from every future
restore scan.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

import numpy as np

from ..iosim.checkpoint import CheckpointError, read_blocks, write_blocks

_SHARD_RE = re.compile(r"ckpt_(\d+)\.shard(\d+)\.gio$")
_GLOBAL_RE = re.compile(r"ckpt_(\d+)\.gio$")


@dataclass(frozen=True)
class RestorePoint:
    """A restorable checkpoint: which step, from which tier."""

    step: int
    tier: str  # "nvme" | "pfs"
    #: nvme: one valid file per shard, shard order; pfs: the one global
    paths: tuple


class TieredCheckpointStore:
    """NVMe shard tier + PFS global tier under one root directory."""

    def __init__(self, root: str, n_nodes: int, retention: int = 0):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.root = str(root)
        self.n_nodes = int(n_nodes)
        #: keep only the newest ``retention`` NVMe steps per node
        #: (0 = keep everything); PFS globals are never pruned
        self.retention = int(retention)
        #: node indices whose NVMe directory died with its rank
        self.lost: set[int] = set()
        self.pfs_dir = os.path.join(self.root, "pfs")
        os.makedirs(self.pfs_dir, exist_ok=True)
        for node in range(self.n_nodes):
            os.makedirs(self.node_dir(node), exist_ok=True)

    def node_dir(self, node: int) -> str:
        return os.path.join(self.root, "nvme", f"node{node:03d}")

    def shard_path(self, node: int, step: int, shard: int) -> str:
        return os.path.join(
            self.node_dir(node), f"ckpt_{step:05d}.shard{shard:03d}.gio"
        )

    def global_path(self, step: int) -> str:
        return os.path.join(self.pfs_dir, f"ckpt_{step:05d}.gio")

    # -- writes ----------------------------------------------------------------
    def write_shard(self, step: int, shard: int, arrays: dict, meta: dict,
                    node: int, buddy_node: int | None = None) -> int:
        """Write one rank's shard to its node (and its buddy's).

        ``meta`` must carry ``n_shards`` (the writing world's size) so a
        restore scan can tell a complete shard set from a torn one even
        when some copies are gone.  Returns bytes written.
        """
        if "n_shards" not in meta:
            raise ValueError("shard metadata needs n_shards")
        total = write_blocks(self.shard_path(node, step, shard), arrays, meta)
        if buddy_node is not None and buddy_node != node:
            total += write_blocks(
                self.shard_path(buddy_node, step, shard), arrays, meta
            )
        if self.retention > 0:
            self._prune_node(node)
        return total

    def write_global(self, step: int, arrays: dict, meta: dict) -> int:
        """Write the merged global state to the PFS tier."""
        return write_blocks(self.global_path(step), arrays, meta)

    def _prune_node(self, node: int) -> None:
        steps = sorted({
            s for s, _ in self._node_shards(node)
        })
        for old in steps[:-self.retention]:
            for s, path in self._node_shards(node):
                if s == old:
                    os.remove(path)

    # -- failure bookkeeping ---------------------------------------------------
    def mark_lost(self, node: int) -> None:
        """A node died with its rank: its NVMe tier is gone for restores."""
        self.lost.add(int(node))

    # -- scans -----------------------------------------------------------------
    def _node_shards(self, node: int):
        """``(step, path)`` of every shard file on one node."""
        d = self.node_dir(node)
        if not os.path.isdir(d):
            return
        for name in os.listdir(d):
            m = _SHARD_RE.match(name)
            if m:
                yield int(m.group(1)), os.path.join(d, name)

    def steps(self) -> list[int]:
        """Every step any tier holds anything for (ascending)."""
        out = set()
        for node in range(self.n_nodes):
            if node in self.lost:
                continue
            out.update(s for s, _ in self._node_shards(node))
        for name in os.listdir(self.pfs_dir):
            m = _GLOBAL_RE.match(name)
            if m:
                out.add(int(m.group(1)))
        return sorted(out)

    def restorable_at(self, step: int) -> RestorePoint | None:
        """The best valid restore at exactly ``step`` (NVMe, else PFS)."""
        point = self._nvme_point(step)
        if point is not None:
            return point
        path = self.global_path(step)
        if os.path.exists(path) and self._valid(path):
            return RestorePoint(step=step, tier="pfs", paths=(path,))
        return None

    def latest_restorable(self, max_step: int | None = None
                          ) -> RestorePoint | None:
        """Newest valid restore point, walking steps backward.

        Tier preference at each step is NVMe first (node-local restart),
        PFS second; a step whose NVMe set is torn (missing or corrupt
        shard) and whose global is absent/corrupt is skipped entirely in
        favor of an older step.
        """
        for step in reversed(self.steps()):
            if max_step is not None and step > max_step:
                continue
            point = self.restorable_at(step)
            if point is not None:
                return point
        return None

    def _valid(self, path: str) -> bool:
        try:
            read_blocks(path, validate=True)
            return True
        except (CheckpointError, OSError, ValueError):
            return False

    def _nvme_point(self, step: int) -> RestorePoint | None:
        """A complete, CRC-valid shard set at ``step`` across surviving
        nodes (buddy copies count), else None."""
        # every surviving copy of every shard at this step
        copies: dict[int, list] = {}
        for node in range(self.n_nodes):
            if node in self.lost:
                continue
            for s, path in self._node_shards(node):
                if s == step:
                    m = _SHARD_RE.match(os.path.basename(path))
                    copies.setdefault(int(m.group(2)), []).append(path)
        if not copies:
            return None
        # the intended set size comes from any valid shard's metadata —
        # surviving files alone can't distinguish "complete" from "the
        # only copy of shard k died with its node"
        n_shards = None
        for paths in copies.values():
            for path in paths:
                try:
                    _, meta = read_blocks(path, validate=True)
                except (CheckpointError, OSError, ValueError):
                    continue
                n_shards = int(meta["n_shards"])
                break
            if n_shards is not None:
                break
        if n_shards is None:
            return None
        chosen = []
        for shard in range(n_shards):
            path = next(
                (p for p in copies.get(shard, ()) if self._valid(p)), None
            )
            if path is None:
                return None  # torn set: a shard has no valid copy left
            chosen.append(path)
        return RestorePoint(step=step, tier="nvme", paths=tuple(chosen))

    # -- restore ---------------------------------------------------------------
    def restore(self, point: RestorePoint):
        """Load a restore point: ``(arrays, meta)``, rows sorted by ids.

        The id sort makes the restored state independent of how many
        shards it was split into — an NVMe restore and a PFS restore of
        the same step are bit-identical, which is what lets the recovery
        tests hash-compare across tiers.
        """
        if point.tier == "pfs":
            arrays, meta = read_blocks(point.paths[0], validate=True)
        else:
            parts = [read_blocks(p, validate=True) for p in point.paths]
            meta = dict(parts[0][1])
            arrays = {
                name: np.concatenate([a[name] for a, _ in parts])
                for name in parts[0][0]
            }
        order = np.argsort(arrays["ids"], kind="stable")
        arrays = {k: v[order] for k, v in arrays.items()}
        return arrays, meta
