"""End-to-end rank-failure resilience for the distributed driver.

The MTTI story of the paper's flagship run, made live: a
:class:`FaultPlan` kills ranks mid-step inside a real
:class:`~repro.parallel.distributed_sim.DistributedSimulation` (typed
:class:`~repro.parallel.comm.RankFailure` from compute or comm), a
:class:`DistributedCheckpointer` step hook writes buddy-replicated NVMe
shards + periodic PFS globals into a :class:`TieredCheckpointStore`,
and a :class:`RecoveryCoordinator` drives the
detect → cancel → restore → redistribute → resume pipeline until the
run reaches ``a_final`` on whatever ranks survive.  The
:class:`RetryPolicy` is the campaign engine's job-level analog
(bounded re-admission of failed jobs with simulated-clock backoff).

Quickstart (chaos run)::

    from repro.resilience import (FaultPlan, RecoveryCoordinator,
                                  TieredCheckpointStore)
    store = TieredCheckpointStore("/tmp/ckpt", n_nodes=4)
    plan = FaultPlan.single(rank=2, step=1, phase="rung")
    coord = RecoveryCoordinator(store)
    result = coord.run(cfg, 4, pos, vel, mass, fault_plan=plan)
    assert result.recoveries[0].ranks_after == 3

or from the CLI: ``python -m repro demo --ranks 4 --inject-fault 2:1``.
"""

from ..parallel.comm import RankFailure
from .checkpointer import CHECKPOINT_FIELDS, DistributedCheckpointer
from .coordinator import (
    RecoveryCoordinator,
    RecoveryError,
    RecoveryRecord,
    ResilientResult,
)
from .faults import DEFAULT_KILL_PHASES, FaultPlan, KillSpec
from .retry import RetryPolicy
from .store import RestorePoint, TieredCheckpointStore

__all__ = [
    "CHECKPOINT_FIELDS",
    "DEFAULT_KILL_PHASES",
    "DistributedCheckpointer",
    "FaultPlan",
    "KillSpec",
    "RankFailure",
    "RecoveryCoordinator",
    "RecoveryError",
    "RecoveryRecord",
    "ResilientResult",
    "RestorePoint",
    "RetryPolicy",
    "TieredCheckpointStore",
]
