"""Rank-failure detection and recovery for the live distributed driver.

:class:`RecoveryCoordinator` runs a :class:`DistributedSimulation` under
a checkpointing step hook and, when a rank dies (injected
:class:`~repro.resilience.faults.FaultPlan` kill or hung-rank timeout —
both surface as a typed :class:`~repro.parallel.comm.RankFailure`),
drives the recovery pipeline::

    detect -> cancel -> restore -> redistribute -> resume

- **detect**: the typed failure carries rank / global step / phase; the
  dead rank's storage node is marked lost.
- **cancel**: the abort cascade already tore down every in-flight
  request through the ``Request.cancel()`` paths (ghost exchanges,
  posted-ahead reductions, two-wave migration flights); the coordinator
  *audits* that teardown through the comm sanitizer — any unsettled
  request is a recovery bug and fails loudly.
- **restore**: the newest valid checkpoint tier wins — NVMe shards if
  the survivors (incl. buddy copies) hold a complete CRC-valid set,
  else the latest PFS global; with nothing on disk the segment cold-
  restarts from the initial conditions.
- **redistribute**: the cuboid decomposition is re-run over the
  surviving rank count (a fresh ``DistributedSimulation``), which
  re-scatters the restored particles by owner.
- **resume**: the step loop continues from the restored scale factor
  with the remaining PM steps, checkpoint numbering and fault-plan
  steps offset to global trajectory steps.

Each phase is timed under its ``resilience/*`` span (taxonomy-
registered), so recovery cost shows up in Perfetto traces and the
registry-derived :func:`~repro.observe.derived.recovery_report`.

Bit-identity contract: the recovered trajectory is bit-identical to a
clean run restarted from the *same checkpoint* on the *same surviving
rank count* (the headline chaos test asserts the hash match).  It is
not bit-identical to the uninterrupted run: the resumed segment's
``da`` is recomputed from the checkpoint's scale factor, which floating
point does not guarantee to re-split identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..observe import Observatory
from ..observe.taxonomy import RESILIENCE_SPANS
from ..parallel.comm import RankFailure
from ..parallel.distributed_sim import (
    DistributedConfig,
    DistributedSimulation,
)
from .checkpointer import DistributedCheckpointer
from .store import TieredCheckpointStore


@dataclass
class RecoveryRecord:
    """One detect→resume pass: what failed and what the run resumed from."""

    failed_rank: int
    failed_node: int
    failed_step: int | None
    failed_phase: str | None
    #: global step of the checkpoint resumed from (None = cold restart)
    restored_step: int | None
    #: "nvme" | "pfs" | "initial"
    tier: str
    ranks_before: int
    ranks_after: int
    #: requests the failing segment posted / left unsettled (audit)
    n_requests: int = 0
    n_unsettled: int = 0
    #: the exact config of the resumed segment — a clean-restart
    #: reference run is ``DistributedSimulation(resumed_config,
    #: ranks_after).run(<restored arrays>)``
    resumed_config: DistributedConfig | None = None


@dataclass
class ResilientResult:
    """Final state of a run that survived (or never saw) rank deaths."""

    pos: np.ndarray
    vel: np.ndarray
    u: np.ndarray | None
    ids: np.ndarray
    recoveries: list
    n_attempts: int
    n_ranks_final: int


class RecoveryError(RuntimeError):
    """Recovery is impossible (teardown audit failed / out of budget)."""


class RecoveryCoordinator:
    """Runs a distributed config to completion across rank deaths.

    ``checkpoint_every`` / ``pfs_every`` are step cadences of the NVMe
    shard and PFS global tiers (``pfs_every`` counts in global steps,
    not in NVMe checkpoints).  ``max_failures`` bounds how many rank
    deaths one run may absorb before the failure is re-raised.
    """

    def __init__(self, store: TieredCheckpointStore,
                 observe: Observatory | None = None,
                 checkpoint_every: int = 1, pfs_every: int = 1,
                 max_failures: int = 4, min_ranks: int = 1):
        self.store = store
        self.observe = observe if observe is not None else Observatory()
        self.checkpoint_every = int(checkpoint_every)
        self.pfs_every = int(pfs_every)
        self.max_failures = int(max_failures)
        self.min_ranks = int(min_ranks)
        #: the final (successful) segment's simulation, for inspection
        self.last_sim: DistributedSimulation | None = None

    def run(self, config: DistributedConfig, n_ranks: int,
            pos: np.ndarray, vel: np.ndarray, mass: np.ndarray,
            u: np.ndarray | None = None, gas: np.ndarray | None = None,
            fault_plan=None) -> ResilientResult:
        """Evolve to ``config.a_final`` no matter which ranks die."""
        if n_ranks > self.store.n_nodes:
            raise ValueError("store has fewer nodes than ranks")
        timers = self.observe.timer_group(
            self.observe.scope("recovery"), keys=RESILIENCE_SPANS,
            cat="resilience",
        )
        # rank r of the current world stores on node alive[r]; nodes are
        # removed (and marked lost in the store) as their ranks die
        alive = list(range(n_ranks))
        n = len(np.asarray(pos))
        seg = {
            "config": config,
            "offset": 0,  # global step index of the segment's step 0
            "pos": np.asarray(pos, dtype=np.float64),
            "vel": np.asarray(vel, dtype=np.float64),
            "mass": np.asarray(mass, dtype=np.float64),
            "u": (np.asarray(u, dtype=np.float64) if u is not None
                  else np.zeros(n)),
            "gas": (np.asarray(gas, dtype=bool) if gas is not None
                    else np.ones(n, dtype=bool)),
        }
        recoveries: list[RecoveryRecord] = []
        attempts = 0
        while True:
            attempts += 1
            cfg = seg["config"]
            sim = DistributedSimulation(
                cfg, len(alive), observe=self.observe,
                fault_plan=fault_plan,
            )
            ckpt = DistributedCheckpointer(
                self.store, box=cfg.box, every=self.checkpoint_every,
                pfs_every=self.pfs_every, nodes=alive,
                step_offset=seg["offset"],
            )
            sim.step_hooks.append(ckpt)
            if fault_plan is not None:
                fault_plan.step_offset = seg["offset"]
            try:
                out = sim.run(seg["pos"], seg["vel"], seg["mass"],
                              u=seg["u"], gas=seg["gas"])
            except RankFailure as failure:
                if len(recoveries) >= self.max_failures:
                    raise
                if len(alive) - 1 < self.min_ranks:
                    raise
                record = self._recover(sim, failure, alive, seg, timers)
                recoveries.append(record)
                continue
            self.last_sim = sim
            if cfg.hydro:
                fpos, fvel, fu, fids = out
            else:
                fpos, fvel, fids = out
                fu = None
            return ResilientResult(
                pos=fpos, vel=fvel, u=fu, ids=fids,
                recoveries=recoveries, n_attempts=attempts,
                n_ranks_final=len(alive),
            )

    # -- the detect→resume pipeline --------------------------------------------
    def _recover(self, sim, failure: RankFailure, alive: list,
                 seg: dict, timers) -> RecoveryRecord:
        tracer = self.observe.tracer
        cfg = seg["config"]

        with timers.time("resilience/detect", rank=failure.rank,
                         phase=failure.phase or ""):
            ranks_before = len(alive)
            node = alive.pop(failure.rank)
            self.store.mark_lost(node)
            tracer.instant("resilience/detect", cat="resilience",
                           rank=failure.rank, node=node,
                           step=failure.step, phase=failure.phase or "")

        with timers.time("resilience/cancel"):
            n_req, n_unsettled = 0, 0
            san = sim.world.sanitizer if sim.world is not None else None
            if san is not None:
                unsettled = san.unsettled()
                n_req = san.n_records()
                n_unsettled = len(unsettled)
                if unsettled:
                    rec = unsettled[0]
                    raise RecoveryError(
                        f"teardown audit: {n_unsettled} request(s) left "
                        f"unsettled after the abort cascade (first: "
                        f"{rec.kind} on rank {rec.rank}, {rec.detail}, "
                        f"posted at {rec.site})"
                    )
                if san.findings:
                    raise RecoveryError(
                        "comm sanitizer flagged the failing segment: "
                        + "; ".join(f.render() for f in san.findings)
                    )

        with timers.time("resilience/restore"):
            point = self.store.latest_restorable()
            if point is not None:
                arrays, meta = self.store.restore(point)
                restored_step: int | None = int(meta["step"])
                tier = point.tier
                done = restored_step + 1
                n_total = seg["offset"] + cfg.n_pm_steps  # whole trajectory
                remaining = n_total - done
                if remaining < 1:
                    raise RecoveryError(
                        "failure after the final step's checkpoint: "
                        "nothing left to resume"
                    )
                new_cfg = replace(cfg, a_init=float(meta["a"]),
                                  n_pm_steps=remaining)
                seg.update(
                    config=new_cfg, offset=done,
                    pos=arrays["pos"], vel=arrays["vel"],
                    mass=arrays["mass"], u=arrays["u"],
                    gas=arrays["gas"].astype(bool),
                )
            else:
                # nothing durable yet: cold restart of the whole segment
                # from the state it started with (arrays in seg already)
                restored_step, tier = None, "initial"
                new_cfg = cfg

        with timers.time("resilience/redistribute"):
            # re-run the cuboid decomposition over the survivors; the
            # construction validates the overload constraint against the
            # shrunken domain widths before any particle moves
            DistributedSimulation(new_cfg, len(alive),
                                  observe=self.observe)

        with timers.time("resilience/resume"):
            record = RecoveryRecord(
                failed_rank=failure.rank, failed_node=node,
                failed_step=failure.step, failed_phase=failure.phase,
                restored_step=restored_step, tier=tier,
                ranks_before=ranks_before, ranks_after=len(alive),
                n_requests=n_req, n_unsettled=n_unsettled,
                resumed_config=new_cfg,
            )
            tracer.instant("resilience/resume", cat="resilience",
                           tier=tier, step=restored_step,
                           ranks=len(alive))
        return record
