"""Periodic-box geometry helpers (minimum image, wrapping)."""

from __future__ import annotations

import numpy as np


def wrap_positions(pos: np.ndarray, box: float) -> np.ndarray:
    """Wrap positions into [0, box)."""
    return np.mod(pos, box)


def minimum_image(dx: np.ndarray, box: float | None) -> np.ndarray:
    """Apply the minimum-image convention to displacement vectors.

    ``box=None`` means a non-periodic domain (no-op).
    """
    if box is None:
        return dx
    return dx - box * np.round(dx / box)


def pair_displacements(
    pos: np.ndarray, pi: np.ndarray, pj: np.ndarray, box: float | None
) -> np.ndarray:
    """Periodic-wrapped x_i - x_j for each pair."""
    return minimum_image(pos[pi] - pos[pj], box)
