"""CRK-HACC core solver: particles, gravity, CRKSPH, timestepping, subgrid."""

from .particles import Particles, Species, make_gas_dm_pair
from .timestep import (
    HierarchicalIntegrator,
    SubcycleStats,
    active_mask,
    assign_rungs,
    rung_dt,
    timestep_criteria,
)

__all__ = [
    "HierarchicalIntegrator",
    "Particles",
    "Species",
    "SubcycleStats",
    "active_mask",
    "assign_rungs",
    "make_gas_dm_pair",
    "rung_dt",
    "timestep_criteria",
]
