"""Top-level CRK-HACC simulation driver.

Evolves a mixed dark-matter + gas particle set through global PM steps.
Each PM step performs (paper Fig. 2):

  1. tree build    — chaining mesh + coarse-leaf k-d tree (once per step)
  2. long-range    — spectrally filtered PM gravity on the global grid
  3. short-range   — tree-driven pair gravity + CRKSPH hydro, subcycled on
                     power-of-two rungs
  4. subgrid       — cooling, star formation, SN and AGN feedback
  5. analysis/I/O  — user-supplied in situ and checkpoint hooks (timed)

Comoving integration uses the momentum variable p = a*v (km/s):

    dp/da = [ -grad phi + a_sph ] / (a H),   dx/da = p / (a^2 * a H)
    nabla^2 phi = 4 pi G (rho_c - rho_mean) / a
    du/da = (du_sph/dt*) / (a^2 H) - 3 (gamma - 1) u / a

where * denotes the comoving SPH work term.  Setting ``static=True``
freezes the expansion (a = 1, H -> 0 replaced by dt stepping) for
Newtonian test problems.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..backend import select_backend, use_backend
from ..constants import G_COSMO, GAMMA_IDEAL, GYR_S
from ..cosmology.background import Cosmology
from ..observe import Observatory
from ..observe.taxonomy import SERIAL_PHASES
from ..tree import PairCache, build_chaining_mesh, build_leaf_set
from .geometry import wrap_positions
from .gravity.force_split import recommended_cutoff
from .gravity.pm import PMSolver
from .gravity.short_range import short_range_accelerations
from .particles import Particles, Species
from .sph.eos import IdealGasEOS
from .sph.hydro import crksph_derivatives, update_smoothing_lengths
from .sph.kernels import get_kernel
from .sph.viscosity import MonaghanViscosity
from .subgrid.agn import AGNModel
from .subgrid.cooling import CoolingModel
from .subgrid.star_formation import StarFormationModel
from .sph.hydro import crksph_derivatives_active
from .subgrid.supernova import SupernovaModel, kernel_weights_for_sources
from .timestep import SubcycleStats, assign_rungs, timestep_criteria

#: the serial phase taxonomy — StepRecord.timers keys, Fig. 2 components
PHASE_KEYS = SERIAL_PHASES


def _t(timers, key: str):
    """Phase-timer context for an optional TimerGroup (no-op when None)."""
    return timers.time(key) if timers is not None else nullcontext()


@dataclass
class SimulationConfig:
    """Configuration of a CRK-HACC mini-simulation.

    ``box`` may be a scalar (cubic box) or a 3-sequence for anisotropic
    periodic domains (e.g. quasi-1D shock tubes); gravity requires a cube.
    """

    box: float  # comoving Mpc/h; scalar or 3-vector
    pm_grid: int = 32
    a_init: float = 0.1
    a_final: float = 1.0
    n_pm_steps: int = 20
    cosmo: Cosmology = field(default_factory=Cosmology)
    hydro: bool = True
    gravity: bool = True
    subgrid: bool = False
    #: delayed enrichment channels (SNIa DTD + AGB return) on top of the
    #: prompt core-collapse feedback; requires subgrid=True
    extended_enrichment: bool = False
    kernel: str = "wendland_c4"
    n_neighbors: int = 32
    cfl: float = 0.25
    eta_accel: float = 0.05
    max_rung: int = 3
    r_split_cells: float = 2.0  # handover scale in PM grid cells
    softening_cells: float = 0.05  # Plummer softening in PM grid cells
    static: bool = False  # Newtonian (non-expanding) test mode
    #: extra subcycle depth beyond the assigned rungs, reserved for
    #: mid-step rung promotion when conditions stiffen (shocks, feedback)
    rung_margin: int = 1
    #: freeze smoothing lengths at their initial values (test/ablation use)
    fixed_h: bool = False
    #: Verlet skin fraction for cached pair lists: search radii are inflated
    #: to h*(1+skin) at build and the list survives per-particle drifts up
    #: to skin*h/2 before an automatic rebuild (paper Section IV-B1)
    pair_skin: float = 0.25
    #: evaluate subcycle forces only for the particles closing a substep
    #: (active sinks; inactive particles stay gather-only sources).  Off,
    #: every substep recomputes all rows — same trajectories to round-off,
    #: used as the reference in equivalence tests and benchmarks
    active_set: bool = True
    seed: int = 1234
    viscosity_alpha: float = 1.0
    viscosity_beta: float = 2.0
    #: numerics sanitizer: check particle state for NaN/Inf and total
    #: energy for blowups at every PM-step phase boundary, raising
    #: :class:`~repro.sanitize.numerics.NumericsError` naming the step,
    #: phase, and first bad index.  Off by default (zero cost when off).
    sanitize: bool = False
    #: kernel backend the hot loops dispatch to: "numpy" (reference) or
    #: "jit" (numba-compiled, parity-gated; falls back to numpy with a
    #: one-time warning when numba is absent).  The ``REPRO_BACKEND`` env
    #: var overrides this.  See :mod:`repro.backend`.
    backend: str = "numpy"

    @property
    def box_array(self) -> np.ndarray:
        return np.broadcast_to(
            np.asarray(self.box, dtype=np.float64), (3,)
        ).copy()

    @property
    def box_min(self) -> float:
        return float(self.box_array.min())

    @property
    def box_volume(self) -> float:
        return float(np.prod(self.box_array))

    @property
    def is_cubic(self) -> bool:
        b = self.box_array
        return bool(np.all(b == b[0]))

    @property
    def r_split(self) -> float:
        return self.r_split_cells * self.box_min / self.pm_grid

    @property
    def softening(self) -> float:
        return self.softening_cells * self.box_min / self.pm_grid

    @property
    def cutoff(self) -> float:
        return recommended_cutoff(self.r_split, tol=1e-4)


@dataclass
class StepRecord:
    """Timing and bookkeeping for one PM step (feeds Fig. 2/5 analogs)."""

    step: int
    a: float
    #: per-phase wall seconds — an :class:`~repro.observe.metrics.TimerGroup`
    #: mapping view over the run's metrics registry (plain-dict shape:
    #: iteration, ``[key]``, ``items()`` all work)
    timers: dict
    n_substeps: int
    deepest_rung: int
    n_particles: int
    n_stars_formed: int = 0
    n_sn_events: int = 0
    n_bh: int = 0
    #: per-substep active-set bookkeeping (evaluations, active fractions,
    #: FFT and pair counts) for the kick-split scheduling
    subcycle: SubcycleStats | None = None
    #: long-range PM solves this step (<= 2 under kick-split scheduling)
    n_fft: int = 0
    #: per-phase seconds spent blocked on communication (distributed runs;
    #: None for the serial driver).  Under ``comm_mode="overlap"`` these
    #: shrink while ``timers`` stay comparable — the observable of overlap.
    comm_wait: dict | None = None
    #: communication mode the step ran under ("blocking"/"overlap")
    comm_mode: str | None = None
    #: kernel backend the step's hot loops actually ran on ("numpy"/"jit",
    #: post-fallback), so benches and traces attribute numbers correctly
    backend: str | None = None


class Simulation:
    """Laptop-scale CRK-HACC analog: PM + tree gravity + CRKSPH + subgrid."""

    def __init__(self, config: SimulationConfig, particles: Particles,
                 observe: Observatory | None = None,
                 pm: PMSolver | None = None):
        self.config = config
        self.particles = particles
        # observability: tracer + metrics registry for this run.  The
        # default Observatory carries a NullTracer, so an uninstrumented
        # run pays only empty context managers (asserted <2% in tier-1).
        self.observe = observe if observe is not None else Observatory()
        self._obs_scope = self.observe.scope("sim")
        # resolve the kernel backend once (env override + numba fallback)
        # and warm JIT compilation here, not inside the first step's timers
        self.backend = select_backend(config.backend, observe=self.observe)
        self.cosmo = config.cosmo
        self.kernel = get_kernel(config.kernel)
        self.eos = IdealGasEOS()
        self.viscosity = MonaghanViscosity(
            alpha=config.viscosity_alpha, beta=config.viscosity_beta
        )
        if config.gravity and not config.is_cubic:
            raise ValueError("gravity (PM solver) requires a cubic box")
        # cache-aware construction: a caller that already holds a solver
        # for this (grid, box, r_split) — e.g. the campaign runner with a
        # warm artifact cache — may inject it; the default build is cheap
        # anyway for repeated shapes because PMSolver's spectral tables
        # come from the module-level Green's-function memo
        if pm is not None:
            if not config.gravity:
                raise ValueError("pm solver supplied but gravity disabled")
            if (pm.n != config.pm_grid
                    or pm.box != float(config.box_array[0])
                    or pm.r_split != config.r_split):
                raise ValueError(
                    "injected PMSolver does not match the configuration: "
                    f"(n={pm.n}, box={pm.box}, r_split={pm.r_split}) vs "
                    f"(n={config.pm_grid}, box={float(config.box_array[0])}, "
                    f"r_split={config.r_split})"
                )
            self.pm = pm
        else:
            self.pm = (
                PMSolver(n=config.pm_grid, box=float(config.box_array[0]),
                         r_split=config.r_split)
                if config.gravity
                else None
            )
        self.cooling = CoolingModel()
        self.star_formation = StarFormationModel()
        self.supernova = SupernovaModel()
        self.agn = AGNModel()
        from .subgrid.stellar_evolution import AGBModel, SNIaModel

        self.snia = SNIaModel()
        self.agb = AGBModel()
        self.rng = np.random.default_rng(config.seed)
        if config.sanitize:
            from ..sanitize.numerics import NumericsSanitizer

            self.nsan = NumericsSanitizer(context="serial sim")
        else:
            self.nsan = None

        self.a = config.a_init
        self.step_index = 0
        self.history: list[StepRecord] = []
        self.insitu_hooks = []
        self.io_hooks = []

        n = len(particles)
        # side arrays aligned with particle arrays (species flips never
        # reorder, so alignment is stable)
        self.birth_a = np.zeros(n)
        self.sn_fired = np.zeros(n, dtype=bool)
        self.bh_mass = np.zeros(n)
        # pair-interaction engine: Verlet-cached lists, built at most once
        # per PM step and reused across all subcycles (paper Section IV-B1).
        # The gravity cache even survives across PM steps while drift stays
        # inside the skin; the hydro cache additionally tracks the gas
        # subset (star formation shrinks it) via ids.
        self._grav_cache = PairCache(skin=config.pair_skin, box=config.box)
        self._hydro_cache = PairCache(skin=config.pair_skin, box=config.box)
        # kick-split long-range cache: the PM acceleration depends on
        # positions only, so the closing evaluation of one PM step (at
        # unit coefficient) is reused as the next step's opening — one FFT
        # per PM step instead of 2^depth + 1 (HACC stream/kick split)
        self._pm_acc_unit = None
        self._pm_ref_pos = None

        self._init_smoothing_lengths()

    # -- setup ---------------------------------------------------------------
    def _init_smoothing_lengths(self) -> None:
        p = self.particles
        gas = p.gas
        n_gas = int(gas.sum())
        if n_gas == 0:
            return
        if self.config.fixed_h and np.all(p.h[gas] > 0):
            return  # caller supplied frozen smoothing lengths
        # initial guess from mean spacing; one relaxation pass
        spacing = (self.config.box_volume / max(n_gas, 1)) ** (1.0 / 3.0)
        eta = (3.0 * self.config.n_neighbors / (4.0 * np.pi)) ** (1 / 3)
        p.h[gas] = eta * spacing
        self._refresh_smoothing_lengths()

    def _refresh_smoothing_lengths(self) -> None:
        from .sph.hydro import compute_number_density

        if self.config.fixed_h:
            return
        p = self.particles
        gas = np.nonzero(p.gas)[0]
        if len(gas) == 0:
            return
        gpos = p.pos[gas]
        gh = p.h[gas]
        pi, pj = self._hydro_cache.get(gpos, gh, ids=gas)
        _, vol = compute_number_density(gpos, gh, pi, pj, self.kernel,
                                        box=self.config.box)
        p.h[gas] = update_smoothing_lengths(
            vol,
            n_target=self.config.n_neighbors,
            h_old=gh,
            h_min=0.1 * self.config.softening,
            h_max=0.45 * self.config.box_min,
            relax=0.7,
        )

    # -- time mapping ---------------------------------------------------------
    def _dt_seconds(self, a0: float, a1: float) -> float:
        """Physical seconds between scale factors (for subgrid physics)."""
        return float((self.cosmo.age(a1) - self.cosmo.age(a0)) * GYR_S)

    def _a_h(self, a: float) -> float:
        """a * H(a) in km/s/Mpc; the da/dt Jacobian (1 in static mode)."""
        if self.config.static:
            return 1.0
        return float(a * self.cosmo.hubble(a))

    # -- forces ---------------------------------------------------------------
    def _long_range_dpda(self, a: float, timers=None) -> np.ndarray:
        """Long-range PM contribution to dp/da (all particles).

        The PM field depends on positions only, so the solve runs at unit
        coefficient and is cached against the exact particle positions:
        within a PM step the opening half-kick reuses the previous step's
        closing solve (positions unchanged across the step boundary), so
        steady-state cost is one FFT per PM step.  Cosmology enters only
        through the ``4 pi G / a_eff`` coefficient and the ``a H`` Jacobian
        applied at evaluation time.
        """
        p = self.particles
        if not self.config.gravity:
            return np.zeros_like(p.pos)
        with _t(timers, "long_range"):
            if (
                self._pm_acc_unit is None
                or len(self._pm_acc_unit) != len(p)
                or not np.array_equal(self._pm_ref_pos, p.pos)
            ):
                self._pm_acc_unit = self.pm.accelerations(
                    p.pos, p.mass, coeff=1.0
                )
                self._pm_ref_pos = p.pos.copy()
        a_eff = 1.0 if self.config.static else a
        coeff = 4.0 * np.pi * G_COSMO / a_eff
        return self._pm_acc_unit * (coeff / self._a_h(a))

    def _short_force(self, a: float, timers=None, sinks=None):
        """Subcycled short-range RHS: tree gravity + CRKSPH hydro.

        Returns ``(dp_da, du_da, vsig, n_pairs)`` as full-length arrays.
        With ``sinks`` (sorted active particle indices) only the sink rows
        are evaluated — inactive particles enter as gather-only sources —
        and every other row is zero; the caller merges fresh rows into its
        persistent RHS arrays.  The long-range kick is handled separately
        (:meth:`_long_range_dpda`), once per PM step.
        """
        p = self.particles
        cfg = self.config
        n = len(p)
        a_eff = 1.0 if cfg.static else a
        ah = self._a_h(a)
        accel = np.zeros((n, 3))
        du_da = np.zeros(n)
        vsig = np.zeros(n)
        n_pairs = 0

        if cfg.gravity:
            with _t(timers, "short_range"):
                h_cut = np.full(n, cfg.cutoff)
                if sinks is None:
                    pi, pj = self._grav_cache.get(p.pos, h_cut)
                    accel += short_range_accelerations(
                        p.pos, p.mass, pi, pj,
                        r_split=cfg.r_split, softening=cfg.softening,
                        box=cfg.box, g_newton=G_COSMO / a_eff,
                    )
                else:
                    pi, pj = self._grav_cache.get_for_sinks(p.pos, h_cut, sinks)
                    accel[sinks] += short_range_accelerations(
                        p.pos, p.mass, pi, pj,
                        r_split=cfg.r_split, softening=cfg.softening,
                        box=cfg.box, g_newton=G_COSMO / a_eff,
                        sink_index=np.searchsorted(sinks, pi),
                        n_out=len(sinks),
                    )
                n_pairs += len(pi)

        gas = np.nonzero(p.gas)[0]
        if cfg.hydro and len(gas) > 0:
            with _t(timers, "hydro"):
                gpos = p.pos[gas]
                gh = p.h[gas]
                # peculiar velocity v = p_mom / a in comoving dynamics
                gvel = p.vel[gas] / a_eff
                if sinks is None:
                    pi, pj = self._hydro_cache.get(gpos, gh, ids=gas)
                    d = crksph_derivatives(
                        gpos, gvel, p.mass[gas], p.u[gas], gh, pi, pj,
                        self.kernel, eos=self.eos, viscosity=self.viscosity,
                        box=cfg.box,
                    )
                    accel[gas] += d.accel
                    du_da[gas] = d.du_dt
                    vsig[gas] = d.max_signal_speed
                    p.rho[gas] = d.rho
                    n_pairs += len(pi)
                else:
                    # map active sinks into the gas-local frame
                    gas_sinks = np.searchsorted(gas, sinks[p.gas[sinks]])
                    if len(gas_sinks):
                        sl = self._hydro_cache.active_slices(
                            gpos, gh, gas_sinks, ids=gas
                        )
                        d = crksph_derivatives_active(
                            gpos, gvel, p.mass[gas], p.u[gas], gh, sl,
                            self.kernel, eos=self.eos,
                            viscosity=self.viscosity, box=cfg.box,
                        )
                        rows = gas[gas_sinks]
                        accel[rows] += d.accel
                        du_da[rows] = d.du_dt
                        vsig[rows] = d.max_signal_speed
                        # densities are fresh on the 1-hop closure; the
                        # final substep closes everyone, so rho is fully
                        # refreshed before subgrid physics reads it
                        p.rho[gas[sl.tier1]] = d.rho
                        n_pairs += d.n_pairs

        dp_da = accel / ah
        # du/da: comoving work / (a^2 H) + adiabatic expansion term.  The
        # expansion term uses the *current* u of the evaluated rows only,
        # so active- and full-evaluation modes see identical values on the
        # rows they actually kick.
        du_da = du_da / (a_eff * ah)
        if not cfg.static:
            if sinks is None:
                du_da = du_da - 3.0 * (GAMMA_IDEAL - 1.0) * p.u / a
            else:
                du_da[sinks] -= 3.0 * (GAMMA_IDEAL - 1.0) * p.u[sinks] / a
        du_da = np.where(p.gas, du_da, 0.0)
        return dp_da, du_da, vsig, n_pairs

    # -- stepping ---------------------------------------------------------------
    def _assign_rungs(self, dp_da, vsig, da: float) -> np.ndarray:
        p = self.particles
        ah = self._a_h(self.a)
        # CFL in 'a' units: dt_a = cfl h aH / vsig ; accel criterion likewise
        h_eff = np.where(p.gas, p.h, self.config.softening * 4.0)
        vsig_a = np.where(p.gas, vsig, 0.0) / ah
        dt_req = timestep_criteria(
            dp_da,
            h_eff,
            vsig_a,
            cfl=self.config.cfl,
            eta_accel=self.config.eta_accel,
            dt_max=da,
        )
        return assign_rungs(dt_req, da, max_rung=self.config.max_rung)

    def pm_step(self) -> StepRecord:
        """Advance one global PM step.

        Kick-split scheduling (HACC stream/kick split): the long-range PM
        acceleration is evaluated once per PM step and applied as two
        interval-boundary half-kicks of ``da/2`` to every particle, while
        only the short-range gravity + CRKSPH forces are re-evaluated
        inside the subcycle — and, with ``active_set``, only for the
        particles whose rung closes a substep.
        """
        with self.observe.tracer.span("step", cat="driver",
                                      step=self.step_index, a=self.a):
            with use_backend(self.backend):
                return self._pm_step_body()

    def _pm_step_body(self) -> StepRecord:
        cfg = self.config
        p = self.particles
        da = (cfg.a_final - cfg.a_init) / cfg.n_pm_steps
        a0 = self.a
        timers = self.observe.timer_group(
            f"{self._obs_scope}/step{self.step_index:05d}", keys=PHASE_KEYS
        )
        fft0 = self.pm.n_evaluations if self.pm is not None else 0

        # -- tree build (once per PM step; boxes grow during subcycles) ----
        with timers.time("tree_build"):
            mesh = build_chaining_mesh(
                p.pos,
                max(cfg.cutoff, p.h.max() if p.gas.any() else cfg.cutoff),
                origin=0.0, extent=cfg.box_array, periodic=True,
            )
            self.leaves = build_leaf_set(p.pos, mesh, max_leaf=128)
            if cfg.gravity:
                # validate/build the cached gravity list here so its cost
                # lands in the tree-build timer; subcycle force calls reuse
                # it, and the Verlet skin lets it survive whole PM steps
                # under slow drift (paper IV-B1)
                self._grav_cache.ensure(p.pos, np.full(len(p), cfg.cutoff))

        # -- opening forces & rung assignment --------------------------------
        # cache hit after the first step: positions are unchanged since the
        # previous step's closing solve, so no new FFT runs here
        dp_long = self._long_range_dpda(a0, timers=timers)
        dp_da, du_da, vsig, n_pairs0 = self._short_force(a0, timers=timers)
        if self.nsan is not None:
            self.nsan.check_finite(
                self.step_index, "opening forces",
                pos=p.pos, vel=p.vel, u=p.u,
                dp_long=dp_long, dp_short=dp_da, du=du_da,
            )
        rungs = self._assign_rungs(dp_da + dp_long, vsig, da)
        p.rung[:] = rungs
        # the loop depth carries a margin beyond the assigned rungs so
        # particles whose conditions stiffen mid-step (shock formation,
        # feedback) can be *promoted* to deeper rungs at their own substep
        # boundaries — the Saitoh-Makino adaptivity the paper relies on
        assigned_depth = int(rungs.max()) if len(rungs) else 0
        depth = min(assigned_depth + cfg.rung_margin, cfg.max_rung) \
            if assigned_depth > 0 or cfg.hydro else assigned_depth
        nsub = 2**depth
        dt_fine = da / nsub
        dts = da / (2.0 ** rungs.astype(np.float64))

        stats = SubcycleStats(
            n_substeps=nsub, deepest_rung=depth, n_particles=len(p),
            n_force_evaluations=1, n_active_total=len(p), n_pairs=n_pairs0,
        )

        # -- long-range half-kick over the whole PM interval -----------------
        p.vel += 0.5 * da * dp_long

        # -- subcycled KDK (short-range forces only) --------------------------
        for s in range(nsub):
            period = 2 ** (depth - rungs.astype(np.int64))
            act = (s % period) == 0
            p.vel[act] += 0.5 * dts[act, None] * dp_da[act]
            p.u[act] += 0.5 * dts[act] * du_da[act]
            p.u = np.maximum(p.u, 0.0)

            # drift everyone at the fine cadence
            a_mid = a0 + (s + 0.5) * dt_fine
            a_eff = 1.0 if cfg.static else a_mid
            ah = self._a_h(a_mid)
            p.pos += p.vel[:, :] * (dt_fine / (a_eff * ah))
            p.pos = wrap_positions(p.pos, cfg.box_array)

            # grow leaf boxes to cover drifted particles (no rebuild)
            if s % max(nsub // 4, 1) == 0:
                with timers.time("tree_build"):
                    self.leaves.recompute_boxes(p.pos, grow=True)

            # closing kick with fresh forces.  The closing set of substep s
            # equals the opening (active) set of substep s+1, so evaluating
            # exactly these rows keeps every kick — opening and closing —
            # on fresh forces; stale rows in the persistent RHS arrays are
            # never read before their owner's next evaluation refreshes
            # them.  The final substep closes every particle.
            a_end = a0 + (s + 1) * dt_fine
            closing = ((s + 1) % period) == 0
            sinks = None
            if cfg.active_set and not closing.all():
                sinks = np.nonzero(closing)[0]
            dp_s, du_s, vs_s, np_s = self._short_force(
                a_end, timers=timers, sinks=sinks
            )
            if sinks is None:
                dp_da, du_da, vsig = dp_s, du_s, vs_s
            else:
                dp_da[sinks] = dp_s[sinks]
                du_da[sinks] = du_s[sinks]
                vsig[sinks] = vs_s[sinks]
            stats.n_force_evaluations += 1
            stats.n_active_total += int(closing.sum())
            stats.n_pairs += np_s

            p.vel[closing] += 0.5 * dts[closing, None] * dp_da[closing]
            p.u[closing] += 0.5 * dts[closing] * du_da[closing]
            p.u = np.maximum(p.u, 0.0)

            # rung promotion: a particle at its own substep boundary whose
            # fresh timestep criterion now demands a deeper rung moves down
            # immediately (demotion only happens at PM-step boundaries).
            # The criterion sees the interval-frozen long-range force plus
            # the fresh short-range rows; only closing rows are consulted,
            # and those are fresh in both evaluation modes.
            if s + 1 < nsub:
                rung_need = np.minimum(
                    self._assign_rungs(dp_da + dp_long, vsig, da), depth
                )
                promote = closing & (rung_need > rungs)
                if promote.any():
                    rungs = np.where(promote, rung_need, rungs).astype(np.int16)
                    p.rung[:] = rungs
                    dts = da / (2.0 ** rungs.astype(np.float64))

        if self.nsan is not None:
            self.nsan.check_finite(
                self.step_index, "subcycle loop",
                pos=p.pos, vel=p.vel, u=p.u,
            )

        a1 = a0 + da
        # -- closing long-range half-kick (the step's one fresh FFT); the
        # unit-coefficient solve is cached and becomes the next step's
        # opening evaluation
        dp_long = self._long_range_dpda(a1, timers=timers)
        p.vel += 0.5 * da * dp_long
        if self.nsan is not None:
            self.nsan.check_finite(
                self.step_index, "closing long-range kick", vel=p.vel
            )

        stats.n_fft = (self.pm.n_evaluations - fft0) if self.pm is not None else 0
        record = StepRecord(
            step=self.step_index,
            a=a1,
            timers=timers,
            n_substeps=nsub,
            deepest_rung=depth,
            n_particles=len(p),
            subcycle=stats,
            n_fft=stats.n_fft,
            backend=self.backend,
        )

        # -- subgrid physics ---------------------------------------------------
        if cfg.subgrid:
            with timers.time("subgrid"):
                self._apply_subgrid(a0, a1, record)
            if self.nsan is not None:
                self.nsan.check_finite(
                    self.step_index, "subgrid",
                    u=p.u, metallicity=p.metallicity,
                )

        # -- smoothing length refresh -----------------------------------------
        with timers.time("other"):
            self._refresh_smoothing_lengths()

        # -- in situ analysis & I/O hooks ---------------------------------------
        for hook in self.insitu_hooks:
            with timers.time("analysis"):
                hook(self, record)
        for hook in self.io_hooks:
            with timers.time("io"):
                hook(self, record)

        if self.nsan is not None:
            from ..sanitize.numerics import kinetic_internal_energy

            self.nsan.check_energy(
                self.step_index,
                kinetic_internal_energy(p.mass, p.vel, p.u),
            )

        self.observe.registry.absorb_subcycle(stats)
        self.a = a1
        self.step_index += 1
        record.n_bh = int(self.particles.black_holes.sum())
        self.history.append(record)
        return record

    def run(self, n_steps: int | None = None) -> list[StepRecord]:
        """Run ``n_steps`` PM steps (default: the full configured span)."""
        n = n_steps if n_steps is not None else self.config.n_pm_steps
        return [self.pm_step() for _ in range(n)]

    # -- subgrid orchestration ---------------------------------------------------
    def _stellar_ages_myr(self, a1: float, stars: np.ndarray) -> np.ndarray:
        """Ages of star particles at scale factor ``a1`` in Myr.

        Vectorized over the whole star set: stars formed on the same step
        share a birth scale factor, so the expensive ``cosmo.age``
        quadrature runs once per *unique* birth epoch instead of once per
        star.
        """
        birth = np.maximum(self.birth_a[stars], 1e-3)
        uniq, inverse = np.unique(birth, return_inverse=True)
        ages_gyr = self.cosmo.age(a1) - np.atleast_1d(self.cosmo.age(uniq))
        return ages_gyr[inverse] * 1.0e3

    def _apply_subgrid(self, a0: float, a1: float, record: StepRecord) -> None:
        p = self.particles
        cfg = self.config
        dt_s = self._dt_seconds(a0, a1) if not cfg.static else 1.0e14
        a_mid = 0.5 * (a0 + a1)
        rho_mean = self.cosmo.rho_mean0 * (cfg.cosmo.omega_b / cfg.cosmo.omega_m)

        gas = np.nonzero(p.gas)[0]
        if len(gas) > 0:
            # cooling (gas rho cached from the last hydro evaluation)
            p.u[gas] = self.cooling.apply(
                p.u[gas], p.rho[gas], p.metallicity[gas], dt_s, a=a_mid
            )
            # star formation
            forming_local = self.star_formation.select_forming(
                p.rho[gas], p.u[gas], dt_s, a_mid, rho_mean, self.rng,
                eos=self.eos,
            )
            forming = gas[forming_local]
            if len(forming) > 0:
                p.species[forming] = int(Species.STAR)
                self.birth_a[forming] = a_mid
                record.n_stars_formed = len(forming)

        # supernovae
        stars = np.nonzero(p.stars)[0]
        if len(stars) > 0:
            ages_myr = self._stellar_ages_myr(a1, stars)
            due = self.supernova.due(ages_myr, self.sn_fired[stars])
            firing = stars[due]
            gas = np.nonzero(p.gas)[0]
            if len(firing) > 0 and len(gas) > 0:
                radius = 2.0 * float(np.median(p.h[gas]))
                si, gi_local, w = kernel_weights_for_sources(
                    p.pos[firing], p.pos[gas], radius, box=cfg.box
                )
                new_u, new_z = self.supernova.deposit(
                    p.mass[firing], w, gi_local, si,
                    p.mass[gas], p.u[gas], p.metallicity[gas],
                )
                p.u[gas] = new_u
                p.metallicity[gas] = new_z
                self.sn_fired[firing] = True
                record.n_sn_events = len(firing)

        # delayed enrichment: SNIa heating/iron and AGB metal return from
        # aging stellar populations (opt-in; Section IV-A "stellar chemical
        # enrichment")
        if cfg.extended_enrichment:
            stars = np.nonzero(p.stars)[0]
            gas = np.nonzero(p.gas)[0]
            if len(stars) > 0 and len(gas) > 0:
                age1 = self._stellar_ages_myr(a1, stars)
                age0 = np.maximum(age1 - self._dt_seconds(a0, a1) / 3.156e13,
                                  0.0)
                # the enrichment models are array-valued over the star set
                expected_ia = np.asarray(
                    self.snia.events_between(p.mass[stars], age0, age1),
                    dtype=np.float64,
                )
                n_ia = self.rng.poisson(expected_ia)
                m_ret = np.asarray(
                    self.agb.mass_returned_between(p.mass[stars], age0, age1),
                    dtype=np.float64,
                )
                firing = n_ia > 0
                if firing.any() or m_ret.sum() > 0:
                    radius = 2.0 * float(np.median(p.h[gas]))
                    si, gi_local, w = kernel_weights_for_sources(
                        p.pos[stars], p.pos[gas], radius, box=cfg.box
                    )
                    # SNIa heat + iron
                    du = self.snia.specific_energy(
                        n_ia[si], p.mass[gas[gi_local]]
                    ) * w
                    p.u[gas[gi_local]] += du
                    dz_ia = self.snia.iron_mass(n_ia[si]) * w
                    dz_agb = self.agb.metal_mass_returned(m_ret[si]) * w
                    p.metallicity[gas[gi_local]] = np.clip(
                        p.metallicity[gas[gi_local]]
                        + (dz_ia + dz_agb) / p.mass[gas[gi_local]],
                        0.0, 1.0,
                    )

        # AGN: seed at extreme gas overdensities, grow, feed back
        gas = np.nonzero(p.gas)[0]
        if len(gas) > 0:
            rho_mean_gas = p.mass[gas].sum() / cfg.box_volume
            dense = gas[p.rho[gas] > 5.0e3 * rho_mean_gas]
            bh = np.nonzero(p.black_holes)[0]
            if len(dense) > 0:
                # seed at the single densest site if no BH is nearby
                cand = dense[np.argmax(p.rho[dense])]
                far = True
                if len(bh) > 0:
                    d = p.pos[bh] - p.pos[cand]
                    d -= cfg.box_array * np.round(d / cfg.box_array)
                    far = np.min(np.einsum("na,na->n", d, d)) > (0.05 * cfg.box_min) ** 2
                if far:
                    p.species[cand] = int(Species.BLACK_HOLE)
                    self.bh_mass[cand] = self.agn.seed_mass
            bh = np.nonzero(p.black_holes)[0]
            gas = np.nonzero(p.gas)[0]
            if len(bh) > 0 and len(gas) > 0:
                # local gas state: nearest-gas estimates
                for b in bh:
                    d = p.pos[gas] - p.pos[b]
                    d -= cfg.box_array * np.round(d / cfg.box_array)
                    r2 = np.einsum("na,na->n", d, d)
                    near = gas[np.argsort(r2)[:8]]
                    rho_loc = p.rho[near].mean()
                    cs_loc = self.eos.sound_speed(
                        p.rho[near], p.u[near]
                    ).mean()
                    m_new, dm = self.agn.grow(
                        np.array([self.bh_mass[b]]),
                        np.array([rho_loc]),
                        np.array([max(cs_loc, 1.0)]),
                        dt_s,
                        a=a_mid,
                    )
                    self.bh_mass[b] = m_new[0]
                    e_fb = self.agn.feedback_energy(dm)[0]  # (km/s)^2 * Msun
                    p.u[near] += e_fb / max(p.mass[near].sum(), 1e-300)

    # -- diagnostics ---------------------------------------------------------------
    def timing_summary(self) -> dict:
        """Cumulative time per component over all steps (seconds)."""
        from ..observe.derived import timing_summary

        return timing_summary(self.history)

    def timing_fractions(self) -> dict:
        """Per-component fraction of total time (Fig. 2 shape)."""
        from ..observe.derived import phase_fractions

        return phase_fractions(self.history)
