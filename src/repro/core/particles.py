"""Structure-of-arrays particle container.

CRK-HACC evolves multiple species (dark matter, gas, stars, black holes)
in a single flat SoA layout so GPU kernels see coalesced streams.  This
container mirrors that design: one array per field, species encoded as a
small-integer tag, with cheap boolean views per species.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np


class Species(IntEnum):
    DARK_MATTER = 0
    GAS = 1
    STAR = 2
    BLACK_HOLE = 3


@dataclass
class Particles:
    """Flat SoA particle state.

    Length-N arrays; gas-only fields are zero for non-gas species.  Units:
    comoving Mpc/h positions, km/s peculiar velocities, Msun/h masses,
    (km/s)^2 specific internal energy.
    """

    pos: np.ndarray
    vel: np.ndarray
    mass: np.ndarray
    species: np.ndarray
    u: np.ndarray = None  # specific internal energy (gas)
    h: np.ndarray = None  # SPH support radius
    metallicity: np.ndarray = None  # metal mass fraction
    ids: np.ndarray = None
    rho: np.ndarray = field(default=None)  # cached density
    rung: np.ndarray = field(default=None)  # timestep rung (0 = coarsest)

    def __post_init__(self) -> None:
        n = len(self.mass)
        self.pos = np.ascontiguousarray(self.pos, dtype=np.float64).reshape(n, 3)
        self.vel = np.ascontiguousarray(self.vel, dtype=np.float64).reshape(n, 3)
        self.mass = np.ascontiguousarray(self.mass, dtype=np.float64)
        self.species = np.ascontiguousarray(self.species, dtype=np.int8)
        for name, default in (
            ("u", 0.0),
            ("h", 0.0),
            ("metallicity", 0.0),
            ("rho", 0.0),
        ):
            arr = getattr(self, name)
            if arr is None:
                arr = np.full(n, default, dtype=np.float64)
            setattr(self, name, np.ascontiguousarray(arr, dtype=np.float64))
        if self.ids is None:
            self.ids = np.arange(n, dtype=np.int64)
        else:
            self.ids = np.ascontiguousarray(self.ids, dtype=np.int64)
        if self.rung is None:
            self.rung = np.zeros(n, dtype=np.int16)
        else:
            self.rung = np.ascontiguousarray(self.rung, dtype=np.int16)

    def __len__(self) -> int:
        return len(self.mass)

    @property
    def n(self) -> int:
        return len(self.mass)

    def mask(self, species: Species) -> np.ndarray:
        return self.species == int(species)

    @property
    def gas(self) -> np.ndarray:
        return self.mask(Species.GAS)

    @property
    def dark_matter(self) -> np.ndarray:
        return self.mask(Species.DARK_MATTER)

    @property
    def stars(self) -> np.ndarray:
        return self.mask(Species.STAR)

    @property
    def black_holes(self) -> np.ndarray:
        return self.mask(Species.BLACK_HOLE)

    def select(self, mask_or_idx) -> "Particles":
        """New container holding a subset (copy)."""
        return Particles(
            pos=self.pos[mask_or_idx].copy(),
            vel=self.vel[mask_or_idx].copy(),
            mass=self.mass[mask_or_idx].copy(),
            species=self.species[mask_or_idx].copy(),
            u=self.u[mask_or_idx].copy(),
            h=self.h[mask_or_idx].copy(),
            metallicity=self.metallicity[mask_or_idx].copy(),
            ids=self.ids[mask_or_idx].copy(),
            rho=self.rho[mask_or_idx].copy(),
            rung=self.rung[mask_or_idx].copy(),
        )

    def append(self, other: "Particles") -> "Particles":
        """New container with ``other`` concatenated."""
        return Particles(
            pos=np.concatenate([self.pos, other.pos]),
            vel=np.concatenate([self.vel, other.vel]),
            mass=np.concatenate([self.mass, other.mass]),
            species=np.concatenate([self.species, other.species]),
            u=np.concatenate([self.u, other.u]),
            h=np.concatenate([self.h, other.h]),
            metallicity=np.concatenate([self.metallicity, other.metallicity]),
            ids=np.concatenate([self.ids, other.ids]),
            rho=np.concatenate([self.rho, other.rho]),
            rung=np.concatenate([self.rung, other.rung]),
        )

    def copy(self) -> "Particles":
        return self.select(slice(None))

    def total_mass(self) -> float:
        return float(self.mass.sum())

    def total_metal_mass(self) -> float:
        return float((self.mass * self.metallicity).sum())

    def kinetic_energy(self) -> float:
        return float(0.5 * np.sum(self.mass * np.einsum("na,na->n", self.vel, self.vel)))

    def internal_energy(self) -> float:
        return float(np.sum(self.mass * self.u))

    @staticmethod
    def empty() -> "Particles":
        return Particles(
            pos=np.empty((0, 3)),
            vel=np.empty((0, 3)),
            mass=np.empty(0),
            species=np.empty(0, dtype=np.int8),
        )


def make_gas_dm_pair(positions, velocities, particle_mass, omega_b, omega_m,
                     u_init: float = 0.0, offset_fraction: float = 0.5,
                     box: float | None = None):
    """Split a single-species IC into interleaved gas + DM particle pairs.

    Mirrors the paper's equal-number baryon/DM tracer setup: each IC particle
    becomes a (DM, gas) pair with masses split by the cosmic baryon fraction
    and the gas member offset by a fraction of the mean spacing to avoid
    exactly coincident pairs.
    """
    positions = np.asarray(positions, dtype=np.float64)
    velocities = np.asarray(velocities, dtype=np.float64)
    n = positions.shape[0]
    fb = omega_b / omega_m
    m_dm = particle_mass * (1.0 - fb)
    m_gas = particle_mass * fb

    spacing = (box if box is not None else 1.0) / max(round(n ** (1 / 3)), 1)
    shift = offset_fraction * 0.5 * spacing
    gas_pos = positions + shift
    if box is not None:
        gas_pos = np.mod(gas_pos, box)

    pos = np.concatenate([positions, gas_pos])
    vel = np.concatenate([velocities, velocities])
    mass = np.concatenate([np.full(n, m_dm), np.full(n, m_gas)])
    species = np.concatenate(
        [np.full(n, int(Species.DARK_MATTER), dtype=np.int8),
         np.full(n, int(Species.GAS), dtype=np.int8)]
    )
    u = np.concatenate([np.zeros(n), np.full(n, u_init)])
    return Particles(pos=pos, vel=vel, mass=mass, species=species, u=u)
