"""Mixed-precision study: FP64 spectral solver, FP32 short-range kernels.

The multi-scale design lets CRK-HACC run the FFT-based long-range solver
in FP64 (preserving spectral accuracy) while executing short-range GPU
kernels in FP32 for speed and memory (paper §IV-A).  This module makes
that trade measurable: it evaluates the short-range pair force in both
precisions and quantifies the FP32 error against the force scale, to be
compared with the other error sources in the split (PM mesh noise ~1%,
handover tail ~1e-4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# sanitize: allow-file-dtype-discipline -- this module *is* the FP32
# study; every float32 here is the deliberate downcast under measurement

from ...constants import G_COSMO
from ..geometry import pair_displacements
from ..scatter import segment_sum
from .force_split import newtonian_pair_kernel, short_range_shape


def short_range_accelerations_fp32(
    pos, mass, pi, pj, r_split, softening, box=None, g_newton=G_COSMO
):
    """FP32 evaluation of the short-range pair force (same algorithm as
    the FP64 path, arrays downcast once at entry like a GPU upload)."""
    pos32 = np.asarray(pos, dtype=np.float32)
    mass32 = np.asarray(mass, dtype=np.float32)
    n = len(pos32)
    accel = np.zeros((n, 3), dtype=np.float32)
    keep = pi != pj
    pi = pi[keep]
    pj = pj[keep]
    dx = pair_displacements(pos32, pi, pj, np.float32(box) if box else None)
    dx = dx.astype(np.float32)
    r = np.sqrt(np.einsum("pa,pa->p", dx, dx, dtype=np.float32)).astype(
        np.float32
    )
    kern = newtonian_pair_kernel(r, softening).astype(np.float32)
    if r_split > 0:
        kern = kern * short_range_shape(r, r_split).astype(np.float32)
    with np.errstate(invalid="ignore", divide="ignore"):
        unit = np.where(
            r[:, None] > 0, dx / np.maximum(r, np.float32(1e-30))[:, None], 0.0
        ).astype(np.float32)
    contrib = (
        -np.float32(g_newton) * (mass32[pj] * kern)[:, None] * unit
    ).astype(np.float32)
    # segment_sum keeps FP32 accumulation (reduceat path) like GPU atomics
    accel += segment_sum(contrib, pi, n)
    return accel


@dataclass
class PrecisionReport:
    """FP32-vs-FP64 short-range force comparison."""

    rms_relative_error: float
    max_relative_error: float
    median_relative_error: float
    memory_ratio: float  # FP32 bytes / FP64 bytes for the particle state

    @property
    def acceptable(self) -> bool:
        """FP32 error well below the ~1% PM mesh noise of the split."""
        return self.rms_relative_error < 1.0e-3


def compare_precisions(
    pos, mass, pi, pj, r_split, softening, box=None
) -> PrecisionReport:
    """Evaluate the short-range force in FP64 and FP32 and compare."""
    from .short_range import short_range_accelerations

    a64 = short_range_accelerations(
        pos, mass, pi, pj, r_split=r_split, softening=softening, box=box
    )
    a32 = short_range_accelerations_fp32(
        pos, mass, pi, pj, r_split=r_split, softening=softening, box=box
    )
    mag = np.linalg.norm(a64, axis=1)
    err = np.linalg.norm(a64 - a32.astype(np.float64), axis=1)
    scale = np.maximum(mag, np.percentile(mag[mag > 0], 10) if (mag > 0).any() else 1.0)
    rel = err / scale
    return PrecisionReport(
        rms_relative_error=float(np.sqrt(np.mean(rel**2))),
        max_relative_error=float(rel.max()) if len(rel) else 0.0,
        median_relative_error=float(np.median(rel)) if len(rel) else 0.0,
        memory_ratio=0.5,
    )
