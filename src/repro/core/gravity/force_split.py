"""Separation of scales: long-range/short-range gravity force splitting.

The PM Green's function is multiplied by a Gaussian ``exp(-k^2 r_s^2)``;
the exact complement in real space is the short-range pair force

    f_sr(r) = G m / r^2 * S(r),
    S(r) = erfc(r / (2 r_s)) + r / (sqrt(pi) r_s) * exp(-r^2 / (4 r_s^2)),

which decays to machine-negligible levels by ``r ~ 5 r_s``, making the
short-range solver node-local (paper Sections IV-A and VII).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erfc


def short_range_shape(r, r_split: float):
    """Split function S(r): fraction of the Newtonian force assigned short-range."""
    r = np.asarray(r, dtype=np.float64)
    if r_split <= 0:
        return np.zeros_like(r)
    x = r / (2.0 * r_split)
    return erfc(x) + (r / (math.sqrt(math.pi) * r_split)) * np.exp(-(x**2))


def long_range_shape(r, r_split: float):
    """Complement 1 - S(r) (the part the filtered PM solver carries)."""
    return 1.0 - short_range_shape(r, r_split)


def recommended_cutoff(r_split: float, tol: float = 1.0e-4) -> float:
    """Radius beyond which S(r) < tol (bisection on the monotone tail)."""
    if r_split <= 0:
        return 0.0
    lo, hi = r_split, 20.0 * r_split
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if short_range_shape(mid, r_split) > tol:
            lo = mid
        else:
            hi = mid
    return hi


def newtonian_pair_kernel(r, softening: float):
    """Plummer-softened magnitude kernel r / (r^2 + eps^2)^(3/2).

    Multiplying by G*m and the unit separation vector gives the pair
    acceleration; equals 1/r^2 for r >> eps.
    """
    r = np.asarray(r, dtype=np.float64)
    return r / (r**2 + softening**2) ** 1.5
