"""Particle-mesh (PM) gravity: CIC deposit, spectral Poisson solve, forces.

The long/intermediate-range gravitational field is computed with an
FFT-based Poisson solver on a periodic grid (paper Section IV-A).  The
Green's function carries a high-order spectral filter: CIC deconvolution
plus a Gaussian long-range cutoff ``exp(-k^2 r_s^2)`` that hands the
remaining short-range force to the tree solver on a compact spatial scale.

The Poisson equation solved (comoving form) is

    nabla^2 phi = coeff * (rho - rho_mean),

with ``coeff`` supplied by the caller (``4 pi G / a`` for comoving cosmology,
``4 pi G`` for Newtonian tests).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ...backend import get_kernel, register_kernel
from ..scatter import segment_sum


def cic_deposit(pos: np.ndarray, mass: np.ndarray, n: int, box: float) -> np.ndarray:
    """Cloud-in-cell mass deposit onto an n^3 periodic grid.

    Returns the density grid in units of mass per cell volume.  Dispatches
    through :mod:`repro.backend` (``pm.cic_deposit``); both backends are
    bit-identical because both accumulate in particle order per stencil
    offset.
    """
    return get_kernel("pm.cic_deposit")(pos, mass, n, box)


@register_kernel(
    "pm.cic_deposit", contract="bit-identical",
    note="bincount accumulates sequentially in particle order per stencil "
         "offset; the compiled loop mirrors offset-major order exactly",
)
def _cic_deposit_numpy(pos, mass, n: int, box: float) -> np.ndarray:
    # the eight stencil deposits accumulate through flat-index segment
    # sums (bincount) rather than buffered np.add.at scatters
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.broadcast_to(np.asarray(mass, dtype=np.float64), (pos.shape[0],))
    cell = box / n
    x = pos / cell - 0.5  # CIC centers at cell centers
    i0 = np.floor(x).astype(np.int64)
    frac = x - i0
    grid = np.zeros(n * n * n)
    for ox in (0, 1):
        wx = frac[:, 0] if ox else 1.0 - frac[:, 0]
        ix = np.mod(i0[:, 0] + ox, n)
        for oy in (0, 1):
            wy = frac[:, 1] if oy else 1.0 - frac[:, 1]
            iy = np.mod(i0[:, 1] + oy, n)
            for oz in (0, 1):
                wz = frac[:, 2] if oz else 1.0 - frac[:, 2]
                iz = np.mod(i0[:, 2] + oz, n)
                flat = (ix * n + iy) * n + iz
                grid += segment_sum(mass * wx * wy * wz, flat, n * n * n)
    return grid.reshape(n, n, n) / cell**3


def cic_interpolate(field: np.ndarray, pos: np.ndarray, box: float) -> np.ndarray:
    """Interpolate a grid field (n^3 or n^3 x C) back to particle positions.

    Dispatches through :mod:`repro.backend` (``pm.cic_gather``);
    bit-identical across backends (pure elementwise gather, fixed offset
    order).
    """
    return get_kernel("pm.cic_gather")(field, pos, box)


@register_kernel(
    "pm.cic_gather", contract="bit-identical",
    note="pure per-particle gather in fixed stencil-offset order",
)
def _cic_gather_numpy(field, pos, box: float) -> np.ndarray:
    n = field.shape[0]
    cell = box / n
    x = np.asarray(pos, dtype=np.float64) / cell - 0.5
    i0 = np.floor(x).astype(np.int64)
    frac = x - i0
    vec = field.ndim == 4
    out_shape = (pos.shape[0], field.shape[3]) if vec else (pos.shape[0],)
    out = np.zeros(out_shape)
    for ox in (0, 1):
        wx = frac[:, 0] if ox else 1.0 - frac[:, 0]
        ix = np.mod(i0[:, 0] + ox, n)
        for oy in (0, 1):
            wy = frac[:, 1] if oy else 1.0 - frac[:, 1]
            iy = np.mod(i0[:, 1] + oy, n)
            for oz in (0, 1):
                wz = frac[:, 2] if oz else 1.0 - frac[:, 2]
                iz = np.mod(i0[:, 2] + oz, n)
                w = wx * wy * wz
                vals = field[ix, iy, iz]
                out += vals * (w[:, None] if vec else w)
    return out


#: module-level memo of spectral tables shared across PMSolver instances,
#: keyed by (n, box, r_split, deconvolve_cic).  Repeated campaign jobs on
#: the same grid shape stop rebuilding the Green's function; the arrays
#: are frozen read-only so sharing is safe.  LRU-bounded.
_GREEN_CACHE: OrderedDict = OrderedDict()
_GREEN_CACHE_MAX = 8
_GREEN_LOCK = threading.Lock()
_GREEN_STATS = {"built": 0, "reused": 0}


def green_cache_stats() -> dict:
    """``{"built": .., "reused": ..}`` counts of spectral-table builds."""
    with _GREEN_LOCK:
        return dict(_GREEN_STATS)


def clear_green_cache() -> None:
    """Drop the memoized spectral tables and reset the counters (tests)."""
    with _GREEN_LOCK:
        _GREEN_CACHE.clear()
        _GREEN_STATS["built"] = 0
        _GREEN_STATS["reused"] = 0


def green_tables_nbytes(n: int) -> int:
    """Bytes held by one memo entry (the k2 + green rfft grids dominate)."""
    return 2 * n * n * (n // 2 + 1) * 8


def _build_green_tables(n: int, box: float, r_split: float,
                        deconvolve_cic: bool):
    dk = 2.0 * np.pi / box
    k1 = np.fft.fftfreq(n, d=1.0 / n) * dk
    kzf = np.fft.rfftfreq(n, d=1.0 / n) * dk
    kx = k1[:, None, None]
    ky = k1[None, :, None]
    kz = kzf[None, None, :]
    k2 = kx**2 + ky**2 + kz**2
    green = np.zeros_like(k2)
    nz = k2 > 0
    green[nz] = -1.0 / k2[nz]
    if r_split > 0:
        green = green * np.exp(-k2 * r_split**2)
    if deconvolve_cic:
        wsq = cic_window_sq(n)
        green = green / np.maximum(wsq, 1e-12)
    tables = (kx, ky, kz, k2, green)
    for arr in tables:
        arr.flags.writeable = False
    return tables


def shared_green_tables(n: int, box: float, r_split: float = 0.0,
                        deconvolve_cic: bool = True):
    """Build-or-fetch the ``(kx, ky, kz, k2, green)`` spectral tables.

    Every :class:`PMSolver` constructs through this memo, so repeated
    solver instances on the same (grid, box, filter order) share one
    read-only Green's function instead of rebuilding it.  Builds and
    reuses are counted both module-locally (:func:`green_cache_stats`)
    and as ``pm/green_builds`` / ``pm/green_reuses`` counters in the
    default metrics registry.
    """
    key = (int(n), float(box), float(r_split), bool(deconvolve_cic))
    with _GREEN_LOCK:
        tables = _GREEN_CACHE.get(key)
        if tables is not None:
            _GREEN_CACHE.move_to_end(key)
            _GREEN_STATS["reused"] += 1
            hit = True
    if tables is None:
        hit = False
        tables = _build_green_tables(*key)
        with _GREEN_LOCK:
            _GREEN_STATS["built"] += 1
            _GREEN_CACHE[key] = tables
            while len(_GREEN_CACHE) > _GREEN_CACHE_MAX:
                _GREEN_CACHE.popitem(last=False)
    from ...observe import default_observatory

    registry = default_observatory().registry
    registry.counter("pm/green_reuses" if hit else "pm/green_builds").add(1)
    return tables


def cic_window_sq(n: int):
    """Squared CIC assignment window W^2(k) on the rfft grid (for deconvolution)."""
    kx = np.fft.fftfreq(n)[:, None, None]
    ky = np.fft.fftfreq(n)[None, :, None]
    kz = np.fft.rfftfreq(n)[None, None, :]
    w = (
        np.sinc(kx) * np.sinc(ky) * np.sinc(kz)
    )  # np.sinc includes the pi factor
    return (w**2) ** 2  # CIC = square of NGP window -> W_cic = sinc^2


@dataclass
class PMSolver:
    """Spectrally filtered PM Poisson solver on an n^3 periodic grid.

    Parameters
    ----------
    n : grid cells per dimension
    box : box side length (Mpc/h)
    r_split : Gaussian handover scale r_s in Mpc/h; 0 disables the long-range
        filter (plain PM solve).
    deconvolve_cic : divide by W_CIC^2 to undo deposit+interpolation smoothing
    """

    n: int
    box: float
    r_split: float = 0.0
    deconvolve_cic: bool = True

    def __post_init__(self) -> None:
        #: number of end-to-end PM force evaluations (deposit + FFT solve +
        #: interpolation); the active-set scheduling tests assert the
        #: once-per-PM-step FFT budget through this counter
        self.n_evaluations = 0
        # spectral tables come from the module memo: instances on the same
        # (n, box, r_split, order) share one frozen Green's function
        (self._kx, self._ky, self._kz, self._k2,
         self._green) = shared_green_tables(
            self.n, self.box, self.r_split, self.deconvolve_cic
        )

    def potential_k(self, rho: np.ndarray, coeff: float, rho_mean: float | None = None):
        """Fourier-space potential from a density grid."""
        if rho_mean is None:
            rho_mean = float(rho.mean())
        delta = rho - rho_mean
        return coeff * self._green * np.fft.rfftn(delta)

    def potential(self, rho: np.ndarray, coeff: float, rho_mean: float | None = None):
        """Real-space potential grid."""
        n = self.n
        return np.fft.irfftn(
            self.potential_k(rho, coeff, rho_mean), s=(n, n, n), axes=(0, 1, 2)
        )

    def acceleration_grid(
        self, rho: np.ndarray, coeff: float, rho_mean: float | None = None
    ) -> np.ndarray:
        """Acceleration field -grad(phi) as an (n, n, n, 3) grid.

        Gradients are taken spectrally (ik multiplication), matching the
        low-noise spectral differentiation CRK-HACC uses.
        """
        phik = self.potential_k(rho, coeff, rho_mean)
        n = self.n
        acc = np.empty((n, n, n, 3))
        for axis, kc in enumerate((self._kx, self._ky, self._kz)):
            acc[..., axis] = np.fft.irfftn(-1j * kc * phik, s=(n, n, n), axes=(0, 1, 2))
        return acc

    def accelerations(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        coeff: float,
        rho_mean: float | None = None,
    ) -> np.ndarray:
        """End-to-end PM accelerations at particle positions."""
        self.n_evaluations += 1
        rho = cic_deposit(pos, mass, self.n, self.box)
        grid = self.acceleration_grid(rho, coeff, rho_mean)
        return cic_interpolate(grid, pos, self.box)
