"""Short-range gravity: direct pair summation over tree interaction lists.

Evaluates the Plummer-softened, split-complement pair force for every
neighbor pair inside the handover cutoff.  The same pair lists that drive
the CRKSPH kernels drive this operator, mirroring the leaf-leaf kernel
structure of the GPU solver.
"""

from __future__ import annotations

import numpy as np

from ...backend import get_kernel, register_kernel
from ...constants import G_COSMO
from ..geometry import pair_displacements
from ..scatter import segment_sum
from .force_split import newtonian_pair_kernel, short_range_shape


def short_range_accelerations(
    pos: np.ndarray,
    mass: np.ndarray,
    pi: np.ndarray,
    pj: np.ndarray,
    r_split: float,
    softening: float,
    box: float | None = None,
    g_newton: float = G_COSMO,
    sink_index: np.ndarray | None = None,
    n_out: int | None = None,
) -> np.ndarray:
    """Acceleration on each particle from short-range pair forces.

    ``pi, pj`` is an ordered pair list (self pairs are ignored).  With
    ``r_split=0`` the full Newtonian force is returned (direct summation
    mode, used by force-completeness tests).

    ``sink_index``/``n_out`` switch on compact active-row assembly: forces
    accumulate into row ``sink_index[p]`` of an ``(n_out, 3)`` output
    instead of densifying to the full particle count.  Pair geometry still
    indexes the full ``pos``/``mass`` arrays, so inactive particles remain
    gather-only sources (paper Section IV-A active-rung evaluation).
    """
    n = pos.shape[0] if n_out is None else int(n_out)
    if len(pi) == 0:
        return np.zeros((n, 3))
    keep = pi != pj
    pi = pi[keep]
    pj = pj[keep]
    rows = pi if sink_index is None else np.asarray(sink_index)[keep]
    return get_kernel("gravity.short_range_pairs")(
        pos, mass, pi, pj, rows, n, r_split, softening, box, g_newton
    )


@register_kernel(
    "gravity.short_range_pairs", contract="roundoff", rtol=1e-9, atol=1e-12,
    note="scipy erfc vs libm erfc, einsum-vs-sequential r^2, and "
         "division-vs-unit-vector ordering differ in the last bits",
)
def _short_range_pairs_numpy(pos, mass, pi, pj, rows, n, r_split, softening,
                             box, g_newton) -> np.ndarray:
    accel = np.zeros((n, 3))
    # chunk the pair list so peak memory stays bounded regardless of how
    # dense the interaction lists get (each pair costs ~10 temporaries)
    chunk = 2_000_000
    for s in range(0, len(pi), chunk):
        ci = pi[s : s + chunk]
        cj = pj[s : s + chunk]
        crows = rows[s : s + chunk]
        dx = pair_displacements(pos, ci, cj, box)  # x_i - x_j
        r = np.sqrt(np.einsum("pa,pa->p", dx, dx))
        kern = newtonian_pair_kernel(r, softening)
        if r_split > 0:
            kern = kern * short_range_shape(r, r_split)
        with np.errstate(invalid="ignore", divide="ignore"):
            unit = np.where(
                r[:, None] > 0, dx / np.maximum(r, 1e-300)[:, None], 0.0
            )
        contrib = -g_newton * (mass[cj] * kern)[:, None] * unit
        accel += segment_sum(contrib, crows, n)
    return accel


def direct_accelerations(
    pos: np.ndarray,
    mass: np.ndarray,
    softening: float,
    box: float | None = None,
    g_newton: float = G_COSMO,
) -> np.ndarray:
    """O(N^2) direct Newtonian summation (reference for force tests)."""
    n = pos.shape[0]
    idx = np.arange(n)
    pi = np.repeat(idx, n)
    pj = np.tile(idx, n)
    return short_range_accelerations(
        pos, mass, pi, pj, r_split=0.0, softening=softening, box=box,
        g_newton=g_newton,
    )
