"""Separation-of-scales gravity: spectral PM long-range + tree short-range."""

from .ewald import ewald_accelerations
from .force_split import (
    long_range_shape,
    newtonian_pair_kernel,
    recommended_cutoff,
    short_range_shape,
)
from .pm import PMSolver, cic_deposit, cic_interpolate
from .precision import (
    PrecisionReport,
    compare_precisions,
    short_range_accelerations_fp32,
)
from .short_range import direct_accelerations, short_range_accelerations

__all__ = [
    "PMSolver",
    "PrecisionReport",
    "compare_precisions",
    "cic_deposit",
    "cic_interpolate",
    "direct_accelerations",
    "ewald_accelerations",
    "long_range_shape",
    "newtonian_pair_kernel",
    "recommended_cutoff",
    "short_range_accelerations",
    "short_range_accelerations_fp32",
    "short_range_shape",
]
