"""Ewald summation: exact gravitational forces in a periodic box.

The gold-standard reference for periodic N-body forces (Hernquist, Bouchet
& Suto 1991): the conditionally-convergent image sum is split into a
short-range real-space lattice sum and a rapidly-converging Fourier sum,

  a(x) = -G sum_j m_j [ sum_n erfc-screened image forces
                        + (4 pi / L^3) sum_k (k/k^2) W(k) sin(k.dx) ],

with alpha tuning the split.  O(N^2) and slow — test/reference use only —
but it closes the loop the paper's force split opens: PM + tree short-range
can be validated against the *true* periodic force, not just isolated
pairs.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erfc

from ...constants import G_COSMO


def ewald_accelerations(
    pos: np.ndarray,
    mass: np.ndarray,
    box: float,
    alpha: float | None = None,
    n_real: int = 2,
    n_fourier: int = 5,
    g_newton: float = G_COSMO,
    softening: float = 0.0,
) -> np.ndarray:
    """Exact periodic accelerations by Ewald summation (O(N^2) reference).

    ``alpha`` defaults to 2/L (the customary choice balancing the two
    sums); ``n_real``/``n_fourier`` set the lattice/Fourier truncation
    (defaults converge to ~1e-6 relative).
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = len(pos)
    if alpha is None:
        alpha = 2.0 / box

    # pairwise minimum-image displacements dx_ij = x_i - x_j
    dx = pos[:, None, :] - pos[None, :, :]
    dx -= box * np.round(dx / box)

    accel = np.zeros((n, 3))

    # --- real-space lattice sum ------------------------------------------------
    rng = range(-n_real, n_real + 1)
    for ix in rng:
        for iy in rng:
            for iz in rng:
                shift = np.array([ix, iy, iz], dtype=np.float64) * box
                d = dx + shift  # (n, n, 3)
                r2 = np.einsum("ija,ija->ij", d, d) + softening**2
                at_origin = r2 < 1e-20
                r = np.sqrt(np.where(at_origin, 1.0, r2))
                ar = alpha * r
                # force kernel: [erfc(ar) + 2ar/sqrt(pi) exp(-ar^2)] / r^3
                kern = (
                    erfc(ar) + 2.0 * ar / math.sqrt(math.pi) * np.exp(-(ar**2))
                ) / r**3
                kern = np.where(at_origin, 0.0, kern)
                accel -= g_newton * np.einsum(
                    "ij,ija->ia", kern * mass[None, :], d
                )

    # --- Fourier-space sum ---------------------------------------------------
    kvals = range(-n_fourier, n_fourier + 1)
    two_pi_l = 2.0 * math.pi / box
    for hx in kvals:
        for hy in kvals:
            for hz in kvals:
                if hx == hy == hz == 0:
                    continue
                k = two_pi_l * np.array([hx, hy, hz], dtype=np.float64)
                k2 = float(k @ k)
                coeff = (
                    4.0 * math.pi / box**3
                    * math.exp(-k2 / (4.0 * alpha**2)) / k2
                )
                phase = pos @ k  # (n,)
                # sum_j m_j sin(k.(x_i - x_j)) =
                #   sin(k.x_i) S_c - cos(k.x_i) S_s
                s_c = float(np.sum(mass * np.cos(phase)))
                s_s = float(np.sum(mass * np.sin(phase)))
                amp = np.sin(phase) * s_c - np.cos(phase) * s_s
                accel -= g_newton * coeff * amp[:, None] * k[None, :]

    return accel
