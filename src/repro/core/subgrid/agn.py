"""AGN feedback: black-hole seeding, Bondi accretion, thermal feedback.

Black holes are seeded at the densest gas sites of sufficiently massive
halos, grow by Eddington-limited Bondi-Hoyle accretion, and return a
fraction ``eps_r * eps_f`` of the accreted rest-mass energy to surrounding
gas as heat — the standard thermal-mode AGN model used by the large-volume
hydrodynamic simulations the paper compares against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...constants import (
    C_LIGHT,
    G_CGS,
    KM_CM,
    M_PROTON,
    MSUN_G,
    SIGMA_THOMSON,
    YEAR_S,
)
from .cooling import RHO_CODE_TO_CGS


def eddington_rate(m_bh_msun: np.ndarray, eps_r: float = 0.1) -> np.ndarray:
    """Eddington accretion rate in Msun/s."""
    m_bh_g = np.asarray(m_bh_msun) * MSUN_G
    l_edd = 4.0 * math.pi * G_CGS * m_bh_g * M_PROTON * C_LIGHT / SIGMA_THOMSON
    return l_edd / (eps_r * C_LIGHT**2) / MSUN_G


def bondi_rate(
    m_bh_msun: np.ndarray,
    rho_comoving: np.ndarray,
    sound_speed_kms: np.ndarray,
    a: float = 1.0,
    boost: float = 1.0,
) -> np.ndarray:
    """Bondi-Hoyle rate mdot = 4 pi alpha G^2 M^2 rho / c_s^3 in Msun/s."""
    m_g = np.asarray(m_bh_msun) * MSUN_G
    rho_cgs = np.asarray(rho_comoving) * RHO_CODE_TO_CGS / a**3
    cs_cgs = np.maximum(np.asarray(sound_speed_kms) * KM_CM, 1.0)
    mdot = 4.0 * math.pi * boost * G_CGS**2 * m_g**2 * rho_cgs / cs_cgs**3
    return mdot / MSUN_G


@dataclass
class AGNModel:
    """Thermal-mode AGN feedback.

    Parameters
    ----------
    seed_mass : BH seed mass [Msun/h]
    seed_halo_mass : minimum FOF halo mass for seeding [Msun/h]
    eps_r : radiative efficiency
    eps_f : fraction of radiated energy coupled to gas
    bondi_boost : alpha boost factor on the Bondi rate
    """

    seed_mass: float = 1.0e5
    seed_halo_mass: float = 5.0e10
    eps_r: float = 0.1
    eps_f: float = 0.05
    bondi_boost: float = 100.0

    def accretion_rate(self, m_bh, rho_comoving, cs_kms, a=1.0):
        """Eddington-limited Bondi rate, Msun/s."""
        bondi = bondi_rate(
            m_bh, rho_comoving, cs_kms, a=a, boost=self.bondi_boost
        )
        edd = eddington_rate(m_bh, eps_r=self.eps_r)
        return np.minimum(bondi, edd)

    def grow(self, m_bh, rho_comoving, cs_kms, dt_seconds, a=1.0):
        """Updated BH masses and accreted mass over one step."""
        mdot = self.accretion_rate(m_bh, rho_comoving, cs_kms, a=a)
        dm = mdot * dt_seconds
        return np.asarray(m_bh) + dm, dm

    def feedback_energy(self, dm_accreted_msun: np.ndarray) -> np.ndarray:
        """Thermal energy released to gas in (km/s)^2 * Msun units.

        E = eps_r eps_f dm c^2; returned as specific-energy * mass so the
        caller divides by receiving gas mass.
        """
        e_erg = (
            self.eps_r
            * self.eps_f
            * np.asarray(dm_accreted_msun)
            * MSUN_G
            * C_LIGHT**2
        )
        return e_erg / MSUN_G / KM_CM**2  # (km/s)^2 * Msun

    def should_seed(self, halo_masses: np.ndarray, has_bh: np.ndarray) -> np.ndarray:
        """Halos that receive a new seed BH this step."""
        return (np.asarray(halo_masses) >= self.seed_halo_mass) & ~np.asarray(
            has_bh, dtype=bool
        )

    @staticmethod
    def salpeter_time_myr(eps_r: float = 0.1) -> float:
        """e-folding (Salpeter) timescale for Eddington growth, in Myr."""
        t_s = eps_r * C_LIGHT * SIGMA_THOMSON / (4.0 * math.pi * G_CGS * M_PROTON)
        return t_s / (1.0e6 * YEAR_S)
