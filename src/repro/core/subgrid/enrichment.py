"""Stellar chemical enrichment bookkeeping.

Tracks the global metal budget as stars form and SN/AGN events return
metals to the gas phase.  The invariant enforced by tests: total metal mass
(gas-phase + locked in stars) only changes by explicit yield injections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class MetalBudget:
    """Running account of metal mass across phases (Msun/h)."""

    gas_metals: float = 0.0
    stellar_metals: float = 0.0
    injected: float = 0.0
    history: list = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.gas_metals + self.stellar_metals

    def snapshot(self, a: float) -> None:
        self.history.append(
            {
                "a": a,
                "gas": self.gas_metals,
                "stars": self.stellar_metals,
                "injected": self.injected,
            }
        )


def lock_metals_into_stars(
    gas_mass: np.ndarray,
    gas_metallicity: np.ndarray,
    forming_idx: np.ndarray,
) -> float:
    """Metal mass carried from gas into newly formed star particles."""
    if len(forming_idx) == 0:
        return 0.0
    return float(
        np.sum(gas_mass[forming_idx] * gas_metallicity[forming_idx])
    )


def inject_yields(
    gas_mass: np.ndarray,
    gas_metallicity: np.ndarray,
    gas_index: np.ndarray,
    metal_mass_per_target: np.ndarray,
) -> np.ndarray:
    """Add metal mass to gas particles; returns updated metallicity array.

    Metallicity is metal mass fraction; injection raises Z_i by
    dM_Z / m_i, clipped to [0, 1].
    """
    z = np.array(gas_metallicity, dtype=np.float64, copy=True)
    # cold path: per-step enrichment deposition over a small target set
    np.add.at(  # sanitize: allow-scatter

        z,
        gas_index,
        np.asarray(metal_mass_per_target)
        / np.maximum(gas_mass[gas_index], 1e-300),
    )
    return np.clip(z, 0.0, 1.0)


def mass_weighted_metallicity(mass: np.ndarray, metallicity: np.ndarray) -> float:
    """Mean metal mass fraction of a particle population."""
    m = np.asarray(mass)
    if m.sum() <= 0:
        return 0.0
    return float(np.sum(m * np.asarray(metallicity)) / m.sum())
