"""Stochastic star formation (Schmidt-law subgrid model).

Gas above a physical density threshold and below a temperature ceiling forms
stars on a local dynamical/depletion timescale.  Conversion is stochastic:
a gas particle becomes a star particle with probability
``1 - exp(-eps * dt / t_dyn)`` (the standard Springel-Hernquist-style
implementation; CRK-HACC's model is calibrated against observations per the
paper's Section IV-A footnote).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...constants import G_CGS, M_PROTON, X_HYDROGEN
from ..sph.eos import IdealGasEOS
from .cooling import RHO_CODE_TO_CGS


@dataclass
class StarFormationModel:
    """Density-threshold stochastic star formation.

    Parameters
    ----------
    n_h_threshold : physical hydrogen number density threshold [cm^-3]
    t_max : maximum gas temperature eligible for SF [K]
    efficiency : star formation efficiency per dynamical time
    overdensity_min : minimum comoving overdensity (guards against spurious
        SF at high redshift where physical densities are high everywhere)
    """

    n_h_threshold: float = 0.1
    t_max: float = 1.5e4
    efficiency: float = 0.02
    overdensity_min: float = 57.7
    mu: float = 0.6

    def eligible(
        self,
        rho_comoving: np.ndarray,
        u: np.ndarray,
        a: float,
        rho_mean_comoving: float,
        eos: IdealGasEOS | None = None,
    ) -> np.ndarray:
        """Boolean mask of gas particles eligible to form stars."""
        eos = eos or IdealGasEOS()
        rho_cgs = np.asarray(rho_comoving) * RHO_CODE_TO_CGS / a**3
        n_h = X_HYDROGEN * rho_cgs / M_PROTON
        temp = eos.temperature(u, mu=self.mu)
        over = np.asarray(rho_comoving) / max(rho_mean_comoving, 1e-300)
        return (
            (n_h >= self.n_h_threshold)
            & (temp <= self.t_max)
            & (over >= self.overdensity_min)
        )

    def dynamical_time(self, rho_comoving: np.ndarray, a: float) -> np.ndarray:
        """Local gravitational dynamical time t_dyn = sqrt(3 pi/(32 G rho)) [s]."""
        rho_cgs = np.asarray(rho_comoving) * RHO_CODE_TO_CGS / a**3
        return np.sqrt(3.0 * math.pi / (32.0 * G_CGS * np.maximum(rho_cgs, 1e-60)))

    def formation_probability(
        self, rho_comoving: np.ndarray, dt_seconds: float, a: float
    ) -> np.ndarray:
        """Probability a given eligible particle converts during dt."""
        t_dyn = self.dynamical_time(rho_comoving, a)
        return 1.0 - np.exp(-self.efficiency * dt_seconds / t_dyn)

    def select_forming(
        self,
        rho_comoving: np.ndarray,
        u: np.ndarray,
        dt_seconds: float,
        a: float,
        rho_mean_comoving: float,
        rng: np.random.Generator,
        eos: IdealGasEOS | None = None,
    ) -> np.ndarray:
        """Indices of gas particles that convert to stars this step."""
        ok = self.eligible(rho_comoving, u, a, rho_mean_comoving, eos=eos)
        prob = np.zeros(len(np.atleast_1d(rho_comoving)))
        prob[ok] = self.formation_probability(
            np.asarray(rho_comoving)[ok], dt_seconds, a
        )
        draw = rng.uniform(size=prob.shape)
        return np.nonzero(draw < prob)[0]
