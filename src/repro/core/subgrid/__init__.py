"""Subgrid astrophysics: cooling, star formation, SN/AGN feedback, enrichment."""

from .agn import AGNModel, bondi_rate, eddington_rate
from .cooling import CoolingModel, lambda_cooling, uv_heating_rate
from .enrichment import (
    MetalBudget,
    inject_yields,
    lock_metals_into_stars,
    mass_weighted_metallicity,
)
from .star_formation import StarFormationModel
from .stellar_evolution import AGBModel, SNIaModel, enrichment_history
from .supernova import SupernovaModel, kernel_weights_for_sources

__all__ = [
    "AGBModel",
    "AGNModel",
    "CoolingModel",
    "SNIaModel",
    "MetalBudget",
    "StarFormationModel",
    "SupernovaModel",
    "bondi_rate",
    "enrichment_history",
    "eddington_rate",
    "inject_yields",
    "kernel_weights_for_sources",
    "lambda_cooling",
    "lock_metals_into_stars",
    "mass_weighted_metallicity",
    "uv_heating_rate",
]
