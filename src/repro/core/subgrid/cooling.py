"""Radiative and metal-line cooling with UV-background heating.

Implements an analytic approximation to the standard collisional-ionization
equilibrium cooling function (Sutherland & Dopita-like shape): primordial
H/He cooling with a 1.5e4 K cutoff, bremsstrahlung at high temperature, and
a metallicity-scaled metal-line bump near 1e5-1e7 K.  A redshift-dependent
photoheating floor stands in for the UV background.

Units: specific internal energy u in (km/s)^2; densities passed in comoving
Msun/Mpc^3 (h-units) with the scale factor converting to physical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...constants import (
    KM_CM,
    M_PROTON,
    MPC_CM,
    MSUN_G,
    X_HYDROGEN,
    Z_SOLAR,
)
from ..sph.eos import IdealGasEOS

# conversion: comoving Msun/Mpc^3 -> physical g/cm^3 (at a=1)
RHO_CODE_TO_CGS = MSUN_G / MPC_CM**3
# erg/g -> (km/s)^2
ERG_PER_G_TO_CODE = 1.0 / KM_CM**2


def lambda_cooling(temp: np.ndarray, metallicity: np.ndarray) -> np.ndarray:
    """Cooling function Lambda(T, Z) in erg cm^3 / s.

    Piecewise-smooth fit: zero below ~1.5e4 K (neutral gas), H/He peak near
    1e5 K at ~2e-22, a metal bump scaling with Z/Zsun peaking near 2e5 K at
    ~1e-21 (Z/Zsun), and free-free ~ 2.3e-27 sqrt(T) at high T.
    """
    t = np.asarray(temp, dtype=np.float64)
    z = np.asarray(metallicity, dtype=np.float64)
    lam = np.zeros_like(t)

    # primordial H/He: log-normal bump centered at log T = 5.1
    logt = np.log10(np.maximum(t, 1.0))
    hhe = 2.0e-22 * np.exp(-((logt - 5.1) ** 2) / (2 * 0.45**2))
    # metal lines: bump centered at log T = 5.4, linear in Z
    metals = 1.0e-21 * (z / Z_SOLAR) * np.exp(-((logt - 5.4) ** 2) / (2 * 0.5**2))
    # free-free
    ff = 2.3e-27 * np.sqrt(np.maximum(t, 0.0))

    lam = hhe + metals + ff
    # sharp cutoff below 1.5e4 K (no collisional excitation of H)
    cutoff = 1.0 / (1.0 + np.exp(-(t - 1.5e4) / 2.0e3))
    return lam * cutoff


def uv_heating_rate(z_redshift: float) -> float:
    """Photoheating rate per H atom, erg/s (crude HM12-like evolution).

    Peaks near z ~ 2-3 and declines toward z = 0 and high redshift.
    """
    zr = max(z_redshift, 0.0)
    amp = 1.0e-24  # erg/s per H atom at peak
    shape = np.exp(-((zr - 2.5) ** 2) / (2 * 2.0**2))
    return float(amp * shape)


@dataclass
class CoolingModel:
    """Radiative cooling + UV heating operator for gas particles.

    ``t_floor`` imposes a temperature floor (photoionization equilibrium);
    ``mu`` is the mean molecular weight used for T(u) conversion.
    """

    eos: IdealGasEOS = None
    mu: float = 0.59
    t_floor: float = 1.0e4
    enable_uv: bool = True
    #: photoheating ceiling: ionized gas above this temperature no longer
    #: absorbs UV efficiently, so heating shuts off (prevents the runaway
    #: that heating ~ n while cooling ~ n^2 would otherwise cause at low
    #: density)
    t_uv_ceiling: float = 3.0e4

    def __post_init__(self) -> None:
        if self.eos is None:
            self.eos = IdealGasEOS()

    def du_dt(
        self,
        u: np.ndarray,
        rho_comoving: np.ndarray,
        metallicity: np.ndarray,
        a: float = 1.0,
    ) -> np.ndarray:
        """Net specific energy rate (km/s)^2 per second (physical time)."""
        rho_cgs = np.asarray(rho_comoving) * RHO_CODE_TO_CGS / a**3
        n_h = X_HYDROGEN * rho_cgs / M_PROTON
        temp = self.eos.temperature(u, mu=self.mu)
        lam = lambda_cooling(temp, metallicity)
        cool = lam * n_h**2 / np.maximum(rho_cgs, 1e-60)  # erg/g/s
        heat = 0.0
        if self.enable_uv:
            z = 1.0 / a - 1.0
            heat = uv_heating_rate(z) * n_h / np.maximum(rho_cgs, 1e-60)
            # smooth shutoff above the ceiling temperature
            heat = heat / (1.0 + (temp / self.t_uv_ceiling) ** 4)
        return (heat - cool) * ERG_PER_G_TO_CODE

    def cooling_time(self, u, rho_comoving, metallicity, a: float = 1.0):
        """t_cool = u / |du/dt| in seconds (inf where net rate is ~0)."""
        rate = self.du_dt(u, rho_comoving, metallicity, a=a)
        with np.errstate(divide="ignore"):
            return np.abs(np.asarray(u)) / np.maximum(np.abs(rate), 1e-300)

    def apply(
        self,
        u: np.ndarray,
        rho_comoving: np.ndarray,
        metallicity: np.ndarray,
        dt_seconds: float,
        a: float = 1.0,
        n_sub: int = 8,
    ) -> np.ndarray:
        """Integrate cooling over ``dt_seconds`` with subcycling + floor.

        Uses an explicit sub-stepped update with per-substep rate refresh,
        clamped so u never drops below the temperature floor or goes
        negative; robust for stiff cooling without an implicit solve.
        """
        u = np.array(u, dtype=np.float64, copy=True)
        u_floor = self.eos.internal_energy_from_temperature(self.t_floor, mu=self.mu)
        dt_sub = dt_seconds / n_sub
        for _ in range(n_sub):
            rate = self.du_dt(u, rho_comoving, metallicity, a=a)
            # cap the cooling loss per substep at 50% of u for stability
            du = rate * dt_sub
            du = np.maximum(du, -0.5 * np.abs(u))
            u = u + du
            u = np.maximum(u, u_floor)
        return u
