"""Extended stellar evolution channels: SNIa and AGB mass return.

The paper's subgrid suite includes "stellar chemical enrichment" beyond
prompt core-collapse supernovae.  This module adds the two standard
delayed channels: Type Ia supernovae following a t^-1 delay-time
distribution (iron-rich yields, relevant for cluster metallicity), and
AGB winds returning a large fraction of the stellar mass to the gas over
gigayears.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...constants import KM_CM, MSUN_G


@dataclass(frozen=True)
class SNIaModel:
    """Type Ia supernovae with a power-law delay-time distribution.

    Rate per unit formed stellar mass: dN/dt = N_Ia * (t / t_norm)^-1 /
    [t ln(t_max/t_min)] for t in [t_min, t_max] — the observational t^-1
    DTD, normalized so the time integral is ``n_per_msun``.
    """

    n_per_msun: float = 1.3e-3  # SNIa per Msun formed (observed)
    t_min_myr: float = 40.0  # first white dwarfs
    t_max_myr: float = 1.0e4
    energy_erg: float = 1.0e51
    iron_yield_msun: float = 0.7  # per event, mostly iron

    def events_between(
        self, stellar_mass_msun, age0_myr: float, age1_myr: float
    ) -> np.ndarray:
        """Expected SNIa count for star particles between two ages."""
        lo = np.clip(age0_myr, self.t_min_myr, self.t_max_myr)
        hi = np.clip(age1_myr, self.t_min_myr, self.t_max_myr)
        norm = np.log(self.t_max_myr / self.t_min_myr)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(hi > lo, np.log(hi / lo) / norm, 0.0)
        return np.asarray(stellar_mass_msun) * self.n_per_msun * frac

    def specific_energy(self, n_events, gas_mass_msun) -> np.ndarray:
        """Heating in (km/s)^2 when n_events deposit into gas_mass."""
        e_erg = np.asarray(n_events) * self.energy_erg
        return e_erg / (np.asarray(gas_mass_msun) * MSUN_G) / KM_CM**2

    def iron_mass(self, n_events) -> np.ndarray:
        return np.asarray(n_events) * self.iron_yield_msun


@dataclass(frozen=True)
class AGBModel:
    """Asymptotic-giant-branch mass return.

    A stellar population returns ``return_fraction`` of its mass over a
    few Gyr; the cumulative returned fraction follows the standard
    log-linear fit R(t) = R_inf * ln(1 + t/tau) / ln(1 + t_max/tau).
    """

    return_fraction: float = 0.35
    tau_myr: float = 300.0
    t_max_myr: float = 1.0e4
    metal_yield: float = 0.01  # metals per unit returned mass

    def cumulative_return_fraction(self, age_myr) -> np.ndarray:
        t = np.clip(np.asarray(age_myr, dtype=np.float64), 0.0, self.t_max_myr)
        norm = np.log1p(self.t_max_myr / self.tau_myr)
        return self.return_fraction * np.log1p(t / self.tau_myr) / norm

    def mass_returned_between(
        self, stellar_mass_msun, age0_myr: float, age1_myr: float
    ) -> np.ndarray:
        """Gas mass returned between two ages (>= 0, monotone in age)."""
        f0 = self.cumulative_return_fraction(age0_myr)
        f1 = self.cumulative_return_fraction(age1_myr)
        return np.asarray(stellar_mass_msun) * np.maximum(f1 - f0, 0.0)

    def metal_mass_returned(self, mass_returned) -> np.ndarray:
        return np.asarray(mass_returned) * self.metal_yield


def enrichment_history(
    stellar_mass_msun: float,
    ages_myr: np.ndarray,
    snia: SNIaModel | None = None,
    agb: AGBModel | None = None,
) -> dict:
    """Cumulative SNIa counts and AGB mass return along an age grid.

    Convenience for tests/examples: the full delayed-enrichment budget of
    one stellar population.
    """
    snia = snia or SNIaModel()
    agb = agb or AGBModel()
    ages = np.asarray(ages_myr, dtype=np.float64)
    n_ia = np.array(
        [float(snia.events_between(stellar_mass_msun, 0.0, a)) for a in ages]
    )
    m_ret = np.array(
        [float(agb.mass_returned_between(stellar_mass_msun, 0.0, a))
         for a in ages]
    )
    return {
        "ages_myr": ages,
        "snia_events": n_ia,
        "iron_msun": snia.iron_mass(n_ia),
        "mass_returned_msun": m_ret,
        "agb_metals_msun": agb.metal_mass_returned(m_ret),
    }
