"""Supernova (stellar) feedback: thermal energy injection and yields.

Newly formed star particles return energy and metals to surrounding gas
after a short delay.  The canonical budget is ~1e51 erg per ~100 Msun of
stars formed; metals are returned with a fixed yield.  Energy is deposited
kernel-weighted onto the gas neighbors of the star (thermal dump), the
scheme used by large-volume simulations at this resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...constants import KM_CM, MSUN_G


# specific SN energy: 1e51 erg per 100 Msun of stars, in (km/s)^2 per unit
# stellar mass (Msun-normalized specific energy)
SN_ERG_PER_100MSUN = 1.0e51


@dataclass
class SupernovaModel:
    """Delayed thermal SN feedback with metal yields.

    Parameters
    ----------
    energy_per_mass : feedback specific energy in (km/s)^2 (per Msun of
        stars formed, deposited into gas); default from 1e51 erg/100 Msun.
    metal_yield : metal mass returned per unit stellar mass formed
    delay_myr : time between star formation and the SN event [Myr]
    """

    energy_per_mass: float = SN_ERG_PER_100MSUN / (100.0 * MSUN_G) / KM_CM**2
    metal_yield: float = 0.02
    delay_myr: float = 10.0

    def due(self, star_age_myr: np.ndarray, already_fired: np.ndarray) -> np.ndarray:
        """Stars whose SN event fires this step."""
        return (np.asarray(star_age_myr) >= self.delay_myr) & ~np.asarray(
            already_fired, dtype=bool
        )

    def deposit(
        self,
        star_mass: np.ndarray,
        weights: np.ndarray,
        gas_index: np.ndarray,
        star_index: np.ndarray,
        gas_mass: np.ndarray,
        gas_u: np.ndarray,
        gas_metallicity: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distribute SN energy and metals from stars to neighbor gas.

        ``(star_index, gas_index, weights)`` are flat star->gas neighbor
        arrays where weights sum to 1 per star.  Returns updated
        ``(gas_u, gas_metallicity)`` arrays (copies).
        """
        gas_u = np.array(gas_u, dtype=np.float64, copy=True)
        gas_metallicity = np.array(gas_metallicity, dtype=np.float64, copy=True)

        m_star = np.asarray(star_mass)[star_index]
        de_total = self.energy_per_mass * m_star * weights  # energy chunk
        dm_metal = self.metal_yield * m_star * weights

        # cold path: a handful of SN events per step, tiny index sets
        # specific energy: dE / m_gas
        np.add.at(gas_u, gas_index, de_total / np.maximum(gas_mass[gas_index], 1e-300))  # sanitize: allow-scatter
        # metallicity: add metal mass / gas mass
        np.add.at(  # sanitize: allow-scatter
            gas_metallicity,
            gas_index,
            dm_metal / np.maximum(gas_mass[gas_index], 1e-300),
        )
        return gas_u, np.clip(gas_metallicity, 0.0, 1.0)


def kernel_weights_for_sources(
    src_pos: np.ndarray,
    gas_pos: np.ndarray,
    radius: float,
    box: float | None = None,
):
    """Distance-weighted source->gas coupling lists.

    Returns (src_index, gas_index, weights) with weights normalized per
    source.  Sources with no gas inside ``radius`` couple to their single
    nearest gas particle so no feedback energy is ever lost.
    """
    src_pos = np.atleast_2d(src_pos)
    n_src = len(src_pos)
    si_chunks, gi_chunks, w_chunks = [], [], []
    for s in range(n_src):
        d = gas_pos - src_pos[s]
        if box is not None:
            d -= box * np.round(d / box)
        r = np.sqrt(np.einsum("na,na->n", d, d))
        idx = np.nonzero(r < radius)[0]
        if len(idx) == 0:
            idx = np.array([int(np.argmin(r))])
        w = np.maximum(1.0 - r[idx] / max(radius, 1e-300), 1e-6)
        w = w / w.sum()
        si_chunks.append(np.full(len(idx), s, dtype=np.int64))
        gi_chunks.append(idx)
        w_chunks.append(w)
    return (
        np.concatenate(si_chunks),
        np.concatenate(gi_chunks),
        np.concatenate(w_chunks),
    )
