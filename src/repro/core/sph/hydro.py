"""CRKSPH hydrodynamics: densities, volumes, and conservative pair forces.

The evolution equations follow Frontiere, Raskin & Owen (2017).  For each
symmetric pair (i, j) the antisymmetrized corrected-kernel gradient

    G_ij = 0.5 * (grad_i W^R_ij - grad_j W^R_ji)

drives momentum and energy exchange:

    dv_i/dt = -(1/m_i) sum_j V_i V_j  Pbar_ij  G_ij
    du_i/dt = +(1/(2 m_i)) sum_j V_i V_j Pbar_ij (v_i - v_j) . G_ij

with Pbar_ij = (P_i + P_j)/2 + q_ij (artificial viscosity pseudo-pressure).
Because G_ij = -G_ji and Pbar is symmetric, total momentum and total energy
are conserved to round-off whenever the pair list is symmetric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import pair_displacements
from ..scatter import segment_sum
from .crk import CRKCorrections, compute_corrections, corrected_kernel_pairs
from .eos import IdealGasEOS
from .kernels import Kernel
from .pair_batch import PairBatch, make_pair_batch
from .viscosity import MonaghanViscosity, balsara_switch, velocity_divergence_curl


def compute_number_density(pos, h, pi, pj, kernel, box=None, dx_pairs=None,
                           batch=None):
    """SPH number density n_i = sum_j W_ij(h_i) and volumes V_i = 1/n_i.

    ``dx_pairs`` optionally supplies precomputed displacements; ``batch`` a
    full ``PairBatch`` (shared pair state, supersedes the other pair args).
    """
    n = pos.shape[0]
    if batch is not None:
        num = batch.seg.sum(batch.w_i)
    else:
        if dx_pairs is None:
            dx_pairs = pair_displacements(pos, pi, pj, box)
        r = np.sqrt(np.sum(dx_pairs * dx_pairs, axis=-1))
        num = segment_sum(kernel.w(r, h[pi]), pi, n)
    num = np.maximum(num, 1e-300)
    return num, 1.0 / num


def compute_density(
    pos, mass, h, pi, pj, kernel, corrections: CRKCorrections, box=None,
    dx_pairs=None, batch=None,
):
    """Corrected mass density rho_i = sum_j m_j W^R_ij."""
    n = pos.shape[0]
    if batch is not None:
        wr, _ = corrected_kernel_pairs(
            corrections, pos, h, batch.pi, batch.pj, kernel,
            dx_pairs=batch.dx, wg=batch.kernel_i(),
        )
        rho = batch.seg.sum(mass[batch.pj] * wr)
    else:
        if dx_pairs is None:
            dx_pairs = pair_displacements(pos, pi, pj, box)
        wr, _ = corrected_kernel_pairs(
            corrections, pos, h, pi, pj, kernel, dx_pairs=dx_pairs
        )
        rho = segment_sum(mass[pj] * wr, pi, n)
    return np.maximum(rho, 1e-300)


def update_smoothing_lengths(
    vol, eta: float = 1.3, n_target: int | None = None, h_old=None,
    h_min: float = 0.0, h_max: float = np.inf, relax: float = 0.5,
):
    """New support radii from current volumes.

    h_i = eta_eff * V_i^(1/3), where eta_eff is chosen so a uniform
    distribution captures roughly ``n_target`` neighbors (if given).  The
    update is relaxed against ``h_old`` for stability during subcycles.
    """
    if n_target is not None:
        # uniform field: neighbors within h = (4/3) pi h^3 / V  -> solve for h
        eta = (3.0 * n_target / (4.0 * np.pi)) ** (1.0 / 3.0)
    h_new = eta * np.asarray(vol) ** (1.0 / 3.0)
    if h_old is not None:
        h_new = relax * h_new + (1.0 - relax) * np.asarray(h_old)
    return np.clip(h_new, h_min, h_max)


@dataclass
class HydroDerivatives:
    """Output of one CRKSPH force evaluation."""

    accel: np.ndarray  # (N, 3) dv/dt
    du_dt: np.ndarray  # (N,)
    max_signal_speed: np.ndarray  # (N,) per-particle signal velocity (for CFL)
    rho: np.ndarray
    pressure: np.ndarray
    volume: np.ndarray
    corrections: CRKCorrections


def symmetrized_gradients(corrections, pos, h, pi, pj, kernel, box=None,
                          batch=None):
    """Pairwise antisymmetrized corrected-kernel gradients G_ij.

    G_ij = grad_i W^R_ij - grad_j W^R_ji.  Each one-sided corrected
    gradient reproduces half the continuum pressure gradient when paired
    with (P_i + P_j)/2 — the gather side contributes grad(P)/2 (first-order
    consistency) and the P_i term vanishes (zeroth-order) — so the *sum* of
    the two orientations, not their average, recovers -grad(P)/rho exactly
    for linear fields (Frontiere, Raskin & Owen 2017, Section 3.2).
    Antisymmetry (G_ij = -G_ji) is what makes the pairing conservative.

    Requires a symmetric pair list.  Returns (G, dx) with G of shape (P, 3).
    """
    if batch is not None:
        pi, pj, dx = batch.pi, batch.pj, batch.dx
        wg_ij, wg_ji = batch.kernel_i(), batch.kernel_j()
    else:
        dx = pair_displacements(pos, pi, pj, box)
        wg_ij = wg_ji = None
    _, g_ij = corrected_kernel_pairs(
        corrections, pos, h, pi, pj, kernel, dx_pairs=dx, wg=wg_ij
    )
    # grad_j W^R_ji: corrections of j, separation x_j - x_i = -dx, h_j
    _, g_ji = corrected_kernel_pairs(
        corrections, pos, h, pj, pi, kernel, dx_pairs=-dx, wg=wg_ji
    )
    return g_ij - g_ji, dx


def crksph_derivatives(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    u: np.ndarray,
    h: np.ndarray,
    pi: np.ndarray,
    pj: np.ndarray,
    kernel: Kernel,
    eos: IdealGasEOS | None = None,
    viscosity: MonaghanViscosity | None = None,
    box: float | None = None,
    use_balsara: bool = True,
    batch: PairBatch | None = None,
) -> HydroDerivatives:
    """Evaluate CRKSPH accelerations and energy derivatives.

    ``pi, pj`` must be a symmetric pair list (both orderings present) that
    includes self pairs; conservation tests enforce this contract.  Pair
    geometry, base kernels, and the CSR reduction plan are computed once in
    a ``PairBatch`` (or accepted prebuilt via ``batch``) and shared by
    every stage.
    """
    eos = eos or IdealGasEOS()
    viscosity = viscosity or MonaghanViscosity()

    if batch is None:
        batch = make_pair_batch(pos, h, pi, pj, kernel, box=box)
    pi, pj, dx = batch.pi, batch.pj, batch.dx

    _, vol = compute_number_density(pos, h, pi, pj, kernel, batch=batch)
    corrections = compute_corrections(pos, vol, h, pi, pj, kernel, batch=batch)

    # one corrected-kernel evaluation per orientation serves both the
    # density sum (forward W^R) and the antisymmetrized gradient pairing
    wr_ij, g_ij = corrected_kernel_pairs(
        corrections, pos, h, pi, pj, kernel, dx_pairs=dx, wg=batch.kernel_i()
    )
    rho = np.maximum(batch.seg.sum(mass[pj] * wr_ij), 1e-300)
    pressure = eos.pressure(rho, u)
    cs = eos.sound_speed(rho, u)

    # grad_j W^R_ji: corrections of j, separation x_j - x_i = -dx, h_j
    _, g_ji = corrected_kernel_pairs(
        corrections, pos, h, pj, pi, kernel, dx_pairs=-dx, wg=batch.kernel_j()
    )
    g_pair = g_ij - g_ji

    dv = vel[pi] - vel[pj]
    h_ij = 0.5 * (h[pi] + h[pj])
    c_ij = 0.5 * (cs[pi] + cs[pj])
    rho_ij = 0.5 * (rho[pi] + rho[pj])

    limiter = None
    if use_balsara:
        div_v, curl_v = velocity_divergence_curl(
            pos, vel, vol, h, pi, pj, kernel, batch=batch
        )
        f = balsara_switch(div_v, curl_v, cs, h)
        limiter = 0.5 * (f[pi] + f[pj])

    # viscous pseudo-pressure, symmetric in (i, j).  The 0.25 factor keeps
    # the classic Monaghan strength: G_ij carries twice the one-sided
    # kernel gradient the standard Pi_ij convention pairs with.
    pi_visc = viscosity.pi_pair(dx, dv, h_ij, c_ij, rho_ij, limiter=limiter)
    q_ij = 0.25 * rho[pi] * rho[pj] * pi_visc

    pbar = 0.5 * (pressure[pi] + pressure[pj]) + q_ij
    vv = vol[pi] * vol[pj]
    pair_force = (vv * pbar)[:, None] * g_pair  # momentum flux of pair on i

    accel = batch.seg.sum(-pair_force / mass[pi, None])

    work = 0.5 * vv * pbar * np.einsum("pa,pa->p", dv, g_pair)
    du_dt = batch.seg.sum(work / mass[pi])

    # signal speed for CFL: c_i + c_j - min(0, mu_ij)-style estimate
    mu = viscosity.mu_pair(dx, dv, h_ij)
    vsig_pair = c_ij - 2.0 * np.minimum(mu, 0.0)
    vsig = batch.seg.max(vsig_pair, initial=0.0)

    return HydroDerivatives(
        accel=accel,
        du_dt=du_dt,
        max_signal_speed=vsig,
        rho=rho,
        pressure=pressure,
        volume=vol,
        corrections=corrections,
    )
