"""CRKSPH hydrodynamics: densities, volumes, and conservative pair forces.

The evolution equations follow Frontiere, Raskin & Owen (2017).  For each
symmetric pair (i, j) the antisymmetrized corrected-kernel gradient

    G_ij = 0.5 * (grad_i W^R_ij - grad_j W^R_ji)

drives momentum and energy exchange:

    dv_i/dt = -(1/m_i) sum_j V_i V_j  Pbar_ij  G_ij
    du_i/dt = +(1/(2 m_i)) sum_j V_i V_j Pbar_ij (v_i - v_j) . G_ij

with Pbar_ij = (P_i + P_j)/2 + q_ij (artificial viscosity pseudo-pressure).
Because G_ij = -G_ji and Pbar is symmetric, total momentum and total energy
are conserved to round-off whenever the pair list is symmetric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import pair_displacements
from ..scatter import SegmentReducer, segment_sum
from .crk import CRKCorrections, compute_corrections, corrected_kernel_pairs
from .eos import IdealGasEOS
from .kernels import Kernel
from .pair_batch import PairBatch, make_pair_batch
from .viscosity import MonaghanViscosity, balsara_switch, velocity_divergence_curl


def compute_number_density(pos, h, pi, pj, kernel, box=None, dx_pairs=None,
                           batch=None):
    """SPH number density n_i = sum_j W_ij(h_i) and volumes V_i = 1/n_i.

    ``dx_pairs`` optionally supplies precomputed displacements; ``batch`` a
    full ``PairBatch`` (shared pair state, supersedes the other pair args).
    """
    n = pos.shape[0]
    if batch is not None:
        num = batch.seg.sum(batch.w_i)
    else:
        if dx_pairs is None:
            dx_pairs = pair_displacements(pos, pi, pj, box)
        r = np.sqrt(np.sum(dx_pairs * dx_pairs, axis=-1))
        num = segment_sum(kernel.w(r, h[pi]), pi, n)
    num = np.maximum(num, 1e-300)
    return num, 1.0 / num


def compute_density(
    pos, mass, h, pi, pj, kernel, corrections: CRKCorrections, box=None,
    dx_pairs=None, batch=None,
):
    """Corrected mass density rho_i = sum_j m_j W^R_ij."""
    n = pos.shape[0]
    if batch is not None:
        wr, _ = corrected_kernel_pairs(
            corrections, pos, h, batch.pi, batch.pj, kernel,
            dx_pairs=batch.dx, wg=batch.kernel_i(),
        )
        rho = batch.seg.sum(mass[batch.pj] * wr)
    else:
        if dx_pairs is None:
            dx_pairs = pair_displacements(pos, pi, pj, box)
        wr, _ = corrected_kernel_pairs(
            corrections, pos, h, pi, pj, kernel, dx_pairs=dx_pairs
        )
        rho = segment_sum(mass[pj] * wr, pi, n)
    return np.maximum(rho, 1e-300)


def update_smoothing_lengths(
    vol, eta: float = 1.3, n_target: int | None = None, h_old=None,
    h_min: float = 0.0, h_max: float = np.inf, relax: float = 0.5,
):
    """New support radii from current volumes.

    h_i = eta_eff * V_i^(1/3), where eta_eff is chosen so a uniform
    distribution captures roughly ``n_target`` neighbors (if given).  The
    update is relaxed against ``h_old`` for stability during subcycles.
    """
    if n_target is not None:
        # uniform field: neighbors within h = (4/3) pi h^3 / V  -> solve for h
        eta = (3.0 * n_target / (4.0 * np.pi)) ** (1.0 / 3.0)
    h_new = eta * np.asarray(vol) ** (1.0 / 3.0)
    if h_old is not None:
        h_new = relax * h_new + (1.0 - relax) * np.asarray(h_old)
    return np.clip(h_new, h_min, h_max)


@dataclass
class HydroDerivatives:
    """Output of one CRKSPH force evaluation."""

    accel: np.ndarray  # (N, 3) dv/dt
    du_dt: np.ndarray  # (N,)
    max_signal_speed: np.ndarray  # (N,) per-particle signal velocity (for CFL)
    rho: np.ndarray
    pressure: np.ndarray
    volume: np.ndarray
    corrections: CRKCorrections


def symmetrized_gradients(corrections, pos, h, pi, pj, kernel, box=None,
                          batch=None):
    """Pairwise antisymmetrized corrected-kernel gradients G_ij.

    G_ij = grad_i W^R_ij - grad_j W^R_ji.  Each one-sided corrected
    gradient reproduces half the continuum pressure gradient when paired
    with (P_i + P_j)/2 — the gather side contributes grad(P)/2 (first-order
    consistency) and the P_i term vanishes (zeroth-order) — so the *sum* of
    the two orientations, not their average, recovers -grad(P)/rho exactly
    for linear fields (Frontiere, Raskin & Owen 2017, Section 3.2).
    Antisymmetry (G_ij = -G_ji) is what makes the pairing conservative.

    Requires a symmetric pair list.  Returns (G, dx) with G of shape (P, 3).
    """
    if batch is not None:
        pi, pj, dx = batch.pi, batch.pj, batch.dx
        wg_ij, wg_ji = batch.kernel_i(), batch.kernel_j()
    else:
        dx = pair_displacements(pos, pi, pj, box)
        wg_ij = wg_ji = None
    _, g_ij = corrected_kernel_pairs(
        corrections, pos, h, pi, pj, kernel, dx_pairs=dx, wg=wg_ij
    )
    # grad_j W^R_ji: corrections of j, separation x_j - x_i = -dx, h_j
    _, g_ji = corrected_kernel_pairs(
        corrections, pos, h, pj, pi, kernel, dx_pairs=-dx, wg=wg_ji
    )
    return g_ij - g_ji, dx


def crksph_derivatives(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    u: np.ndarray,
    h: np.ndarray,
    pi: np.ndarray,
    pj: np.ndarray,
    kernel: Kernel,
    eos: IdealGasEOS | None = None,
    viscosity: MonaghanViscosity | None = None,
    box: float | None = None,
    use_balsara: bool = True,
    batch: PairBatch | None = None,
) -> HydroDerivatives:
    """Evaluate CRKSPH accelerations and energy derivatives.

    ``pi, pj`` must be a symmetric pair list (both orderings present) that
    includes self pairs; conservation tests enforce this contract.  Pair
    geometry, base kernels, and the CSR reduction plan are computed once in
    a ``PairBatch`` (or accepted prebuilt via ``batch``) and shared by
    every stage.
    """
    eos = eos or IdealGasEOS()
    viscosity = viscosity or MonaghanViscosity()

    if batch is None:
        batch = make_pair_batch(pos, h, pi, pj, kernel, box=box)
    pi, pj, dx = batch.pi, batch.pj, batch.dx

    _, vol = compute_number_density(pos, h, pi, pj, kernel, batch=batch)
    corrections = compute_corrections(pos, vol, h, pi, pj, kernel, batch=batch)

    # one corrected-kernel evaluation per orientation serves both the
    # density sum (forward W^R) and the antisymmetrized gradient pairing
    wr_ij, g_ij = corrected_kernel_pairs(
        corrections, pos, h, pi, pj, kernel, dx_pairs=dx, wg=batch.kernel_i()
    )
    rho = np.maximum(batch.seg.sum(mass[pj] * wr_ij), 1e-300)
    pressure = eos.pressure(rho, u)
    cs = eos.sound_speed(rho, u)

    # grad_j W^R_ji: corrections of j, separation x_j - x_i = -dx, h_j
    _, g_ji = corrected_kernel_pairs(
        corrections, pos, h, pj, pi, kernel, dx_pairs=-dx, wg=batch.kernel_j()
    )
    g_pair = g_ij - g_ji

    dv = vel[pi] - vel[pj]
    h_ij = 0.5 * (h[pi] + h[pj])
    c_ij = 0.5 * (cs[pi] + cs[pj])
    rho_ij = 0.5 * (rho[pi] + rho[pj])

    limiter = None
    if use_balsara:
        div_v, curl_v = velocity_divergence_curl(
            pos, vel, vol, h, pi, pj, kernel, batch=batch
        )
        f = balsara_switch(div_v, curl_v, cs, h)
        limiter = 0.5 * (f[pi] + f[pj])

    # viscous pseudo-pressure, symmetric in (i, j).  The 0.25 factor keeps
    # the classic Monaghan strength: G_ij carries twice the one-sided
    # kernel gradient the standard Pi_ij convention pairs with.
    pi_visc = viscosity.pi_pair(dx, dv, h_ij, c_ij, rho_ij, limiter=limiter)
    q_ij = 0.25 * rho[pi] * rho[pj] * pi_visc

    pbar = 0.5 * (pressure[pi] + pressure[pj]) + q_ij
    vv = vol[pi] * vol[pj]
    pair_force = (vv * pbar)[:, None] * g_pair  # momentum flux of pair on i

    accel = batch.seg.sum(-pair_force / mass[pi, None])

    work = 0.5 * vv * pbar * np.einsum("pa,pa->p", dv, g_pair)
    du_dt = batch.seg.sum(work / mass[pi])

    # signal speed for CFL: c_i + c_j - min(0, mu_ij)-style estimate
    mu = viscosity.mu_pair(dx, dv, h_ij)
    vsig_pair = c_ij - 2.0 * np.minimum(mu, 0.0)
    vsig = batch.seg.max(vsig_pair, initial=0.0)

    return HydroDerivatives(
        accel=accel,
        du_dt=du_dt,
        max_signal_speed=vsig,
        rho=rho,
        pressure=pressure,
        volume=vol,
        corrections=corrections,
    )


@dataclass
class ActiveHydroDerivatives:
    """Output of an active-subset CRKSPH force evaluation.

    ``accel``/``du_dt``/``max_signal_speed`` are compact, one row per sink
    (``sinks[k]`` is the particle index of row ``k``).  ``rho``/``pressure``
    are the freshly evaluated densities on the 1-hop closure ``tier1``
    (compact, aligned with ``tier1``); ``volume`` likewise on the 2-hop
    closure ``tier2``.  ``n_pairs`` counts pair rows streamed (diagnostics
    for ``SubcycleStats``).
    """

    sinks: np.ndarray
    accel: np.ndarray  # (S, 3)
    du_dt: np.ndarray  # (S,)
    max_signal_speed: np.ndarray  # (S,)
    tier1: np.ndarray
    rho: np.ndarray  # aligned with tier1
    pressure: np.ndarray  # aligned with tier1
    tier2: np.ndarray
    volume: np.ndarray  # aligned with tier2
    n_pairs: int = 0


def crksph_derivatives_active(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    u: np.ndarray,
    h: np.ndarray,
    slices,
    kernel: Kernel,
    eos: IdealGasEOS | None = None,
    viscosity: MonaghanViscosity | None = None,
    box: float | None = None,
    use_balsara: bool = True,
) -> ActiveHydroDerivatives:
    """CRKSPH derivatives for the active sinks of an ``ActivePairSlices``.

    Produces, row for row, the same accelerations and energy derivatives
    ``crksph_derivatives`` would return for the sink particles — to
    round-off, since every stage runs the same per-pair arithmetic over the
    same CSR-ordered pair subsets — while touching only the pairs the
    active rows actually need (paper Section IV-A: only active rungs are
    force-evaluated on a substep).  The dependency closure is staged
    exactly:

    * volumes on the 2-hop closure (``tier2`` pairs; a sink's corrections
      gather its neighbors' volumes, and those neighbors' volumes gather
      one hop further);
    * CRK corrections, corrected density, pressure, sound speed, and the
      Balsara limiter on the 1-hop closure (``tier1`` pairs; the pair force
      reads all of these at both ends of every sink pair);
    * the antisymmetrized pair force, work, and signal speed on the sink
      pairs only, assembled into compact rows without densifying to N.

    Inactive particles participate purely as gather-only sources.
    """
    eos = eos or IdealGasEOS()
    viscosity = viscosity or MonaghanViscosity()
    sl = slices
    n = pos.shape[0]
    n_sinks = len(sl.sinks)
    if n_sinks == 0:
        empty = np.empty(0, dtype=np.intp)
        return ActiveHydroDerivatives(
            sinks=empty, accel=np.zeros((0, 3)), du_dt=np.zeros(0),
            max_signal_speed=np.zeros(0), tier1=empty, rho=np.zeros(0),
            pressure=np.zeros(0), tier2=empty, volume=np.zeros(0),
        )

    # -- tier2: volumes (only the base kernel sum) ---------------------------
    sink2 = np.searchsorted(sl.tier2, sl.pi2)
    b2 = make_pair_batch(pos, h, sl.pi2, sl.pj2, kernel, box=box,
                         sink_ids=sink2, n_sinks=len(sl.tier2))
    _, vol2 = compute_number_density(pos, h, sl.pi2, sl.pj2, kernel, batch=b2)
    # full-length staging arrays: later stages gather neighbor values with
    # global indices; rows outside the closure are never read
    vol_full = np.zeros(n)
    vol_full[sl.tier2] = vol2

    # -- tier1: corrections, density, pressure, limiter ----------------------
    sink1 = np.searchsorted(sl.tier1, sl.pi1)
    b1 = make_pair_batch(pos, h, sl.pi1, sl.pj1, kernel, box=box,
                         sink_ids=sink1, n_sinks=len(sl.tier1))
    corr1 = compute_corrections(pos, vol_full, h, sl.pi1, sl.pj1, kernel,
                                batch=b1)
    corr_full = CRKCorrections(
        a=np.zeros(n), b=np.zeros((n, 3)),
        grad_a=np.zeros((n, 3)), grad_b=np.zeros((n, 3, 3)),
    )
    corr_full.a[sl.tier1] = corr1.a
    corr_full.b[sl.tier1] = corr1.b
    corr_full.grad_a[sl.tier1] = corr1.grad_a
    corr_full.grad_b[sl.tier1] = corr1.grad_b

    wr1, g_ij1 = corrected_kernel_pairs(
        corr_full, pos, h, sl.pi1, sl.pj1, kernel, dx_pairs=b1.dx,
        wg=b1.kernel_i(),
    )
    rho1 = np.maximum(b1.seg.sum(mass[sl.pj1] * wr1), 1e-300)
    pressure1 = eos.pressure(rho1, u[sl.tier1])
    cs1 = eos.sound_speed(rho1, u[sl.tier1])
    rho_full = np.zeros(n)
    rho_full[sl.tier1] = rho1
    p_full = np.zeros(n)
    p_full[sl.tier1] = pressure1
    cs_full = np.zeros(n)
    cs_full[sl.tier1] = cs1

    f_full = None
    if use_balsara:
        div1, curl1 = velocity_divergence_curl(
            pos, vel, vol_full, h, sl.pi1, sl.pj1, kernel, batch=b1
        )
        f1 = balsara_switch(div1, curl1, cs1, h[sl.tier1])
        f_full = np.zeros(n)
        f_full[sl.tier1] = f1

    # -- sink pairs: antisymmetrized force assembly --------------------------
    m0 = sl.mask0
    pi0 = sl.pi1[m0]
    pj0 = sl.pj1[m0]
    dx0 = b1.dx[m0]
    r0 = b1.r[m0]
    unit0 = b1.unit[m0]
    g_ij0 = g_ij1[m0]

    # mirrored orientation (support h_j, gradient w.r.t. x_j), sink rows only
    hj0 = h[pj0]
    w_j0 = kernel.w(r0, hj0)
    gw_j0 = -kernel.dw_dr(r0, hj0)[:, None] * unit0
    _, g_ji0 = corrected_kernel_pairs(
        corr_full, pos, h, pj0, pi0, kernel, dx_pairs=-dx0, wg=(w_j0, gw_j0)
    )
    g_pair0 = g_ij0 - g_ji0

    dv0 = vel[pi0] - vel[pj0]
    h_ij0 = 0.5 * (h[pi0] + h[pj0])
    c_ij0 = 0.5 * (cs_full[pi0] + cs_full[pj0])
    rho_ij0 = 0.5 * (rho_full[pi0] + rho_full[pj0])
    limiter0 = None
    if use_balsara:
        limiter0 = 0.5 * (f_full[pi0] + f_full[pj0])

    pi_visc0 = viscosity.pi_pair(dx0, dv0, h_ij0, c_ij0, rho_ij0,
                                 limiter=limiter0)
    q0 = 0.25 * rho_full[pi0] * rho_full[pj0] * pi_visc0

    pbar0 = 0.5 * (p_full[pi0] + p_full[pj0]) + q0
    vv0 = vol_full[pi0] * vol_full[pj0]
    pair_force0 = (vv0 * pbar0)[:, None] * g_pair0

    seg0 = SegmentReducer(np.searchsorted(sl.sinks, pi0), n_sinks,
                          assume_sorted=True)
    accel = seg0.sum(-pair_force0 / mass[pi0, None])
    work0 = 0.5 * vv0 * pbar0 * np.einsum("pa,pa->p", dv0, g_pair0)
    du_dt = seg0.sum(work0 / mass[pi0])

    mu0 = viscosity.mu_pair(dx0, dv0, h_ij0)
    vsig = seg0.max(c_ij0 - 2.0 * np.minimum(mu0, 0.0), initial=0.0)

    return ActiveHydroDerivatives(
        sinks=sl.sinks, accel=accel, du_dt=du_dt, max_signal_speed=vsig,
        tier1=sl.tier1, rho=rho1, pressure=pressure1,
        tier2=sl.tier2, volume=vol2, n_pairs=sl.n_pairs,
    )
