"""Smoothing kernels for SPH/CRKSPH.

All kernels are compactly supported on ``r < h`` (h is the full support
radius, not the scaling length), normalized so that the 3D volume integral
is unity, and vectorized over arrays of separations.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


class Kernel(ABC):
    """Base class for 3D compact-support smoothing kernels."""

    #: ratio of support radius to the "standard" smoothing scale; informational
    name: str = "kernel"

    @abstractmethod
    def w(self, r, h):
        """Kernel value W(r, h) for separations r and support radius h."""

    @abstractmethod
    def dw_dr(self, r, h):
        """Radial derivative dW/dr."""

    def grad(self, dx, h):
        """Kernel gradient for displacement vectors ``dx`` of shape (..., 3)."""
        dx = np.asarray(dx, dtype=np.float64)
        r = np.sqrt(np.sum(dx * dx, axis=-1))
        dwdr = self.dw_dr(r, h)
        with np.errstate(invalid="ignore", divide="ignore"):
            unit = np.where(r[..., None] > 0, dx / np.maximum(r, 1e-300)[..., None], 0.0)
        return dwdr[..., None] * unit

    def self_value(self, h):
        """W(0, h), needed for density self-contribution."""
        return self.w(np.zeros(1), h)[0]


class CubicSpline(Kernel):
    """Monaghan & Lattanzio (1985) M4 cubic spline, support radius h."""

    name = "cubic_spline"
    _sigma = 8.0 / math.pi  # 3D normalization for q = r/h in [0, 1]

    def w(self, r, h):
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = r / h
        out = np.zeros(np.broadcast(q, q).shape, dtype=np.float64)
        inner = q < 0.5
        mid = (q >= 0.5) & (q < 1.0)
        qq = np.broadcast_to(q, out.shape)
        out[inner] = 1.0 - 6.0 * qq[inner] ** 2 + 6.0 * qq[inner] ** 3
        out[mid] = 2.0 * (1.0 - qq[mid]) ** 3
        norm = self._sigma / np.broadcast_to(h, out.shape) ** 3
        return out * norm

    def dw_dr(self, r, h):
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = r / h
        out = np.zeros(np.broadcast(q, q).shape, dtype=np.float64)
        qq = np.broadcast_to(q, out.shape)
        inner = qq < 0.5
        mid = (qq >= 0.5) & (qq < 1.0)
        out[inner] = -12.0 * qq[inner] + 18.0 * qq[inner] ** 2
        out[mid] = -6.0 * (1.0 - qq[mid]) ** 2
        norm = self._sigma / np.broadcast_to(h, out.shape) ** 4
        return out * norm


class WendlandC2(Kernel):
    """Wendland C2 kernel (Dehnen & Aly 2012), support radius h."""

    name = "wendland_c2"
    _sigma = 21.0 / (2.0 * math.pi)

    def w(self, r, h):
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = np.clip(r / h, 0.0, 1.0)
        u = 1.0 - q
        val = u**4 * (1.0 + 4.0 * q)
        val = np.where(r / h < 1.0, val, 0.0)
        return val * self._sigma / np.broadcast_to(h, val.shape) ** 3

    def dw_dr(self, r, h):
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = np.clip(r / h, 0.0, 1.0)
        u = 1.0 - q
        val = -20.0 * q * u**3
        val = np.where(r / h < 1.0, val, 0.0)
        return val * self._sigma / np.broadcast_to(h, val.shape) ** 4


class WendlandC4(Kernel):
    """Wendland C4 kernel, support radius h; CRKSPH's preferred base kernel."""

    name = "wendland_c4"
    _sigma = 495.0 / (32.0 * math.pi)

    def w(self, r, h):
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = np.clip(r / h, 0.0, 1.0)
        u = 1.0 - q
        val = u**6 * (1.0 + 6.0 * q + 35.0 / 3.0 * q**2)
        val = np.where(r / h < 1.0, val, 0.0)
        return val * self._sigma / np.broadcast_to(h, val.shape) ** 3

    def dw_dr(self, r, h):
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = np.clip(r / h, 0.0, 1.0)
        u = 1.0 - q
        # d/dq [u^6 (1 + 6q + 35/3 q^2)] = -56/3 q u^5 (1 + 5q)
        val = -56.0 / 3.0 * q * u**5 * (1.0 + 5.0 * q)
        val = np.where(r / h < 1.0, val, 0.0)
        return val * self._sigma / np.broadcast_to(h, val.shape) ** 4


KERNELS = {
    "cubic_spline": CubicSpline,
    "wendland_c2": WendlandC2,
    "wendland_c4": WendlandC4,
}


def get_kernel(name: str) -> Kernel:
    """Instantiate a kernel by registry name."""
    try:
        return KERNELS[name]()
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; choose from {sorted(KERNELS)}"
        ) from None
