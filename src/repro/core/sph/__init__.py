"""CRKSPH: conservative reproducing-kernel smoothed particle hydrodynamics."""

from .crk import CRKCorrections, compute_corrections, corrected_kernel_pairs
from .eos import IdealGasEOS
from .hydro import (
    ActiveHydroDerivatives,
    HydroDerivatives,
    compute_density,
    compute_number_density,
    crksph_derivatives,
    crksph_derivatives_active,
    update_smoothing_lengths,
)
from .kernels import KERNELS, CubicSpline, Kernel, WendlandC2, WendlandC4, get_kernel
from .pair_batch import PairBatch, make_pair_batch
from .viscosity import MonaghanViscosity, balsara_switch

__all__ = [
    "KERNELS",
    "ActiveHydroDerivatives",
    "CRKCorrections",
    "CubicSpline",
    "HydroDerivatives",
    "IdealGasEOS",
    "Kernel",
    "MonaghanViscosity",
    "PairBatch",
    "WendlandC2",
    "WendlandC4",
    "balsara_switch",
    "compute_corrections",
    "compute_density",
    "compute_number_density",
    "corrected_kernel_pairs",
    "crksph_derivatives",
    "crksph_derivatives_active",
    "get_kernel",
    "make_pair_batch",
    "update_smoothing_lengths",
]
