"""Equations of state for the gas phase."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...constants import GAMMA_IDEAL, K_BOLTZMANN, KM_CM, M_PROTON


@dataclass(frozen=True)
class IdealGasEOS:
    """Gamma-law ideal gas: P = (gamma - 1) rho u.

    ``u`` is specific internal energy.  In code units (velocities km/s),
    u has units (km/s)^2.
    """

    gamma: float = GAMMA_IDEAL

    def pressure(self, rho, u):
        rho = np.asarray(rho, dtype=np.float64)
        u = np.asarray(u, dtype=np.float64)
        return (self.gamma - 1.0) * rho * np.maximum(u, 0.0)

    def sound_speed(self, rho, u):
        u = np.asarray(u, dtype=np.float64)
        return np.sqrt(self.gamma * (self.gamma - 1.0) * np.maximum(u, 0.0))

    def internal_energy_from_pressure(self, rho, p):
        rho = np.asarray(rho, dtype=np.float64)
        p = np.asarray(p, dtype=np.float64)
        return p / ((self.gamma - 1.0) * np.maximum(rho, 1e-300))

    def temperature(self, u, mu: float = 0.59):
        """Temperature in K from specific internal energy in (km/s)^2."""
        u_cgs = np.asarray(u, dtype=np.float64) * KM_CM**2
        return (self.gamma - 1.0) * mu * M_PROTON * u_cgs / K_BOLTZMANN

    def internal_energy_from_temperature(self, temp, mu: float = 0.59):
        """Specific internal energy in (km/s)^2 from temperature in K."""
        temp = np.asarray(temp, dtype=np.float64)
        u_cgs = K_BOLTZMANN * temp / ((self.gamma - 1.0) * mu * M_PROTON)
        return u_cgs / KM_CM**2
