"""Conservative Reproducing Kernel (CRK) corrections.

Implements the first-order corrected kernel of Frontiere, Raskin & Owen
(2017):

    W^R_ij = A_i [1 + B_i . (x_i - x_j)] W_ij

with the correction fields A (scalar) and B (vector) chosen so the corrected
interpolant exactly reproduces constant and linear functions.  Gradient
corrections (grad A, grad B) are computed as well so corrected kernel
gradients are exact for linear fields.

All routines operate on flat neighbor-pair arrays ``(pi, pj)`` in the gather
convention: pair (i, j) present whenever ``|x_i - x_j| < h_i``, including the
self pair (i, i).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...backend import get_kernel, register_kernel
from ..scatter import segment_sum
from .kernels import Kernel


@dataclass
class CRKCorrections:
    """Per-particle CRK correction coefficients and their gradients."""

    a: np.ndarray  # (N,)
    b: np.ndarray  # (N, 3)
    grad_a: np.ndarray  # (N, 3)
    grad_b: np.ndarray  # (N, 3, 3) grad_b[:, alpha, beta] = d B_beta / d x_alpha


def _invert_spd_batch(m: np.ndarray, eps: float = 1.0e-12) -> np.ndarray:
    """Invert a batch of (near-)SPD 3x3 matrices with Tikhonov fallback.

    Degenerate moment matrices occur for particles with too few neighbors
    (e.g. edge of a non-periodic region); regularization keeps the correction
    finite and falls back toward plain SPH (B -> 0) in that limit.
    """
    m = np.asarray(m, dtype=np.float64)
    trace = np.trace(m, axis1=-2, axis2=-1)
    reg = np.maximum(trace, eps) * eps
    eye = np.eye(3)
    out = np.empty_like(m)
    mm = m + reg[..., None, None] * eye
    try:
        out = np.linalg.inv(mm)
    except np.linalg.LinAlgError:
        for idx in np.ndindex(m.shape[:-2]):
            try:
                out[idx] = np.linalg.inv(mm[idx])
            except np.linalg.LinAlgError:
                out[idx] = np.linalg.pinv(mm[idx])
    return out


def compute_moments(
    pos: np.ndarray,
    vol: np.ndarray,
    h: np.ndarray,
    pi: np.ndarray,
    pj: np.ndarray,
    kernel: Kernel,
    dx_pairs: np.ndarray | None = None,
    batch=None,
):
    """Compute CRK geometric moments m0, m1, m2 and their gradients.

    Parameters
    ----------
    pos : (N, 3) positions
    vol : (N,) particle volumes
    h : (N,) support radii
    pi, pj : pair index arrays (gather convention, self pair included)
    kernel : base smoothing kernel
    dx_pairs : optional precomputed ``x_i - x_j`` (periodic-wrapped) per pair
    batch : optional ``PairBatch`` carrying shared pair state (supersedes
        ``pi, pj, dx_pairs``)

    Returns
    -------
    (m0, m1, m2, dm0, dm1, dm2) where gradients are with respect to x_i:
        dm0 : (N, 3)
        dm1 : (N, 3, 3)  dm1[:, a, b] = d m1_b / d x_a
        dm2 : (N, 3, 3, 3) dm2[:, a, b, c] = d m2_bc / d x_a
    """
    n = pos.shape[0]
    if batch is not None:
        # fused moment accumulation over the shared CSR plan; the jit
        # backend collapses the (P, 3, 3, 3) temporaries into one loop
        w, gw = batch.kernel_i()
        return get_kernel("crk.moments")(
            vol[batch.pj], batch.dx, w, gw, batch.seg
        )
    if dx_pairs is None:
        dx_pairs = pos[pi] - pos[pj]
    dx = dx_pairs  # x_i - x_j, shape (P, 3)
    r = np.sqrt(np.sum(dx * dx, axis=-1))
    hi = h[pi]
    w = kernel.w(r, hi)
    # grad_i W_ij = dW/dr * (x_i - x_j)/r
    dwdr = kernel.dw_dr(r, hi)
    with np.errstate(invalid="ignore", divide="ignore"):
        gw = np.where(
            r[:, None] > 0.0,
            dwdr[:, None] * dx / np.maximum(r, 1e-300)[:, None],
            0.0,
        )
    acc = lambda values: segment_sum(values, pi, n)  # noqa: E731
    return _moments_body(vol[pj], dx, w, gw, acc)


@register_kernel(
    "crk.moments", contract="roundoff", rtol=1e-9, atol=1e-12,
    note="reference reduces per-segment via np.add.reduceat (SIMD partial "
         "sums); the fused compiled loop accumulates sequentially",
)
def _crk_moments_numpy(vj, dx, w, gw, red):
    acc = lambda values: get_kernel(  # noqa: E731
        "scatter.segment_sum_csr", backend="numpy"
    )(red, values)
    return _moments_body(vj, dx, w, gw, acc)


def _moments_body(vj, dx, w, gw, acc):
    m0 = acc(vj * w)

    # m1_b = sum_j V_j (x_j - x_i)_b W = sum_j V_j (-dx_b) W
    m1 = acc(vj[:, None] * (-dx) * w[:, None])

    # m2_bc = sum_j V_j dx_b dx_c W  (sign squared: (x_j-x_i)(x_j-x_i))
    outer = dx[:, :, None] * dx[:, None, :]
    m2 = acc(vj[:, None, None] * outer * w[:, None, None])

    # gradients w.r.t. x_i
    dm0 = acc(vj[:, None] * gw)

    # d/dx_a [ (x_j - x_i)_b W ] = -delta_ab W + (x_j - x_i)_b gw_a
    term = (-dx)[:, None, :] * gw[:, :, None]  # (P, a, b)
    eye = np.eye(3)
    term = term - eye[None, :, :] * w[:, None, None]
    dm1 = acc(vj[:, None, None] * term)

    # d/dx_a [ dx_b dx_c W ] with dx = x_i - x_j:
    #   = delta_ab dx_c W + delta_ac dx_b W + dx_b dx_c gw_a
    t1 = eye[None, :, :, None] * dx[:, None, None, :] * w[:, None, None, None]
    t2 = eye[None, :, None, :] * dx[:, None, :, None] * w[:, None, None, None]
    t3 = outer[:, None, :, :] * gw[:, :, None, None]
    dm2 = acc(vj[:, None, None, None] * (t1 + t2 + t3))

    return m0, m1, m2, dm0, dm1, dm2


def compute_corrections(
    pos: np.ndarray,
    vol: np.ndarray,
    h: np.ndarray,
    pi: np.ndarray,
    pj: np.ndarray,
    kernel: Kernel,
    dx_pairs: np.ndarray | None = None,
    batch=None,
) -> CRKCorrections:
    """Solve the linear reproducing conditions for A_i and B_i (and grads).

    The conditions  sum_j V_j W^R_ij = 1  and  sum_j V_j (x_j - x_i) W^R_ij = 0
    give (with d_ij = x_i - x_j):

        B_i = m2^{-1} m1,      A_i = 1 / (m0 - B_i . m1)
    """
    m0, m1, m2, dm0, dm1, dm2 = compute_moments(
        pos, vol, h, pi, pj, kernel, dx_pairs=dx_pairs, batch=batch
    )
    m2inv = _invert_spd_batch(m2)
    b = np.einsum("nab,nb->na", m2inv, m1)
    denom = m0 - np.einsum("na,na->n", b, m1)
    denom = np.where(np.abs(denom) < 1e-300, 1e-300, denom)
    a = 1.0 / denom

    # grad B: differentiate m2 B = m1  ->  dm2 B + m2 dB = dm1
    #   dB[:, a, :] = m2inv @ (dm1[:, a, :] - dm2[:, a, :, :] @ B)
    rhs = dm1 - np.einsum("nabc,nc->nab", dm2, b)
    grad_b = np.einsum("nbc,nac->nab", m2inv, rhs)

    # grad A: A = 1/(m0 - B.m1) -> dA = -A^2 (dm0 - dB.m1 - B.dm1)
    d_bm1 = np.einsum("nab,nb->na", grad_b, m1) + np.einsum(
        "nb,nab->na", b, dm1
    )
    grad_a = -(a**2)[:, None] * (dm0 - d_bm1)

    return CRKCorrections(a=a, b=b, grad_a=grad_a, grad_b=grad_b)


def corrected_kernel_pairs(
    corrections: CRKCorrections,
    pos: np.ndarray,
    h: np.ndarray,
    pi: np.ndarray,
    pj: np.ndarray,
    kernel: Kernel,
    dx_pairs: np.ndarray | None = None,
    wg=None,
):
    """Evaluate the corrected kernel and its gradient for each pair.

    Returns ``(wr, gwr)`` with ``wr`` shape (P,) and ``gwr`` shape (P, 3);
    the gradient is with respect to ``x_i``.  ``wg`` optionally supplies
    precomputed base-kernel values ``(W_ij, grad_i W_ij)`` for the same
    orientation (e.g. from a ``PairBatch``), skipping their re-derivation.
    """
    if dx_pairs is None:
        dx_pairs = pos[pi] - pos[pj]
    dx = dx_pairs
    if wg is not None:
        w, gw = wg
    else:
        r = np.sqrt(np.sum(dx * dx, axis=-1))
        hi = h[pi]
        w = kernel.w(r, hi)
        dwdr = kernel.dw_dr(r, hi)
        with np.errstate(invalid="ignore", divide="ignore"):
            gw = np.where(
                r[:, None] > 0.0,
                dwdr[:, None] * dx / np.maximum(r, 1e-300)[:, None],
                0.0,
            )

    return get_kernel("crk.corrected_pairs")(
        corrections.a, corrections.b, corrections.grad_a,
        corrections.grad_b, pi, dx, w, gw,
    )


@register_kernel(
    "crk.corrected_pairs", contract="roundoff", rtol=1e-9, atol=1e-12,
    note="einsum contractions vs sequential dot products differ in the "
         "last bits",
)
def _corrected_pairs_numpy(ca, cb, cga, cgb, pi, dx, w, gw):
    a = ca[pi]
    b = cb[pi]
    ga = cga[pi]
    gb = cgb[pi]

    lin = 1.0 + np.einsum("pa,pa->p", b, dx)
    wr = a * lin * w

    # grad_i [A (1 + B.dx) W]
    #   = gradA (1+B.dx) W + A (gradB.dx + B) W + A (1+B.dx) gradW
    term1 = ga * (lin * w)[:, None]
    term2 = a[:, None] * (np.einsum("pab,pb->pa", gb, dx) + b) * w[:, None]
    term3 = (a * lin)[:, None] * gw
    gwr = term1 + term2 + term3
    return wr, gwr
