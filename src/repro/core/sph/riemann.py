"""Exact Riemann solver for the 1D Euler equations (Toro 1999, Ch. 4).

Provides the analytic Sod shock-tube solution used to validate the CRKSPH
solver (the paper's hydro method was validated against exactly this class
of problem in Frontiere et al. 2017).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RiemannState:
    """Primitive state (rho, v, P) on one side of the discontinuity."""

    rho: float
    v: float
    p: float


SOD_LEFT = RiemannState(rho=1.0, v=0.0, p=1.0)
SOD_RIGHT = RiemannState(rho=0.125, v=0.0, p=0.1)


def _sound_speed(state: RiemannState, gamma: float) -> float:
    return np.sqrt(gamma * state.p / state.rho)


def _pressure_function(p, state: RiemannState, gamma: float):
    """f(p, W_K) and its derivative (Toro eqs. 4.6-4.37)."""
    a = 2.0 / ((gamma + 1.0) * state.rho)
    b = (gamma - 1.0) / (gamma + 1.0) * state.p
    c = _sound_speed(state, gamma)
    if p > state.p:  # shock
        f = (p - state.p) * np.sqrt(a / (p + b))
        df = np.sqrt(a / (b + p)) * (1.0 - (p - state.p) / (2.0 * (b + p)))
    else:  # rarefaction
        f = (
            2.0 * c / (gamma - 1.0)
            * ((p / state.p) ** ((gamma - 1.0) / (2.0 * gamma)) - 1.0)
        )
        df = 1.0 / (state.rho * c) * (p / state.p) ** (
            -(gamma + 1.0) / (2.0 * gamma)
        )
    return f, df


def solve_star_region(
    left: RiemannState, right: RiemannState, gamma: float = 1.4,
    tol: float = 1e-12, max_iter: int = 100,
):
    """Star-region pressure and velocity via Newton-Raphson."""
    # initial guess: two-rarefaction approximation
    cl = _sound_speed(left, gamma)
    cr = _sound_speed(right, gamma)
    gm = (gamma - 1.0) / (2.0 * gamma)
    p0 = (
        (cl + cr - 0.5 * (gamma - 1.0) * (right.v - left.v))
        / (cl / left.p**gm + cr / right.p**gm)
    ) ** (1.0 / gm)
    p = max(p0, tol)
    for _ in range(max_iter):
        fl, dfl = _pressure_function(p, left, gamma)
        fr, dfr = _pressure_function(p, right, gamma)
        f = fl + fr + (right.v - left.v)
        dp = f / (dfl + dfr)
        p_new = max(p - dp, tol)
        if abs(p_new - p) < tol * max(p, 1.0):
            p = p_new
            break
        p = p_new
    fl, _ = _pressure_function(p, left, gamma)
    fr, _ = _pressure_function(p, right, gamma)
    v_star = 0.5 * (left.v + right.v) + 0.5 * (fr - fl)
    return p, v_star


def sample_solution(
    x, t: float,
    left: RiemannState = SOD_LEFT,
    right: RiemannState = SOD_RIGHT,
    gamma: float = 1.4,
    x0: float = 0.0,
):
    """Exact solution (rho, v, P) at positions x and time t.

    The discontinuity sits at ``x0`` at t = 0.  Vectorized over x.
    """
    x = np.asarray(x, dtype=np.float64)
    if t <= 0:
        rho = np.where(x < x0, left.rho, right.rho)
        v = np.where(x < x0, left.v, right.v)
        p = np.where(x < x0, left.p, right.p)
        return rho, v, p

    p_star, v_star = solve_star_region(left, right, gamma)
    s = (x - x0) / t
    rho = np.empty_like(s)
    v = np.empty_like(s)
    p = np.empty_like(s)
    cl = _sound_speed(left, gamma)
    cr = _sound_speed(right, gamma)
    g1 = (gamma - 1.0) / (gamma + 1.0)
    g2 = 2.0 / (gamma + 1.0)

    # left side of contact
    if p_star > left.p:  # left shock
        sl = left.v - cl * np.sqrt(
            (gamma + 1.0) / (2 * gamma) * p_star / left.p
            + (gamma - 1.0) / (2 * gamma)
        )
        rho_star_l = left.rho * (
            (p_star / left.p + g1) / (g1 * p_star / left.p + 1.0)
        )
        left_region = s < sl
        fan = np.zeros_like(s, dtype=bool)
        star_l = (s >= sl) & (s < v_star)
    else:  # left rarefaction
        c_star_l = cl * (p_star / left.p) ** ((gamma - 1.0) / (2 * gamma))
        head = left.v - cl
        tail = v_star - c_star_l
        rho_star_l = left.rho * (p_star / left.p) ** (1.0 / gamma)
        left_region = s < head
        fan = (s >= head) & (s < tail)
        star_l = (s >= tail) & (s < v_star)

    rho[left_region] = left.rho
    v[left_region] = left.v
    p[left_region] = left.p
    if fan.any():
        c_fan = g2 * (cl + (gamma - 1.0) / 2.0 * (left.v - s[fan]))
        v[fan] = g2 * (cl + (gamma - 1.0) / 2.0 * left.v + s[fan])
        rho[fan] = left.rho * (c_fan / cl) ** (2.0 / (gamma - 1.0))
        p[fan] = left.p * (c_fan / cl) ** (2.0 * gamma / (gamma - 1.0))
    rho[star_l] = rho_star_l
    v[star_l] = v_star
    p[star_l] = p_star

    # right side of contact
    if p_star > right.p:  # right shock
        sr = right.v + cr * np.sqrt(
            (gamma + 1.0) / (2 * gamma) * p_star / right.p
            + (gamma - 1.0) / (2 * gamma)
        )
        rho_star_r = right.rho * (
            (p_star / right.p + g1) / (g1 * p_star / right.p + 1.0)
        )
        star_r = (s >= v_star) & (s < sr)
        fan_r = np.zeros_like(s, dtype=bool)
        right_region = s >= sr
    else:  # right rarefaction
        c_star_r = cr * (p_star / right.p) ** ((gamma - 1.0) / (2 * gamma))
        head = right.v + cr
        tail = v_star + c_star_r
        rho_star_r = right.rho * (p_star / right.p) ** (1.0 / gamma)
        star_r = (s >= v_star) & (s < tail)
        fan_r = (s >= tail) & (s < head)
        right_region = s >= head

    rho[star_r] = rho_star_r
    v[star_r] = v_star
    p[star_r] = p_star
    if fan_r.any():
        c_fan = g2 * (cr - (gamma - 1.0) / 2.0 * (right.v - s[fan_r]))
        v[fan_r] = g2 * (-cr + (gamma - 1.0) / 2.0 * right.v + s[fan_r])
        rho[fan_r] = right.rho * (c_fan / cr) ** (2.0 / (gamma - 1.0))
        p[fan_r] = right.p * (c_fan / cr) ** (2.0 * gamma / (gamma - 1.0))
    rho[right_region] = right.rho
    v[right_region] = right.v
    p[right_region] = right.p

    return rho, v, p
