"""Artificial viscosity for shock capturing.

Monaghan-Gingold pairwise viscosity with a Balsara-style shear limiter,
following the CRKSPH formulation (limiters keep the scheme low-dissipation
away from shocks, which is the 'reduced numerical diffusion' property the
paper highlights).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scatter import segment_sum


@dataclass(frozen=True)
class MonaghanViscosity:
    """Classic Monaghan (1992) pair viscosity Pi_ij with limiters.

    Pi_ij = (-alpha c_ij mu_ij + beta mu_ij^2) / rho_ij
    mu_ij = h_ij v_ij.r_ij / (r_ij^2 + eps h_ij^2)  for approaching pairs.
    """

    alpha: float = 1.0
    beta: float = 2.0
    eps: float = 0.01

    def mu_pair(self, dx, dv, h_ij):
        """Approach rate mu_ij; zero for receding pairs."""
        vdotr = np.sum(dv * dx, axis=-1)
        r2 = np.sum(dx * dx, axis=-1)
        mu = h_ij * vdotr / (r2 + self.eps * h_ij**2)
        return np.where(vdotr < 0.0, mu, 0.0)

    def pi_pair(self, dx, dv, h_ij, c_ij, rho_ij, limiter=None):
        """Pairwise viscous pressure term Pi_ij (units of P/rho^2 * rho^2)."""
        mu = self.mu_pair(dx, dv, h_ij)
        pi = (-self.alpha * c_ij * mu + self.beta * mu**2) / np.maximum(
            rho_ij, 1e-300
        )
        if limiter is not None:
            pi = pi * limiter
        return pi


def balsara_switch(div_v, curl_v_mag, c, h, eps: float = 1.0e-4):
    """Balsara (1995) shear limiter f_i in [0, 1].

    f = |div v| / (|div v| + |curl v| + eps c/h); suppresses viscosity in
    pure shear flows while leaving compressive shocks untouched.
    """
    div = np.abs(np.asarray(div_v, dtype=np.float64))
    curl = np.asarray(curl_v_mag, dtype=np.float64)
    denom = div + curl + eps * np.asarray(c) / np.maximum(np.asarray(h), 1e-300)
    return div / np.maximum(denom, 1e-300)


def velocity_divergence_curl(pos, vel, vol, h, pi, pj, kernel, dx_pairs=None,
                             batch=None):
    """SPH estimates of div(v) and |curl(v)| per particle.

    Uses the uncorrected kernel gradient (sufficient for a limiter switch).
    ``batch`` optionally supplies shared pair state (``PairBatch``),
    reusing its kernel gradients and segment reductions.
    """
    n = pos.shape[0]
    if batch is not None:
        pi, pj = batch.pi, batch.pj
        _, gw = batch.kernel_i()
        acc = batch.seg.sum
    else:
        if dx_pairs is None:
            dx_pairs = pos[pi] - pos[pj]
        dx = dx_pairs
        r = np.sqrt(np.sum(dx * dx, axis=-1))
        dwdr = kernel.dw_dr(r, h[pi])
        with np.errstate(invalid="ignore", divide="ignore"):
            gw = np.where(
                r[:, None] > 0.0,
                dwdr[:, None] * dx / np.maximum(r, 1e-300)[:, None],
                0.0,
            )
        acc = lambda values: segment_sum(values, pi, n)  # noqa: E731
    dv = vel[pj] - vel[pi]
    vj = vol[pj]

    div = acc(vj * np.einsum("pa,pa->p", dv, gw))
    curl = acc(vj[:, None] * np.cross(dv, gw))
    return div, np.sqrt(np.sum(curl * curl, axis=-1))
