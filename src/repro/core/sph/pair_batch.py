"""Shared per-pair batch state for one short-range force evaluation.

A CRKSPH force evaluation needs the same per-pair quantities — periodic
displacements ``dx``, separations ``r``, base kernel values ``W`` and
gradients ``grad W`` — in every stage: number density, CRK moments,
corrected density, symmetrized gradients, and the viscosity limiter.  The
seed implementation re-derived them in each stage; ``PairBatch`` computes
them once and is threaded through the whole stack, mirroring how the GPU
kernels stage shared pair state in registers before streaming the physics
(paper Section IV-B1).

The batch keeps pairs sorted by ``pi`` and carries a ``SegmentReducer`` so
every per-particle accumulation is a fast CSR segment reduction instead of
a buffered ``np.add.at`` scatter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import pair_displacements
from ..scatter import SegmentReducer
from .kernels import Kernel

__all__ = ["PairBatch", "make_pair_batch"]


@dataclass
class PairBatch:
    """Precomputed pair geometry + kernel state (pairs sorted by ``pi``).

    ``w_i``/``gw_i`` evaluate the base kernel at the *gather* support
    ``h_i`` with the gradient taken with respect to ``x_i`` — what every
    gather-side stage consumes.  The mirrored orientation (support ``h_j``,
    gradient with respect to ``x_j``) is computed lazily since only the
    symmetrized-gradient stage needs it.
    """

    pi: np.ndarray
    pj: np.ndarray
    dx: np.ndarray  # x_i - x_j, periodic-wrapped, (P, 3)
    r: np.ndarray  # (P,)
    unit: np.ndarray  # dx / r (zero for self pairs), (P, 3)
    n: int
    kernel: Kernel
    h: np.ndarray
    seg: SegmentReducer  # over pi
    w_i: np.ndarray
    gw_i: np.ndarray  # grad_i W(r, h_i)
    _w_j: np.ndarray | None = field(default=None, repr=False)
    _gw_j: np.ndarray | None = field(default=None, repr=False)

    def kernel_i(self):
        """(W_ij, grad_i W_ij) at support h_i."""
        return self.w_i, self.gw_i

    def kernel_j(self):
        """(W_ji, grad_j W_ji) at support h_j (the mirrored orientation:
        separation x_j - x_i, gradient with respect to x_j)."""
        if self._w_j is None:
            hj = self.h[self.pj]
            self._w_j = self.kernel.w(self.r, hj)
            self._gw_j = -self.kernel.dw_dr(self.r, hj)[:, None] * self.unit
        return self._w_j, self._gw_j


def make_pair_batch(pos, h, pi, pj, kernel: Kernel, box=None,
                    dx_pairs=None, sink_ids=None, n_sinks=None) -> PairBatch:
    """Build the shared pair state for ``(pi, pj)``.

    Pairs are re-sorted by ``pi`` when necessary (lists served by
    ``tree.pair_cache.PairCache`` arrive sorted and skip this).

    ``sink_ids``/``n_sinks`` switch the segment-reduction plan to compact
    active rows: per-particle accumulations land in row ``sink_ids[p]`` of
    length-``n_sinks`` outputs instead of full-length arrays, while pair
    geometry and kernels still index the full ``pos``/``h``.  This is the
    batch-level half of the active-set evaluation path (paper Section
    IV-A): inactive particles stay gather-only sources.
    """
    pi = np.asarray(pi)
    pj = np.asarray(pj)
    if len(pi) > 1 and np.any(pi[1:] < pi[:-1]):
        if sink_ids is not None:
            raise ValueError("sink_ids requires a pi-sorted pair list")
        order = np.argsort(pi, kind="stable")
        pi = pi[order]
        pj = pj[order]
        if dx_pairs is not None:
            dx_pairs = np.asarray(dx_pairs)[order]
    dx = pair_displacements(pos, pi, pj, box) if dx_pairs is None else dx_pairs
    r = np.sqrt(np.einsum("pa,pa->p", dx, dx))
    with np.errstate(invalid="ignore", divide="ignore"):
        unit = np.where(
            r[:, None] > 0.0, dx / np.maximum(r, 1e-300)[:, None], 0.0
        )
    hi = h[pi]
    w_i = kernel.w(r, hi)
    gw_i = kernel.dw_dr(r, hi)[:, None] * unit
    if sink_ids is None:
        seg = SegmentReducer(pi, pos.shape[0], assume_sorted=True)
        n_seg = pos.shape[0]
    else:
        n_seg = int(n_sinks)
        seg = SegmentReducer(np.asarray(sink_ids), n_seg, assume_sorted=True)
    return PairBatch(
        pi=pi, pj=pj, dx=dx, r=r, unit=unit, n=n_seg, kernel=kernel,
        h=np.asarray(h), seg=seg, w_i=w_i, gw_i=gw_i,
    )
