"""Hierarchical (power-of-two) adaptive timestepping.

Particles are grouped into rungs: rung ``r`` advances with step
``dt_pm / 2^r`` inside one global PM interval (Saitoh & Makino 2010 style,
paper Section IV-A).  Only "active" rungs are force-evaluated on a given
substep; the substep schedule interleaves rungs so every particle receives
exactly ``2^r`` kicks of its own size per PM step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def timestep_criteria(
    accel: np.ndarray,
    h: np.ndarray,
    vsig: np.ndarray,
    cfl: float = 0.25,
    eta_accel: float = 0.025,
    dt_max: float = np.inf,
    u: np.ndarray | None = None,
    du_dt: np.ndarray | None = None,
    cooling_factor: float = 0.25,
) -> np.ndarray:
    """Per-particle timestep limit from CFL, acceleration, and cooling time.

    dt_cfl  = cfl * h / vsig
    dt_acc  = sqrt(2 eta h / |a|)
    dt_cool = cooling_factor * u / |du/dt|
    """
    amag = np.sqrt(np.einsum("na,na->n", accel, accel))
    with np.errstate(divide="ignore", invalid="ignore"):
        dt_acc = np.sqrt(2.0 * eta_accel * h / np.maximum(amag, 1e-300))
        dt_cfl = cfl * h / np.maximum(vsig, 1e-300)
    dt = np.minimum(dt_acc, np.where(vsig > 0, dt_cfl, np.inf))
    if u is not None and du_dt is not None:
        with np.errstate(divide="ignore", invalid="ignore"):
            dt_cool = cooling_factor * np.abs(u) / np.maximum(np.abs(du_dt), 1e-300)
        dt = np.minimum(dt, np.where(np.abs(du_dt) > 0, dt_cool, np.inf))
    return np.minimum(dt, dt_max)


def assign_rungs(dt_required: np.ndarray, dt_pm: float, max_rung: int = 16) -> np.ndarray:
    """Smallest rung r such that dt_pm / 2^r <= dt_required (clipped)."""
    dt_required = np.maximum(np.asarray(dt_required, dtype=np.float64), 1e-300)
    ratio = dt_pm / dt_required
    rung = np.ceil(np.log2(np.maximum(ratio, 1.0))).astype(np.int64)
    return np.clip(rung, 0, max_rung).astype(np.int16)


def deepest_rung(rungs: np.ndarray) -> int:
    return int(rungs.max()) if len(rungs) else 0


def active_mask(rungs: np.ndarray, substep: int, max_rung: int) -> np.ndarray:
    """Particles whose rung is active at ``substep`` of a depth-``max_rung`` PM step.

    Rung r is active every 2^(max_rung - r) substeps.
    """
    rungs = np.asarray(rungs)
    period = 2 ** (max_rung - rungs.astype(np.int64))
    return substep % period == 0


def rung_dt(rungs: np.ndarray, dt_pm: float) -> np.ndarray:
    """Per-particle substep size dt_pm / 2^rung."""
    return dt_pm / (2.0 ** np.asarray(rungs, dtype=np.float64))


def closing_rung(substep: int, depth: int) -> int:
    """Shallowest rung closing at the end of ``substep`` (0-indexed).

    The substep boundary ``s + 1`` closes rung ``r`` exactly when
    ``(s + 1) % 2^(depth - r) == 0``; the shallowest such rung labels the
    synchronization level of the boundary — the final substep of a PM
    interval closes rung 0 (everyone), odd boundaries close only the
    deepest rung.  The distributed driver keys its per-rung phase timers
    (``"rung/<r>"``) off this value.
    """
    v = substep + 1
    trailing_zeros = (v & -v).bit_length() - 1
    return max(depth - trailing_zeros, 0)


@dataclass
class SubcycleStats:
    """Bookkeeping from one PM step of hierarchical integration.

    ``n_active_total`` accumulates the number of *active* (sink) particles
    over every force evaluation of the step, opening evaluation included;
    ``n_fft`` counts long-range PM solves and ``n_pairs`` short-range pair
    rows streamed — the quantities the active-set scheduling is supposed to
    shrink (paper Section IV-A).
    """

    n_substeps: int = 0
    n_force_evaluations: int = 0
    n_active_total: int = 0
    deepest_rung: int = 0
    n_particles: int = 0
    n_fft: int = 0
    n_pairs: int = 0
    #: global rung histogram (index r -> particles assigned rung r) when
    #: the producer records one; the substep schedule is a pure function
    #: of this multiset, which is what lets tests reconstruct and check
    #: the schedule a distributed run claims to have executed
    rung_counts: tuple | None = None

    @property
    def mean_active_fraction(self) -> float:
        """Mean fraction of particles active per force evaluation."""
        if self.n_force_evaluations == 0 or self.n_particles == 0:
            return 0.0
        return self.n_active_total / (
            self.n_force_evaluations * self.n_particles
        )


class HierarchicalIntegrator:
    """Drives the rung-based subcycle loop for one PM interval.

    The caller supplies a force callback evaluated only on active particles;
    the integrator performs interleaved kick-drift-kick updates such that a
    particle on rung r experiences 2^r KDK cycles of size dt_pm/2^r.  All
    particles drift every substep (at the finest cadence) so pair forces see
    consistent positions.
    """

    def __init__(self, dt_pm: float, max_rung: int = 8):
        if dt_pm <= 0:
            raise ValueError("dt_pm must be positive")
        self.dt_pm = dt_pm
        self.max_rung = max_rung

    def run(self, pos, vel, rungs, force_fn, drift_fn=None):
        """Integrate one PM interval in place.

        force_fn(pos, vel, active_idx) -> accel array (N, 3) (full length;
        only active rows are used).  drift_fn(pos, vel, dt) optionally
        customizes the drift (e.g. periodic wrap); default is pos += vel*dt.
        """
        depth = deepest_rung(rungs)
        stats = SubcycleStats(deepest_rung=depth, n_particles=len(pos))
        nsub = 2**depth
        dt_fine = self.dt_pm / nsub
        dts = rung_dt(rungs, self.dt_pm)

        # opening evaluation: only the rungs active at substep 0 need
        # forces (at depth 0 that is still everyone, but the schedule —
        # not a hardcoded arange — decides)
        opening = np.nonzero(active_mask(rungs, 0, depth))[0]
        accel = force_fn(pos, vel, opening)
        stats.n_force_evaluations += 1
        stats.n_active_total += len(opening)
        for s in range(nsub):
            act = active_mask(rungs, s, depth)
            # opening kick for newly active particles
            vel[act] += 0.5 * dts[act, None] * accel[act]
            # fine drift for everyone
            if drift_fn is None:
                pos += vel * dt_fine
            else:
                drift_fn(pos, vel, dt_fine)
            # closing kick for particles completing their substep
            closing = active_mask(rungs, s + 1, depth)
            idx = np.nonzero(closing)[0]
            accel = force_fn(pos, vel, idx)
            vel[closing] += 0.5 * dts[closing, None] * accel[closing]
            stats.n_substeps += 1
            stats.n_force_evaluations += 1
            stats.n_active_total += int(closing.sum())
        return stats
