"""Fast segment reductions for per-pair scatter accumulation.

``np.add.at`` / ``np.maximum.at`` (buffered ufunc scatters) are the dominant
per-pair cost of a NumPy short-range solver: they honor duplicate indices by
processing one element at a time.  The same reductions expressed over
*segments* — runs of equal values in the index array — run 5-10x faster via
``np.bincount`` (any index order, 1-D values) or ``np.add.reduceat`` /
``np.maximum.reduceat`` over a sorted-CSR layout (any trailing value shape).
This mirrors the GPU solver, which streams pair interactions from compact CSR
interaction lists instead of scattering through global atomics (paper
Section IV-B1).

``SegmentReducer`` precomputes the CSR plan (sort permutation + segment
starts) once per pair list, so the many reductions of a single force
evaluation — and of every force evaluation reusing a cached pair list — pay
the sort at most once.  Pair lists stored sorted by ``pi`` (as
``tree.pair_cache.PairCache`` and ``sph.pair_batch.PairBatch`` keep them)
skip the sort entirely.

The per-plan reductions dispatch through :mod:`repro.backend`: the bodies
below are the registered NumPy references, and ``backend="jit"`` swaps in
compiled sequential loops over the same CSR plan
(:mod:`repro.backend.jit_kernels`).
"""

from __future__ import annotations

import numpy as np

from ..backend import get_kernel, register_kernel

__all__ = ["SegmentReducer", "segment_sum", "segment_max"]


def _ids_sorted(ids: np.ndarray) -> bool:
    return len(ids) < 2 or bool(np.all(ids[1:] >= ids[:-1]))


def _max_fill(dtype: np.dtype, initial: float):
    """``initial`` cast into ``dtype``, mapping ``-inf`` on integer dtypes
    to the dtype's minimum (the identity of integer max)."""
    if dtype.kind in "iu" and np.isinf(initial):
        info = np.iinfo(dtype)
        return dtype.type(info.min if initial < 0 else info.max)
    return dtype.type(initial)


class SegmentReducer:
    """Reusable sorted-CSR reduction plan over one segment-id array.

    Parameters
    ----------
    segment_ids : (P,) integer ids in ``[0, num_segments)``
    num_segments : output length
    assume_sorted : skip the (O(P)) sortedness check and trust the caller
    """

    def __init__(self, segment_ids, num_segments: int, assume_sorted: bool = False):
        ids = np.asarray(segment_ids)
        if ids.dtype.kind not in "iu":
            ids = ids.astype(np.intp)
        self.num_segments = int(num_segments)
        if len(ids) and int(ids.max()) >= self.num_segments:
            raise IndexError(
                f"segment id {int(ids.max())} out of range for "
                f"{self.num_segments} segments"
            )
        if assume_sorted or _ids_sorted(ids):
            self.order = None
        else:
            self.order = np.argsort(ids, kind="stable")
            ids = ids[self.order]
        self.counts = np.ascontiguousarray(
            np.bincount(ids, minlength=self.num_segments), dtype=np.int64
        )
        starts = np.concatenate(
            [[0], np.cumsum(self.counts)]
        )[: self.num_segments]
        #: per-segment start offsets into the sorted order (all segments,
        #: empty ones included) — the layout the compiled loops walk
        self.starts = np.ascontiguousarray(starts, dtype=np.int64)
        self.nonempty = self.counts > 0
        # reduceat over only the non-empty starts: consecutive non-empty
        # starts bracket exactly one segment's elements (empty segments
        # contribute no elements in between), sidestepping reduceat's
        # idx[k] == idx[k+1] pitfall
        self._starts_ne = starts[self.nonempty].astype(np.intp)

    def _permuted(self, values: np.ndarray) -> np.ndarray:
        v = np.asarray(values)
        return v if self.order is None else v[self.order]

    def sum(self, values) -> np.ndarray:
        """Per-segment sum; accumulates in the dtype of ``values``."""
        return get_kernel("scatter.segment_sum_csr")(self, values)

    def max(self, values, initial: float = 0.0) -> np.ndarray:
        """Per-segment max; empty segments yield ``initial`` and non-empty
        ones are clamped below at it — the same result as ``np.maximum.at``
        on an ``initial``-filled output.

        ``initial`` defaults to ``0.0`` for backward compatibility, which
        **clamps all-negative segments to zero**.  Pass
        ``initial=-np.inf`` for a true unclamped maximum; on integer
        values it maps safely to the dtype's minimum instead of
        overflowing.
        """
        v = np.asarray(values)
        fill = _max_fill(v.dtype, initial)
        return get_kernel("scatter.segment_max_csr")(self, v, fill)


@register_kernel(
    "scatter.segment_sum_csr", contract="roundoff", rtol=1e-9, atol=1e-12,
    note="np.add.reduceat uses SIMD partial sums; a sequential compiled "
         "loop cannot reproduce its grouping, so parity is roundoff-bounded",
)
def _segment_sum_csr_numpy(red: SegmentReducer, values) -> np.ndarray:
    v = red._permuted(values)
    out = np.zeros((red.num_segments,) + v.shape[1:], dtype=v.dtype)
    if len(red._starts_ne):
        out[red.nonempty] = np.add.reduceat(v, red._starts_ne, axis=0)
    return out


@register_kernel(
    "scatter.segment_max_csr", contract="bit-identical",
    note="max is reduction-order-insensitive (NaN propagates either way)",
)
def _segment_max_csr_numpy(red: SegmentReducer, values, fill) -> np.ndarray:
    v = red._permuted(values)
    out = np.full((red.num_segments,) + v.shape[1:], fill, dtype=v.dtype)
    if len(red._starts_ne):
        out[red.nonempty] = np.maximum(
            np.maximum.reduceat(v, red._starts_ne, axis=0), fill
        )
    return out


def segment_sum(values, segment_ids, num_segments: int,
                assume_sorted: bool = False) -> np.ndarray:
    """One-shot ``out[i] = sum(values[segment_ids == i])``.

    Drop-in replacement for ``np.add.at(zeros, ids, values)``: duplicate ids
    accumulate, ids may arrive in any order, empty segments stay zero.
    Float64 values take the sort-free ``np.bincount`` path (one call per
    trailing component); other dtypes reduce via sorted ``np.add.reduceat``
    to preserve the accumulation dtype (the FP32 path accumulates in FP32,
    like the GPU kernels it stands in for).
    """
    v = np.asarray(values)
    ids = np.asarray(segment_ids)
    n_trail = int(np.prod(v.shape[1:], dtype=np.int64)) if v.ndim > 1 else 1
    if v.dtype == np.float64 and n_trail <= 8:
        if len(ids) == 0:
            return np.zeros((num_segments,) + v.shape[1:])
        if int(ids.max()) >= num_segments:
            raise IndexError(
                f"segment id {int(ids.max())} out of range for "
                f"{num_segments} segments"
            )
        if v.ndim == 1:
            return np.bincount(ids, weights=v, minlength=num_segments)[
                :num_segments
            ]
        flat = v.reshape(len(v), n_trail)
        out = np.empty((num_segments, n_trail))
        for k in range(n_trail):
            out[:, k] = np.bincount(
                ids, weights=flat[:, k], minlength=num_segments
            )[:num_segments]
        return out.reshape((num_segments,) + v.shape[1:])
    return SegmentReducer(ids, num_segments, assume_sorted=assume_sorted).sum(v)


def segment_max(values, segment_ids, num_segments: int, initial: float = 0.0,
                assume_sorted: bool = False) -> np.ndarray:
    """One-shot ``out[i] = max(values[segment_ids == i])`` (``initial`` where
    a segment is empty, and a floor under non-empty ones).  Replaces
    ``np.maximum.at`` on an ``initial``-filled output.  Use
    ``initial=-np.inf`` for an unclamped maximum — safe on integer values
    too, where it maps to the dtype's minimum."""
    return SegmentReducer(
        segment_ids, num_segments, assume_sorted=assume_sorted
    ).max(values, initial=initial)
