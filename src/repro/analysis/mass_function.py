"""Halo mass function and cluster statistics.

Bins FOF halo masses into a differential mass function dn/dlnM and
compares against the Press-Schechter analytic form — the statistic behind
the paper's '570,000 galaxy clusters' headline count.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import integrate

from ..cosmology.background import Cosmology
from ..cosmology.power_spectrum import LinearPower

DELTA_C = 1.686  # spherical-collapse critical overdensity


def halo_mass_function(
    halo_masses: np.ndarray,
    box: float,
    n_bins: int = 12,
    m_min: float | None = None,
    m_max: float | None = None,
):
    """Differential mass function dn/dlnM from a halo catalog.

    Returns (m_centers, dn_dlnm, counts); empty bins give zero.
    """
    m = np.asarray(halo_masses, dtype=np.float64)
    m = m[m > 0]
    if len(m) == 0:
        empty = np.empty(0)
        return empty, empty, np.empty(0, dtype=np.int64)
    m_min = m_min or m.min() * 0.999
    m_max = m_max or m.max() * 1.001
    edges = np.logspace(np.log10(m_min), np.log10(m_max), n_bins + 1)
    counts, _ = np.histogram(m, bins=edges)
    dlnm = np.diff(np.log(edges))
    vol = box**3
    centers = np.sqrt(edges[:-1] * edges[1:])
    return centers, counts / (vol * dlnm), counts


def press_schechter_mass_function(
    masses: np.ndarray, cosmo: Cosmology, a: float = 1.0,
    power: LinearPower | None = None,
):
    """Press-Schechter dn/dlnM [(Mpc/h)^-3] at scale factor a."""
    power = power or LinearPower(cosmo)
    masses = np.atleast_1d(np.asarray(masses, dtype=np.float64))
    if len(masses) == 1:
        # np.gradient needs >= 2 samples; bracket the point internally
        m3 = masses[0] * np.array([0.99, 1.0, 1.01])
        return press_schechter_mass_function(m3, cosmo, a=a, power=power)[1:2]
    rho_m = cosmo.rho_mean0  # comoving Msun h^2/Mpc^3 in h-units

    radii = (3.0 * masses / (4.0 * math.pi * rho_m)) ** (1.0 / 3.0)
    sigma = np.array([power.sigma_r(r, a) for r in radii])
    # dln(sigma)/dlnM by finite difference in log M
    lnm = np.log(masses)
    dlns = np.gradient(np.log(sigma), lnm)
    nu = DELTA_C / sigma
    f_ps = math.sqrt(2.0 / math.pi) * nu * np.exp(-(nu**2) / 2.0)
    return rho_m / masses * f_ps * np.abs(dlns)


def cluster_count(halo_masses: np.ndarray, m_cluster: float = 1.0e14) -> int:
    """Number of galaxy-cluster-scale halos (M >= m_cluster Msun/h)."""
    return int(np.sum(np.asarray(halo_masses) >= m_cluster))
