"""DBSCAN density-based clustering (Ester et al. 1996).

Used by the in situ pipeline to identify galaxies in the star-particle
distribution (paper Section IV-B3).  Core points have at least ``min_pts``
neighbors within ``eps``; clusters are the connected components of core
points plus their border points; everything else is noise (-1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tree import neighbor_pairs
from .unionfind import UnionFind

NOISE = -1


@dataclass
class DBSCANResult:
    """Clustering output: labels (-1 = noise), count, core-point mask."""
    labels: np.ndarray  # cluster id per point; -1 = noise
    n_clusters: int
    core_mask: np.ndarray


def dbscan(
    pos: np.ndarray,
    eps: float,
    min_pts: int = 5,
    box: float | None = None,
) -> DBSCANResult:
    """Cluster points with DBSCAN using chaining-mesh neighbor queries.

    ``min_pts`` counts the point itself, matching the classic definition.
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = len(pos)
    if n == 0:
        return DBSCANResult(np.empty(0, dtype=np.int64), 0, np.empty(0, dtype=bool))
    if eps <= 0:
        raise ValueError("eps must be positive")

    pi, pj = neighbor_pairs(pos, np.full(n, eps), box=box, include_self=True)
    degree = np.bincount(pi, minlength=n)  # includes self
    core = degree >= min_pts

    uf = UnionFind(n)
    # union core-core edges
    cc = core[pi] & core[pj] & (pi < pj)
    uf.union_edges(pi[cc], pj[cc])

    labels = np.full(n, NOISE, dtype=np.int64)
    core_idx = np.nonzero(core)[0]
    if len(core_idx) == 0:
        return DBSCANResult(labels, 0, core)

    roots = np.array([uf.find(int(i)) for i in core_idx])
    uniq, inv = np.unique(roots, return_inverse=True)
    labels[core_idx] = inv

    # border points: non-core with at least one core neighbor; attach to the
    # cluster of (any) one of them — pick the first encountered
    border_edges = core[pj] & ~core[pi]
    bi = pi[border_edges]
    bj = pj[border_edges]
    # first core neighbor per border point
    seen = {}
    for i, j in zip(bi.tolist(), bj.tolist()):
        if labels[i] == NOISE and i not in seen:
            seen[i] = j
    for i, j in seen.items():
        labels[i] = labels[j]

    return DBSCANResult(labels=labels, n_clusters=len(uniq), core_mask=core)


def brute_force_dbscan_labels(pos, eps, min_pts, box=None):
    """O(N^2) reference DBSCAN (tests only); labels up to renumbering."""
    pos = np.asarray(pos, dtype=np.float64)
    n = len(pos)
    neigh = []
    for i in range(n):
        d = pos - pos[i]
        if box is not None:
            d -= box * np.round(d / box)
        r2 = np.einsum("na,na->n", d, d)
        neigh.append(np.nonzero(r2 <= eps * eps)[0])
    core = np.array([len(nb) >= min_pts for nb in neigh])
    labels = np.full(n, NOISE, dtype=np.int64)
    cluster = 0
    for i in range(n):
        if not core[i] or labels[i] != NOISE:
            continue
        # BFS over core points
        labels[i] = cluster
        frontier = [i]
        while frontier:
            cur = frontier.pop()
            for j in neigh[cur]:
                if labels[j] == NOISE:
                    labels[j] = cluster
                    if core[j]:
                        frontier.append(int(j))
        cluster += 1
    return labels, core
