"""Friends-of-friends (FOF) halo finding.

Particles closer than a linking length ``b`` times the mean interparticle
spacing belong to the same halo (Davis et al. 1985).  The implementation
links neighbor pairs from the chaining mesh through a union-find, exactly
the strategy the GPU in situ pipeline uses with ArborX neighbor lists
(paper Section IV-B3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.scatter import segment_sum
from ..tree import neighbor_pairs
from .unionfind import UnionFind


@dataclass
class FOFCatalog:
    """Halo catalog: per-particle labels plus per-halo aggregates."""

    labels: np.ndarray  # halo id per particle; -1 for unclustered
    n_halos: int
    halo_mass: np.ndarray
    halo_size: np.ndarray  # particle counts
    halo_center: np.ndarray  # center of mass (periodic-aware)
    halo_vel: np.ndarray

    def members(self, halo: int) -> np.ndarray:
        """Particle rows belonging to one halo."""
        return np.nonzero(self.labels == halo)[0]


def fof_halos(
    pos: np.ndarray,
    mass: np.ndarray,
    box: float,
    linking_length: float | None = None,
    b: float = 0.168,
    min_members: int = 10,
) -> FOFCatalog:
    """Run FOF halo finding on a periodic particle set.

    ``linking_length`` overrides the ``b * mean_spacing`` default.  Halos
    with fewer than ``min_members`` particles are discarded (labeled -1).
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = len(pos)
    mass = np.broadcast_to(np.asarray(mass, dtype=np.float64), (n,))
    if n == 0:
        return FOFCatalog(
            labels=np.empty(0, dtype=np.int64),
            n_halos=0,
            halo_mass=np.empty(0),
            halo_size=np.empty(0, dtype=np.int64),
            halo_center=np.empty((0, 3)),
            halo_vel=np.empty((0, 3)),
        )
    if linking_length is None:
        spacing = box / n ** (1.0 / 3.0)
        linking_length = b * spacing

    pi, pj = neighbor_pairs(
        pos, np.full(n, linking_length), box=box, include_self=False
    )
    uf = UnionFind(n)
    keep = pi < pj  # each undirected edge once
    uf.union_edges(pi[keep], pj[keep])
    raw = uf.labels()

    return catalog_from_labels(pos, mass, raw, box, min_members=min_members)


def catalog_from_labels(
    pos: np.ndarray,
    mass: np.ndarray,
    raw_labels: np.ndarray,
    box: float,
    min_members: int = 10,
    velocities: np.ndarray | None = None,
) -> FOFCatalog:
    """Aggregate per-particle group labels into a halo catalog."""
    n = len(pos)
    counts = np.bincount(raw_labels)
    good = np.nonzero(counts >= min_members)[0]
    remap = np.full(counts.shape, -1, dtype=np.int64)
    remap[good] = np.arange(len(good))
    labels = remap[raw_labels]

    n_halos = len(good)
    halo_center = np.zeros((n_halos, 3))
    vel = velocities if velocities is not None else np.zeros((n, 3))

    in_halo = labels >= 0
    lab = labels[in_halo]
    m = np.asarray(mass)[in_halo]
    halo_mass = segment_sum(m, lab, n_halos)
    halo_size = np.bincount(lab, minlength=n_halos)[:n_halos]

    # periodic-aware center of mass: average offsets relative to one anchor
    # member per halo, then wrap
    anchor = np.zeros(n_halos, dtype=np.int64)
    first_seen = {}
    idx_in = np.nonzero(in_halo)[0]
    for i, l in zip(idx_in.tolist(), lab.tolist()):
        if l not in first_seen:
            first_seen[l] = i
    for l, i in first_seen.items():
        anchor[l] = i
    rel = pos[idx_in] - pos[anchor[lab]]
    rel -= box * np.round(rel / box)
    wsum = segment_sum(m[:, None] * rel, lab, n_halos)
    halo_vel = segment_sum(m[:, None] * vel[idx_in], lab, n_halos)
    halo_center = np.mod(
        pos[anchor] + wsum / np.maximum(halo_mass, 1e-300)[:, None], box
    )
    halo_vel = halo_vel / np.maximum(halo_mass, 1e-300)[:, None]

    return FOFCatalog(
        labels=labels,
        n_halos=n_halos,
        halo_mass=halo_mass,
        halo_size=halo_size,
        halo_center=halo_center,
        halo_vel=halo_vel,
    )


def brute_force_fof_labels(pos, box, linking_length):
    """O(N^2) reference FOF labels (tests only)."""
    n = len(pos)
    uf = UnionFind(n)
    for i in range(n):
        d = pos - pos[i]
        d -= box * np.round(d / box)
        r2 = np.einsum("na,na->n", d, d)
        for j in np.nonzero(r2 < linking_length**2)[0]:
            if j != i:
                uf.union(i, int(j))
    return uf.labels()
