"""Mock galaxy catalogs from halo catalogs (HOD population).

Survey pipelines consume synthetic galaxy catalogs built on simulation
halos (paper Section III, CosmoDC2/Euclid Flagship references).  This
module implements the standard halo occupation distribution: centrals via
a smoothed step in halo mass, satellites via a power law, positioned with
an NFW-like radial profile and virial velocity dispersion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import G_COSMO
from .fof import FOFCatalog


@dataclass(frozen=True)
class HODParams:
    """Zheng et al. (2005)-style occupation parameters (Msun/h units)."""

    log_m_min: float = 12.0  # central threshold mass
    sigma_logm: float = 0.25  # softening of the central step
    log_m0: float = 12.2  # satellite cutoff
    log_m1: float = 13.3  # one-satellite mass scale
    alpha: float = 1.0  # satellite power-law slope

    def mean_centrals(self, halo_mass) -> np.ndarray:
        """<N_cen>(M) = 0.5 [1 + erf(log M - log M_min / sigma)]."""
        from scipy.special import erf

        logm = np.log10(np.maximum(np.asarray(halo_mass), 1.0))
        return 0.5 * (1.0 + erf((logm - self.log_m_min) / self.sigma_logm))

    def mean_satellites(self, halo_mass) -> np.ndarray:
        """<N_sat>(M) = <N_cen> ((M - M0)/M1)^alpha for M > M0."""
        m = np.asarray(halo_mass, dtype=np.float64)
        m0 = 10.0**self.log_m0
        m1 = 10.0**self.log_m1
        base = np.clip((m - m0) / m1, 0.0, None) ** self.alpha
        return self.mean_centrals(m) * base


@dataclass
class GalaxyCatalog:
    """Galaxies with positions, velocities, and host-halo bookkeeping."""

    positions: np.ndarray
    velocities: np.ndarray
    is_central: np.ndarray
    host_halo: np.ndarray

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def n_centrals(self) -> int:
        return int(self.is_central.sum())

    @property
    def n_satellites(self) -> int:
        return len(self) - self.n_centrals


def virial_velocity(halo_mass, r_vir) -> np.ndarray:
    """Circular velocity sqrt(G M / R) in km/s (h-unit inputs)."""
    return np.sqrt(
        G_COSMO * np.asarray(halo_mass) / np.maximum(np.asarray(r_vir), 1e-12)
    )


def populate_halos(
    catalog: FOFCatalog,
    box: float,
    params: HODParams | None = None,
    rng: np.random.Generator | None = None,
    rho_mean: float | None = None,
    concentration: float = 7.0,
) -> GalaxyCatalog:
    """Draw an HOD galaxy population from a halo catalog.

    Centrals sit at halo centers with the halo bulk velocity; satellites
    are distributed with an exponential-in-radius profile out to the
    virial radius (an NFW-like stand-in needing no per-halo profile fit)
    and receive an isotropic virial velocity dispersion.
    """
    params = params or HODParams()
    rng = rng or np.random.default_rng(0)

    if catalog.n_halos == 0:
        return GalaxyCatalog(
            positions=np.empty((0, 3)),
            velocities=np.empty((0, 3)),
            is_central=np.empty(0, dtype=bool),
            host_halo=np.empty(0, dtype=np.int64),
        )

    masses = catalog.halo_mass
    # virial radius from mean-density overdensity 200
    if rho_mean is None:
        rho_mean = masses.sum() / box**3
    r_vir = (3.0 * masses / (4.0 * np.pi * 200.0 * rho_mean)) ** (1.0 / 3.0)

    pos_chunks, vel_chunks, cen_chunks, host_chunks = [], [], [], []

    has_central = rng.uniform(size=catalog.n_halos) < params.mean_centrals(masses)
    n_sat = rng.poisson(np.where(has_central,
                                 params.mean_satellites(masses), 0.0))

    for h in range(catalog.n_halos):
        if not has_central[h]:
            continue
        center = catalog.halo_center[h]
        vel = catalog.halo_vel[h]
        pos_chunks.append(center[None, :])
        vel_chunks.append(vel[None, :])
        cen_chunks.append(np.array([True]))
        host_chunks.append(np.array([h]))

        k = int(n_sat[h])
        if k == 0:
            continue
        # radial profile: exponential with scale r_vir / concentration
        radii = rng.exponential(r_vir[h] / concentration, k)
        radii = np.minimum(radii, r_vir[h])
        dirs = rng.normal(size=(k, 3))
        dirs /= np.linalg.norm(dirs, axis=1)[:, None]
        sat_pos = np.mod(center + radii[:, None] * dirs, box)
        sigma_v = virial_velocity(masses[h], r_vir[h]) / np.sqrt(3.0)
        sat_vel = vel + rng.normal(0.0, sigma_v, (k, 3))
        pos_chunks.append(sat_pos)
        vel_chunks.append(sat_vel)
        cen_chunks.append(np.zeros(k, dtype=bool))
        host_chunks.append(np.full(k, h))

    if not pos_chunks:
        return GalaxyCatalog(
            positions=np.empty((0, 3)),
            velocities=np.empty((0, 3)),
            is_central=np.empty(0, dtype=bool),
            host_halo=np.empty(0, dtype=np.int64),
        )
    return GalaxyCatalog(
        positions=np.vstack(pos_chunks),
        velocities=np.vstack(vel_chunks),
        is_central=np.concatenate(cen_chunks),
        host_halo=np.concatenate(host_chunks),
    )


def expected_number_density(
    halo_masses: np.ndarray, box: float, params: HODParams | None = None
) -> float:
    """Mean galaxy number density implied by the HOD over a halo catalog."""
    params = params or HODParams()
    # <N_tot> = <N_cen> + <N_sat>
    n_tot = params.mean_centrals(halo_masses) + params.mean_satellites(
        halo_masses
    )
    return float(n_tot.sum() / box**3)


def redshift_space_positions(
    positions: np.ndarray,
    velocities: np.ndarray,
    box: float,
    cosmo,
    a: float = 1.0,
    axis: int = 2,
) -> np.ndarray:
    """Apply redshift-space distortions along a line of sight.

    Surveys measure galaxy positions in redshift space: the peculiar
    velocity along the line of sight shifts the inferred comoving position
    by v_los / (a H(a)) (plane-parallel approximation).  This is the map
    under which the clustering 'probes' of Section II are actually
    observed (Kaiser squashing on large scales, fingers-of-god inside
    halos).
    """
    positions = np.asarray(positions, dtype=np.float64)
    s = positions.copy()
    shift = np.asarray(velocities)[:, axis] / (a * cosmo.hubble(a))
    s[:, axis] = np.mod(s[:, axis] + shift, box)
    return s
