"""Mock sky maps and lightcones: the survey-facing data products.

Frontier-E's purpose is full-sky, multi-wavelength synthetic observations
(paper Sections II, VII): thermal Sunyaev-Zel'dovich (Compton-y) maps from
gas pressure, X-ray surface brightness from n^2 sqrt(T) emission, and
object-count maps.  This module builds those products from snapshots: an
equirectangular angular map container, per-particle observable weights,
and a lightcone assembler that tiles the periodic box into comoving
distance shells around an observer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..constants import (
    K_BOLTZMANN,
    KM_CM,
    M_ELECTRON,
    M_PROTON,
    MPC_CM,
    MSUN_G,
    SIGMA_THOMSON,
    X_HYDROGEN,
)
from ..core.scatter import segment_sum
from ..core.sph.eos import IdealGasEOS
from ..cosmology.background import Cosmology


@dataclass
class AngularMap:
    """Equirectangular full-sky map (theta in [0, pi], phi in [0, 2 pi)).

    Pixels are weighted by inverse solid angle so the stored quantity is a
    surface density (per steradian); totals are recoverable via
    :meth:`integral`.
    """

    n_theta: int = 64
    n_phi: int = 128
    data: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.data is None:
            self.data = np.zeros((self.n_theta, self.n_phi))
        theta_edges = np.linspace(0.0, math.pi, self.n_theta + 1)
        dphi = 2.0 * math.pi / self.n_phi
        self._pixel_solid_angle = (
            (np.cos(theta_edges[:-1]) - np.cos(theta_edges[1:])) * dphi
        )[:, None] * np.ones((1, self.n_phi))

    @property
    def pixel_solid_angle(self) -> np.ndarray:
        return self._pixel_solid_angle

    def add(self, theta: np.ndarray, phi: np.ndarray, weights) -> None:
        """Accumulate per-object weights into pixels (per-steradian units)."""
        theta = np.asarray(theta, dtype=np.float64)
        phi = np.mod(np.asarray(phi, dtype=np.float64), 2.0 * math.pi)
        weights = np.broadcast_to(
            np.asarray(weights, dtype=np.float64), theta.shape
        )
        it = np.clip(
            (theta / math.pi * self.n_theta).astype(np.int64), 0, self.n_theta - 1
        )
        ip = np.clip(
            (phi / (2.0 * math.pi) * self.n_phi).astype(np.int64),
            0,
            self.n_phi - 1,
        )
        contrib = weights / self._pixel_solid_angle[it, ip]
        self.data += segment_sum(
            contrib, it * self.n_phi + ip, self.n_theta * self.n_phi
        ).reshape(self.n_theta, self.n_phi)

    def integral(self) -> float:
        """Total weight on the sky (sum of data x solid angle)."""
        return float(np.sum(self.data * self._pixel_solid_angle))

    def mean(self) -> float:
        return self.integral() / (4.0 * math.pi)


def angles_from_vectors(vec: np.ndarray):
    """(theta, phi, r) spherical coordinates of displacement vectors."""
    vec = np.atleast_2d(np.asarray(vec, dtype=np.float64))
    r = np.sqrt(np.einsum("na,na->n", vec, vec))
    safe_r = np.maximum(r, 1e-300)
    theta = np.arccos(np.clip(vec[:, 2] / safe_r, -1.0, 1.0))
    phi = np.mod(np.arctan2(vec[:, 1], vec[:, 0]), 2.0 * math.pi)
    return theta, phi, r


# -- per-particle observable weights -----------------------------------------

def compton_y_weights(
    mass: np.ndarray,
    u: np.ndarray,
    distance_mpc: np.ndarray,
    mu_e: float = 1.14,
) -> np.ndarray:
    """Per-particle contribution to the Compton-y sky integral.

    y = (sigma_T / m_e c^2) * integral P_e dl; discretized per particle as
    (sigma_T k_B T_e / m_e c^2) * (N_e / d_A^2) — dimensionless, with all
    inputs in code units (Msun, (km/s)^2, Mpc).
    """
    eos = IdealGasEOS()
    t_e = eos.temperature(u, mu=0.59)
    n_e = np.asarray(mass) * MSUN_G / (mu_e * M_PROTON)  # electron count
    c_cgs = 2.99792458e10
    d_cm = np.asarray(distance_mpc) * MPC_CM
    y = (
        SIGMA_THOMSON
        * K_BOLTZMANN
        * t_e
        / (M_ELECTRON * c_cgs**2)
        * n_e
        / np.maximum(d_cm, 1e-10) ** 2
    )
    return y


def xray_luminosity_weights(
    mass: np.ndarray,
    rho_comoving: np.ndarray,
    u: np.ndarray,
    a: float = 1.0,
) -> np.ndarray:
    """Bolometric bremsstrahlung luminosity per particle, erg/s.

    L ~ 1.4e-27 sqrt(T) n_e n_i V (free-free); V = m/rho.
    """
    eos = IdealGasEOS()
    t = eos.temperature(u, mu=0.59)
    rho_cgs = np.asarray(rho_comoving) * MSUN_G / MPC_CM**3 / a**3
    n_h = X_HYDROGEN * rho_cgs / M_PROTON
    vol_cm3 = np.asarray(mass) * MSUN_G / np.maximum(rho_cgs, 1e-60)
    return 1.4e-27 * np.sqrt(np.maximum(t, 0.0)) * 1.2 * n_h**2 * vol_cm3


# -- lightcone construction ------------------------------------------------------

@dataclass
class LightconeShell:
    """Particles selected into one comoving-distance shell."""

    a: float
    chi_min: float
    chi_max: float
    positions: np.ndarray  # relative to the observer (replicated)
    indices: np.ndarray  # source particle row in the snapshot


class LightconeBuilder:
    """Assembles comoving-distance shells from periodic snapshots.

    For each snapshot (at scale factor ``a``) the periodic box is tiled
    with enough replicas to cover the shell [chi(a_outer), chi(a_inner)]
    around the observer, and particles falling inside the shell are
    selected — the standard lightcone construction used to embed synthetic
    observations in a single domain (paper Section III).
    """

    def __init__(self, box: float, cosmo: Cosmology, observer=None,
                 max_replicas: int = 4):
        self.box = float(box)
        self.cosmo = cosmo
        self.observer = (
            np.full(3, self.box / 2.0)
            if observer is None
            else np.asarray(observer, dtype=np.float64)
        )
        #: cap on periodic box replications per axis direction — shells
        #: farther than max_replicas * box would tile the box thousands of
        #: times (a 5 Gpc shell over a 50 Mpc toy box); raise instead
        self.max_replicas = max_replicas

    def comoving_distance_of_a(self, a: float) -> float:
        return float(self.cosmo.comoving_distance(1.0 / a - 1.0))

    def shell(self, positions: np.ndarray, a_inner: float, a_outer: float,
              a_snapshot: float | None = None) -> LightconeShell:
        """Select (replicated) particles whose comoving distance lies in
        the shell between the scale factors ``a_outer < a_inner``."""
        if not 0 < a_outer < a_inner <= 1.0:
            raise ValueError("need 0 < a_outer < a_inner <= 1")
        chi_min = self.comoving_distance_of_a(a_inner)
        chi_max = self.comoving_distance_of_a(a_outer)
        return self.shell_by_distance(
            positions, chi_min, chi_max,
            a=a_snapshot if a_snapshot is not None else a_outer,
        )

    def shell_by_distance(
        self, positions: np.ndarray, chi_min: float, chi_max: float,
        a: float = 1.0,
    ) -> LightconeShell:
        """Select particles in an explicit comoving-distance shell.

        Lets toy boxes build nearby shells directly instead of the
        full-cosmology chi(a) mapping (which for survey redshifts spans
        gigaparsecs and would demand thousands of box replicas).
        """
        if not 0 <= chi_min < chi_max:
            raise ValueError("need 0 <= chi_min < chi_max")
        positions = np.asarray(positions, dtype=np.float64)

        n_rep = int(np.ceil(chi_max / self.box)) + 1
        if n_rep > self.max_replicas:
            raise ValueError(
                f"shell at chi ~ {chi_max:.0f} needs {n_rep} box replicas "
                f"per direction (> max_replicas={self.max_replicas}); use a "
                f"larger box or shell_by_distance with nearer shells"
            )
        reps = range(-n_rep, n_rep + 1)
        sel_pos = []
        sel_idx = []
        base = positions - self.observer
        idx = np.arange(len(positions))
        for ix in reps:
            for iy in reps:
                for iz in reps:
                    shift = np.array([ix, iy, iz], dtype=np.float64) * self.box
                    rel = base + shift
                    r = np.sqrt(np.einsum("na,na->n", rel, rel))
                    inside = (r >= chi_min) & (r < chi_max)
                    if inside.any():
                        sel_pos.append(rel[inside])
                        sel_idx.append(idx[inside])
        if sel_pos:
            pos_out = np.vstack(sel_pos)
            idx_out = np.concatenate(sel_idx)
        else:
            pos_out = np.empty((0, 3))
            idx_out = np.empty(0, dtype=np.int64)
        return LightconeShell(
            a=a,
            chi_min=chi_min,
            chi_max=chi_max,
            positions=pos_out,
            indices=idx_out,
        )

    def project_shell(
        self, shell: LightconeShell, weights: np.ndarray, sky: AngularMap
    ) -> AngularMap:
        """Add a shell's particles onto an angular map with given weights
        (weights indexed by the shell's source rows)."""
        if len(shell.positions) == 0:
            return sky
        theta, phi, _ = angles_from_vectors(shell.positions)
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim == 0:
            sky.add(theta, phi, np.full(len(shell.positions), float(w)))
        else:
            sky.add(theta, phi, w[shell.indices])
        return sky


def angular_power_spectrum(sky: AngularMap, ell_max: int = 8) -> np.ndarray:
    """Low-ell angular power spectrum C_ell of a sky map.

    Computes a_lm by direct quadrature of the map against spherical
    harmonics on the pixel grid (exact for band-limited maps at these
    resolutions) and returns C_ell = sum_m |a_lm|^2 / (2 ell + 1) for
    ell = 0..ell_max.  This is the statistic survey analyses extract from
    tSZ/count maps (paper Section II's 'clustering probes').
    """
    from scipy.special import sph_harm_y

    nt, nphi = sky.n_theta, sky.n_phi
    theta = (np.arange(nt) + 0.5) * math.pi / nt
    phi = (np.arange(nphi) + 0.5) * 2.0 * math.pi / nphi
    tt, pp = np.meshgrid(theta, phi, indexing="ij")
    domega = sky.pixel_solid_angle

    c_ell = np.zeros(ell_max + 1)
    for ell in range(ell_max + 1):
        total = 0.0
        for m in range(-ell, ell + 1):
            ylm = sph_harm_y(ell, m, tt, pp)
            alm = np.sum(sky.data * np.conj(ylm) * domega)
            total += float(np.abs(alm) ** 2)
        c_ell[ell] = total / (2 * ell + 1)
    return c_ell
