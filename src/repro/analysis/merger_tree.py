"""Halo merger trees: linking catalogs across snapshots by particle IDs.

Halos "form hierarchically, with smaller structures merging to form larger
ones" (paper Section III); tracking that assembly across snapshots is what
turns halo catalogs into galaxy-formation histories.  Links use the
standard particle-ID overlap criterion: descendant = the later-snapshot
halo receiving the largest share of a progenitor's particles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .fof import FOFCatalog


@dataclass
class HaloLink:
    """One progenitor -> descendant edge."""

    progenitor: int
    descendant: int
    shared_particles: int
    shared_fraction: float  # of the progenitor's particles
    is_main: bool  # largest-contributor progenitor of the descendant


@dataclass
class MergerTreeLevel:
    """Links between two adjacent snapshots."""

    links: list
    n_progenitors: int
    n_descendants: int

    def descendants_of(self, progenitor: int) -> list:
        """Links leaving one progenitor halo."""
        return [l for l in self.links if l.progenitor == progenitor]

    def progenitors_of(self, descendant: int) -> list:
        """Links arriving at one descendant halo."""
        return [l for l in self.links if l.descendant == descendant]

    def main_progenitor(self, descendant: int) -> int | None:
        """Largest-contributor progenitor, or None for newly formed halos."""
        for l in self.links:
            if l.descendant == descendant and l.is_main:
                return l.progenitor
        return None

    @property
    def n_mergers(self) -> int:
        """Descendants with more than one progenitor."""
        counts = {}
        for l in self.links:
            counts[l.descendant] = counts.get(l.descendant, 0) + 1
        return sum(1 for c in counts.values() if c > 1)


def link_catalogs(
    earlier: FOFCatalog,
    later: FOFCatalog,
    ids_earlier: np.ndarray,
    ids_later: np.ndarray,
    min_shared: int = 3,
) -> MergerTreeLevel:
    """Link halos of two snapshots via shared particle IDs.

    ``ids_*`` give the particle ID for each row of the respective
    snapshot's label arrays (IDs are stable across snapshots; row order
    need not be).
    """
    # particle id -> later halo
    later_halo_of_id = {}
    for row, halo in enumerate(later.labels):
        if halo >= 0:
            later_halo_of_id[int(ids_later[row])] = int(halo)

    # count overlaps
    overlap: dict[tuple[int, int], int] = {}
    for row, halo in enumerate(earlier.labels):
        if halo < 0:
            continue
        dest = later_halo_of_id.get(int(ids_earlier[row]))
        if dest is not None:
            overlap[(int(halo), dest)] = overlap.get((int(halo), dest), 0) + 1

    # build links above the noise threshold
    links = []
    best_into: dict[int, tuple[int, int]] = {}  # descendant -> (count, prog)
    for (prog, desc), count in overlap.items():
        if count < min_shared:
            continue
        frac = count / max(int(earlier.halo_size[prog]), 1)
        links.append(
            HaloLink(
                progenitor=prog,
                descendant=desc,
                shared_particles=count,
                shared_fraction=frac,
                is_main=False,
            )
        )
        cur = best_into.get(desc)
        if cur is None or count > cur[0]:
            best_into[desc] = (count, prog)

    for l in links:
        if best_into.get(l.descendant, (None, None))[1] == l.progenitor:
            l.is_main = True

    return MergerTreeLevel(
        links=links,
        n_progenitors=earlier.n_halos,
        n_descendants=later.n_halos,
    )


def mass_growth_histories(
    levels: list, final_catalog: FOFCatalog, catalogs: list
) -> dict:
    """Main-progenitor mass history for every halo in the final catalog.

    ``levels[i]`` links ``catalogs[i] -> catalogs[i+1]``; the final entry
    of ``catalogs`` must be ``final_catalog``.  Returns
    {halo_id: [mass_earliest, ..., mass_final]} following main-progenitor
    branches backward.
    """
    histories = {}
    for halo in range(final_catalog.n_halos):
        masses = [float(final_catalog.halo_mass[halo])]
        current = halo
        for level, catalog in zip(reversed(levels), reversed(catalogs[:-1])):
            prog = level.main_progenitor(current)
            if prog is None:
                break
            masses.append(float(catalog.halo_mass[prog]))
            current = prog
        histories[halo] = list(reversed(masses))
    return histories
