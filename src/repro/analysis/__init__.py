"""GPU-accelerated in situ analysis analogs: clustering, P(k), halo stats."""

from .bvh import LBVH, build_lbvh, morton_codes
from .correlation import landy_szalay, natural_estimator, pair_counts, xi_from_power
from .dbscan import DBSCANResult, brute_force_dbscan_labels, dbscan
from .fof import FOFCatalog, brute_force_fof_labels, catalog_from_labels, fof_halos
from .insitu import InSituPipeline, InSituReport, density_temperature_slices
from .mass_function import (
    cluster_count,
    halo_mass_function,
    press_schechter_mass_function,
)
from .merger_tree import (
    HaloLink,
    MergerTreeLevel,
    link_catalogs,
    mass_growth_histories,
)
from .mock_catalog import (
    GalaxyCatalog,
    HODParams,
    expected_number_density,
    populate_halos,
    redshift_space_positions,
    virial_velocity,
)
from .power import dimensionless_power, measure_power_spectrum
from .profiles import (
    NFWFit,
    RadialProfile,
    fit_nfw,
    nfw_density,
    radial_profile,
    virial_radius,
)
from .skymaps import (
    AngularMap,
    angular_power_spectrum,
    LightconeBuilder,
    LightconeShell,
    angles_from_vectors,
    compton_y_weights,
    xray_luminosity_weights,
)
from .unionfind import UnionFind

__all__ = [
    "AngularMap",
    "DBSCANResult",
    "FOFCatalog",
    "GalaxyCatalog",
    "HODParams",
    "HaloLink",
    "MergerTreeLevel",
    "InSituPipeline",
    "InSituReport",
    "LBVH",
    "LightconeBuilder",
    "LightconeShell",
    "NFWFit",
    "RadialProfile",
    "UnionFind",
    "angles_from_vectors",
    "angular_power_spectrum",
    "brute_force_dbscan_labels",
    "brute_force_fof_labels",
    "build_lbvh",
    "catalog_from_labels",
    "cluster_count",
    "dbscan",
    "density_temperature_slices",
    "compton_y_weights",
    "dimensionless_power",
    "expected_number_density",
    "fit_nfw",
    "fof_halos",
    "landy_szalay",
    "link_catalogs",
    "natural_estimator",
    "pair_counts",
    "populate_halos",
    "halo_mass_function",
    "measure_power_spectrum",
    "morton_codes",
    "nfw_density",
    "press_schechter_mass_function",
    "radial_profile",
    "redshift_space_positions",
    "virial_radius",
    "virial_velocity",
    "xi_from_power",
    "xray_luminosity_weights",
]
