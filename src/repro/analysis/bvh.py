"""Linear BVH (ArborX analog): Morton-ordered bounding volume hierarchy.

The paper's in situ clustering pipeline uses the ArborX library for
GPU-native spatial indexing (Section IV-B3).  This module reproduces the
same construction strategy: particles are sorted along a Morton (Z-order)
curve, the hierarchy is built bottom-up over the sorted order, and queries
traverse the tree with AABB tests.  Batch queries are vectorized over a
frontier of active nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def morton_codes(pos: np.ndarray, lo: np.ndarray, hi: np.ndarray, bits: int = 10):
    """30-bit 3D Morton codes for positions normalized to [lo, hi]."""
    pos = np.asarray(pos, dtype=np.float64)
    scale = (2**bits - 1) / np.maximum(hi - lo, 1e-300)
    q = np.clip(((pos - lo) * scale).astype(np.uint64), 0, 2**bits - 1)

    def spread(x):
        x = x.astype(np.uint64)
        x = (x | (x << np.uint64(16))) & np.uint64(0x030000FF)
        x = (x | (x << np.uint64(8))) & np.uint64(0x0300F00F)
        x = (x | (x << np.uint64(4))) & np.uint64(0x030C30C3)
        x = (x | (x << np.uint64(2))) & np.uint64(0x09249249)
        return x

    return (
        spread(q[:, 0]) | (spread(q[:, 1]) << np.uint64(1)) | (spread(q[:, 2]) << np.uint64(2))
    )


@dataclass
class LBVH:
    """Binary BVH over Morton-sorted points with fixed-size leaves.

    Nodes are stored in arrays: node i has children ``child[i] = (l, r)``
    (-1 marks a leaf), AABB ``nmin/nmax``, and leaves own contiguous slices
    of the Morton-sorted permutation ``order``.
    """

    points: np.ndarray
    order: np.ndarray
    node_min: np.ndarray
    node_max: np.ndarray
    node_left: np.ndarray
    node_right: np.ndarray
    leaf_start: np.ndarray  # -1 for internal nodes
    leaf_count: np.ndarray

    @property
    def n_nodes(self) -> int:
        return len(self.node_left)

    def query_radius(self, centers: np.ndarray, radius: float) -> list[np.ndarray]:
        """Indices of points within ``radius`` of each center (brute-force
        fallback inside leaves; traversal prunes by AABB distance)."""
        centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        out = []
        for c in centers:
            hits = []
            stack = [0]
            while stack:
                node = stack.pop()
                # distance from c to node AABB
                d = np.maximum(
                    np.maximum(self.node_min[node] - c, c - self.node_max[node]),
                    0.0,
                )
                if np.dot(d, d) > radius * radius:
                    continue
                if self.leaf_start[node] >= 0:
                    s = self.leaf_start[node]
                    idx = self.order[s : s + self.leaf_count[node]]
                    dd = self.points[idx] - c
                    r2 = np.einsum("na,na->n", dd, dd)
                    hits.append(idx[r2 <= radius * radius])
                else:
                    stack.append(self.node_left[node])
                    stack.append(self.node_right[node])
            out.append(
                np.concatenate(hits) if hits else np.empty(0, dtype=np.int64)
            )
        return out


def build_lbvh(points: np.ndarray, max_leaf: int = 16) -> LBVH:
    """Construct an LBVH by recursively halving the Morton-sorted order."""
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if n == 0:
        raise ValueError("cannot build a BVH over zero points")
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    codes = morton_codes(points, lo, hi)
    order = np.argsort(codes, kind="stable")

    node_min, node_max = [], []
    node_left, node_right = [], []
    leaf_start, leaf_count = [], []

    def add_node():
        node_min.append(np.zeros(3))
        node_max.append(np.zeros(3))
        node_left.append(-1)
        node_right.append(-1)
        leaf_start.append(-1)
        leaf_count.append(0)
        return len(node_left) - 1

    root = add_node()
    stack = [(root, 0, n)]
    while stack:
        node, s, e = stack.pop()
        idx = order[s:e]
        node_min[node] = points[idx].min(axis=0)
        node_max[node] = points[idx].max(axis=0)
        if e - s <= max_leaf:
            leaf_start[node] = s
            leaf_count[node] = e - s
            continue
        mid = (s + e) // 2
        left = add_node()
        right = add_node()
        node_left[node] = left
        node_right[node] = right
        stack.append((left, s, mid))
        stack.append((right, mid, e))

    return LBVH(
        points=points,
        order=order,
        node_min=np.asarray(node_min),
        node_max=np.asarray(node_max),
        node_left=np.asarray(node_left, dtype=np.int64),
        node_right=np.asarray(node_right, dtype=np.int64),
        leaf_start=np.asarray(leaf_start, dtype=np.int64),
        leaf_count=np.asarray(leaf_count, dtype=np.int64),
    )
