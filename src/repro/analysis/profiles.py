"""Halo radial profiles and NFW fitting.

Cluster-scale science from the in situ pipeline: spherically-averaged
density and temperature profiles around halo centers, NFW profile fits,
and concentration estimates — the per-object measurements behind the
paper's '570,000 galaxy clusters' statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares


@dataclass
class RadialProfile:
    """Spherically averaged profile around one center."""

    r_centers: np.ndarray
    density: np.ndarray  # Msun/h per (Mpc/h)^3
    counts: np.ndarray
    enclosed_mass: np.ndarray
    temperature: np.ndarray | None = None


def radial_profile(
    center: np.ndarray,
    pos: np.ndarray,
    mass: np.ndarray,
    box: float,
    r_max: float,
    n_bins: int = 16,
    r_min: float | None = None,
    u: np.ndarray | None = None,
    log_bins: bool = True,
) -> RadialProfile:
    """Density (and optionally mass-weighted temperature) profile."""
    center = np.asarray(center, dtype=np.float64)
    d = np.asarray(pos, dtype=np.float64) - center
    d -= box * np.round(d / box)
    r = np.sqrt(np.einsum("na,na->n", d, d))
    r_min = r_min if r_min is not None else r_max / 100.0
    if log_bins:
        edges = np.logspace(np.log10(r_min), np.log10(r_max), n_bins + 1)
    else:
        edges = np.linspace(r_min, r_max, n_bins + 1)

    idx = np.digitize(r, edges) - 1
    inside = (idx >= 0) & (idx < n_bins)
    counts = np.bincount(idx[inside], minlength=n_bins)
    msum = np.bincount(idx[inside], weights=np.asarray(mass)[inside],
                       minlength=n_bins)
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density = msum / shell_vol
    enclosed = np.cumsum(msum) + np.sum(np.asarray(mass)[r < r_min])

    temperature = None
    if u is not None:
        from ..core.sph.eos import IdealGasEOS

        tvals = IdealGasEOS().temperature(np.asarray(u))
        tsum = np.bincount(
            idx[inside], weights=(np.asarray(mass) * tvals)[inside],
            minlength=n_bins,
        )
        with np.errstate(invalid="ignore"):
            temperature = np.where(msum > 0, tsum / np.maximum(msum, 1e-300),
                                   0.0)

    centers = np.sqrt(edges[:-1] * edges[1:]) if log_bins else (
        0.5 * (edges[:-1] + edges[1:])
    )
    return RadialProfile(
        r_centers=centers,
        density=density,
        counts=counts,
        enclosed_mass=enclosed,
        temperature=temperature,
    )


def nfw_density(r, rho_s: float, r_s: float):
    """Navarro-Frenk-White profile rho_s / [(r/r_s)(1 + r/r_s)^2]."""
    x = np.asarray(r, dtype=np.float64) / r_s
    return rho_s / (x * (1.0 + x) ** 2)


@dataclass
class NFWFit:
    """Best-fit NFW parameters and the log-space residual."""
    rho_s: float
    r_s: float
    log_residual_rms: float

    def concentration(self, r_vir: float) -> float:
        """c = R_vir / r_s, the standard concentration parameter."""
        return r_vir / self.r_s


def fit_nfw(profile: RadialProfile, min_counts: int = 5) -> NFWFit:
    """Least-squares NFW fit in log space over well-sampled bins."""
    good = (profile.counts >= min_counts) & (profile.density > 0)
    if good.sum() < 3:
        raise ValueError("not enough sampled bins for an NFW fit")
    r = profile.r_centers[good]
    rho = profile.density[good]

    def resid(params):
        log_rho_s, log_r_s = params
        model = nfw_density(r, 10.0**log_rho_s, 10.0**log_r_s)
        return np.log10(model) - np.log10(rho)

    guess = [np.log10(rho.max()), np.log10(np.median(r))]
    sol = least_squares(resid, guess)
    return NFWFit(
        rho_s=10.0 ** sol.x[0],
        r_s=10.0 ** sol.x[1],
        log_residual_rms=float(np.sqrt(np.mean(sol.fun**2))),
    )


def virial_radius(
    center: np.ndarray,
    pos: np.ndarray,
    mass: np.ndarray,
    box: float,
    rho_mean: float,
    overdensity: float = 200.0,
    r_max: float | None = None,
) -> float:
    """R_Delta: radius enclosing ``overdensity`` times the mean density."""
    center = np.asarray(center, dtype=np.float64)
    d = np.asarray(pos, dtype=np.float64) - center
    d -= box * np.round(d / box)
    r = np.sort(np.sqrt(np.einsum("na,na->n", d, d)))
    m = np.asarray(mass)
    order = np.argsort(np.sqrt(np.einsum("na,na->n", d, d)))
    menc = np.cumsum(m[order])
    r_max = r_max or box / 4.0
    with np.errstate(divide="ignore", invalid="ignore"):
        mean_enc = menc / (4.0 / 3.0 * np.pi * np.maximum(r, 1e-12) ** 3)
    target = overdensity * rho_mean
    ok = (r > 0) & (r <= r_max) & (mean_enc >= target)
    if not ok.any():
        return 0.0
    return float(r[ok][-1])
