"""In situ analysis pipeline (paper Section IV-B3).

Runs clustering and summary statistics *during* the simulation so raw
particle snapshots never need to be stored.  The pipeline is registered as
a Simulation hook; its wall-clock cost lands in the 'analysis' timer, which
the paper's Fig. 2 breakdown reports at 11.6% of total time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.scatter import segment_sum
from .dbscan import dbscan
from .fof import fof_halos
from .mass_function import cluster_count, halo_mass_function
from .power import measure_power_spectrum


@dataclass
class InSituReport:
    """Analysis products from one PM step."""

    step: int
    a: float
    n_halos: int
    n_clusters: int
    n_galaxies: int
    largest_halo_mass: float
    k: np.ndarray
    pk: np.ndarray
    mass_function: tuple
    density_slice: np.ndarray
    temperature_slice: np.ndarray | None
    clustering_rms: float  # rms density contrast on the analysis grid


@dataclass
class InSituPipeline:
    """Configurable per-step analysis driver.

    Attach with ``sim.insitu_hooks.append(pipeline)``; call it manually for
    ad hoc analysis.  Set ``every`` to analyze only every k-th step.
    """

    every: int = 1
    n_grid: int = 32
    linking_b: float = 0.2
    min_members: int = 8
    slice_axis: int = 2
    reports: list = field(default_factory=list)

    def __call__(self, sim, record) -> InSituReport | None:
        if record.step % self.every != 0:
            return None
        report = self.analyze(sim, record.step, record.a)
        self.reports.append(report)
        return report

    def analyze(self, sim, step: int, a: float) -> InSituReport:
        """Run the full analysis battery on the current particle state."""
        p = sim.particles
        box = sim.config.box

        cat = fof_halos(
            p.pos, p.mass, box, b=self.linking_b, min_members=self.min_members
        )
        k, pk = measure_power_spectrum(p.pos, p.mass, box, n_grid=self.n_grid)
        mf = halo_mass_function(cat.halo_mass, box)

        # galaxies: DBSCAN clusters in the stellar distribution (paper
        # Section IV-B3: "facilitate detection of all galaxies")
        n_galaxies = 0
        stars = np.nonzero(p.stars)[0]
        if len(stars) >= 4:
            eps = 0.5 * box / max(len(p) ** (1 / 3), 1.0)
            galaxies = dbscan(p.pos[stars], eps=eps, min_pts=3, box=box)
            n_galaxies = galaxies.n_clusters

        dens, temp = density_temperature_slices(
            p, box, n_grid=self.n_grid, axis=self.slice_axis, eos=sim.eos
        )
        from ..core.gravity.pm import cic_deposit

        rho = cic_deposit(p.pos, p.mass, self.n_grid, box)
        delta = rho / rho.mean() - 1.0

        return InSituReport(
            step=step,
            a=a,
            n_halos=cat.n_halos,
            n_clusters=cluster_count(cat.halo_mass),
            n_galaxies=n_galaxies,
            largest_halo_mass=float(cat.halo_mass.max()) if cat.n_halos else 0.0,
            k=k,
            pk=pk,
            mass_function=mf,
            density_slice=dens,
            temperature_slice=temp,
            clustering_rms=float(delta.std()),
        )


def density_temperature_slices(
    particles, box: float, n_grid: int = 32, axis: int = 2, width: float | None = None,
    eos=None,
):
    """Projected density and mass-weighted temperature maps of a slab.

    Mirrors the paper's Fig. 3 visualization: a thin slice of total matter
    density (all species) and gas temperature.  Returns (density, temp);
    temp is None when there is no gas.
    """
    from ..core.sph.eos import IdealGasEOS

    eos = eos or IdealGasEOS()
    pos = particles.pos
    width = width or box / 8.0
    in_slab = pos[:, axis] < width
    axes = [i for i in range(3) if i != axis]

    cell = box / n_grid
    ij = np.clip((pos[in_slab][:, axes] / cell).astype(int), 0, n_grid - 1)
    dens = segment_sum(
        particles.mass[in_slab], ij[:, 0] * n_grid + ij[:, 1], n_grid * n_grid
    ).reshape(n_grid, n_grid)
    dens /= cell**2 * width

    gas_slab = in_slab & particles.gas
    temp = None
    if gas_slab.any():
        ijg = np.clip((pos[gas_slab][:, axes] / cell).astype(int), 0, n_grid - 1)
        tvals = eos.temperature(particles.u[gas_slab])
        mgas = particles.mass[gas_slab]
        flat = ijg[:, 0] * n_grid + ijg[:, 1]
        tsum = segment_sum(mgas * tvals, flat, n_grid * n_grid).reshape(
            n_grid, n_grid
        )
        msum = segment_sum(mgas, flat, n_grid * n_grid).reshape(n_grid, n_grid)
        with np.errstate(invalid="ignore"):
            temp = np.where(msum > 0, tsum / np.maximum(msum, 1e-300), 0.0)
    return dens, temp
