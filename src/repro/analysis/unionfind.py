"""Array-based union-find (disjoint set) with path compression.

Shared by the FOF halo finder and DBSCAN; supports bulk edge unions, which
is how the GPU clustering kernels batch their merges.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Disjoint-set forest over integer ids 0..n-1."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)

    def find(self, i: int) -> int:
        """Root of i with path compression."""
        p = self.parent
        root = i
        while p[root] != root:
            root = p[root]
        # compress
        while p[i] != root:
            p[i], i = root, p[i]
        return int(root)

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1

    def union_edges(self, a: np.ndarray, b: np.ndarray) -> None:
        """Union many edges (a[k], b[k])."""
        for x, y in zip(np.asarray(a).tolist(), np.asarray(b).tolist()):
            self.union(x, y)

    def labels(self) -> np.ndarray:
        """Canonical root label per element (contiguous relabeling)."""
        n = len(self.parent)
        roots = np.empty(n, dtype=np.int64)
        for i in range(n):
            roots[i] = self.find(i)
        _, labels = np.unique(roots, return_inverse=True)
        return labels

    def n_components(self) -> int:
        return len(np.unique(self.labels()))
