"""Two-point correlation function estimators.

The configuration-space counterpart of P(k), used for the clustering
probes the paper's surveys measure.  Implements the natural and
Landy-Szalay estimators with chaining-mesh pair counting, plus the
analytic P(k) -> xi(r) transform for cross-checks against linear theory.
"""

from __future__ import annotations

import numpy as np
from scipy import integrate

from ..cosmology.power_spectrum import LinearPower
from ..tree import neighbor_pairs


def pair_counts(
    pos: np.ndarray, edges: np.ndarray, box: float,
    pos2: np.ndarray | None = None,
) -> np.ndarray:
    """Histogram of (auto or cross) pair separations within max(edges).

    Auto counts exclude self pairs and count each unordered pair once.
    """
    edges = np.asarray(edges, dtype=np.float64)
    r_max = float(edges[-1])
    if pos2 is None:
        pi, pj = neighbor_pairs(
            pos, np.full(len(pos), r_max), box=box, include_self=False
        )
        keep = pi < pj
        dx = pos[pi[keep]] - pos[pj[keep]]
    else:
        both = np.vstack([pos, pos2])
        h = np.full(len(both), r_max)
        pi, pj = neighbor_pairs(both, h, box=box, include_self=False)
        n1 = len(pos)
        keep = (pi < n1) & (pj >= n1)
        dx = both[pi[keep]] - both[pj[keep]]
    dx -= box * np.round(dx / box)
    r = np.sqrt(np.einsum("pa,pa->p", dx, dx))
    counts, _ = np.histogram(r, bins=edges)
    return counts


def natural_estimator(
    pos: np.ndarray, edges: np.ndarray, box: float
) -> np.ndarray:
    """xi(r) = DD / RR_analytic - 1 (exact RR for a periodic box)."""
    n = len(pos)
    dd = pair_counts(pos, edges, box)
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    rr = n * (n - 1) / 2.0 * shell_vol / box**3
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(rr > 0, dd / rr - 1.0, np.nan)


def landy_szalay(
    pos: np.ndarray,
    randoms: np.ndarray,
    edges: np.ndarray,
    box: float,
) -> np.ndarray:
    """(DD - 2 DR + RR) / RR with an explicit random catalog."""
    nd = len(pos)
    nr = len(randoms)
    dd = pair_counts(pos, edges, box).astype(np.float64)
    rr = pair_counts(randoms, edges, box).astype(np.float64)
    dr = pair_counts(pos, edges, box, pos2=randoms).astype(np.float64)
    # normalize counts to pair totals
    dd /= nd * (nd - 1) / 2.0
    rr /= nr * (nr - 1) / 2.0
    dr /= nd * nr
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(rr > 0, (dd - 2.0 * dr + rr) / rr, np.nan)


def xi_from_power(r, power: LinearPower, a: float = 1.0) -> np.ndarray:
    """Analytic xi(r) = (1/2 pi^2) int k^2 P(k) sinc(kr) dk."""
    r = np.atleast_1d(np.asarray(r, dtype=np.float64))
    out = np.empty_like(r)
    for i, ri in enumerate(r):
        def integrand(lnk):
            k = np.exp(lnk)
            return k**3 * power(k, a) * np.sinc(k * ri / np.pi) / (2.0 * np.pi**2)

        val, _ = integrate.quad(
            integrand, np.log(1e-4), np.log(50.0), limit=400
        )
        out[i] = val
    return out
