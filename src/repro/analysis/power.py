"""Matter power spectrum measurement from particle distributions.

CIC-deposits particles onto a grid, FFTs the density contrast, deconvolves
the assignment window, and averages |delta_k|^2 in spherical k shells —
the standard estimator used for the in situ clustering statistics.
"""

from __future__ import annotations

import numpy as np

from ..core.gravity.pm import cic_deposit


def measure_power_spectrum(
    pos: np.ndarray,
    mass: np.ndarray,
    box: float,
    n_grid: int = 64,
    n_bins: int | None = None,
    deconvolve: bool = True,
    subtract_shot_noise: bool = False,
):
    """Binned P(k) of a particle set.

    Returns (k_centers, p_k) with k in h/Mpc and P in (Mpc/h)^3.  Empty
    bins return NaN.
    """
    pos = np.asarray(pos, dtype=np.float64)
    n_part = len(pos)
    rho = cic_deposit(pos, mass, n_grid, box)
    mean = rho.mean()
    if mean <= 0:
        raise ValueError("empty density grid")
    delta = rho / mean - 1.0

    delta_k = np.fft.rfftn(delta)
    dk = 2.0 * np.pi / box
    k1 = np.fft.fftfreq(n_grid, d=1.0 / n_grid) * dk
    kz = np.fft.rfftfreq(n_grid, d=1.0 / n_grid) * dk
    kmag = np.sqrt(
        k1[:, None, None] ** 2 + k1[None, :, None] ** 2 + kz[None, None, :] ** 2
    )

    pk3d = np.abs(delta_k) ** 2 * box**3 / n_grid**6

    if deconvolve:
        fx = np.fft.fftfreq(n_grid)
        fz = np.fft.rfftfreq(n_grid)
        w = (
            np.sinc(fx)[:, None, None]
            * np.sinc(fx)[None, :, None]
            * np.sinc(fz)[None, None, :]
        ) ** 2  # CIC window
        pk3d = pk3d / np.maximum(w**2, 1e-12)

    if n_bins is None:
        n_bins = n_grid // 2
    k_ny = np.pi * n_grid / box
    edges = np.linspace(dk * 0.5, k_ny, n_bins + 1)
    idx = np.digitize(kmag.ravel(), edges)
    pk_flat = pk3d.ravel()

    counts = np.bincount(idx, minlength=n_bins + 2)[1 : n_bins + 1]
    sums = np.bincount(idx, weights=pk_flat, minlength=n_bins + 2)[1 : n_bins + 1]
    ksums = np.bincount(idx, weights=kmag.ravel(), minlength=n_bins + 2)[
        1 : n_bins + 1
    ]
    with np.errstate(invalid="ignore"):
        pk = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        kc = np.where(counts > 0, ksums / np.maximum(counts, 1), np.nan)

    if subtract_shot_noise:
        pk = pk - box**3 / n_part
    return kc, pk


def dimensionless_power(k: np.ndarray, pk: np.ndarray) -> np.ndarray:
    """Delta^2(k) = k^3 P(k) / (2 pi^2)."""
    return np.asarray(k) ** 3 * np.asarray(pk) / (2.0 * np.pi**2)
