"""repro: CRK-HACC / Frontier-E reproduction library.

A laptop-scale, pure-NumPy implementation of the CRK-HACC cosmological
hydrodynamics framework (SC 2025 Frontier-E paper) together with simulated
exascale substrates (ranks, GPU warp execution, multi-tier I/O) and a
calibrated performance model that regenerates the paper's evaluation
figures and tables.
"""

__version__ = "1.0.0"
