"""Collective-divergence: collectives under rank-dependent control flow.

Every rank must reach the same collectives (``barrier``, ``allreduce``,
``ialltoallv``, ...) in the same order, or the transport deadlocks. The
static hazard is a collective (or a call that transitively performs
one) guarded by a condition *derived from the local rank*:

- branches of a rank-tainted ``if`` posting *different* collective
  sequences;
- a rank-tainted branch that returns/raises early while collectives
  follow later in the function (ranks taking the branch skip them);
- a collective inside a loop whose trip condition is rank-tainted;
- a rank-tainted conditional expression whose arms differ in
  collectives.

Taint policy (deliberately narrow, to keep the seed tree honest rather
than drowning it in pragmas): sources are ``<commish>.rank`` reads and
the bare name ``rank``; taint propagates only through *simple*
expressions (names, boolean/arithmetic/comparison operators,
conditional expressions) assigned to plain names. Calls, subscripts and
container displays block taint — ``decomp.bounds(comm.rank)`` yields
rank-local *data*, not a rank-distinguishing *predicate*.

Transitive collectives come from a whole-program ``has_coll`` fixpoint:
a function carries the mark when its body posts a collective directly,
calls a marked function, or invokes a marked first-order callback.
"""

from __future__ import annotations

import ast

from ..engine import Finding
from .modgraph import (
    BLOCKING_COLLECTIVES,
    NONBLOCKING_COLLECTIVES,
    comm_call,
)

RULE = "collective-divergence"

_COLL_OPS = BLOCKING_COLLECTIVES | NONBLOCKING_COLLECTIVES

_SIMPLE_EXPRS = (ast.BoolOp, ast.Compare, ast.BinOp, ast.UnaryOp,
                 ast.IfExp, ast.Name, ast.Attribute, ast.Constant)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)


def _is_rank_source(node: ast.AST) -> bool:
    from .modgraph import is_commish

    if isinstance(node, ast.Attribute) and node.attr == "rank":
        return is_commish(node.value)
    return isinstance(node, ast.Name) and node.id == "rank"


def _tainted(node, tainted_names) -> bool:
    """Rank taint of an expression under the narrow propagation policy."""
    if node is None:
        return False
    if _is_rank_source(node):
        return True
    if isinstance(node, ast.Name):
        return node.id in tainted_names
    if isinstance(node, ast.BoolOp):
        return any(_tainted(v, tainted_names) for v in node.values)
    if isinstance(node, ast.Compare):
        return _tainted(node.left, tainted_names) or any(
            _tainted(c, tainted_names) for c in node.comparators
        )
    if isinstance(node, ast.BinOp):
        return _tainted(node.left, tainted_names) \
            or _tainted(node.right, tainted_names)
    if isinstance(node, ast.UnaryOp):
        return _tainted(node.operand, tainted_names)
    if isinstance(node, ast.IfExp):
        return (_tainted(node.test, tainted_names)
                or _tainted(node.body, tainted_names)
                or _tainted(node.orelse, tainted_names))
    return False  # calls / subscripts / containers block taint


class _TokenCollector(ast.NodeVisitor):
    """Ordered collective tokens of a statement (sub)tree.

    Tokens: the op name for a direct ``comm.<op>(...)``, ``->name`` for
    a call into (or a callback handoff of) a collective-marked function.
    Nested function bodies execute later and are skipped.
    """

    def __init__(self, program, fn):
        self.program = program
        self.fn = fn
        self.tokens = []  # (line, token)

    def visit(self, node):
        if isinstance(node, _SCOPE_NODES):
            return
        super().visit(node)

    def visit_Call(self, node):
        op = comm_call(node)
        if op in _COLL_OPS or op == "barrier":
            self.tokens.append((node.lineno, op))
        else:
            target = self.program.resolve_call(self.fn, node)
            if target is not None and getattr(target, "has_coll", False):
                self.tokens.append((node.lineno, f"->{target.name}"))
            for cb in self.program.callback_args(self.fn, node):
                if cb.has_coll:
                    self.tokens.append((node.lineno, f"->{cb.name}"))
        for child in ast.iter_child_nodes(node):
            self.visit(child)


def _tokens(program, fn, nodes):
    col = _TokenCollector(program, fn)
    for node in nodes:
        col.visit(node)
    return col.tokens


def compute_has_coll(program) -> None:
    """Whole-program fixpoint for the ``has_coll`` function mark."""
    fns = list(program.functions)
    changed = True
    while changed:
        changed = False
        for fn in fns:
            if fn.has_coll:
                continue
            body = fn.node.body if not isinstance(fn.node, ast.Lambda) \
                else [ast.Expr(value=fn.node.body)]
            if _tokens(program, fn, body):
                fn.has_coll = True
                changed = True


def _terminal(stmts) -> bool:
    return any(isinstance(s, (ast.Return, ast.Raise)) for s in stmts)


def _fmt(tokens) -> str:
    names = [t for _line, t in tokens]
    if len(names) > 4:
        names = names[:4] + ["..."]
    return "[" + ", ".join(names) + "]" if names else "[]"


class _FunctionScan:
    def __init__(self, program, fn, findings):
        self.program = program
        self.fn = fn
        self.findings = findings
        self.tainted = set()
        body = fn.node.body if not isinstance(fn.node, ast.Lambda) else []
        self.all_tokens = _tokens(program, fn, body)

    def _emit(self, stmt, message):
        self.findings.append(Finding(
            rule=RULE, path=self.fn.module.rel, line=stmt.lineno,
            end_line=getattr(stmt, "end_lineno", stmt.lineno),
            message=message,
        ))

    def _scan_ifexps(self, stmt):
        for node in ast.walk(stmt):
            if isinstance(node, _SCOPE_NODES):
                continue
            if isinstance(node, ast.IfExp) \
                    and _tainted(node.test, self.tainted):
                then_toks = _tokens(self.program, self.fn, [node.body])
                else_toks = _tokens(self.program, self.fn, [node.orelse])
                if [t for _l, t in then_toks] != [t for _l, t in else_toks]:
                    self._emit(stmt, (
                        "rank-dependent conditional expression posts "
                        f"different collectives per arm: {_fmt(then_toks)}"
                        f" vs {_fmt(else_toks)}"
                    ))

    def scan(self, stmts):
        for stmt in stmts:
            self._scan_ifexps(stmt)
            if isinstance(stmt, ast.Assign):
                taint = _tainted(stmt.value, self.tainted) and isinstance(
                    stmt.value, _SIMPLE_EXPRS
                )
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if taint:
                            self.tainted.add(target.id)
                        else:
                            self.tainted.discard(target.id)
            elif isinstance(stmt, ast.If):
                self._scan_if(stmt)
                self.scan(stmt.body)
                self.scan(stmt.orelse)
            elif isinstance(stmt, (ast.While,)):
                if _tainted(stmt.test, self.tainted):
                    toks = _tokens(self.program, self.fn, stmt.body)
                    if toks:
                        self._emit(stmt, (
                            "collectives inside a loop with a "
                            "rank-dependent trip condition: "
                            f"{_fmt(toks)} — iteration counts can "
                            "differ across ranks"
                        ))
                self.scan(stmt.body)
                self.scan(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                if _tainted(stmt.iter, self.tainted):
                    toks = _tokens(self.program, self.fn, stmt.body)
                    if toks:
                        self._emit(stmt, (
                            "collectives inside a loop over a "
                            "rank-dependent iterable: "
                            f"{_fmt(toks)} — trip counts can differ "
                            "across ranks"
                        ))
                self.scan(stmt.body)
                self.scan(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self.scan(stmt.body)
            elif isinstance(stmt, ast.Try):
                self.scan(stmt.body)
                for handler in stmt.handlers:
                    self.scan(handler.body)
                self.scan(stmt.orelse)
                self.scan(stmt.finalbody)
            elif isinstance(stmt, ast.Match):
                for case in stmt.cases:
                    self.scan(case.body)

    def _scan_if(self, stmt: ast.If):
        if not _tainted(stmt.test, self.tainted):
            return
        then_toks = _tokens(self.program, self.fn, stmt.body)
        else_toks = _tokens(self.program, self.fn, stmt.orelse)
        if [t for _l, t in then_toks] != [t for _l, t in else_toks]:
            self._emit(stmt, (
                "collective sequence diverges across a rank-dependent "
                f"branch: if-branch posts {_fmt(then_toks)}, "
                f"else posts {_fmt(else_toks)} — ranks will disagree "
                "on collective order"
            ))
            return
        if _terminal(stmt.body) or _terminal(stmt.orelse):
            end = getattr(stmt, "end_lineno", stmt.lineno)
            later = [(l, t) for l, t in self.all_tokens if l > end]
            if later:
                self._emit(stmt, (
                    "rank-dependent branch exits the function early "
                    "while collectives follow at line "
                    f"{later[0][0]} ({_fmt(later)}): ranks taking the "
                    "branch skip them"
                ))


def analyze_program(program):
    """Divergence findings for the whole program (pragma-unfiltered)."""
    compute_has_coll(program)
    findings = []
    for fn in program.functions:
        if isinstance(fn.node, ast.Lambda):
            continue  # scanned as expressions of the enclosing def
        _FunctionScan(program, fn, findings).scan(fn.node.body)
    return findings
