"""Whole-program static comm-safety analysis (``python -m repro lint --deep``).

Three interprocedural rules on top of a module/call-graph
(:mod:`.modgraph`), per-function CFGs (:mod:`.cfg`) and a
request-lifecycle dataflow engine (:mod:`.lifecycle`):

``request-lifecycle``
    every nonblocking post (``isend``/``irecv``/``ialltoallv``/
    ``iallgather``/``iallreduce``) must reach ``wait()`` or ``cancel()``
    on all paths — tracked through locals, closure dict slots
    (``state["rho_req"]``), carrier objects (``MigrationFlight``) and
    helper returns; ``cancel()`` alone is an error-path release, so
    every posted slot also needs a wait path somewhere in its scope;
``collective-divergence``
    collectives or ``barrier()`` posted under rank-dependent control
    flow (conditions derived from ``comm.rank``) or with mismatched
    posting order across branches — the classic static deadlock source;
``span-balance``
    every literal ``async_begin``/``flow_start`` tracer slice has a
    matching end somewhere in the program (slices legitimately cross
    functions) and uses a name registered as an async slice in
    :mod:`repro.observe.taxonomy`.

Soundness caveats are documented in DESIGN.md ("Correctness tooling"):
the analysis is deliberately tuned to prefer false negatives over false
positives (ownership transfers on any call, loops assumed to run, taint
does not flow through calls or containers), so a clean run is a strong
signal but not a proof.
"""

from .driver import (
    DEEP_RULE_NAMES,
    DeepResult,
    deep_analyze,
    deep_rule_descriptors,
)

__all__ = [
    "DEEP_RULE_NAMES",
    "DeepResult",
    "deep_analyze",
    "deep_rule_descriptors",
]
