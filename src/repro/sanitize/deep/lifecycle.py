"""Request-lifecycle dataflow: every nonblocking post reaches settlement.

Two cooperating layers, both running over the CFGs of every function in
the program:

**Path-local dataflow.** A post (``comm.ialltoallv(...)`` and friends)
creates an abstract *resource* keyed by its source site. Resources flow
through local variables, tuple unpacking, container literals and
comprehensions. A resource is *settled* by ``wait()``/``cancel()``/
``test()``, by being passed to a function whose summary settles that
parameter, or by *escaping* — stored into an object/dict slot, returned,
yielded, or handed to any call (ownership transfer — deliberately
generous to avoid false positives). A resource still pending at an
explicit exit (``return``, uncaught ``raise``, falling off the end) is
reported at its post site, naming the leaking exit.

**Slot completion.** Escaping into a slot does not settle the protocol —
it moves the obligation. Every *cell* (a ``self.attr`` slot scoped to
its class, or a ``name["key"]`` slot of a closure/module dict like the
driver's ``state``/``mig``) that receives posts must show **wait
evidence** somewhere in the program: ``cancel()`` alone is an error-path
release and is reported as incomplete. Evidence flows through derived
values (``for k, r in self._reqs1.items(): r.wait()``), helper summaries,
and *carrier classes* — a class whose attributes hold requests
(``MigrationFlight``): calling one of its completing methods on a value
derived from a slot credits that slot.

Summaries (returns-fresh, settles-param, carrier methods) are computed
by iterating the whole-program analysis to a fixed point (three rounds
cover the repo's call-chain depth; deeper chains degrade to false
negatives, never false positives).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..engine import Finding
from .cfg import build_cfg
from .modgraph import (
    POST_OPS,
    SETTLE_METHODS,
    comm_call,
)

RULE = "request-lifecycle"

#: container mutators that store a value without taking ownership
_HOLD_METHODS = frozenset(
    {"append", "extend", "add", "insert", "update", "setdefault"}
)

_EMPTY = frozenset()


@dataclass(frozen=True)
class Resource:
    """An abstract in-flight request (or request-holding value)."""

    site: tuple  # (rel_path, line)
    op: str  # post op, "carrier:<class>", or "fresh:<function>"

    def describe(self) -> str:
        if self.op.startswith("carrier:"):
            return f"request-carrying {self.op.split(':')[-1]} instance"
        if self.op.startswith("fresh:"):
            return f"request-holding return of {self.op.split(':')[-1]}()"
        return f"nonblocking {self.op} request"


class CellStore:
    """Program-wide slot accounting, rebuilt each analysis round."""

    def __init__(self):
        self.posts = {}  # key -> [(rel, line, op)]
        self.carrier_of = {}  # key -> set of carrier class keys
        self.wait_ev = {}  # key -> [(rel, line, fn_key)]
        self.cancel_ev = {}

    def post(self, key, rel, line, op):
        self.posts.setdefault(key, []).append((rel, line, op))
        if op.startswith("carrier:"):
            self.carrier_of.setdefault(key, set()).add(op.split(":", 1)[1])

    def evidence(self, key, kind, rel, line, fn_key):
        book = self.wait_ev if kind == "wait" else self.cancel_ev
        book.setdefault(key, []).append((rel, line, fn_key))

    @staticmethod
    def _matches(post_key, ev_key) -> bool:
        if post_key == ev_key:
            return True
        # a "*" subscript (variable key) on the same base credits every
        # literal slot of that base, and vice versa
        if (
            post_key[0] == "var" and ev_key[0] == "var"
            and post_key[1:3] == ev_key[1:3]
            and ("*" in (post_key[3], ev_key[3]))
        ):
            return True
        return False

    def has_evidence(self, post_key, kind) -> bool:
        book = self.wait_ev if kind == "wait" else self.cancel_ev
        return any(self._matches(post_key, k) for k in book)


class _State:
    """vars: name -> resources held; status: resource -> pending;
    derived: name -> cell keys the value was read from."""

    __slots__ = ("vars", "status", "derived")

    def __init__(self, vars=None, status=None, derived=None):
        self.vars = vars or {}
        self.status = status or {}
        self.derived = derived or {}

    def copy(self):
        return _State(dict(self.vars), dict(self.status),
                      dict(self.derived))

    def join(self, other: "_State") -> bool:
        """Merge ``other`` into self; True when anything changed."""
        changed = False
        for name, rs in other.vars.items():
            merged = self.vars.get(name, _EMPTY) | rs
            if merged != self.vars.get(name, _EMPTY):
                self.vars[name] = merged
                changed = True
        for res, pending in other.status.items():
            merged = self.status.get(res, False) or pending
            if merged != self.status.get(res):
                self.status[res] = merged
                changed = True
        for name, cs in other.derived.items():
            merged = self.derived.get(name, _EMPTY) | cs
            if merged != self.derived.get(name, _EMPTY):
                self.derived[name] = merged
                changed = True
        return changed


class FunctionLifecycle:
    """One function's dataflow pass (one analysis round)."""

    def __init__(self, program, fn, store: CellStore):
        self.program = program
        self.fn = fn
        self.mod = fn.module
        self.store = store
        self.leaks = {}  # site -> (resource, exit_kind, exit_line)

    # -- cell keys ------------------------------------------------------
    def _is_local(self, state, name: str) -> bool:
        return name in state.vars

    def _cell_key(self, state, node):
        """Slot key for a store/load target, or None."""
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name):
                if base.id == "self" and self.fn.cls is not None:
                    return ("attr", self.fn.cls.key, node.attr)
                if not self._is_local(state, base.id):
                    return ("var", self.mod.name, base.id, "." + node.attr)
            return None
        if isinstance(node, ast.Subscript):
            base = node.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and self.fn.cls is not None
            ):
                return ("attr", self.fn.cls.key, base.attr)
            if isinstance(base, ast.Name) and base.id != "self" \
                    and not self._is_local(state, base.id):
                key = "*"
                sl = node.slice
                if isinstance(sl, ast.Constant) \
                        and isinstance(sl.value, (str, int)):
                    key = str(sl.value)
                return ("var", self.mod.name, base.id, key)
            return None
        return None

    # -- resource bookkeeping -------------------------------------------
    def _escape(self, state, resources):
        for r in resources:
            state.status[r] = False

    def _evidence(self, state, cells, kind, line):
        for key in cells:
            self.store.evidence(key, kind, self.mod.rel, line, self.fn.key)

    def _record_posts(self, state, key, resources, line):
        for r in resources:
            if state.status.get(r):
                self.store.post(key, r.site[0], r.site[1], r.op)

    # -- expression evaluation ------------------------------------------
    def eval(self, state, node):
        """(resources, derived-cells) of ``node``; mutates ``state``."""
        if node is None:
            return _EMPTY, _EMPTY
        if isinstance(node, ast.Name):
            return (state.vars.get(node.id, _EMPTY),
                    state.derived.get(node.id, _EMPTY))
        if isinstance(node, ast.Call):
            return self._eval_call(state, node)
        if isinstance(node, ast.Attribute):
            rs, cs = self.eval(state, node.value)
            key = self._cell_key(state, node)
            if key is not None:
                cs = cs | {key}
            return rs, cs
        if isinstance(node, ast.Subscript):
            rs, cs = self.eval(state, node.value)
            self.eval(state, node.slice)
            key = self._cell_key(state, node)
            if key is not None:
                cs = cs | {key}
            return rs, cs
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            rs, cs = _EMPTY, _EMPTY
            for elt in node.elts:
                ers, ecs = self.eval(state, elt)
                rs, cs = rs | ers, cs | ecs
            return rs, cs
        if isinstance(node, ast.Dict):
            rs, cs = _EMPTY, _EMPTY
            for sub in list(node.keys) + list(node.values):
                ers, ecs = self.eval(state, sub)
                rs, cs = rs | ers, cs | ecs
            return rs, cs
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for gen in node.generators:
                irs, ics = self.eval(state, gen.iter)
                self._bind_names(state, gen.target, irs, ics)
                for cond in gen.ifs:
                    self.eval(state, cond)
            if isinstance(node, ast.DictComp):
                krs, kcs = self.eval(state, node.key)
                vrs, vcs = self.eval(state, node.value)
                return krs | vrs, kcs | vcs
            return self.eval(state, node.elt)
        if isinstance(node, ast.IfExp):
            self.eval(state, node.test)
            trs, tcs = self.eval(state, node.body)
            ors, ocs = self.eval(state, node.orelse)
            return trs | ors, tcs | ocs
        if isinstance(node, ast.BoolOp):
            rs, cs = _EMPTY, _EMPTY
            for val in node.values:
                ers, ecs = self.eval(state, val)
                rs, cs = rs | ers, cs | ecs
            return rs, cs
        if isinstance(node, (ast.BinOp, ast.Compare, ast.UnaryOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(state, child)
            return _EMPTY, _EMPTY
        if isinstance(node, (ast.Await, ast.Starred, ast.FormattedValue)):
            return self.eval(state, node.value)
        if isinstance(node, ast.NamedExpr):
            rs, cs = self.eval(state, node.value)
            self._bind_names(state, node.target, rs, cs)
            return rs, cs
        if isinstance(node, ast.JoinedStr):
            for val in node.values:
                self.eval(state, val)
            return _EMPTY, _EMPTY
        if isinstance(node, ast.Slice):
            for sub in (node.lower, node.upper, node.step):
                self.eval(state, sub)
            return _EMPTY, _EMPTY
        if isinstance(node, ast.Lambda):
            return _EMPTY, _EMPTY  # analyzed as its own function
        return _EMPTY, _EMPTY

    def _eval_call(self, state, node: ast.Call):
        from .modgraph import ClassInfo, FunctionInfo

        line = node.lineno
        # 1. nonblocking post on a communicator
        op = comm_call(node)
        if op in POST_OPS:
            self._eval_args(state, node)
            res = Resource(site=(self.mod.rel, line), op=op)
            state.status[res] = True
            return frozenset({res}), _EMPTY
        if op is not None:  # blocking collective: no handle
            self._eval_args(state, node)
            return _EMPTY, _EMPTY

        func = node.func
        # 2. settlement methods on a handle / container of handles
        if isinstance(func, ast.Attribute) and func.attr in SETTLE_METHODS:
            rs, cs = self.eval(state, func.value)
            self._eval_args(state, node)
            kind = "cancel" if func.attr == "cancel" else "wait"
            self._escape(state, rs)
            self._evidence(state, cs, kind, line)
            return _EMPTY, _EMPTY

        # 3. container mutators hold their argument without owning it
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _HOLD_METHODS
            and isinstance(func.value, ast.Name)
            and self._is_local(state, func.value.id)
        ):
            arg_rs = _EMPTY
            for arg in node.args:
                ers, _ecs = self.eval(state, arg)
                arg_rs |= ers
            for kw in node.keywords:
                self.eval(state, kw.value)
            base = func.value.id
            state.vars[base] = state.vars.get(base, _EMPTY) | arg_rs
            return _EMPTY, _EMPTY

        target = self.program.resolve_call(self.fn, node)
        # 4a. constructor: a carrier class instance owns its requests
        if isinstance(target, ClassInfo):
            self._eval_args(state, node, escape=True)
            if target.key in self.program.carriers:
                res = Resource(site=(self.mod.rel, line),
                               op=f"carrier:{target.key}")
                state.status[res] = True
                return frozenset({res}), _EMPTY
            return _EMPTY, _EMPTY
        # 4b. known function: apply settles-param / returns-fresh summary
        if isinstance(target, FunctionInfo):
            for idx, arg in enumerate(node.args):
                ars, acs = self.eval(state, arg)
                self._escape(state, ars)
                kind = target.settles_params.get(idx)
                if kind is not None:
                    self._evidence(state, acs, kind, line)
            for kw in node.keywords:
                krs, _kcs = self.eval(state, kw.value)
                self._escape(state, krs)
            if target.returns_fresh:
                res = Resource(site=(self.mod.rel, line),
                               op=target.returns_fresh)
                state.status[res] = True
                return frozenset({res}), _EMPTY
            return _EMPTY, _EMPTY

        # 5. completing/cancelling method of a carrier class, reached
        #    through a value derived from a slot (fl = mig["flight"])
        if isinstance(func, ast.Attribute):
            rs, cs = self.eval(state, func.value)
            classes = set()
            for r in rs:
                if r.op.startswith("carrier:"):
                    classes.add(r.op.split(":", 1)[1])
            for key in cs:
                classes |= self.store.carrier_of.get(key, set())
                classes |= self.program.carrier_slots.get(key, set())
            for cls_key in classes:
                methods = self.program.carriers.get(cls_key)
                if methods is None:
                    continue
                if func.attr in methods["wait"]:
                    self._escape(state, rs)
                    self._evidence(state, cs, "wait", line)
                    self._eval_args(state, node, escape=True)
                    return _EMPTY, _EMPTY
                if func.attr in methods["cancel"]:
                    self._escape(state, rs)
                    self._evidence(state, cs, "cancel", line)
                    self._eval_args(state, node, escape=True)
                    return _EMPTY, _EMPTY
            # 6. unknown method call: arguments change ownership, but
            #    the receiver's holdings and cell derivation pass
            #    through — ``for k, r in self._reqs1.items(): r.wait()``
            #    must still credit the _reqs1 slot
            self._eval_args(state, node, escape=True)
            return rs, cs

        # 6. unknown call: arguments change ownership
        self.eval(state, func)
        self._eval_args(state, node, escape=True)
        return _EMPTY, _EMPTY

    def _eval_args(self, state, node: ast.Call, escape: bool = False):
        for arg in node.args:
            rs, _cs = self.eval(state, arg)
            if escape:
                self._escape(state, rs)
        for kw in node.keywords:
            rs, _cs = self.eval(state, kw.value)
            if escape:
                self._escape(state, rs)

    # -- binding --------------------------------------------------------
    def _bind_names(self, state, target, rs, cs):
        """Bind loop/comprehension targets (names only, no slot posts)."""
        if isinstance(target, ast.Name):
            state.vars[target.id] = rs
            state.derived[target.id] = cs
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_names(state, elt, rs, cs)
        elif isinstance(target, ast.Starred):
            self._bind_names(state, target.value, rs, cs)

    def _bind(self, state, target, rs, cs, line):
        if isinstance(target, ast.Name):
            state.vars[target.id] = rs
            state.derived[target.id] = cs
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(state, elt, rs, cs, line)
            return
        if isinstance(target, ast.Starred):
            self._bind(state, target.value, rs, cs, line)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self.eval(state, target.value)
            if isinstance(target, ast.Subscript):
                self.eval(state, target.slice)
            key = self._cell_key(state, target)
            if key is not None:
                self._record_posts(state, key, rs, line)
                self._escape(state, rs)
                return
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and self._is_local(state, target.value.id)
            ):
                # local container holds the resource; obligation stays
                base = target.value.id
                state.vars[base] = state.vars.get(base, _EMPTY) | rs
                return
            self._escape(state, rs)  # opaque store: ownership transfer
            return
        self._escape(state, rs)

    # -- statement transfer ---------------------------------------------
    def transfer(self, state, stmt):
        if stmt is None or isinstance(
            stmt, (ast.Pass, ast.Break, ast.Continue, ast.Import,
                   ast.ImportFrom, ast.Global, ast.Nonlocal,
                   ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.ExceptHandler)
        ):
            return state
        if isinstance(stmt, ast.Assign):
            rs, cs = self.eval(state, stmt.value)
            for target in stmt.targets:
                self._bind(state, target, rs, cs, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                rs, cs = self.eval(state, stmt.value)
                self._bind(state, stmt.target, rs, cs, stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            rs, cs = self.eval(state, stmt.value)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                state.vars[name] = state.vars.get(name, _EMPTY) | rs
                state.derived[name] = state.derived.get(name, _EMPTY) | cs
            else:
                self._bind(state, stmt.target, rs, cs, stmt.lineno)
        elif isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
                rs, _cs = self.eval(state, stmt.value.value)
                self._escape(state, rs)
            else:
                self.eval(state, stmt.value)
        elif isinstance(stmt, ast.Return):
            rs, _cs = self.eval(state, stmt.value)
            pending = [r for r in rs if state.status.get(r)]
            if pending:
                kinds = {r.op for r in pending}
                carrier = next(
                    (k for k in kinds if k.startswith("carrier:")), None
                )
                self.fn.returns_fresh = carrier or f"fresh:{self.fn.name}"
            self._escape(state, rs)
        elif isinstance(stmt, ast.Raise):
            self.eval(state, stmt.exc)
            self.eval(state, stmt.cause)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(state, stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            rs, cs = self.eval(state, stmt.iter)
            self._bind_names(state, stmt.target, rs, cs)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                rs, cs = self.eval(state, item.context_expr)
                if item.optional_vars is not None:
                    self._bind_names(state, item.optional_vars, rs, cs)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state.vars.pop(target.id, None)
                    state.derived.pop(target.id, None)
        elif isinstance(stmt, ast.Assert):
            self.eval(state, stmt.test)
            self.eval(state, stmt.msg)
        elif isinstance(stmt, ast.Match):
            self.eval(state, stmt.subject)
        return state

    # -- driver ---------------------------------------------------------
    def run(self):
        cfg = build_cfg(self.fn.node)
        entry = _State()
        for i, name in enumerate(self.fn.param_names):
            entry.vars[name] = _EMPTY
            entry.derived[name] = frozenset({("param", self.fn.key, i)})
        in_states = {cfg.entry: entry}
        out_states = {}
        work = [cfg.entry]
        visits = {}
        while work:
            node = work.pop()
            visits[node] = visits.get(node, 0) + 1
            if visits[node] > 80:  # safety valve; never hit in practice
                continue
            state = in_states[node].copy()
            state = self.transfer(state, node.stmt)
            out_states[node] = state
            for succ in node.succ:
                if succ not in in_states:
                    in_states[succ] = state.copy()
                    work.append(succ)
                elif in_states[succ].join(state):
                    work.append(succ)

        # summary: settles-param evidence recorded during this pass is
        # promoted by the program round (see analyze_program)
        for node, kind in cfg.exits:
            state = out_states.get(node)
            if state is None:
                continue
            exit_line = getattr(node.stmt, "lineno",
                                getattr(self.fn.node, "lineno", 0))
            for res, pending in state.status.items():
                if pending and res.site not in self.leaks:
                    self.leaks[res.site] = (res, kind, exit_line)
        return self.leaks


_EXIT_LABEL = {
    "return": "an early return",
    "raise": "a raised exception",
    "end": "the end of the function",
}


def analyze_program(program, rounds: int = 4):
    """Run the lifecycle analysis to a summary fixed point.

    Returns ``(findings, store)``: path-leak and slot-completion
    findings (pragma-unfiltered) plus the final :class:`CellStore`.
    """
    store = CellStore()
    leaks = {}
    fn_by_key = {fn.key: fn for fn in program.functions}
    for _round in range(rounds):
        store = CellStore()
        leaks = {}
        for fn in program.functions:
            analysis = FunctionLifecycle(program, fn, store)
            for site, leak in analysis.run().items():
                leaks.setdefault(site, leak)
        # settles-param summaries from parameter-marker evidence
        for book, kind in ((store.wait_ev, "wait"),
                           (store.cancel_ev, "cancel")):
            for key in book:
                if key[0] != "param":
                    continue
                fn = fn_by_key.get(key[1])
                if fn is not None:
                    prev = fn.settles_params.get(key[2])
                    if prev != "wait":  # wait evidence wins over cancel
                        fn.settles_params[key[2]] = kind
        # carrier classes: attr slots with posts define the carrier; the
        # methods providing wait/cancel evidence are its settlers
        carriers = {}
        for key, _posts in store.posts.items():
            if key[0] != "attr":
                continue
            cls_key = key[1]
            entry = carriers.setdefault(cls_key,
                                        {"wait": set(), "cancel": set()})
            for book, kind in ((store.wait_ev, "wait"),
                               (store.cancel_ev, "cancel")):
                for ev_key, sites in book.items():
                    if ev_key[0] == "attr" and ev_key[1] == cls_key:
                        for _rel, _line, fn_key in sites:
                            fn = fn_by_key.get(fn_key)
                            if fn is not None and fn.cls is not None \
                                    and fn.cls.key == cls_key:
                                entry[kind].add(fn.name)
        program.carriers = carriers
        # slot -> carrier classes knowledge survives into the next
        # round, so settles analyzed before their posting function
        # still recognize carrier methods
        for key, classes in store.carrier_of.items():
            program.carrier_slots.setdefault(key, set()).update(classes)

    findings = []
    for site in sorted(leaks):
        res, kind, exit_line = leaks[site]
        findings.append(Finding(
            rule=RULE, path=site[0], line=site[1], end_line=site[1],
            message=(
                f"{res.describe()} posted here can leave the function "
                f"unsettled via {_EXIT_LABEL[kind]} at line {exit_line}: "
                "no wait()/cancel() or ownership transfer on that path"
            ),
        ))
    for key in sorted(store.posts, key=lambda k: (str(k),)):
        if key[0] == "param":
            continue
        posts = sorted(store.posts[key], key=lambda p: (p[0], p[1]))
        rel, line, op = posts[0]
        slot = (f"{key[1].split(':')[-1]}.{key[2]}" if key[0] == "attr"
                else f"{key[2]}[{key[3]}]")
        if store.has_evidence(key, "wait"):
            continue
        if store.has_evidence(key, "cancel"):
            msg = (
                f"requests posted into {slot!r} are only ever "
                "cancelled (an error-path release): no wait() path "
                "completes this slot"
            )
        else:
            msg = (
                f"requests posted into {slot!r} are never settled: no "
                "wait() or cancel() reaches this slot anywhere in the "
                "program"
            )
        findings.append(Finding(rule=RULE, path=rel, line=line,
                                end_line=line, message=msg))
    return findings, store
