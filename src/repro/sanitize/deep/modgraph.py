"""Module / class / call-graph builder for the deep analyses.

Parses every Python file under the analysis roots once (reusing the
engine's :func:`~repro.sanitize.engine.parse_file`, so pragma maps come
for free), records every function — module-level, methods, nested
closures, lambdas — with its enclosing class, and resolves calls
against module-level defs, ``repro.*`` imports, same-module closures,
``self.method()`` dispatch, and first-order callbacks (a known function
or lambda passed as a call argument, the ``timed(phase, fn, *args)``
idiom in ``distributed_sim.py``).

Resolution is best-effort by design: an unresolved call simply
contributes no summary, which the downstream rules treat
conservatively (ownership transfer for the lifecycle rule, no
collective tokens for the divergence rule).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from ..engine import FileContext, dotted_name, parse_file, _walk_python

#: nonblocking request posts on the simulated MPI transport
POST_OPS = frozenset(
    {"isend", "irecv", "ialltoallv", "iallgather", "iallreduce"}
)
#: blocking collectives + barrier (divergence across ranks deadlocks)
BLOCKING_COLLECTIVES = frozenset(
    {"barrier", "bcast", "gather", "scatter", "allreduce", "allgather",
     "alltoall", "alltoallv", "reduce"}
)
#: nonblocking collective posts (matched per-rank by posting order)
NONBLOCKING_COLLECTIVES = frozenset(
    {"ialltoallv", "iallgather", "iallreduce"}
)
COLLECTIVE_OPS = BLOCKING_COLLECTIVES | NONBLOCKING_COLLECTIVES
#: request-handle settlement methods
SETTLE_METHODS = frozenset({"wait", "cancel", "test"})
#: receiver names treated as communicators
_COMMISH = frozenset({"comm", "world"})


def is_commish(node: ast.AST) -> bool:
    """True when ``node`` plausibly evaluates to a communicator."""
    dn = dotted_name(node)
    if dn is None:
        return False
    last = dn.split(".")[-1]
    return last in _COMMISH or last.endswith("_comm")


def comm_call(node: ast.AST) -> str | None:
    """The comm-method name for ``comm.<op>(...)`` calls, else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and is_commish(node.func.value)
    ):
        return node.func.attr
    return None


_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass
class FunctionInfo:
    """One function (module-level, method, closure, or lambda)."""

    module: "ModuleInfo"
    node: ast.AST
    name: str
    qualname: str  # dotted within the module, e.g. Cls.meth / outer.inner
    cls: "ClassInfo | None" = None
    # -- analysis summaries, filled by the lifecycle/collective passes --
    #: resource kind string when calls to this function yield un-settled
    #: requests the caller must own ("fresh:<name>" or "carrier:<cls>")
    returns_fresh: str | None = None
    #: positional-arg index -> "wait" | "cancel" settlement evidence
    settles_params: dict = field(default_factory=dict)
    #: transitively performs collectives (divergence summaries)
    has_coll: bool = False

    @property
    def key(self) -> str:
        return f"{self.module.name}:{self.qualname}"

    @property
    def param_names(self) -> list:
        args = getattr(self.node, "args", None)
        if args is None:
            return []
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One class with its directly-defined methods."""

    module: "ModuleInfo"
    node: ast.ClassDef
    name: str
    qualname: str
    methods: dict = field(default_factory=dict)  # name -> FunctionInfo

    @property
    def key(self) -> str:
        return f"{self.module.name}:{self.qualname}"


@dataclass
class ModuleInfo:
    """One parsed module and its local name bindings."""

    path: str
    rel: str
    name: str  # dotted, filesystem-derived (walks up __init__.py dirs)
    is_package: bool
    ctx: FileContext
    functions: list = field(default_factory=list)
    classes: dict = field(default_factory=dict)  # local name -> ClassInfo
    #: local name -> dotted import target (module or module member)
    imports: dict = field(default_factory=dict)
    #: function name -> [FunctionInfo] (module-level and nested defs)
    defs_by_name: dict = field(default_factory=dict)

    @property
    def package(self) -> str:
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""


def _module_name(path: str) -> tuple:
    """``(dotted_name, is_package)`` from the filesystem package layout."""
    stem = os.path.splitext(os.path.basename(path))[0]
    is_package = stem == "__init__"
    parts = [] if is_package else [stem]
    d = os.path.dirname(os.path.abspath(path))
    while os.path.exists(os.path.join(d, "__init__.py")):
        parts.append(os.path.basename(d))
        d = os.path.dirname(d)
    return ".".join(reversed(parts)) or stem, is_package


class _Collector(ast.NodeVisitor):
    """Registers functions/classes/imports of one module."""

    def __init__(self, mod: ModuleInfo):
        self.mod = mod
        self.stack = []  # (kind, name, ClassInfo|None)

    def _qual(self, name: str) -> str:
        return ".".join([n for _k, n, _c in self.stack] + [name])

    def _enclosing_class(self):
        if self.stack and self.stack[-1][0] == "class":
            return self.stack[-1][2]
        return None

    def _add_function(self, node, name):
        info = FunctionInfo(
            module=self.mod, node=node, name=name,
            qualname=self._qual(name), cls=self._enclosing_class(),
        )
        self.mod.functions.append(info)
        if info.cls is not None:
            info.cls.methods[name] = info
        if not isinstance(node, ast.Lambda):
            self.mod.defs_by_name.setdefault(name, []).append(info)
        return info

    def visit_FunctionDef(self, node):
        self._add_function(node, node.name)
        self.stack.append(("func", node.name, None))
        self.generic_visit(node)
        self.stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node):
        self._add_function(node, f"<lambda:{node.lineno}>")
        self.stack.append(("func", "<lambda>", None))
        self.generic_visit(node)
        self.stack.pop()

    def visit_ClassDef(self, node):
        info = ClassInfo(
            module=self.mod, node=node, name=node.name,
            qualname=self._qual(node.name),
        )
        if not self.stack:  # only top-level classes are resolvable
            self.mod.classes[node.name] = info
        self.stack.append(("class", node.name, info))
        self.generic_visit(node)
        self.stack.pop()

    def visit_Import(self, node):
        for alias in node.names:
            if alias.asname:
                self.mod.imports[alias.asname] = alias.name
            else:
                head = alias.name.split(".")[0]
                self.mod.imports.setdefault(head, head)

    def visit_ImportFrom(self, node):
        if node.level:
            base_parts = self.mod.package.split(".") if self.mod.package \
                else []
            up = node.level - 1
            if up:
                base_parts = base_parts[:-up] if up <= len(base_parts) else []
            base = ".".join(base_parts)
        else:
            base = ""
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        for alias in node.names:
            if alias.name == "*":
                continue
            target = f"{base}.{alias.name}" if base else alias.name
            self.mod.imports[alias.asname or alias.name] = target


class Program:
    """All modules under the analysis roots, with call resolution."""

    def __init__(self):
        self.modules: dict[str, ModuleInfo] = {}  # dotted name -> info
        self.by_rel: dict[str, ModuleInfo] = {}
        self.errors: list = []  # (path, message)
        #: carrier classes: class key -> {"wait": set, "cancel": set}
        #: (methods that complete / cancel the class's request slots)
        self.carriers: dict[str, dict] = {}
        #: slot cell key -> carrier class keys stored there (persists
        #: across lifecycle rounds; see lifecycle.analyze_program)
        self.carrier_slots: dict = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, paths, root: str | None = None) -> "Program":
        prog = cls()
        root = root if root is not None else os.getcwd()
        seen = set()
        for path in paths:
            if os.path.isdir(path):
                files = _walk_python(path)
            elif os.path.exists(path):
                files = [path]
            else:
                prog.errors.append((path, "no such file"))
                continue
            for fp in files:
                ap = os.path.abspath(fp)
                if ap in seen:
                    continue
                seen.add(ap)
                prog._add_file(ap, root)
        return prog

    def _add_file(self, path: str, root: str) -> None:
        try:
            ctx = parse_file(path, root=root)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            self.errors.append((path, f"parse error: {exc}"))
            return
        name, is_package = _module_name(path)
        mod = ModuleInfo(path=path, rel=ctx.rel, name=name,
                         is_package=is_package, ctx=ctx)
        _Collector(mod).visit(ctx.tree)
        self.modules[name] = mod
        self.by_rel[ctx.rel] = mod

    # -- resolution -----------------------------------------------------
    @property
    def functions(self):
        for mod in self.modules.values():
            yield from mod.functions

    def resolve_dotted(self, dotted: str):
        """A ModuleInfo / FunctionInfo / ClassInfo for a dotted target."""
        if dotted in self.modules:
            return self.modules[dotted]
        if "." in dotted:
            mod_name, member = dotted.rsplit(".", 1)
            mod = self.modules.get(mod_name)
            if mod is not None:
                if member in mod.classes:
                    return mod.classes[member]
                defs = mod.defs_by_name.get(member)
                if defs:
                    return defs[0]
        return None

    def _resolve_name(self, mod: ModuleInfo, name: str):
        if name in mod.classes:
            return mod.classes[name]
        defs = mod.defs_by_name.get(name)
        if defs:
            return defs[0]
        target = mod.imports.get(name)
        if target is not None:
            return self.resolve_dotted(target)
        return None

    def resolve_call(self, fn: FunctionInfo, call: ast.Call):
        """Best-effort target of ``call`` made inside ``fn`` (or None)."""
        func = call.func
        if isinstance(func, ast.Name):
            got = self._resolve_name(fn.module, func.id)
            if isinstance(got, (FunctionInfo, ClassInfo)):
                return got
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and fn.cls is not None:
                    return fn.cls.methods.get(func.attr)
                got = self._resolve_name(fn.module, base.id)
                if isinstance(got, ModuleInfo):
                    if func.attr in got.classes:
                        return got.classes[func.attr]
                    defs = got.defs_by_name.get(func.attr)
                    if defs:
                        return defs[0]
                if isinstance(got, ClassInfo):
                    return got.methods.get(func.attr)
        return None

    def callback_args(self, fn: FunctionInfo, call: ast.Call):
        """Known functions passed *as arguments* (first-order callbacks)."""
        out = []
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            if isinstance(arg, ast.Name):
                got = self._resolve_name(fn.module, arg.id)
                if isinstance(got, FunctionInfo):
                    out.append(got)
            elif isinstance(arg, ast.Lambda):
                got = self.function_at(fn.module, arg)
                if got is not None:
                    out.append(got)
        return out

    def function_at(self, mod: ModuleInfo, node: ast.AST):
        for info in mod.functions:
            if info.node is node:
                return info
        return None

    def constructor_of(self, cls_info: ClassInfo):
        return cls_info.methods.get("__init__")
