"""Per-function control-flow graphs for the dataflow analyses.

One node per simple statement; compound statements contribute a header
node (the ``if``/``while`` test, the ``for`` iterable, the ``with``
items) plus their nested bodies. Edges cover branches, loop back
edges, ``break``/``continue``, ``try``/``except`` (the state after
*every* statement of a guarded body flows to each handler entry, the
standard approximation for "an exception may occur anywhere in the
body"), and ``with`` blocks.

Two deliberate asymmetries, both tuned to avoid false positives in the
leak analysis (see DESIGN.md soundness caveats):

- loops are assumed to execute at least once: the loop-exit state is
  the state after the body (plus ``break`` states), not the zero-trip
  pre-header state — otherwise every request waited inside its posting
  loop would be reported as leaked on the imaginary zero-trip path;
- only *explicit* exits are leak-checked: ``return``, ``raise``, and
  falling off the end. Arbitrary statements outside a ``try`` are not
  treated as may-raise exits.
"""

from __future__ import annotations

import ast


class Node:
    """One CFG node holding a single statement (or expression)."""

    __slots__ = ("stmt", "succ", "is_loop_header")

    def __init__(self, stmt):
        self.stmt = stmt
        self.succ = []
        self.is_loop_header = False

    def link(self, other: "Node") -> None:
        if other not in self.succ:
            self.succ.append(other)

    def __repr__(self):  # pragma: no cover - debug aid
        line = getattr(self.stmt, "lineno", "?")
        return f"<Node {type(self.stmt).__name__}@{line}>"


class CFG:
    """Entry node, all nodes, and the function's explicit exits."""

    def __init__(self, func_node):
        self.func = func_node
        self.entry = Node(None)
        self.nodes = [self.entry]
        #: (node, kind) with kind in {"return", "raise", "end"}
        self.exits = []

    def new(self, stmt) -> Node:
        node = Node(stmt)
        self.nodes.append(node)
        return node


class _Builder:
    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.loops = []  # (header_node, break_out_list)
        self.handlers = []  # list of handler-entry node lists (try nesting)

    # preds: set of nodes whose out-state flows into the next statement
    def seq(self, stmts, preds):
        for stmt in stmts:
            preds = self.stmt(stmt, preds)
            if not preds:
                break  # unreachable code after a terminal statement
        return preds

    def _simple(self, stmt, preds):
        node = self.cfg.new(stmt)
        for p in preds:
            p.link(node)
        self._maybe_raise(node)
        return node

    def _maybe_raise(self, node):
        """Inside a try body, any statement may divert to the handlers."""
        for entries in self.handlers:
            for h in entries:
                node.link(h)

    def stmt(self, stmt, preds):
        if isinstance(stmt, (ast.Return,)):
            node = self._simple(stmt, preds)
            self.cfg.exits.append((node, "return"))
            return []
        if isinstance(stmt, ast.Raise):
            node = self._simple(stmt, preds)
            if not self.handlers:
                self.cfg.exits.append((node, "raise"))
            return []
        if isinstance(stmt, ast.Break):
            node = self._simple(stmt, preds)
            if self.loops:
                self.loops[-1][1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._simple(stmt, preds)
            if self.loops:
                node.link(self.loops[-1][0])
            return []
        if isinstance(stmt, ast.If):
            node = self._simple(stmt, preds)
            then_out = self.seq(stmt.body, [node])
            else_out = self.seq(stmt.orelse, [node]) if stmt.orelse \
                else [node]
            return then_out + else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            node = self._simple(stmt, preds)
            node.is_loop_header = True
            breaks: list = []
            self.loops.append((node, breaks))
            body_out = self.seq(stmt.body, [node])
            self.loops.pop()
            for p in body_out:
                p.link(node)  # back edge
            # at-least-once assumption: fall through from the body,
            # not from the never-entered header (see module docstring)
            out = list(body_out) + breaks
            if stmt.orelse:
                out = self.seq(stmt.orelse, out or [node])
            return out or [node]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._simple(stmt, preds)
            return self.seq(stmt.body, [node])
        if isinstance(stmt, ast.Try):
            entries = []
            handler_bodies = []
            for handler in stmt.handlers:
                h = self.cfg.new(handler)
                entries.append(h)
                handler_bodies.append(h)
            for p in preds:  # exception before the first body statement
                for h in entries:
                    p.link(h)
            self.handlers.append(entries)
            body_out = self.seq(stmt.body, preds)
            self.handlers.pop()
            out = list(body_out)
            if stmt.orelse:
                out = self.seq(stmt.orelse, out)
            for h, handler in zip(handler_bodies, stmt.handlers):
                out += self.seq(handler.body, [h])
            if stmt.finalbody:
                out = self.seq(stmt.finalbody, out)
            return out
        if isinstance(stmt, ast.Match):
            node = self._simple(stmt, preds)
            out = [node]
            for case in stmt.cases:
                out += self.seq(case.body, [node])
            return out
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # nested defs are separate functions; the def statement
            # itself only binds a name
            return [self._simple(stmt, preds)]
        return [self._simple(stmt, preds)]


def build_cfg(func_node) -> CFG:
    """CFG for a FunctionDef/AsyncFunctionDef/Lambda node."""
    cfg = CFG(func_node)
    if isinstance(func_node, ast.Lambda):
        body = [ast.Expr(value=func_node.body)]
        ast.copy_location(body[0], func_node.body)
    else:
        body = func_node.body
    out = _Builder(cfg).seq(body, [cfg.entry])
    for node in out:
        cfg.exits.append((node, "end"))
    return cfg
