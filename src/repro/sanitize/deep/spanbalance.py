"""Span-balance: every async/flow tracer slice opens *and* closes.

The trace viewer renders ``async_begin``/``async_end`` (and
``flow_start``/``flow_end``) as duration slices keyed by name + id; a
begin with no end anywhere renders as an unbounded slice and poisons
the Fig. 2 phase attribution, an end with no begin is dropped silently.
Unlike ``with tracer.span(...)`` blocks these slices legitimately cross
functions — ``ghost_exchange`` begins in the posting helper and ends in
the wait helper — so the check is *program-wide existence pairing* per
literal span name, not a per-path CFG property: for every name that is
ever begun, some function must end it, and vice versa.

Names must also be registered in
:data:`repro.observe.taxonomy.ASYNC_SPANS` — the async slice inventory
the trace tooling keys on. Non-literal names (``tr.async_end(self._name,
...)`` in ``comm.py``) are skipped: they are covered at runtime by the
tracer itself.
"""

from __future__ import annotations

import ast

from ..engine import Finding

RULE = "span-balance"

_BEGIN = frozenset({"async_begin", "flow_start"})
_END = frozenset({"async_end", "flow_end"})

#: begin method -> its matching end method
_PAIR = {"async_begin": "async_end", "flow_start": "flow_end"}
_RPAIR = {v: k for k, v in _PAIR.items()}


def _literal_slice_calls(tree: ast.AST):
    """``(line, end_line, method, name)`` for literal begin/end calls."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in (_BEGIN | _END)
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            yield (node.lineno, getattr(node, "end_lineno", node.lineno),
                   node.func.attr, node.args[0].value)


def analyze_program(program):
    """Pairing + registration findings (pragma-unfiltered)."""
    from ...observe.taxonomy import ASYNC_SPANS

    begins = {}  # (kind, name) -> [(rel, line, end_line)]
    ends = {}
    for mod in program.modules.values():
        for line, end_line, method, name in _literal_slice_calls(mod.ctx.tree):
            kind = method if method in _BEGIN else _RPAIR[method]
            book = begins if method in _BEGIN else ends
            book.setdefault((kind, name), []).append(
                (mod.ctx.rel, line, end_line)
            )

    findings = []
    for (kind, name), sites in sorted(begins.items()):
        rel, line, end_line = min(sites, key=lambda s: (s[0], s[1]))
        if (kind, name) not in ends:
            findings.append(Finding(
                rule=RULE, path=rel, line=line, end_line=end_line,
                message=(
                    f"async slice {name!r} is begun ({kind}) but never "
                    f"ended ({_PAIR[kind]}) anywhere in the program: the "
                    "trace renders an unbounded slice"
                ),
            ))
        if name not in ASYNC_SPANS:
            findings.append(Finding(
                rule=RULE, path=rel, line=line, end_line=end_line,
                message=(
                    f"async slice name {name!r} is not registered in "
                    "repro.observe.taxonomy.ASYNC_SPANS"
                ),
            ))
    for (kind, name), sites in sorted(ends.items()):
        if (kind, name) in begins:
            continue
        rel, line, end_line = min(sites, key=lambda s: (s[0], s[1]))
        findings.append(Finding(
            rule=RULE, path=rel, line=line, end_line=end_line,
            message=(
                f"async slice {name!r} is ended ({_PAIR[kind]}) but never "
                f"begun ({kind}) anywhere in the program: the tracer "
                "drops the event silently"
            ),
        ))
    return findings
