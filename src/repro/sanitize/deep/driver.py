"""Deep-analysis driver: build the program, run the rules, filter pragmas.

The engine's per-file pragma machinery applies unchanged: a
``# sanitize: allow-request-lifecycle`` on (or above) the flagged
statement suppresses the finding, ``allow-file-<rule>`` anywhere in the
file suppresses the whole file, and baselines are applied by the CLI
after deep findings are merged with the per-file rule findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import collective, lifecycle, spanbalance
from .modgraph import Program

DEEP_RULE_NAMES = (
    lifecycle.RULE,
    collective.RULE,
    spanbalance.RULE,
)

_DESCRIPTIONS = {
    lifecycle.RULE: (
        "every nonblocking post (isend/irecv/ialltoallv/iallgather/"
        "iallreduce) must reach wait() or cancel() on all paths, and "
        "every request slot needs a wait path (interprocedural)"
    ),
    collective.RULE: (
        "collectives/barrier must not sit under rank-dependent control "
        "flow or diverge in posting order across branches (static "
        "deadlock source)"
    ),
    spanbalance.RULE: (
        "every async_begin/flow_start tracer slice is ended somewhere "
        "in the program and registered in taxonomy.ASYNC_SPANS"
    ),
}


@dataclass(frozen=True)
class DeepRuleDescriptor:
    """Name/description carrier matching the reporting Rule interface."""

    name: str
    description: str


def deep_rule_descriptors(names=DEEP_RULE_NAMES):
    return [DeepRuleDescriptor(n, _DESCRIPTIONS[n]) for n in names]


@dataclass
class DeepResult:
    """Outcome of one deep-analysis run (pre-baseline)."""

    findings: list = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0
    errors: list = field(default_factory=list)
    program: Program | None = None


def deep_analyze(paths, root=None, rules=None) -> "DeepResult":
    """Run the whole-program rules over ``paths``.

    ``rules`` optionally restricts to a subset of
    :data:`DEEP_RULE_NAMES`. Findings are pragma-filtered but *not*
    baseline-filtered — the CLI applies the shared baseline after
    merging with the per-file engine findings.
    """
    selected = tuple(rules) if rules is not None else DEEP_RULE_NAMES
    unknown = [r for r in selected if r not in DEEP_RULE_NAMES]
    if unknown:
        raise KeyError(
            f"unknown deep rule(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(DEEP_RULE_NAMES)}"
        )
    program = Program.build(paths, root=root)
    raw = []
    if lifecycle.RULE in selected:
        found, _store = lifecycle.analyze_program(program)
        raw.extend(found)
    if collective.RULE in selected:
        raw.extend(collective.analyze_program(program))
    if spanbalance.RULE in selected:
        raw.extend(spanbalance.analyze_program(program))

    result = DeepResult(
        n_files=len(program.modules),
        errors=list(program.errors),  # (path, message), engine-shaped
        program=program,
    )
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule,
                                              f.message)):
        mod = program.by_rel.get(finding.path)
        if mod is not None and mod.ctx.allowed(
            finding.rule, finding.line, finding.end_line
        ):
            result.n_suppressed += 1
            continue
        result.findings.append(finding)
    return result
