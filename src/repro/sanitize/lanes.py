"""Lane sanitizer: write-write collision checks for gpusim warp passes.

The warp-split executor accumulates i-side (and, for reaction kernels,
j-side) per-lane results with ``np.add.at`` — which *sums* duplicate
indices, modelling device atomics.  Real CRK-HACC force kernels avoid
atomics on the i side by giving every lane a private slot: correctness
there rests on the structural guarantee that a leaf's lanes name
distinct particles and that a pair's two write sets do not alias.  A
malformed leaf set (overlapping leaves, duplicated rows after a bad
compaction or migration) silently breaks that guarantee — the model's
atomic scatter hides the hazard that would corrupt sums on hardware.

:class:`LaneSanitizer` re-checks the guarantee per leaf pair inside a
launch and reports the collision the model masks:

- duplicate particle indices inside one leaf's lane list (two lanes of
  the same wavefront writing one address);
- for reaction (two-sided) kernels, distinct leaves sharing a particle
  (the i-side and j-side write-backs alias).  Self-pairs ``(a, a)`` are
  exempt: the executor serializes same-leaf accumulation by
  construction.

Per-leaf duplicate checks are memoized per :class:`LeafSet`, so a clean
pass costs one ``np.unique`` per leaf plus one overlap test per
two-sided pair.
"""

from __future__ import annotations

import numpy as np


class LaneCollisionError(RuntimeError):
    """A same-address non-atomic write-write collision within a launch."""


class LaneSanitizer:
    """Checks gpusim leaf-pair launches for lane write collisions.

    ``strict=True`` (default) raises :class:`LaneCollisionError` at the
    first collision; ``strict=False`` records findings (strings) and
    lets the launch proceed, for audit-style runs.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.findings: list[str] = []
        self.n_pairs_checked = 0
        #: (id(leaves), leaf) pairs already proven duplicate-free
        self._clean_leaves: set = set()

    def _report(self, message: str):
        self.findings.append(message)
        if self.strict:
            raise LaneCollisionError(message)

    def _check_leaf_unique(self, leaves, leaf: int, idx: np.ndarray,
                           kernel_name: str) -> None:
        key = (id(leaves), leaf)
        if key in self._clean_leaves:
            return
        uniq, counts = np.unique(idx, return_counts=True)
        if len(uniq) != len(idx):
            dup = int(uniq[np.argmax(counts)])
            self._report(
                f"kernel {kernel_name!r}: leaf {leaf} lists particle {dup} "
                f"in {int(counts.max())} lanes — duplicate lanes of one "
                "wavefront write the same address non-atomically on "
                "hardware (the np.add.at model sums them silently); the "
                "leaf set is malformed"
            )
            return
        self._clean_leaves.add(key)

    def check_leaf_pair(self, leaves, a: int, b: int, idx_i: np.ndarray,
                        idx_j: np.ndarray, kernel_name: str,
                        two_sided: bool) -> None:
        """Validate one leaf pair about to be issued to the device."""
        self.n_pairs_checked += 1
        self._check_leaf_unique(leaves, a, idx_i, kernel_name)
        if not two_sided or a == b:
            return
        self._check_leaf_unique(leaves, b, idx_j, kernel_name)
        shared = np.intersect1d(idx_i, idx_j)
        if shared.size:
            self._report(
                f"kernel {kernel_name!r}: reaction pair ({a}, {b}) — "
                f"leaves share particle(s) {shared[:4].tolist()}"
                f"{'...' if shared.size > 4 else ''}; the i-side and "
                "j-side lane write-backs alias the same address within "
                "one launch (non-atomic on hardware); overlapping leaves "
                "must not be paired two-sided"
            )
