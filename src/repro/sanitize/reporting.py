"""Finding reporters for the lint engine (text and JSON)."""

from __future__ import annotations

import json


def render_text(result, rules=None) -> str:
    """Human-readable report: one ``path:line: [rule] message`` per finding."""
    lines = []
    for path, msg in result.errors:
        lines.append(f"{path}: error: {msg}")
    for f in result.findings:
        lines.append(f.render())
    for key, left in getattr(result, "stale_baseline", []):
        rule, path, message = key
        lines.append(
            f"{path}: stale baseline entry [{rule}] x{left}: {message!r} "
            "no longer matches any finding — prune with --write-baseline"
        )
    n_rules = len(rules) if rules is not None else None
    tail = (
        f"{len(result.findings)} finding(s) in {result.n_files} file(s)"
        if (result.findings or result.errors)
        else f"OK — {result.n_files} file(s) clean"
    )
    if n_rules is not None:
        tail += f" ({n_rules} rules"
        extras = []
        if result.n_suppressed:
            extras.append(f"{result.n_suppressed} pragma-suppressed")
        if result.n_baseline:
            extras.append(f"{result.n_baseline} baselined")
        stale = getattr(result, "stale_baseline", [])
        if stale:
            extras.append(f"{len(stale)} stale baseline entr"
                          + ("y" if len(stale) == 1 else "ies"))
        tail += ", " + ", ".join(extras) + ")" if extras else ")"
    lines.append(tail)
    return "\n".join(lines)


def render_json(result, rules=None) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    doc = {
        "clean": result.clean,
        "n_files": result.n_files,
        "n_findings": len(result.findings),
        "n_suppressed": result.n_suppressed,
        "n_baseline": result.n_baseline,
        "rules": [
            {"name": r.name, "description": r.description}
            for r in (rules or [])
        ],
        "errors": [{"path": p, "message": m} for p, m in result.errors],
        "stale_baseline": [
            {"rule": rule, "path": path, "message": message,
             "unused_count": left}
            for (rule, path, message), left
            in getattr(result, "stale_baseline", [])
        ],
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in result.findings
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=False)
