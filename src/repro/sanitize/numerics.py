"""Numerics sanitizer: NaN/Inf and energy-blowup checks at phase
boundaries.

A NaN born in one force phase silently infects every particle it
touches within a step or two; by the time an assertion three phases
later trips (or the run just produces garbage), the origin is gone.
:class:`NumericsSanitizer` is a cheap tripwire the drivers call between
phases when ``SimulationConfig.sanitize`` /
``DistributedConfig.sanitize`` is set: the raising check names the
step, the phase boundary just crossed, the offending array, and the
first bad index — the information needed to bisect the producing phase.

The energy check is a blowup detector, not a conservation test:
comoving-frame energy is not conserved step to step, so it flags only a
relative jump beyond ``jump_tol`` (default 100x) between consecutive
steps — integrator runaways, not physics.
"""

from __future__ import annotations

import numpy as np


class NumericsError(FloatingPointError):
    """A non-finite value or energy blowup caught at a phase boundary."""


class NumericsSanitizer:
    """Per-run finite/energy checker shared by the serial and
    distributed drivers (one instance per rank in distributed runs)."""

    def __init__(self, jump_tol: float = 100.0, context: str = "sim"):
        self.jump_tol = float(jump_tol)
        self.context = context
        self.n_checks = 0
        self._last_energy: float | None = None

    def check_finite(self, step: int, phase: str, **arrays) -> None:
        """Raise if any named float array holds a NaN/Inf.

        Call with the state arrays a phase just wrote, e.g.
        ``san.check_finite(istep, "short_range", vel=p.vel, u=p.u)``.
        """
        self.n_checks += 1
        for name, arr in arrays.items():
            if arr is None:
                continue
            a = np.asarray(arr)
            if not np.issubdtype(a.dtype, np.floating):
                continue
            bad = ~np.isfinite(a)
            if bad.any():
                flat = np.flatnonzero(bad.ravel())
                raise NumericsError(
                    f"{self.context}: step {step}, after phase {phase!r}: "
                    f"array {name!r} holds {len(flat)} non-finite value(s) "
                    f"(first at flat index {int(flat[0])} of {a.size}); "
                    f"the phase that just ran produced NaN/Inf — bisect "
                    f"inside {phase!r}"
                )

    def check_energy(self, step: int, energy: float) -> None:
        """Raise on a >``jump_tol``x relative energy jump between steps."""
        e = float(energy)
        if not np.isfinite(e):
            raise NumericsError(
                f"{self.context}: step {step}: total energy is non-finite"
            )
        prev = self._last_energy
        self._last_energy = e
        if prev is None or abs(prev) < 1e-300:
            return
        jump = abs(e) / abs(prev)
        if jump > self.jump_tol:
            raise NumericsError(
                f"{self.context}: step {step}: total energy jumped "
                f"{jump:.1f}x in one step ({prev:.6g} -> {e:.6g}, "
                f"jump_tol={self.jump_tol:g}) — integrator blowup"
            )


def kinetic_internal_energy(mass, vel, u=None) -> float:
    """Cheap per-step energy proxy: kinetic + internal (no potential)."""
    m = np.asarray(mass, dtype=np.float64)
    v = np.asarray(vel, dtype=np.float64)
    e = 0.5 * float(np.sum(m * np.einsum("na,na->n", v, v)))
    if u is not None:
        e += float(np.sum(m * np.asarray(u, dtype=np.float64)))
    return e
