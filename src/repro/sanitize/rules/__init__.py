"""Rule registry for the sanitize lint engine.

Each rule lives in its own module and encodes one repo-wide discipline
(see DESIGN.md "Correctness tooling" for the catalog).  ``default_rules``
returns one instance of every active rule; ``get_rules`` selects a
subset by name for ``python -m repro lint --rules``.
"""

from __future__ import annotations

from .backend import BackendDisciplineRule
from .clocks import ClockDisciplineRule
from .determinism import DeterminismRule
from .dtypes import DtypeDisciplineRule
from .scatter import HotPathScatterRule
from .spans import SpanTaxonomyRule

_RULE_CLASSES = (
    HotPathScatterRule,
    SpanTaxonomyRule,
    ClockDisciplineRule,
    DeterminismRule,
    DtypeDisciplineRule,
    BackendDisciplineRule,
)


def default_rules() -> list:
    """One instance of every active rule (registration order)."""
    return [cls() for cls in _RULE_CLASSES]


def rule_names() -> list:
    return [cls.name for cls in _RULE_CLASSES]


def get_rules(names=None) -> list:
    """Rules selected by name (all when ``names`` is None/empty)."""
    names = list(names) if names is not None else []
    if not names:
        return default_rules()
    by_name = {cls.name: cls for cls in _RULE_CLASSES}
    unknown = [n for n in names if n not in by_name]
    if unknown:
        raise KeyError(
            f"unknown rule(s) {unknown}; available: {sorted(by_name)}"
        )
    return [by_name[n]() for n in names]


__all__ = [
    "BackendDisciplineRule",
    "ClockDisciplineRule",
    "DeterminismRule",
    "DtypeDisciplineRule",
    "HotPathScatterRule",
    "SpanTaxonomyRule",
    "default_rules",
    "get_rules",
    "rule_names",
]
