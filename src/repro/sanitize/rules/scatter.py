"""Hot-path scatter rule: no buffered ufunc scatters outside modeled sites.

``np.add.at`` / ``np.maximum.at`` process duplicate indices one element
at a time and are the dominant per-pair cost of a NumPy short-range
solver — PR 1 replaced every hot-path occurrence with the 5-10x faster
segment reductions in :mod:`repro.core.scatter`.  This rule keeps them
out: any new buffered scatter must either move to ``segment_sum`` /
``SegmentReducer`` or carry an ``# sanitize: allow-scatter`` pragma,
reserved for sites that deliberately *model* device atomics (the gpusim
warp executor) or run on cold paths with tiny index sets (subgrid
feedback deposition).
"""

from __future__ import annotations

import ast

from ..engine import (
    Finding,
    Rule,
    dotted_name,
    numpy_aliases,
    numpy_member_aliases,
)

#: ufuncs whose ``.at`` form is a buffered scatter
_SCATTER_UFUNCS = ("add", "maximum", "minimum", "subtract", "multiply")


class HotPathScatterRule(Rule):
    name = "scatter"
    description = (
        "no np.<ufunc>.at buffered scatters; use repro.core.scatter "
        "segment reductions (pragma only for deliberate atomic models)"
    )

    def check(self, ctx):
        np_names = numpy_aliases(ctx.tree)
        members = numpy_member_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dn = dotted_name(node.func)
            if dn is None or not dn.endswith(".at"):
                continue
            parts = dn.split(".")
            if (
                len(parts) == 3
                and parts[0] in np_names
                and parts[1] in _SCATTER_UFUNCS
            ):
                pass  # np.add.at(...)
            elif (
                len(parts) == 2
                and members.get(parts[0]) in _SCATTER_UFUNCS
            ):
                # from numpy import add [as x]; x.at(...)
                parts = [parts[0], members[parts[0]], "at"]
            else:
                continue
            yield Finding(
                    rule=self.name,
                    path=ctx.rel,
                    line=node.lineno,
                    end_line=getattr(node, "end_lineno", node.lineno),
                    message=(
                        f"buffered ufunc scatter {parts[1]}.at; use "
                        "repro.core.scatter.segment_sum/segment_max (or "
                        "SegmentReducer over a cached pair list), or pragma "
                        "an intentional device-atomic model site"
                    ),
                )
