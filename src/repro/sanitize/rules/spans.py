"""Span-taxonomy rule: instrumented modules only emit registered span names.

The Fig. 2 / Fig. 6 derived metrics and CI trace diffs key off span
names, so an instrumented module inventing a name silently breaks
attribution.  This rule (the AST successor of ``scripts/check_spans.py``,
which is now a thin shim over it) finds every string-literal span name
passed to a tracer entry point — ``span``, ``complete``, ``instant``,
``async_begin``/``async_end``, ``flow_start``/``flow_end`` — or to a
``TimerGroup.time`` phase timer, and flags names missing from
:mod:`repro.observe.taxonomy`.
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule

#: methods that take a span/phase name as their first positional argument
TRACER_METHODS = frozenset(
    {"span", "complete", "instant", "async_begin", "async_end",
     "flow_start", "flow_end", "time"}
)

#: modules whose tracer calls must only use registered span names
#: (repo-relative posix paths; the historical check_spans.py set)
INSTRUMENTED = (
    "repro/backend/registry.py",
    "repro/core/simulation.py",
    "repro/parallel/comm.py",
    "repro/parallel/distributed_sim.py",
    "repro/parallel/swfft.py",
    "repro/gpusim/resident.py",
    "repro/iosim/tiers.py",
    "repro/iosim/bleed.py",
    "repro/iosim/manager.py",
    "repro/campaign/runner.py",
    "repro/campaign/scheduler.py",
    "repro/perfmodel/campaign.py",
    "repro/resilience/checkpointer.py",
    "repro/resilience/coordinator.py",
)


def is_instrumented(rel: str) -> bool:
    return any(rel.endswith(mod) for mod in INSTRUMENTED)


def span_literal_calls(tree: ast.AST):
    """``(line, end_line, name)`` for every literal span-name call site."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in TRACER_METHODS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            yield (node.lineno, getattr(node, "end_lineno", node.lineno),
                   node.args[0].value)


class SpanTaxonomyRule(Rule):
    name = "span-taxonomy"
    description = (
        "span names in instrumented modules must be registered in "
        "repro.observe.taxonomy (trace attribution breaks silently otherwise)"
    )

    def applies(self, ctx):
        return is_instrumented(ctx.rel)

    def check(self, ctx):
        from ...observe.taxonomy import is_registered

        for line, end_line, name in span_literal_calls(ctx.tree):
            if not is_registered(name):
                yield Finding(
                    rule=self.name,
                    path=ctx.rel,
                    line=line,
                    end_line=end_line,
                    message=(
                        f"unregistered span name {name!r}; add it to "
                        "repro/observe/taxonomy.py or rename"
                    ),
                )


def scan_span_files(paths):
    """Shim backend for ``scripts/check_spans.py``.

    Returns ``(bad, n_literals, n_names)`` where ``bad`` maps each
    unregistered span name to its ``[(path, line), ...]`` occurrences —
    the exact shape the historical script reported.
    """
    from ...observe.taxonomy import unregistered

    found: dict[str, list] = {}
    n_literals = 0
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
        for line, _end, name in span_literal_calls(tree):
            n_literals += 1
            found.setdefault(name, []).append((path, line))
    bad = {name: found[name] for name in unregistered(found)}
    return bad, n_literals, len(found)
