"""Clock-discipline rule: no raw wall-clock reads in instrumented modules.

The observability layer defines exactly two time bases (DESIGN.md
"Observability"): wall-clock spans measured through ``TimerGroup`` /
``Timer`` / the tracer, and simulated-fabric time on ``SimClock``.  A
raw ``time.perf_counter()`` / ``time.time()`` inside an instrumented
module produces seconds that no registry instrument or trace track can
attribute — timing data that silently escapes the Fig. 2 / Fig. 5
accounting.  Measurement belongs in ``TimerGroup.time(phase)``;
model timestamps belong on a ``Clock``.  The transport layer itself
(``parallel/comm.py``), whose fabric-latency model *is* built from
``perf_counter`` deadlines, carries a file-level pragma.
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, dotted_name
from .spans import is_instrumented

#: time-module entry points that read a wall clock
_WALL_FUNCS = frozenset({"perf_counter", "perf_counter_ns", "time", "time_ns"})


def _time_aliases(tree: ast.AST):
    """Names bound to the time module and to its wall-clock functions."""
    modules = set()
    funcs = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    modules.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_FUNCS:
                    funcs.add(alias.asname or alias.name)
    return modules, funcs


class ClockDisciplineRule(Rule):
    name = "clock-discipline"
    description = (
        "instrumented modules must not read raw wall clocks; time phases "
        "with TimerGroup/Timer, stamp models with observe.clock"
    )

    def applies(self, ctx):
        return is_instrumented(ctx.rel)

    def check(self, ctx):
        modules, funcs = _time_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            bad = None
            dn = dotted_name(node.func)
            if dn is not None:
                parts = dn.split(".")
                if (
                    len(parts) == 2
                    and parts[0] in modules
                    and parts[1] in _WALL_FUNCS
                ):
                    bad = dn
            if (
                bad is None
                and isinstance(node.func, ast.Name)
                and node.func.id in funcs
            ):
                bad = node.func.id
            if bad is not None:
                yield Finding(
                    rule=self.name,
                    path=ctx.rel,
                    line=node.lineno,
                    end_line=getattr(node, "end_lineno", node.lineno),
                    message=(
                        f"raw wall-clock read {bad}() in an instrumented "
                        "module; use TimerGroup.time(phase) for measurement "
                        "or an observe.clock Clock for model timestamps"
                    ),
                )
