"""Dtype-discipline rule: core state arrays stay float64.

The physics core integrates in float64; FP32 belongs only to the
deliberate mixed-precision path (``core/gravity/precision.py``, which
models the GPU kernels and carries a file-level pragma) and to the
gpusim device models.  A stray ``dtype=np.float32`` (or a ``"float32"``
string literal) in a ``core/`` state-array allocation silently halves
the precision of everything downstream — conservation checks drift,
equivalence tests develop mysterious tolerances.  This rule flags every
float32 dtype reference in ``core/`` modules.
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, dotted_name, numpy_aliases

_F32_NAMES = frozenset({"float32", "single", "half", "float16"})


class DtypeDisciplineRule(Rule):
    name = "dtype-discipline"
    description = (
        "no implicit float32 in core/ state arrays; core integrates in "
        "float64 (mixed precision lives in core/gravity/precision.py)"
    )

    def applies(self, ctx):
        return "/core/" in ctx.rel or ctx.rel.startswith("core/")

    def check(self, ctx):
        np_names = numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            bad = None
            if isinstance(node, ast.Attribute):
                dn = dotted_name(node)
                if dn is not None:
                    parts = dn.split(".")
                    if (
                        len(parts) == 2
                        and parts[0] in np_names
                        and parts[1] in _F32_NAMES
                    ):
                        bad = dn
            elif isinstance(node, ast.Constant) and node.value in _F32_NAMES:
                bad = f"{node.value!r}"
            if bad is not None:
                yield Finding(
                    rule=self.name,
                    path=ctx.rel,
                    line=node.lineno,
                    end_line=getattr(node, "end_lineno", node.lineno),
                    message=(
                        f"{bad} in a core/ module; core state arrays are "
                        "float64 — deliberate mixed precision belongs in "
                        "core/gravity/precision.py"
                    ),
                )
