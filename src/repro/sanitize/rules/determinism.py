"""Determinism rule: no unseeded randomness anywhere in ``src/``.

The paper's trust story rests on bit-for-bit checkpoint/restart and
deterministic reductions; this repo mirrors that with seeded
``np.random.default_rng(seed)`` generators threaded through every
stochastic component (ICs, subgrid models, fault injection).  Two
patterns break it silently:

- the legacy global-state API (``np.random.rand`` / ``seed`` /
  ``shuffle`` ...), whose hidden global generator couples unrelated
  call sites and is not replayable per component;
- ``np.random.default_rng()`` with no seed, which draws fresh OS
  entropy on every run.

Both are flagged repo-wide.
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, dotted_name, numpy_aliases

#: legacy numpy global-RNG entry points
_LEGACY = frozenset({
    "rand", "randn", "random", "random_sample", "ranf", "sample",
    "randint", "random_integers", "seed", "get_state", "set_state",
    "normal", "uniform", "choice", "shuffle", "permutation", "poisson",
    "exponential", "standard_normal", "binomial", "beta", "gamma",
})


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "no unseeded randomness: legacy np.random.* global-state calls and "
        "seedless np.random.default_rng() are forbidden in src/"
    )

    def check(self, ctx):
        np_names = numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dn = dotted_name(node.func)
            if dn is None:
                continue
            parts = dn.split(".")
            if len(parts) != 3 or parts[0] not in np_names or parts[1] != "random":
                continue
            if parts[2] in _LEGACY:
                yield Finding(
                    rule=self.name,
                    path=ctx.rel,
                    line=node.lineno,
                    end_line=getattr(node, "end_lineno", node.lineno),
                    message=(
                        f"legacy global-state RNG np.random.{parts[2]}; "
                        "thread a seeded np.random.default_rng(seed) "
                        "Generator through instead"
                    ),
                )
            elif parts[2] == "default_rng" and not node.args:
                yield Finding(
                    rule=self.name,
                    path=ctx.rel,
                    line=node.lineno,
                    end_line=getattr(node, "end_lineno", node.lineno),
                    message=(
                        "np.random.default_rng() without a seed draws fresh "
                        "OS entropy per run; pass an explicit seed"
                    ),
                )
