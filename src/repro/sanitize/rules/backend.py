"""Backend-discipline rule: compiled-kernel code stays in ``repro/backend``.

Call sites in ``core/`` (and everywhere else) reach compiled kernels only
through the :mod:`repro.backend` registry — ``get_kernel(name)`` — so the
numpy reference path never grows a hard numba dependency and the parity
contracts stay enforceable in one place.  This rule flags, outside
``repro/backend/``:

- any ``import numba`` / ``from numba import ...`` (the compiled
  implementations and their decorators belong in
  ``repro/backend/jit_kernels.py``);
- any ``register_kernel(..., backend="jit")`` registration (alternate
  backends register next to their compiled code, not at call sites).
"""

from __future__ import annotations

import ast

from ..engine import Finding, Rule, dotted_name


class BackendDisciplineRule(Rule):
    name = "backend-discipline"
    description = (
        "no numba imports or jit-backend kernel registrations outside "
        "repro/backend/; call sites dispatch via get_kernel(name)"
    )

    def applies(self, ctx) -> bool:
        return "repro/backend/" not in ctx.rel

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "numba":
                        yield self._finding(
                            ctx, node,
                            "import numba outside repro/backend/; compiled "
                            "kernels live in repro/backend/jit_kernels.py "
                            "and call sites use get_kernel(name)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "numba":
                    yield self._finding(
                        ctx, node,
                        "from numba import ... outside repro/backend/; "
                        "compiled kernels live in "
                        "repro/backend/jit_kernels.py",
                    )
            elif isinstance(node, ast.Call):
                dn = dotted_name(node.func)
                if dn is None or dn.split(".")[-1] != "register_kernel":
                    continue
                for kw in node.keywords:
                    if (
                        kw.arg == "backend"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value == "jit"
                    ):
                        yield self._finding(
                            ctx, node,
                            "jit-backend kernel registration outside "
                            "repro/backend/; register compiled "
                            "implementations in "
                            "repro/backend/jit_kernels.py",
                        )

    def _finding(self, ctx, node, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=ctx.rel,
            line=node.lineno,
            end_line=getattr(node, "end_lineno", node.lineno),
            message=message,
        )
