"""repro.sanitize: static lint engine + runtime sanitizers.

Two halves of one correctness-tooling story (DESIGN.md "Correctness
tooling"):

- the **AST lint engine** (:class:`LintEngine` + the rule catalog in
  :mod:`repro.sanitize.rules`) enforces repo-wide source disciplines —
  hot-path scatters, the span taxonomy, clock discipline, seeded
  randomness, core dtype discipline — with inline
  ``# sanitize: allow-<rule>`` pragmas and recorded-debt baselines.
  Run it as ``python -m repro lint``; ``--deep`` adds the
  whole-program comm-safety analyses in :mod:`repro.sanitize.deep`
  (request lifecycle, collective divergence, span balance).
- the **runtime sanitizers** catch what static analysis cannot:
  :class:`CommSanitizer` (request leaks, double-waits, tag/source
  mismatches, receive deadlocks on the simulated MPI layer),
  :class:`LaneSanitizer` (non-atomic lane write collisions in gpusim
  warp passes), and :class:`NumericsSanitizer` (NaN/Inf and energy
  blowups at driver phase boundaries).  Each is opt-in per run —
  ``World(..., sanitize=True)``, ``SimulationConfig.sanitize``,
  ``DistributedConfig.sanitize`` — and free when off.
"""

from .baseline import (
    apply_baseline,
    load_baseline,
    subtract_baseline,
    write_baseline,
)
from .comm import CommFinding, CommSanitizer
from .deep import DEEP_RULE_NAMES, deep_analyze, deep_rule_descriptors
from .engine import FileContext, Finding, LintEngine, LintResult, Rule, parse_file
from .lanes import LaneCollisionError, LaneSanitizer
from .numerics import NumericsError, NumericsSanitizer, kinetic_internal_energy
from .reporting import render_json, render_text
from .rules import default_rules, get_rules, rule_names

__all__ = [
    "CommFinding",
    "CommSanitizer",
    "DEEP_RULE_NAMES",
    "FileContext",
    "Finding",
    "LaneCollisionError",
    "LaneSanitizer",
    "LintEngine",
    "LintResult",
    "NumericsError",
    "NumericsSanitizer",
    "Rule",
    "apply_baseline",
    "deep_analyze",
    "deep_rule_descriptors",
    "default_rules",
    "get_rules",
    "kinetic_internal_energy",
    "load_baseline",
    "parse_file",
    "render_json",
    "render_text",
    "rule_names",
    "subtract_baseline",
    "write_baseline",
]
