"""Recorded-debt baselines for the lint engine.

A baseline file lets a new rule land while the tree still carries known
violations: ``python -m repro lint --write-baseline debt.json`` records
the current findings, and subsequent ``--baseline debt.json`` runs
report only findings *not* in the record — the tree stays green while
the debt is paid down site by site.

Baseline identity is ``(rule, path, message)`` with a count (not the
line number), so unrelated edits that shift lines do not resurrect
recorded debt, while a *new* violation of the same rule in the same
file with a different message — or one more occurrence of an identical
message — still fails the run.
"""

from __future__ import annotations

import json


def write_baseline(path: str, findings) -> int:
    """Record ``findings`` as the debt file at ``path``; returns count."""
    entries = {}
    for f in findings:
        key = "\x00".join((f.rule, f.path, f.message))
        entries[key] = entries.get(key, 0) + 1
    doc = {
        "version": 1,
        "entries": [
            {"rule": k.split("\x00")[0], "path": k.split("\x00")[1],
             "message": k.split("\x00")[2], "count": v}
            for k, v in sorted(entries.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return len(findings)


def load_baseline(path: str) -> dict:
    """``{(rule, path, message): count}`` from a debt file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("version") != 1:
        raise ValueError(f"unsupported baseline version in {path}")
    return {
        (e["rule"], e["path"], e["message"]): int(e.get("count", 1))
        for e in doc.get("entries", [])
    }


def subtract_baseline(findings, baseline: dict):
    """Drop up to ``count`` recorded findings per key.

    Returns ``(fresh_findings, n_suppressed)``.
    """
    fresh, n_suppressed, _stale = apply_baseline(findings, baseline)
    return fresh, n_suppressed


def apply_baseline(findings, baseline: dict):
    """Subtract the baseline and surface paid-off debt.

    Returns ``(fresh_findings, n_suppressed, stale)`` where ``stale``
    lists the recorded entries (fully or partially) matching no current
    finding as ``[((rule, path, message), unused_count), ...]`` — debt
    that has been fixed and should be pruned so it cannot quietly mask
    a future regression (``--write-baseline`` rewrites from the current
    findings, which prunes them).
    """
    budget = dict(baseline)
    fresh = []
    n_suppressed = 0
    for f in findings:
        key = f.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            n_suppressed += 1
        else:
            fresh.append(f)
    stale = sorted(
        (key, left) for key, left in budget.items() if left > 0
    )
    return fresh, n_suppressed, stale
