"""AST-based lint engine for the repo's correctness disciplines.

The engine parses each Python file once, hands the shared
:class:`FileContext` (source, AST, pragma map) to every applicable
:class:`Rule`, and filters the resulting :class:`Finding`\\ s against
inline suppression pragmas:

``# sanitize: allow-<rule>``
    suppresses ``<rule>`` findings whose flagged statement touches the
    pragma line (the pragma may sit on the offending line, on the line
    directly above it, or anywhere inside a multi-line statement);
``# sanitize: allow-file-<rule>``
    suppresses ``<rule>`` for the whole file (for modules whose entire
    job is the flagged pattern, e.g. the deliberate-FP32 module under the
    dtype rule, or the comm transport under the clock rule).

Rules are small stateless objects (see :mod:`repro.sanitize.rules`); the
engine owns traversal, pragma handling, and baseline subtraction
(:mod:`repro.sanitize.baseline`), so a new rule is one file with one
``check(ctx)`` method.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field

#: inline pragma: ``# sanitize: allow-rule-a, allow-rule-b``
_PRAGMA = re.compile(r"#\s*sanitize:\s*(allow-[a-z0-9,\s-]+)")
_ALLOW = re.compile(r"allow-(file-)?([a-z0-9-]+)")


@dataclass(frozen=True)
class Finding:
    """One lint violation at a source location."""

    rule: str
    path: str  # repo-relative (or as-given) path
    line: int
    message: str
    #: last line of the flagged statement (pragmas anywhere in the span count)
    end_line: int = 0

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def key(self) -> tuple:
        """Baseline identity: stable under unrelated line drift."""
        return (self.rule, self.path, self.message)


@dataclass
class FileContext:
    """Everything a rule may inspect about one file (parsed once)."""

    path: str  # absolute path on disk
    rel: str  # repo-relative posix path used in findings
    source: str
    tree: ast.AST
    #: line -> set of rule names allowed on that line
    pragmas: dict = field(default_factory=dict)
    #: rule names allowed for the entire file
    file_pragmas: set = field(default_factory=set)

    def allowed(self, rule: str, line: int, end_line: int | None = None) -> bool:
        """True when a pragma suppresses ``rule`` for a statement spanning
        ``line``..``end_line`` (or the line directly above it)."""
        if rule in self.file_pragmas:
            return True
        last = end_line if end_line and end_line >= line else line
        for ln in range(line - 1, last + 1):
            if rule in self.pragmas.get(ln, ()):
                return True
        return False


class Rule:
    """Base class: subclasses set ``name``/``description`` and ``check``."""

    name = "abstract"
    description = ""

    def applies(self, ctx: FileContext) -> bool:
        """Path filter; default every Python file."""
        return True

    def check(self, ctx: FileContext):
        """Yield :class:`Finding` objects for ``ctx`` (pragma-unfiltered)."""
        raise NotImplementedError


def _scan_pragmas(source: str):
    """``(line_pragmas, file_pragmas)`` from the raw source text."""
    line_pragmas: dict[int, set] = {}
    file_pragmas: set[str] = set()
    for i, line in enumerate(source.splitlines(), start=1):
        m = _PRAGMA.search(line)
        if not m:
            continue
        for fm in _ALLOW.finditer(m.group(1)):
            if fm.group(1):  # allow-file-<rule>
                file_pragmas.add(fm.group(2))
            else:
                line_pragmas.setdefault(i, set()).add(fm.group(2))
    return line_pragmas, file_pragmas


def parse_file(path: str, root: str | None = None) -> FileContext:
    """Parse ``path`` into a :class:`FileContext` (raises on syntax error)."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    rel = path
    if root is not None:
        try:
            rel = os.path.relpath(path, root)
        except ValueError:  # different drive on windows
            rel = path
    rel = rel.replace(os.sep, "/")
    tree = ast.parse(source, filename=path)
    line_pragmas, file_pragmas = _scan_pragmas(source)
    return FileContext(path=path, rel=rel, source=source, tree=tree,
                       pragmas=line_pragmas, file_pragmas=file_pragmas)


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: list
    n_files: int
    n_suppressed: int = 0  # pragma-suppressed
    n_baseline: int = 0  # baseline-suppressed
    errors: list = field(default_factory=list)  # (path, message)
    #: baseline keys that matched no finding: ``[((rule, path, message),
    #: unused_count), ...]`` — recorded debt that has been paid off and
    #: should be pruned from the baseline file
    stale_baseline: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors


class LintEngine:
    """Run a rule set over files/trees with pragma + baseline filtering."""

    def __init__(self, rules=None, root: str | None = None):
        if rules is None:
            from .rules import default_rules

            rules = default_rules()
        self.rules = list(rules)
        #: findings are reported relative to this directory
        self.root = root if root is not None else os.getcwd()

    def lint_file(self, path: str) -> list:
        """Pragma-filtered findings for one file."""
        result = LintResult(findings=[], n_files=0)
        self._lint_into(path, result)
        return result.findings

    def lint_paths(self, paths, baseline=None) -> LintResult:
        """Lint files and/or directory trees (``.py`` files, sorted walk)."""
        result = LintResult(findings=[], n_files=0)
        for path in paths:
            if os.path.isdir(path):
                for fp in _walk_python(path):
                    self._lint_into(fp, result)
            elif os.path.exists(path):
                self._lint_into(path, result)
            else:
                result.errors.append((path, "no such file"))
        if baseline is not None:
            from .baseline import apply_baseline

            (result.findings, result.n_baseline,
             result.stale_baseline) = apply_baseline(
                result.findings, baseline
            )
        result.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return result

    def _lint_into(self, path: str, result: LintResult) -> None:
        try:
            ctx = parse_file(path, root=self.root)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.errors.append((path, f"parse error: {exc}"))
            return
        result.n_files += 1
        for rule in self.rules:
            if not rule.applies(ctx):
                continue
            for finding in rule.check(ctx):
                if ctx.allowed(rule.name, finding.line, finding.end_line):
                    result.n_suppressed += 1
                else:
                    result.findings.append(finding)


def _walk_python(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in ("__pycache__", ".git") and not d.endswith(".egg-info")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


# -- shared AST helpers for the rule modules ----------------------------------
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def numpy_aliases(tree: ast.AST) -> set:
    """Local names bound to the numpy module (``import numpy as np`` ...)."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    names.add(alias.asname or "numpy")
    return names or {"np", "numpy"}


def numpy_member_aliases(tree: ast.AST) -> dict:
    """Local name -> numpy member for ``from numpy import add [as x]``."""
    members: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "numpy" \
                and not node.level:
            for alias in node.names:
                if alias.name != "*":
                    members[alias.asname or alias.name] = alias.name
    return members
