"""Runtime sanitizer for the simulated MPI layer.

Tracks every nonblocking :class:`~repro.parallel.comm.Request` from post
to settlement and reports violations of the request-lifecycle discipline
at ``World.run`` teardown:

- **leaked-request** — posted but never waited, tested to completion, or
  cancelled.  A leaked irecv is a latent hang; a leaked collective holds
  a sequence slot that desynchronizes every later nonblocking collective.
- **double-wait** — ``wait()`` called again on a request that a previous
  ``wait()`` already completed.  (Polling ``test()`` and then calling
  ``wait()`` once is the documented completion idiom and is *not*
  flagged.)
- **tag-mismatch / unconsumed-message** — a message left sitting in a
  mailbox at teardown, cross-referenced against pending irecvs on the
  same channel so the report says *which* posted receive has the wrong
  tag or source.
- **deadlock** — a wait-for cycle among ranks blocked in ``recv``/
  ``irecv().wait()`` with no message in flight on any cycle edge.  The
  check runs inside the receive poll loop and is double-confirmed across
  two poll ticks (wait epochs) before raising, so a transient cycle that
  a late send resolves is never misreported.

The sanitizer is allocated by ``World(..., sanitize=True)`` and touched
only through ``is not None`` guards, so unsanitized runs pay nothing.
All mutable state is behind one lock; mailbox peeks during the deadlock
walk are lock-free reads (safe under the GIL, and confirmed on a second
tick before anything is reported).
"""

from __future__ import annotations

import threading


class CommFinding:
    """One sanitizer finding, attributed to a rank."""

    __slots__ = ("kind", "rank", "message")

    def __init__(self, kind: str, rank: int, message: str):
        self.kind = kind
        self.rank = rank
        self.message = message

    def render(self) -> str:
        return f"[{self.kind}] rank {self.rank}: {self.message}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CommFinding({self.render()!r})"


class _RequestRecord:
    """Lifecycle state of one posted request."""

    __slots__ = (
        "sanitizer", "rank", "kind", "detail", "site",
        "source", "tag", "settled", "waited",
    )

    def __init__(self, sanitizer, rank, kind, detail, site, source, tag):
        self.sanitizer = sanitizer
        self.rank = rank
        self.kind = kind
        self.detail = detail
        self.site = site
        self.source = source  # irecv only
        self.tag = tag  # irecv only
        self.settled = False  # completed, cancelled, or errored out
        self.waited = False  # completed specifically through wait()


class CommSanitizer:
    """Request-lifecycle and deadlock checker for one :class:`World`."""

    def __init__(self, n_ranks: int):
        self.n_ranks = n_ranks
        self._lock = threading.Lock()
        self._records: list[_RequestRecord] = []
        self.findings: list[CommFinding] = []
        #: rank -> (source, tag, epoch) while blocked in a receive wait
        self._waiting: dict[int, tuple] = {}
        self._wait_epoch = [0] * n_ranks
        #: rank -> cycle signature awaiting second-tick confirmation
        self._candidates: dict[int, tuple] = {}

    def reset(self) -> None:
        """Drop all state (``World.run`` calls this per run)."""
        with self._lock:
            self._records.clear()
            self.findings.clear()
            self._waiting.clear()
            self._candidates.clear()
            self._wait_epoch = [0] * self.n_ranks

    def unsettled(self) -> list:
        """Records of posted requests nobody settled (post-abort audit).

        ``finalize`` never runs on failure paths (a torn-down run
        legitimately leaves unconsumed mailbox messages), so the recovery
        coordinator audits request lifecycles through this instead: a
        sanitizer-clean teardown settles every handle — completed,
        cancelled, or errored — before the failure surfaces.
        """
        with self._lock:
            return [rec for rec in self._records if not rec.settled]

    def n_records(self) -> int:
        """How many requests this run posted (settled or not)."""
        with self._lock:
            return len(self._records)

    # -- request lifecycle ---------------------------------------------------
    def on_post(self, req, rank: int, kind: str, detail: str, site: str,
                source: int | None = None, tag: int | None = None) -> None:
        rec = _RequestRecord(self, rank, kind, detail, site, source, tag)
        req._sanrec = rec
        with self._lock:
            self._records.append(rec)

    def on_wait(self, req) -> None:
        """A ``wait()`` completed (or returned an already-waited result)."""
        rec = req._sanrec
        with self._lock:
            if rec.waited:
                self.findings.append(CommFinding(
                    "double-wait", rec.rank,
                    f"wait() called again on an already-waited {rec.kind} "
                    f"({rec.detail}) posted at {rec.site}; reuse the first "
                    "wait()'s result instead of re-waiting the handle",
                ))
            rec.waited = True
            rec.settled = True

    def on_settle(self, req) -> None:
        """Request released without a completing wait (test()-completion,
        ``cancel()``, or an abort/timeout unwinding the wait)."""
        rec = req._sanrec
        with self._lock:
            rec.settled = True

    # -- deadlock detection --------------------------------------------------
    def enter_recv_wait(self, rank: int, source: int, tag: int) -> None:
        with self._lock:
            self._wait_epoch[rank] += 1
            self._waiting[rank] = (source, tag, self._wait_epoch[rank])

    def leave_recv_wait(self, rank: int) -> None:
        with self._lock:
            self._waiting.pop(rank, None)
            self._candidates.pop(rank, None)

    def check_deadlock(self, rank: int, mailboxes) -> str | None:
        """Called on each receive poll tick while ``rank`` is blocked.

        Returns a report string once a wait-for cycle through ``rank`` has
        been confirmed on two consecutive ticks with no message in flight
        on any cycle edge; the caller raises it as a CommError.  Only the
        lowest rank of the cycle reports, so one run yields one primary
        error.
        """
        with self._lock:
            waiting = dict(self._waiting)
        if rank not in waiting:
            return None
        # follow the wait-for chain until it leaves the waiting set or
        # revisits a rank; the revisited suffix is the candidate cycle
        chain: list[int] = []
        seen: dict[int, int] = {}
        r = rank
        while r in waiting and r not in seen:
            seen[r] = len(chain)
            chain.append(r)
            r = waiting[r][0]
        if r not in seen:
            return None  # chain escaped: somebody can still make progress
        cycle = chain[seen[r]:]
        if rank not in cycle or rank != min(cycle):
            with self._lock:
                self._candidates.pop(rank, None)
            return None
        # every edge must be truly dry: a message queued under the waited
        # tag (even one still paying simulated wire time) will complete it
        for waiter in cycle:
            source, tag, _ = waiting[waiter]
            box = mailboxes.get((source, waiter))
            if box is None or box.by_tag.get(tag):
                with self._lock:
                    self._candidates.pop(rank, None)
                return None
        signature = tuple((w, waiting[w]) for w in cycle)
        with self._lock:
            if self._candidates.get(rank) != signature:
                # first sighting: re-confirm on the next poll tick, after
                # every cycle member has had a chance to make progress
                self._candidates[rank] = signature
                return None
        edges = "; ".join(
            f"rank {w} blocked in recv from rank {waiting[w][0]} "
            f"(tag {waiting[w][1]})"
            for w in cycle
        )
        return (
            f"comm sanitizer: receive deadlock across ranks "
            f"{sorted(cycle)} — {edges}; no matching message is queued or "
            "in flight on any edge"
        )

    # -- teardown ------------------------------------------------------------
    def finding(self, kind: str, rank: int, message: str) -> None:
        with self._lock:
            self.findings.append(CommFinding(kind, rank, message))

    def finalize(self, mailboxes=None) -> list:
        """Collect end-of-run findings; returns the full findings list."""
        with self._lock:
            unsettled = [r for r in self._records if not r.settled]
            for rec in unsettled:
                self.findings.append(CommFinding(
                    "leaked-request", rec.rank,
                    f"{rec.kind} ({rec.detail}) posted at {rec.site} was "
                    "never waited, tested to completion, or cancelled",
                ))
        pending_recvs = [r for r in unsettled if r.kind == "irecv"]
        if mailboxes is not None:
            for (src, dst), box in sorted(mailboxes.items()):
                for tag in sorted(box.by_tag):
                    q = box.by_tag[tag]
                    if not q:
                        continue
                    n = len(q)
                    desc = (
                        f"{n} message(s) from rank {src} to rank {dst} "
                        f"under tag {tag} never received"
                    )
                    tag_mismatch = [
                        r for r in pending_recvs
                        if r.rank == dst and r.source == src and r.tag != tag
                    ]
                    src_mismatch = [
                        r for r in pending_recvs
                        if r.rank == dst and r.tag == tag and r.source != src
                    ]
                    if tag_mismatch:
                        r = tag_mismatch[0]
                        self.finding(
                            "tag-mismatch", dst,
                            f"{desc}, while the irecv posted at {r.site} is "
                            f"pending on tag {r.tag} — the tags do not match",
                        )
                    elif src_mismatch:
                        r = src_mismatch[0]
                        self.finding(
                            "source-mismatch", dst,
                            f"{desc}, while the irecv posted at {r.site} is "
                            f"pending on source rank {r.source} — the "
                            "sources do not match",
                        )
                    else:
                        self.finding("unconsumed-message", dst, desc)
        with self._lock:
            return list(self.findings)
