"""Power-spectrum emulation from ensemble designs (paper §VII).

The implications section motivates ensemble campaigns for "building
emulators": run simulations over a design of cosmological parameters, then
predict observables at new parameters by interpolation.  This module
implements the standard quadratic-polynomial-chaos emulator over a
Latin-hypercube design, with the linear P(k) as the (cheap, exact)
training oracle so accuracy is measurable — the same machinery applies
unchanged when the oracle is a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .background import Cosmology
from .power_spectrum import LinearPower


def latin_hypercube(
    n_samples: int, bounds: dict, rng: np.random.Generator | None = None
) -> dict:
    """Latin-hypercube design over named parameter bounds.

    Returns {name: array of n_samples values}; every 1/n quantile stratum
    of every parameter is sampled exactly once.
    """
    if n_samples < 1:
        raise ValueError("need at least one sample")
    rng = rng or np.random.default_rng(0)
    out = {}
    for name, (lo, hi) in bounds.items():
        strata = (np.arange(n_samples) + rng.uniform(size=n_samples)) / n_samples
        rng.shuffle(strata)
        out[name] = lo + strata * (hi - lo)
    return out


def _features(theta: np.ndarray) -> np.ndarray:
    """Quadratic polynomial features [1, x_i, x_i x_j (i<=j)]."""
    theta = np.atleast_2d(theta)
    n, p = theta.shape
    cols = [np.ones(n)]
    for i in range(p):
        cols.append(theta[:, i])
    for i in range(p):
        for j in range(i, p):
            cols.append(theta[:, i] * theta[:, j])
    return np.stack(cols, axis=1)


@dataclass
class PowerSpectrumEmulator:
    """Quadratic response-surface emulator for log P(k; theta).

    Trained per k-bin by least squares on a design of parameter vectors;
    parameters are standardized internally for conditioning.
    """

    param_names: tuple
    k_grid: np.ndarray
    coeffs: np.ndarray  # (n_features, n_k)
    mean: np.ndarray
    scale: np.ndarray

    def _standardize(self, theta: np.ndarray) -> np.ndarray:
        return (np.atleast_2d(theta) - self.mean) / self.scale

    def predict(self, **params) -> np.ndarray:
        """P(k) on the training k grid at new parameter values."""
        missing = set(self.param_names) - set(params)
        if missing:
            raise ValueError(f"missing parameters: {sorted(missing)}")
        theta = np.array([[params[p] for p in self.param_names]])
        x = _features(self._standardize(theta))
        return np.exp(x @ self.coeffs)[0]


def train_power_emulator(
    design: dict,
    k_grid: np.ndarray,
    oracle=None,
    base_cosmo: Cosmology | None = None,
) -> PowerSpectrumEmulator:
    """Fit the emulator over a parameter design.

    ``design`` maps parameter names (Cosmology field names, e.g. sigma8,
    omega_m) to sampled values.  ``oracle(cosmo, k) -> P(k)`` defaults to
    the linear power spectrum.
    """
    base_cosmo = base_cosmo or Cosmology()
    names = tuple(sorted(design))
    n_samples = len(next(iter(design.values())))
    theta = np.stack([np.asarray(design[n]) for n in names], axis=1)

    if oracle is None:
        def oracle(cosmo, k):
            return LinearPower(cosmo)(k)

    import dataclasses

    y = np.empty((n_samples, len(k_grid)))
    for s in range(n_samples):
        overrides = {n: float(theta[s, i]) for i, n in enumerate(names)}
        cosmo = dataclasses.replace(base_cosmo, **overrides)
        y[s] = np.log(oracle(cosmo, k_grid))

    mean = theta.mean(axis=0)
    scale = np.maximum(theta.std(axis=0), 1e-12)
    x = _features((theta - mean) / scale)
    if n_samples < x.shape[1]:
        raise ValueError(
            f"need >= {x.shape[1]} design points for a quadratic fit in "
            f"{len(names)} parameters, got {n_samples}"
        )
    coeffs, *_ = np.linalg.lstsq(x, y, rcond=None)
    return PowerSpectrumEmulator(
        param_names=names, k_grid=np.asarray(k_grid), coeffs=coeffs,
        mean=mean, scale=scale,
    )
