"""Cosmological initial conditions: Gaussian random fields and Zel'dovich/2LPT.

Generates a periodic Gaussian density field with a target linear power
spectrum, then displaces a uniform particle lattice using first- (Zel'dovich)
or second-order Lagrangian perturbation theory.  Positions are comoving
Mpc/h; velocities are comoving peculiar velocities in km/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .background import Cosmology
from .power_spectrum import LinearPower


def fourier_grid(n: int, box: float):
    """Return (kx, ky, kz, k2) wavevector component grids for an n^3 box.

    Wavenumbers are in h/Mpc for a box side length ``box`` in Mpc/h.  The kz
    axis uses the real-FFT halved layout.
    """
    dk = 2.0 * np.pi / box
    k1 = np.fft.fftfreq(n, d=1.0 / n) * dk
    kz = np.fft.rfftfreq(n, d=1.0 / n) * dk
    kx = k1[:, None, None]
    ky = k1[None, :, None]
    kzg = kz[None, None, :]
    k2 = kx**2 + ky**2 + kzg**2
    return kx, ky, kzg, k2


def gaussian_field(
    n: int, box: float, power: LinearPower, a: float, seed: int = 0
) -> np.ndarray:
    """Real-space Gaussian density contrast delta(x) with spectrum P(k, a)."""
    rng = np.random.default_rng(seed)
    _, _, _, k2 = fourier_grid(n, box)
    k = np.sqrt(k2)
    pk = np.zeros_like(k)
    nz = k > 0
    pk[nz] = power(k[nz], a)
    # variance per mode for an rfft-layout field of volume V: P(k)/V * n^6
    amp = np.sqrt(pk / box**3) * n**3
    re = rng.standard_normal(k.shape)
    im = rng.standard_normal(k.shape)
    delta_k = amp * (re + 1j * im) / np.sqrt(2.0)
    delta_k[0, 0, 0] = 0.0
    delta = np.fft.irfftn(delta_k, s=(n, n, n), axes=(0, 1, 2))
    return delta


def _displacement_from_potential(delta_k, kx, ky, kz, k2, n):
    """Zel'dovich displacement field psi = -grad(phi), phi_k = -delta_k/k^2."""
    inv_k2 = np.zeros_like(k2)
    nz = k2 > 0
    inv_k2[nz] = 1.0 / k2[nz]
    psi = []
    for kc in (kx, ky, kz):
        comp_k = 1j * kc * inv_k2 * delta_k
        psi.append(np.fft.irfftn(comp_k, s=(n, n, n), axes=(0, 1, 2)))
    return psi


@dataclass
class InitialConditions:
    """Particle initial conditions on a uniform lattice.

    Attributes
    ----------
    positions : (N, 3) comoving positions in Mpc/h
    velocities : (N, 3) comoving peculiar velocities in km/s
    particle_mass : mass per particle in Msun/h
    """

    positions: np.ndarray
    velocities: np.ndarray
    particle_mass: float
    box: float
    a_init: float


def zeldovich_ics(
    n_per_dim: int,
    box: float,
    cosmo: Cosmology,
    a_init: float,
    seed: int = 0,
    order: int = 1,
    power: LinearPower | None = None,
) -> InitialConditions:
    """Generate Zel'dovich (order=1) or 2LPT (order=2) initial conditions.

    Particles start on an ``n_per_dim``^3 lattice in a periodic ``box``
    (Mpc/h) and are displaced by the linear field realized at ``a_init``.
    """
    if order not in (1, 2):
        raise ValueError(f"LPT order must be 1 or 2, got {order}")
    power = power or LinearPower(cosmo)
    n = n_per_dim

    kx, ky, kz, k2 = fourier_grid(n, box)
    delta = gaussian_field(n, box, power, a_init, seed=seed)
    delta_k = np.fft.rfftn(delta)
    psi = _displacement_from_potential(delta_k, kx, ky, kz, k2, n)

    # lattice positions
    spacing = box / n
    coords = (np.arange(n) + 0.5) * spacing
    gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")

    f1 = cosmo.growth_rate(a_init)
    h_a = cosmo.hubble(a_init)  # km/s/Mpc (h-units cancel with Mpc/h lengths)

    disp = [p.copy() for p in psi]
    vel_fac1 = a_init * h_a * f1

    if order == 2:
        # 2LPT: phi2 sourced by sum_{i<j} (phi1,ii phi1,jj - phi1,ij^2)
        inv_k2 = np.zeros_like(k2)
        nz = k2 > 0
        inv_k2[nz] = 1.0 / k2[nz]
        phi1_k = -delta_k * inv_k2
        kvec = (kx, ky, kz)
        dij = {}
        for i in range(3):
            for j in range(i, 3):
                comp = -kvec[i] * kvec[j] * phi1_k
                dij[(i, j)] = np.fft.irfftn(comp, s=(n, n, n), axes=(0, 1, 2))
        src = (
            dij[(0, 0)] * dij[(1, 1)]
            + dij[(0, 0)] * dij[(2, 2)]
            + dij[(1, 1)] * dij[(2, 2)]
            - dij[(0, 1)] ** 2
            - dij[(0, 2)] ** 2
            - dij[(1, 2)] ** 2
        )
        src_k = np.fft.rfftn(src)
        psi2 = _displacement_from_potential(src_k, kx, ky, kz, k2, n)
        d1 = cosmo.growth_factor(a_init)
        d2_frac = -3.0 / 7.0 * d1  # D2 ≈ -3/7 D1^2; psi2 carries one D1 already
        f2 = 2.0 * f1  # dlnD2/dlna ≈ 2 f1 for LCDM
        vel_fac2 = a_init * h_a * f2
        for c in range(3):
            disp[c] = disp[c] + d2_frac * psi2[c]

    positions = np.stack(
        [
            np.mod(gx + disp[0], box),
            np.mod(gy + disp[1], box),
            np.mod(gz + disp[2], box),
        ],
        axis=-1,
    ).reshape(-1, 3)

    vel = np.stack(
        [vel_fac1 * psi[0], vel_fac1 * psi[1], vel_fac1 * psi[2]], axis=-1
    ).reshape(-1, 3)
    if order == 2:
        vel2 = np.stack(
            [
                vel_fac2 * d2_frac * psi2[0],
                vel_fac2 * d2_frac * psi2[1],
                vel_fac2 * d2_frac * psi2[2],
            ],
            axis=-1,
        ).reshape(-1, 3)
        vel = vel + vel2

    total_mass = cosmo.rho_mean0 * box**3
    pmass = total_mass / n**3
    return InitialConditions(
        positions=positions.astype(np.float64),
        velocities=vel.astype(np.float64),
        particle_mass=float(pmass),
        box=box,
        a_init=a_init,
    )
