"""Cosmology substrate: background expansion, linear power, initial conditions."""

from .background import PLANCK18, Cosmology
from .emulator import (
    PowerSpectrumEmulator,
    latin_hypercube,
    train_power_emulator,
)
from .initial_conditions import InitialConditions, gaussian_field, zeldovich_ics
from .power_spectrum import LinearPower, eisenstein_hu_nowiggle

__all__ = [
    "PLANCK18",
    "Cosmology",
    "PowerSpectrumEmulator",
    "InitialConditions",
    "LinearPower",
    "eisenstein_hu_nowiggle",
    "gaussian_field",
    "latin_hypercube",
    "train_power_emulator",
    "zeldovich_ics",
]
