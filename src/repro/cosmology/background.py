"""FLRW background cosmology.

Flat-universe expansion history with matter, radiation, and a cosmological
constant (or w0/wa dark energy).  Provides the mappings between scale factor,
redshift, cosmic time, and comoving distance, plus the linear growth factor
used by the initial-condition generator and the power-spectrum growth tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import integrate

from ..constants import GYR_S, H100_S, RHO_CRIT_COSMO


@dataclass(frozen=True)
class Cosmology:
    """A flat FLRW cosmology.

    Parameters mirror the standard CRK-HACC/Planck-like parameterization.
    ``omega_m`` includes baryons; flatness fixes ``omega_lambda``.
    """

    omega_m: float = 0.31
    omega_b: float = 0.049
    h: float = 0.6766
    sigma8: float = 0.8102
    n_s: float = 0.9665
    omega_r: float = 8.6e-5
    w0: float = -1.0
    wa: float = 0.0
    t_cmb: float = 2.7255

    omega_lambda: float = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "omega_lambda", 1.0 - self.omega_m - self.omega_r
        )

    # --- expansion ---------------------------------------------------------
    def e_of_a(self, a):
        """Dimensionless Hubble rate E(a) = H(a)/H0."""
        a = np.asarray(a, dtype=np.float64)
        de = self.omega_lambda * a ** (-3.0 * (1.0 + self.w0 + self.wa)) * np.exp(
            -3.0 * self.wa * (1.0 - a)
        )
        return np.sqrt(self.omega_m / a**3 + self.omega_r / a**4 + de)

    def hubble(self, a):
        """H(a) in km/s/Mpc."""
        return 100.0 * self.h * self.e_of_a(a)

    def omega_m_of_a(self, a):
        """Matter density parameter at scale factor a."""
        a = np.asarray(a, dtype=np.float64)
        return self.omega_m / a**3 / self.e_of_a(a) ** 2

    @property
    def rho_crit0(self) -> float:
        """Critical density today in Msun h^2 / Mpc^3 (comoving h-units)."""
        return RHO_CRIT_COSMO

    @property
    def rho_mean0(self) -> float:
        """Mean comoving matter density in Msun h^2/Mpc^3."""
        return self.omega_m * RHO_CRIT_COSMO

    # --- time --------------------------------------------------------------
    def age(self, a=1.0):
        """Cosmic time at scale factor ``a`` in Gyr."""
        scalar = np.isscalar(a)
        avals = np.atleast_1d(np.asarray(a, dtype=np.float64))
        h0 = self.h * H100_S  # H0 in 1/s
        out = np.empty_like(avals)
        for i, ai in enumerate(avals):
            val, _ = integrate.quad(
                lambda x: 1.0 / (x * self.e_of_a(x)), 1.0e-9, ai, limit=200
            )
            out[i] = val / h0 / GYR_S
        return float(out[0]) if scalar else out

    def lookback_time(self, z):
        """Lookback time to redshift z in Gyr."""
        return self.age(1.0) - self.age(1.0 / (1.0 + np.asarray(z, dtype=np.float64)))

    # --- distances -----------------------------------------------------------
    def comoving_distance(self, z):
        """Comoving distance to redshift z in Mpc/h."""
        scalar = np.isscalar(z)
        zvals = np.atleast_1d(np.asarray(z, dtype=np.float64))
        out = np.empty_like(zvals)
        for i, zi in enumerate(zvals):
            val, _ = integrate.quad(
                lambda zz: 1.0 / self.e_of_a(1.0 / (1.0 + zz)), 0.0, zi, limit=200
            )
            out[i] = val * 2997.92458  # c/H0 in Mpc/h units (c/100 km/s)
        return float(out[0]) if scalar else out

    # --- growth --------------------------------------------------------------
    def growth_factor(self, a, normalized: bool = True):
        """Linear growth factor D(a) (normalized to D(1)=1 by default).

        Uses the standard integral solution for a flat universe with
        pressureless matter and smooth dark energy:
            D(a) ∝ H(a) ∫_0^a da' / (a' E(a'))^3
        """
        scalar = np.isscalar(a)
        avals = np.atleast_1d(np.asarray(a, dtype=np.float64))

        def unnormalized(ai: float) -> float:
            val, _ = integrate.quad(
                lambda x: 1.0 / (x * self.e_of_a(x)) ** 3, 1.0e-9, ai, limit=200
            )
            return 2.5 * self.omega_m * self.e_of_a(ai) * val

        out = np.array([unnormalized(ai) for ai in avals])
        if normalized:
            out = out / unnormalized(1.0)
        return float(out[0]) if scalar else out

    def growth_rate(self, a):
        """Logarithmic growth rate f = dlnD/dlna (finite difference)."""
        a = np.asarray(a, dtype=np.float64)
        eps = 1.0e-4
        d_hi = self.growth_factor(a * (1 + eps), normalized=False)
        d_lo = self.growth_factor(a * (1 - eps), normalized=False)
        return (np.log(d_hi) - np.log(d_lo)) / (2.0 * eps)

    # --- conversions -----------------------------------------------------------
    @staticmethod
    def a_of_z(z):
        return 1.0 / (1.0 + np.asarray(z, dtype=np.float64))

    @staticmethod
    def z_of_a(a):
        return 1.0 / np.asarray(a, dtype=np.float64) - 1.0


PLANCK18 = Cosmology()
"""Planck-2018-like fiducial cosmology (the Frontier-E family of parameters)."""
