"""Linear matter power spectrum (Eisenstein & Hu 1998 transfer function).

Implements the zero-baryon-oscillation ("no-wiggle") and full EH98 fitting
forms for the CDM+baryon transfer function, a sigma8 normalization, and the
linear power spectrum P(k, a) used to seed initial conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import integrate

from .background import Cosmology


def _tophat_window(kr):
    """Fourier transform of the real-space spherical top-hat window."""
    kr = np.asarray(kr, dtype=np.float64)
    out = np.empty_like(kr)
    small = kr < 1.0e-4
    # series expansion avoids catastrophic cancellation at small kr
    out[small] = 1.0 - kr[small] ** 2 / 10.0
    big = ~small
    out[big] = 3.0 * (np.sin(kr[big]) - kr[big] * np.cos(kr[big])) / kr[big] ** 3
    return out


def eisenstein_hu_nowiggle(k, cosmo: Cosmology):
    """EH98 no-wiggle transfer function T(k); k in h/Mpc."""
    k = np.asarray(k, dtype=np.float64)
    h = cosmo.h
    om = cosmo.omega_m * h**2
    ob = cosmo.omega_b * h**2
    theta = cosmo.t_cmb / 2.7
    fb = cosmo.omega_b / cosmo.omega_m

    # sound horizon approximation (EH98 eq. 26), Mpc
    s = 44.5 * np.log(9.83 / om) / np.sqrt(1.0 + 10.0 * ob**0.75)
    # alpha_gamma (eq. 31)
    a_gamma = 1.0 - 0.328 * np.log(431.0 * om) * fb + 0.38 * np.log(22.3 * om) * fb**2

    k_mpc = k * h  # physical 1/Mpc
    gamma_eff = cosmo.omega_m * h * (
        a_gamma + (1.0 - a_gamma) / (1.0 + (0.43 * k_mpc * s) ** 4)
    )
    q = k * theta**2 / gamma_eff
    l0 = np.log(2.0 * np.e + 1.8 * q)
    c0 = 14.2 + 731.0 / (1.0 + 62.5 * q)
    return l0 / (l0 + c0 * q**2)


@dataclass
class LinearPower:
    """Linear matter power spectrum P(k, a) in (Mpc/h)^3, k in h/Mpc."""

    cosmo: Cosmology

    def __post_init__(self) -> None:
        self._norm = 1.0
        self._norm = (self.cosmo.sigma8 / self.sigma_r(8.0)) ** 2

    def transfer(self, k):
        return eisenstein_hu_nowiggle(k, self.cosmo)

    def __call__(self, k, a: float = 1.0):
        """P(k) at scale factor a, in (Mpc/h)^3."""
        k = np.asarray(k, dtype=np.float64)
        d = self.cosmo.growth_factor(a)
        pk = self._norm * k**self.cosmo.n_s * self.transfer(k) ** 2
        return pk * d**2

    def sigma_r(self, r: float, a: float = 1.0) -> float:
        """RMS linear density fluctuation in spheres of radius r [Mpc/h]."""

        def integrand(lnk):
            k = np.exp(lnk)
            return k**3 * self(k, a) * _tophat_window(k * r) ** 2 / (2.0 * np.pi**2)

        val, _ = integrate.quad(integrand, np.log(1e-5), np.log(1e3), limit=400)
        return float(np.sqrt(val))

    def sigma8_at(self, a: float = 1.0) -> float:
        return self.sigma_r(8.0, a)
