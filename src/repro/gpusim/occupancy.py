"""GPU occupancy model: registers per thread -> resident warps -> efficiency.

Quantifies the mechanism behind warp splitting's payoff (paper §IV-B2):
interaction kernels are register-pressure limited, so cutting per-thread
registers raises occupancy, which hides memory and pipeline latency.  The
model follows the standard occupancy calculation — a register file of
fixed size per compute unit divided among resident warps — plus a
saturating latency-hiding curve mapping occupancy to achieved efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .device import GPUSpec


@dataclass(frozen=True)
class OccupancyModel:
    """Register-file occupancy for one compute unit (CU/SM/Xe-core)."""

    registers_per_cu: int = 65536  # 64k 32-bit registers (MI250X/H100 class)
    max_warps_per_cu: int = 32
    #: occupancy at which latency is fully hidden for compute-bound kernels
    saturation_occupancy: float = 0.25

    def resident_warps(self, registers_per_thread: int, warp_size: int) -> int:
        """Warps that fit in the register file (allocation granularity 8)."""
        if registers_per_thread < 1:
            raise ValueError("registers_per_thread must be >= 1")
        regs = 8 * int(np.ceil(registers_per_thread / 8.0))
        per_warp = regs * warp_size
        return int(min(self.registers_per_cu // per_warp, self.max_warps_per_cu))

    def occupancy(self, registers_per_thread: int, warp_size: int) -> float:
        """Resident warps / maximum warps, in [0, 1]."""
        return self.resident_warps(registers_per_thread, warp_size) / float(
            self.max_warps_per_cu
        )

    def latency_hiding_efficiency(self, occupancy: float) -> float:
        """Fraction of issue slots kept busy at a given occupancy.

        Saturating curve: eff = min(1, occ / occ_sat).  Below saturation
        the CU starves on latency; above it extra warps add nothing —
        the standard shape of occupancy-vs-throughput measurements.
        """
        return float(min(1.0, max(occupancy, 0.0) / self.saturation_occupancy))

    def kernel_efficiency(
        self, registers_per_thread: int, device: GPUSpec
    ) -> float:
        """End-to-end efficiency factor for a kernel on a device."""
        occ = self.occupancy(registers_per_thread, device.warp_size)
        return self.latency_hiding_efficiency(occ)


def active_compaction_stats(
    leaf_counts, leaf_active_counts, warp_size: int
) -> dict:
    """Warp-issue accounting: predicated vs compacted mixed-rung tiles.

    ``leaf_counts[l]``/``leaf_active_counts[l]`` are total and active
    i-particle counts per leaf.  Predication issues every i-tile of every
    active leaf (``ceil(n/half)`` tiles, inactive lanes masked); compaction
    issues only ``ceil(n_active/half)`` dense tiles per leaf — the
    paper's mixed-rung force kernels.  Returns issued half-warp tile
    counts, mean issued-lane occupancy of each scheme, and the issue
    reduction factor the warp scheduler sees.
    """
    half = max(warp_size // 2, 1)
    totals = np.asarray(leaf_counts, dtype=np.int64)
    actives = np.asarray(leaf_active_counts, dtype=np.int64)
    if totals.shape != actives.shape:
        raise ValueError("leaf_counts and leaf_active_counts must align")
    if np.any(actives > totals):
        raise ValueError("active counts exceed leaf populations")
    live = actives > 0  # fully inactive leaves are skipped by both schemes
    tiles_pred = int(np.ceil(totals[live] / half).sum())
    tiles_comp = int(np.ceil(actives[live] / half).sum())
    n_active = int(actives.sum())
    return {
        "issued_tiles_predicated": tiles_pred,
        "issued_tiles_compacted": tiles_comp,
        "lane_occupancy_predicated": (
            n_active / (tiles_pred * half) if tiles_pred else 1.0
        ),
        "lane_occupancy_compacted": (
            n_active / (tiles_comp * half) if tiles_comp else 1.0
        ),
        "issue_reduction": tiles_pred / max(tiles_comp, 1),
    }


def warp_splitting_occupancy_gain(
    kernel, device: GPUSpec, model: OccupancyModel | None = None
) -> dict:
    """Occupancy and efficiency with and without warp splitting.

    ``kernel`` is a :class:`~repro.gpusim.warp.SeparablePairKernel`; the
    register estimates for the split and naive variants drive the standard
    occupancy calculation.
    """
    model = model or OccupancyModel()
    out = {}
    for split in (False, True):
        regs = kernel.register_estimate(split)
        occ = model.occupancy(regs, device.warp_size)
        out["split" if split else "naive"] = {
            "registers": regs,
            "resident_warps": model.resident_warps(regs, device.warp_size),
            "occupancy": occ,
            "efficiency": model.latency_hiding_efficiency(occ),
        }
    out["efficiency_gain"] = (
        out["split"]["efficiency"] / max(out["naive"]["efficiency"], 1e-12)
    )
    return out
