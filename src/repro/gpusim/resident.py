"""GPU-resident solver: execute a whole interaction list on the device.

CRK-HACC pushes the entire overloaded rank to the GPU once per PM step and
keeps it there — every short-range operator runs device-side, and only
results return to the host (paper Section IV-A, ">90% of solver time on
the GPU").  This module reproduces that execution model end to end: a
host->device upload (counted), warp-split execution of every leaf-leaf
pair in an interaction list (lane-accurate, bit-reproducible), and a
device->host download, with rocprof-style counters and a utilization
estimate for the whole pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..observe.trace import NullTracer
from ..tree.interaction_lists import InteractionList, active_leaf_mask
from ..tree.kdtree import LeafSet
from .counters import OpCounters
from .device import GPUSpec
from .warp import SeparablePairKernel, execute_leaf_pair_warpsplit

_NULL_TRACER = NullTracer()


@dataclass
class ResidentPassResult:
    """Output of one device-resident interaction-list pass."""

    phi: np.ndarray  # accumulated per particle
    counters: OpCounters
    h2d_bytes: int
    d2h_bytes: int
    n_leaf_pairs: int

    def utilization(self, device: GPUSpec, wall_seconds: float) -> float:
        """Measured FLOPs / (peak rate x wall time), the paper's metric."""
        if wall_seconds <= 0:
            return 0.0
        return self.counters.flops / (device.peak_fp32_flops * wall_seconds)


class GPUResidentSolver:
    """Executes short-range kernels over tree interaction lists on a
    simulated device, keeping particle state 'resident' between passes."""

    def __init__(self, device: GPUSpec, tracer=None, sanitizer=None):
        self.device = device
        self._resident: dict | None = None
        self.total_h2d_bytes = 0
        self.total_d2h_bytes = 0
        #: cumulative device counters across every launch; per-launch
        #: deltas (``copy()`` before / ``delta()`` after) are attached as
        #: ``gpu/kernel_launch`` span args when tracing
        self.total_counters = OpCounters()
        self.tracer = tracer if tracer is not None else _NULL_TRACER
        #: optional :class:`~repro.sanitize.lanes.LaneSanitizer` checking
        #: every issued leaf pair for non-atomic lane write collisions
        self.sanitizer = sanitizer

    # -- residency ------------------------------------------------------------
    def upload(self, pos: np.ndarray, state: dict) -> int:
        """Host->device transfer of the full particle state (once per PM
        step in the CRK-HACC design).  Returns bytes moved."""
        with self.tracer.span("gpu/upload", cat="gpu") as sp:
            pos = np.asarray(pos, dtype=np.float64)
            nbytes = pos.nbytes + sum(
                np.asarray(v).nbytes for v in state.values()
            )
            self._resident = {"pos": pos, "state": dict(state)}
            self.total_h2d_bytes += nbytes
            sp.set_args(bytes=nbytes)
        return nbytes

    @property
    def is_resident(self) -> bool:
        return self._resident is not None

    def update_field(self, name: str, values: np.ndarray) -> None:
        """Device-side field update (no host transfer) — how subcycle
        results feed the next kernel without leaving the GPU."""
        if not self.is_resident:
            raise RuntimeError("no resident state; call upload() first")
        self._resident["state"][name] = np.asarray(values)

    # -- execution ---------------------------------------------------------------
    def run_interaction_list(
        self,
        kernel: SeparablePairKernel,
        leaves: LeafSet,
        ilist: InteractionList,
        active_leaves: np.ndarray | None = None,
        download: bool = True,
        active_particles: np.ndarray | None = None,
        compact: bool = False,
    ) -> ResidentPassResult:
        """Execute ``kernel`` over every (active) leaf pair of ``ilist``.

        For one-sided (gather) kernels each ordered pair is evaluated as
        listed.  Only pairs whose i-leaf is active run — the adaptive-
        timestep filtering of Section IV-B1.  ``active_particles``
        (boolean mask or index array) refines that to mixed-rung lane
        activity inside each i-leaf: ``compact=False`` predicates inactive
        lanes off inside issued tiles, ``compact=True`` gathers active
        particles into dense tiles first (the paper's mixed-rung force
        kernels).  Both modes evaluate the same pair set; compaction
        repacks lanes and so agrees with predication to roundoff rather
        than bit-for-bit (see ``execute_leaf_pair_warpsplit``).

        When tracing, each call is one ``gpu/kernel_launch`` span carrying
        the launch's OpCounters delta (FLOPs, traffic, lane occupancy) —
        the rocprof-per-dispatch view the §V-B attribution reads back.
        """
        with self.tracer.span("gpu/kernel_launch", cat="gpu",
                              kernel=kernel.name) as sp:
            before = self.total_counters.copy()
            result = self._execute_pass(
                kernel, leaves, ilist, active_leaves=active_leaves,
                download=download, active_particles=active_particles,
                compact=compact,
            )
            self.total_counters.merge(result.counters)
            launch = self.total_counters.delta(before)
            sp.set_args(counters=launch.snapshot(),
                        n_leaf_pairs=result.n_leaf_pairs,
                        lane_efficiency=launch.lane_efficiency)
        return result

    def _execute_pass(
        self,
        kernel: SeparablePairKernel,
        leaves: LeafSet,
        ilist: InteractionList,
        active_leaves: np.ndarray | None = None,
        download: bool = True,
        active_particles: np.ndarray | None = None,
        compact: bool = False,
    ) -> ResidentPassResult:
        if not self.is_resident:
            raise RuntimeError("no resident state; call upload() first")
        pos = self._resident["pos"]
        state = self._resident["state"]
        n = len(pos)
        phi = np.zeros(n)
        counters = OpCounters()

        particle_active = None
        if active_particles is not None:
            particle_active = np.asarray(active_particles)
            if particle_active.dtype != bool:
                mask = np.zeros(n, dtype=bool)
                mask[particle_active] = True
                particle_active = mask
            if active_leaves is None:
                active_leaves = active_leaf_mask(leaves, particle_active)

        li = ilist.leaf_i
        lj = ilist.leaf_j
        if active_leaves is not None:
            keep = active_leaves[li]
            li, lj = li[keep], lj[keep]

        for a, b in zip(li, lj):
            idx_i = leaves.particles_in_leaf(int(a))
            idx_j = leaves.particles_in_leaf(int(b))
            if self.sanitizer is not None:
                self.sanitizer.check_leaf_pair(
                    leaves, int(a), int(b), idx_i, idx_j,
                    kernel_name=kernel.name,
                    two_sided=bool(kernel.reaction),
                )
            si = {k: np.asarray(state[k])[idx_i] for k in kernel.fields_i}
            sj = {k: np.asarray(state[k])[idx_j] for k in kernel.fields_j}
            phi_i, phi_j, _ = execute_leaf_pair_warpsplit(
                kernel, pos[idx_i], si, pos[idx_j], sj, self.device, counters,
                active_i=(
                    None if particle_active is None else particle_active[idx_i]
                ),
                compact=compact,
            )
            # device-atomic accumulation model; lane-collision safety of
            # the per-lane write-backs is the LaneSanitizer's contract
            np.add.at(phi, idx_i, phi_i)  # sanitize: allow-scatter
            if phi_j is not None:
                np.add.at(phi, idx_j, phi_j)  # sanitize: allow-scatter

        d2h = phi.nbytes if download else 0
        self.total_d2h_bytes += d2h
        return ResidentPassResult(
            phi=phi,
            counters=counters,
            h2d_bytes=0,
            d2h_bytes=d2h,
            n_leaf_pairs=len(li),
        )

    def transfer_fraction(self, solver_bytes_touched: int) -> float:
        """Host-transfer bytes / device bytes touched: small when the
        GPU-resident design is working (the >90% on-device claim)."""
        total_host = self.total_h2d_bytes + self.total_d2h_bytes
        if solver_bytes_touched <= 0:
            return float("inf")
        return total_host / solver_bytes_touched
