"""GPU device models (paper Table I and Section V-A).

Describes the three GPU architectures the paper evaluates: AMD MI250X (one
GCD), Intel Data Center GPU Max 1550 (one tile), and NVIDIA H100 SXM5.
Peak FP32 rates are the unpacked vector numbers the paper uses for its
device-utilization denominator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """One GPU compute unit as the solver sees it (a GCD / tile / device)."""

    name: str
    vendor: str
    peak_fp32_tflops: float  # theoretical peak, FP32 vector
    warp_size: int  # threads per warp/wavefront/sub-group
    hbm_gb: float
    mem_bw_tbps: float  # HBM bandwidth, TB/s
    max_registers_per_thread: int = 255
    lanes_fp32_per_clock: int = 128

    @property
    def peak_fp32_flops(self) -> float:
        return self.peak_fp32_tflops * 1.0e12

    def roofline_flops(self, arithmetic_intensity: float) -> float:
        """Attainable FLOP/s at a given arithmetic intensity (FLOPs/byte)."""
        if arithmetic_intensity <= 0:
            return 0.0
        return min(
            self.peak_fp32_flops,
            arithmetic_intensity * self.mem_bw_tbps * 1.0e12,
        )


# Paper Table I (per-GCD / per-tile / per-device peak FP32).  Wavefront
# widths per the paper's footnote: 64 on AMD, 32 on NVIDIA and Intel.
MI250X_GCD = GPUSpec(
    name="AMD MI250X (per GCD)",
    vendor="AMD",
    peak_fp32_tflops=23.9,
    warp_size=64,
    hbm_gb=64.0,
    mem_bw_tbps=1.6,
)

PVC_TILE = GPUSpec(
    name="Intel Max 1550 (per tile)",
    vendor="Intel",
    peak_fp32_tflops=22.5,
    warp_size=32,
    hbm_gb=64.0,
    mem_bw_tbps=1.6,
)

H100_SXM5 = GPUSpec(
    name="NVIDIA SXM5 H100",
    vendor="NVIDIA",
    peak_fp32_tflops=66.9,
    warp_size=32,
    hbm_gb=80.0,
    mem_bw_tbps=3.35,
)

TABLE_I = [MI250X_GCD, PVC_TILE, H100_SXM5]


def table_i_rows() -> list[tuple[str, float]]:
    """(device, peak single precision TFLOPs) rows exactly as in Table I."""
    return [(d.name, d.peak_fp32_tflops) for d in TABLE_I]
