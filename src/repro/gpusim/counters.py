"""rocprof/ncu/GTPin-style operation counters (paper Section V-B).

FLOPs follow the paper's convention: FMA counts as two operations,
transcendental operations count as one.  Memory traffic, warp shuffles,
and atomics are tracked separately so the warp-splitting ablation can
compare traffic profiles, not just FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OpCounters:
    """Accumulated device operation counts for one kernel / run."""

    fp32_add: int = 0
    fp32_mul: int = 0
    fp32_fma: int = 0
    fp32_transcendental: int = 0
    global_load_bytes: int = 0
    global_store_bytes: int = 0
    shuffles: int = 0
    atomics: int = 0
    active_lane_ops: int = 0  # lanes doing useful work
    issued_lane_ops: int = 0  # lanes issued (incl. padding divergence)

    @property
    def flops(self) -> int:
        """Paper convention: FMA = 2 ops, transcendental = 1 op."""
        return (
            self.fp32_add
            + self.fp32_mul
            + 2 * self.fp32_fma
            + self.fp32_transcendental
        )

    @property
    def bytes_moved(self) -> int:
        return self.global_load_bytes + self.global_store_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of global memory traffic."""
        if self.bytes_moved == 0:
            return float("inf")
        return self.flops / self.bytes_moved

    @property
    def lane_efficiency(self) -> float:
        """Useful / issued lanes (1.0 = no divergence or padding waste)."""
        if self.issued_lane_ops == 0:
            return 1.0
        return self.active_lane_ops / self.issued_lane_ops

    def merge(self, other: "OpCounters") -> "OpCounters":
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))
        return self

    def copy(self) -> "OpCounters":
        """Independent snapshot of the current counts."""
        return OpCounters(
            **{f: getattr(self, f) for f in self.__dataclass_fields__}
        )

    def delta(self, baseline: "OpCounters") -> "OpCounters":
        """Counts accumulated since ``baseline`` (per-launch attribution:
        snapshot with :meth:`copy` before a launch, ``delta`` after)."""
        return OpCounters(**{
            f: getattr(self, f) - getattr(baseline, f)
            for f in self.__dataclass_fields__
        })

    def snapshot(self) -> dict:
        d = {f: getattr(self, f) for f in self.__dataclass_fields__}
        d["flops"] = self.flops
        return d
