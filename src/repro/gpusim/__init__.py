"""Simulated GPU execution: devices, warp splitting, counters, utilization."""

from .counters import OpCounters
from .device import H100_SXM5, MI250X_GCD, PVC_TILE, TABLE_I, GPUSpec, table_i_rows
from .occupancy import (
    OccupancyModel,
    active_compaction_stats,
    warp_splitting_occupancy_gain,
)
from .resident import GPUResidentSolver, ResidentPassResult
from .kernels import (
    SOLVER_KERNEL_MIX,
    VENDOR_PEAK_FACTOR,
    KernelProfile,
    measured_flop_rate,
    peak_kernel,
    peak_utilization,
    solver_flops_per_particle_step,
    sustained_utilization,
)
from .warp import (
    SeparablePairKernel,
    coulomb_kernel,
    crk_coefficient_kernel,
    execute_leaf_pair_naive,
    execute_leaf_pair_warpsplit,
    gravity_potential_kernel,
    hydro_force_like_kernel,
    lennard_jones_kernel,
    sph_density_kernel,
)

__all__ = [
    "H100_SXM5",
    "MI250X_GCD",
    "PVC_TILE",
    "SOLVER_KERNEL_MIX",
    "TABLE_I",
    "VENDOR_PEAK_FACTOR",
    "GPUSpec",
    "KernelProfile",
    "GPUResidentSolver",
    "OccupancyModel",
    "OpCounters",
    "ResidentPassResult",
    "SeparablePairKernel",
    "active_compaction_stats",
    "coulomb_kernel",
    "crk_coefficient_kernel",
    "execute_leaf_pair_naive",
    "execute_leaf_pair_warpsplit",
    "gravity_potential_kernel",
    "hydro_force_like_kernel",
    "lennard_jones_kernel",
    "measured_flop_rate",
    "peak_kernel",
    "peak_utilization",
    "solver_flops_per_particle_step",
    "sph_density_kernel",
    "sustained_utilization",
    "table_i_rows",
    "warp_splitting_occupancy_gain",
]
