"""Kernel performance profiles and the device-utilization model.

CRK-HACC has ~50 short-range kernels; ten compute-intensive ones dominate
(paper Section IV-A).  Each profile below represents one kernel *class*
with its share of solver time, arithmetic intensity, and an execution
efficiency capturing divergence, tail effects, and atomics.  Utilization
(measured FLOPs / peak FLOPs, paper Section V-B) combines a roofline bound
with that efficiency; the model is calibrated so the Frontier-E anchors
hold — ~33% peak on the CRK-coefficient kernel and ~26.5% sustained over
the full solver stack at high redshift (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .device import GPUSpec


@dataclass(frozen=True)
class KernelProfile:
    """One kernel class of the short-range solver stack."""

    name: str
    time_fraction: float  # share of solver wall-clock at high redshift
    arithmetic_intensity: float  # FLOPs per byte of global traffic
    exec_efficiency: float  # achieved fraction of roofline-attainable rate
    registers_per_thread: int = 64

    def utilization(self, device: GPUSpec) -> float:
        """Measured/peak FLOP fraction for this kernel on a device."""
        attainable = device.roofline_flops(self.arithmetic_intensity)
        return (attainable / device.peak_fp32_flops) * self.exec_efficiency


# High-redshift solver mix: time fractions sum to 1.  Values are set so the
# mix-weighted sustained utilization lands on the paper's 26.5% and the
# peak kernel on ~33% (Fig. 6 anchors).
SOLVER_KERNEL_MIX: tuple[KernelProfile, ...] = (
    KernelProfile("crk_coefficients", 0.20, 40.0, 0.330, registers_per_thread=96),
    KernelProfile("hydro_force", 0.35, 28.0, 0.310, registers_per_thread=110),
    KernelProfile("gravity_short", 0.25, 24.0, 0.285, registers_per_thread=72),
    KernelProfile("subgrid_feedback", 0.10, 20.0, 0.200, registers_per_thread=84),
    KernelProfile("tree_walk_lists", 0.10, 0.25, 0.120, registers_per_thread=48),
)

#: vendor-specific peak-kernel scaling (paper: consistent across vendors,
#: slightly higher peak on NVIDIA hardware)
VENDOR_PEAK_FACTOR = {"AMD": 1.00, "Intel": 0.97, "NVIDIA": 1.06}


def peak_kernel(mix=SOLVER_KERNEL_MIX) -> KernelProfile:
    """The kernel with the highest FP32 throughput (CRK coefficients)."""
    return max(mix, key=lambda k: k.arithmetic_intensity * k.exec_efficiency)


def peak_utilization(device: GPUSpec, mix=SOLVER_KERNEL_MIX) -> float:
    """Highest single-kernel utilization on a device (paper's 'peak')."""
    k = peak_kernel(mix)
    base = k.utilization(device)
    return min(base * VENDOR_PEAK_FACTOR.get(device.vendor, 1.0), 1.0)


def sustained_utilization(
    device: GPUSpec,
    mix=SOLVER_KERNEL_MIX,
    work_boost: float = 0.0,
) -> float:
    """Time-weighted utilization over the full solver stack.

    ``work_boost`` models the low-redshift clustering effect: denser
    neighborhoods mean longer interaction lists per leaf, which amortize
    fixed costs and raise efficiency (the paper's high-z 26.5% -> low-z 28%
    shift).  A boost of b multiplies each kernel's efficiency by (1 + b)
    capped at the roofline.
    """
    total = 0.0
    for k in mix:
        u = k.utilization(device) * (1.0 + work_boost)
        attainable = device.roofline_flops(k.arithmetic_intensity)
        u = min(u, attainable / device.peak_fp32_flops)
        total += k.time_fraction * u
    return min(total, 1.0)


def solver_flops_per_particle_step(n_neighbors: int = 270) -> float:
    """Weighted FLOPs to advance one particle one substep.

    ~270 neighbors per CRKSPH evaluation (paper Section IV-B1); each pair
    costs O(100) weighted FLOPs across the kernel stack.  This constant
    anchors the performance model's FLOP totals to the measured 46.6e9
    particles/s at 513.1/420.5 PFLOPs: 420.5 PF / 46.6e9 p/s ~ 9.0e3
    FLOPs per particle-step at the *global* step level.
    """
    flops_per_pair = 33.5
    return n_neighbors * flops_per_pair


def measured_flop_rate(
    device: GPUSpec, mix=SOLVER_KERNEL_MIX, work_boost: float = 0.0
) -> float:
    """Sustained FLOP/s one device achieves on the solver workload."""
    return sustained_utilization(device, mix, work_boost) * device.peak_fp32_flops
