"""Lane-level warp-splitting executor (paper Algorithm 1, Section IV-B2).

Executes leaf-leaf interaction kernels exactly the way the GPU does: the
warp is split so half its lanes hold particles from leaf *i* and half from
leaf *j*; separable partials are computed once per lane and exchanged via
register shuffles; every (i, j) pair is visited by rotating partners
through the opposite half-warp.  The executor produces bit-accurate results
(verified against direct summation in tests) while counting FLOPs, memory
traffic, shuffles, and atomics — the quantities behind the paper's
utilization measurements and the warp-splitting ablation.

Stage FLOP costs (``flops_f`` etc.) are *weighted* operation counts per
lane-evaluation following the paper's convention (FMA already counted as 2,
transcendentals as 1); the executor books them plus one transcendental per
pair evaluation for the kernel/exp call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..backend import get_kernel, register_kernel
from .counters import OpCounters
from .device import GPUSpec


@register_kernel(
    "gpusim.lane_scatter_add", contract="bit-identical",
    note="np.add.at applies duplicate-index updates sequentially in lane "
         "order — exactly the deterministic atomic model; the compiled "
         "loop is the same sequential order",
)
def _lane_scatter_add_numpy(out, idx, vals):
    # deliberate atomic model: lane-order accumulation is what makes the
    # warp pass bit-reproducible
    np.add.at(out, idx, vals)  # sanitize: allow-scatter
    return out


@dataclass(frozen=True)
class SeparablePairKernel:
    """A pairwise kernel phi_ij = combine(f(i), g(j), h(i,j)) (paper Eq. 2).

    ``fields_i``/``fields_j`` name the per-particle state each side loads.
    Stage callables receive dicts of arrays (one entry per lane) and must be
    vectorized.  ``reaction`` controls what leaf j accumulates: 0 = nothing
    (one-sided gather), +1 = phi_ji = +phi_ij (e.g. pair potential energy),
    -1 = phi_ji = -phi_ij (e.g. pairwise force components).
    """

    name: str
    fields_i: tuple
    fields_j: tuple
    f_i: Callable  # f(state_i) -> partial per lane
    g_j: Callable  # g(state_j) -> partial per lane
    h_ij: Callable  # h(pos_i, pos_j, state_i, state_j) -> coupling term
    combine: Callable  # combine(f, g, h) -> phi_ij
    flops_f: int = 2
    flops_g: int = 2
    flops_h: int = 10
    flops_combine: int = 2
    reaction: int = 0
    #: scratch registers beyond the state (temporaries, accumulators)
    scratch_registers: int = 8

    @property
    def flops_per_pair(self) -> int:
        """Weighted FLOPs per pair evaluation (h + combine + transcendental);
        f and g amortize over the half-warp and are excluded here."""
        return self.flops_h + self.flops_combine + 1

    def register_estimate(self, split: bool) -> int:
        """Per-thread register count estimate.

        Naive kernels keep *both* particles' full state (plus position)
        resident; warp splitting stores one side only, receiving the
        partner's partials through shuffles (the paper's register-pressure
        argument for the technique).
        """
        pos_regs = 3
        own = pos_regs + max(len(self.fields_i), len(self.fields_j))
        if split:
            other = 2  # shuffled-in partner partial + distance temp
        else:
            other = pos_regs + max(len(self.fields_i), len(self.fields_j))
        return own + other + self.scratch_registers


def _pad_to(arr: np.ndarray, size: int) -> np.ndarray:
    if len(arr) >= size:
        return arr[:size]
    pad_shape = (size - len(arr),) + arr.shape[1:]
    return np.concatenate([arr, np.zeros(pad_shape, dtype=arr.dtype)])


def execute_leaf_pair_warpsplit(
    kernel: SeparablePairKernel,
    pos_i: np.ndarray,
    state_i: dict,
    pos_j: np.ndarray,
    state_j: dict,
    device: GPUSpec,
    counters: OpCounters | None = None,
    active_i: np.ndarray | None = None,
    compact: bool = False,
):
    """Run one leaf-leaf interaction with warp splitting.

    Returns ``(phi_i, phi_j, counters)``; ``phi_j`` is None for one-sided
    kernels, otherwise the reaction accumulated on leaf j.

    ``active_i`` marks the i-particles whose rows must be computed (mixed
    timestep rungs: inactive rows are not force-evaluated this substep).
    With ``compact=False`` inactive lanes are *predicated off* — issued
    with the tile but masked, wasting issue slots exactly as a divergent
    warp does.  With ``compact=True`` the active i-particles are gathered
    into dense tiles first, so only ``ceil(n_active/half)`` i-tiles issue —
    the paper's mixed-rung compaction.  Predicated results are bit-identical
    to an all-active run on the active rows (lanes keep their tile slots);
    compaction repacks lanes, which permutes each lane's partner-rotation
    order, so its active rows match predication to roundoff (deterministic,
    same pair set — just like lane repacking on real hardware).  Inactive
    rows are exactly zero in both modes.
    """
    counters = counters if counters is not None else OpCounters()
    lane_add = get_kernel("gpusim.lane_scatter_add")
    if active_i is not None and compact:
        sel = np.nonzero(np.asarray(active_i, dtype=bool))[0]
        sub_state = {k: np.asarray(state_i[k])[sel] for k in kernel.fields_i}
        phi_sub, phi_j, counters = execute_leaf_pair_warpsplit(
            kernel, pos_i[sel], sub_state, pos_j, state_j, device, counters
        )
        phi_i = np.zeros(len(pos_i))
        phi_i[sel] = phi_sub
        return phi_i, phi_j, counters

    half = device.warp_size // 2
    ni, nj = len(pos_i), len(pos_j)
    phi_i = np.zeros(ni)
    phi_j = np.zeros(nj) if kernel.reaction else None
    active_arr = (
        np.ones(ni, dtype=bool)
        if active_i is None
        else np.asarray(active_i, dtype=bool)
    )

    bytes_per_i = 4 * (3 + len(kernel.fields_i))
    bytes_per_j = 4 * (3 + len(kernel.fields_j))

    n_tiles_i = (ni + half - 1) // half
    n_tiles_j = (nj + half - 1) // half
    for ti in range(n_tiles_i):
        i_lo = ti * half
        i_idx = np.arange(i_lo, min(i_lo + half, ni))
        i_valid = _pad_to(np.ones(len(i_idx), dtype=bool), half)
        # predication: inactive lanes ride along in the issued tile but do
        # no useful work (their pair_ok is False for every partner)
        i_live = i_valid & _pad_to(active_arr[i_idx], half)
        lane_pos_i = _pad_to(pos_i[i_idx], half)
        lane_state_i = {
            k: _pad_to(np.asarray(state_i[k])[i_idx], half)
            for k in kernel.fields_i
        }
        # one coalesced global read of the i half-warp per tile
        counters.global_load_bytes += int(i_valid.sum()) * bytes_per_i
        f_part = np.broadcast_to(
            np.asarray(kernel.f_i(lane_state_i), dtype=np.float64), (half,)
        )
        counters.fp32_add += kernel.flops_f * half

        acc_i = np.zeros(half)
        for tj in range(n_tiles_j):
            j_lo = tj * half
            j_idx = np.arange(j_lo, min(j_lo + half, nj))
            j_valid = _pad_to(np.ones(len(j_idx), dtype=bool), half)
            lane_pos_j = _pad_to(pos_j[j_idx], half)
            lane_state_j = {
                k: _pad_to(np.asarray(state_j[k])[j_idx], half)
                for k in kernel.fields_j
            }
            counters.global_load_bytes += int(j_valid.sum()) * bytes_per_j
            g_part = np.broadcast_to(
                np.asarray(kernel.g_j(lane_state_j), dtype=np.float64), (half,)
            )
            counters.fp32_add += kernel.flops_g * half

            acc_j = np.zeros(half)
            for t in range(half):
                partner = (np.arange(half) + t) % half
                # shuffles: partner position (packed) + g partial
                counters.shuffles += 2 * half
                pj_pos = lane_pos_j[partner]
                pj_state = {k: v[partner] for k, v in lane_state_j.items()}
                h_term = kernel.h_ij(lane_pos_i, pj_pos, lane_state_i, pj_state)
                phi = kernel.combine(f_part, g_part[partner], h_term)

                pair_ok = i_live & j_valid[partner]
                counters.issued_lane_ops += half
                counters.active_lane_ops += int(pair_ok.sum())
                counters.fp32_add += (kernel.flops_h + kernel.flops_combine) * half
                counters.fp32_transcendental += half
                phi = np.where(pair_ok, phi, 0.0)
                acc_i += phi
                if kernel.reaction:
                    lane_add(acc_j, partner, kernel.reaction * phi)
                counters.fp32_add += half  # accumulation add

            if kernel.reaction:
                counters.atomics += int(j_valid.sum())
                counters.global_store_bytes += int(j_valid.sum()) * 4
                lane_add(phi_j, j_idx, acc_j[: len(j_idx)])

        counters.atomics += int(i_live.sum())
        counters.global_store_bytes += int(i_live.sum()) * 4
        lane_add(phi_i, i_idx, acc_i[: len(i_idx)])

    return phi_i, phi_j, counters


def execute_leaf_pair_naive(
    kernel: SeparablePairKernel,
    pos_i: np.ndarray,
    state_i: dict,
    pos_j: np.ndarray,
    state_j: dict,
    device: GPUSpec,
    counters: OpCounters | None = None,
):
    """Reference one-thread-per-i-particle kernel (no splitting).

    Every thread walks all of leaf j; each warp re-reads the j particle
    from memory (the redundant traffic and register pressure warp splitting
    eliminates).  f and g partials are recomputed per pair.
    """
    counters = counters if counters is not None else OpCounters()
    ni, nj = len(pos_i), len(pos_j)
    phi_i = np.zeros(ni)

    bytes_per_i = 4 * (3 + len(kernel.fields_i))
    bytes_per_j = 4 * (3 + len(kernel.fields_j))
    counters.global_load_bytes += ni * bytes_per_i

    warp = device.warp_size
    n_warps = max((ni + warp - 1) // warp, 1)
    full_i = {k: np.asarray(state_i[k]) for k in kernel.fields_i}

    for j in range(nj):
        sj_scalar = {k: np.asarray(state_j[k])[j] for k in kernel.fields_j}
        sj = {k: np.full(ni, v) for k, v in sj_scalar.items()}
        # each thread issues its own (uncoalesced) read of particle j's
        # record — the redundant global traffic warp splitting replaces
        # with one coalesced tile read plus register shuffles
        counters.global_load_bytes += ni * bytes_per_j
        f_part = np.broadcast_to(
            np.asarray(kernel.f_i(full_i), dtype=np.float64), (ni,)
        )
        g_part = np.broadcast_to(
            np.asarray(kernel.g_j(sj), dtype=np.float64), (ni,)
        )
        h_term = kernel.h_ij(
            pos_i, np.broadcast_to(pos_j[j], pos_i.shape), full_i, sj
        )
        phi_i += kernel.combine(f_part, g_part, h_term)
        counters.issued_lane_ops += n_warps * warp
        counters.active_lane_ops += ni
        counters.fp32_add += (
            kernel.flops_f + kernel.flops_g + kernel.flops_h + kernel.flops_combine + 1
        ) * ni
        counters.fp32_transcendental += ni

    counters.atomics += ni
    counters.global_store_bytes += ni * 4
    return phi_i, None, counters


# -- concrete kernels ----------------------------------------------------------

def sph_density_kernel(h_support: float) -> SeparablePairKernel:
    """rho_i = sum_j m_j W(|r_i - r_j|, h): the density summation kernel."""

    def f_i(state):
        return np.ones_like(state["h"])

    def g_j(state):
        return state["m"]

    def h_ij(pi, pj, si, sj):
        d = pi - pj
        r = np.sqrt(np.einsum("na,na->n", d, d))
        q = np.clip(r / h_support, 0.0, 1.0)
        u = 1.0 - q
        sigma = 495.0 / (32.0 * np.pi) / h_support**3
        return np.where(
            r < h_support, sigma * u**6 * (1 + 6 * q + 35.0 / 3.0 * q**2), 0.0
        )

    return SeparablePairKernel(
        name="sph_density",
        fields_i=("h",),
        fields_j=("m",),
        f_i=f_i,
        g_j=g_j,
        h_ij=h_ij,
        combine=lambda f, g, h: f * g * h,
        flops_f=1,
        flops_g=1,
        flops_h=24,
        flops_combine=2,
    )


def gravity_potential_kernel(softening: float) -> SeparablePairKernel:
    """phi_i = -sum_j m_i m_j / sqrt(r^2 + eps^2): symmetric pair energy
    (each side of the pair receives the same contribution)."""

    def f_i(state):
        return state["m"]

    def g_j(state):
        return state["m"]

    def h_ij(pi, pj, si, sj):
        d = pi - pj
        r2 = np.einsum("na,na->n", d, d)
        near_zero = r2 < 1e-24  # self pair within a leaf
        inv = -1.0 / np.sqrt(r2 + softening**2)
        return np.where(near_zero, 0.0, inv)

    return SeparablePairKernel(
        name="gravity_potential",
        fields_i=("m",),
        fields_j=("m",),
        f_i=f_i,
        g_j=g_j,
        h_ij=h_ij,
        combine=lambda f, g, h: f * g * h,
        flops_f=1,
        flops_g=1,
        flops_h=9,
        flops_combine=2,
        reaction=+1,
    )


def crk_coefficient_kernel(h_support: float) -> SeparablePairKernel:
    """High-order CRK correction-coefficient kernel: the paper's peak-FLOP
    kernel (Section V-B) — heavy per-pair polynomial work, light traffic."""

    def f_i(state):
        return 1.0 / np.maximum(state["vol"], 1e-30)

    def g_j(state):
        return state["vol"]

    def h_ij(pi, pj, si, sj):
        d = pi - pj
        r = np.sqrt(np.einsum("na,na->n", d, d))
        q = np.clip(r / h_support, 0.0, 1.0)
        u = 1.0 - q
        w = u**6 * (1 + 6 * q + 35.0 / 3.0 * q**2)
        # moment-like polynomial tower emulating the m0/m1/m2 work
        poly = 1.0 + q * (0.5 + q * (0.25 + q * (0.125 + q * 0.0625)))
        return np.where(r < h_support, w * poly, 0.0)

    return SeparablePairKernel(
        name="crk_coefficients",
        fields_i=("vol",),
        fields_j=("vol",),
        f_i=f_i,
        g_j=g_j,
        h_ij=h_ij,
        combine=lambda f, g, h: f * g * h,
        flops_f=2,
        flops_g=1,
        flops_h=64,
        flops_combine=2,
        scratch_registers=24,
    )


def hydro_force_like_kernel(h_support: float) -> SeparablePairKernel:
    """A register-heavy kernel shaped like the CRKSPH momentum evaluation.

    Carries the full per-particle hydro state (density, pressure, sound
    speed, smoothing length, mass, volume, viscosity switch, internal
    energy) on each side — the register-pressure profile where warp
    splitting pays off most (paper Section IV-B2).  The evaluated quantity
    is a scalar pair-force magnitude surrogate.
    """
    fields = ("rho", "p", "c", "h", "m", "vol", "balsara", "u")

    def f_i(state):
        return state["vol"] * state["p"] / np.maximum(state["rho"], 1e-30)

    def g_j(state):
        return state["vol"] * state["p"] / np.maximum(state["rho"], 1e-30)

    def h_ij(pi, pj, si, sj):
        d = pi - pj
        r = np.sqrt(np.einsum("na,na->n", d, d))
        q = np.clip(r / h_support, 0.0, 1.0)
        u = 1.0 - q
        dw = -56.0 / 3.0 * q * u**5 * (1.0 + 5.0 * q) / h_support**4
        return np.where(r < h_support, dw, 0.0)

    return SeparablePairKernel(
        name="hydro_force_like",
        fields_i=fields,
        fields_j=fields,
        f_i=f_i,
        g_j=g_j,
        h_ij=h_ij,
        combine=lambda f, g, h: (f + g) * h,
        flops_f=4,
        flops_g=4,
        flops_h=30,
        flops_combine=2,
        reaction=-1,
        scratch_registers=28,
    )


def lennard_jones_kernel(epsilon: float, sigma: float, r_cut: float) -> SeparablePairKernel:
    """Lennard-Jones pair energy: the paper's molecular-dynamics example.

    Warp splitting "generalizes to all CRK-HACC interaction kernels, as
    well as other particle-based methods ... such as Lennard-Jones or
    Coulomb potentials" (Section IV-B2).  phi_ij = 4 eps [(s/r)^12 -
    (s/r)^6] within the cutoff; symmetric, so both leaves accumulate.
    """

    def f_i(state):
        return np.ones_like(next(iter(state.values()))) if state else 1.0

    def g_j(state):
        return np.ones_like(next(iter(state.values()))) if state else 1.0

    def h_ij(pi, pj, si, sj):
        d = pi - pj
        r2 = np.einsum("na,na->n", d, d)
        self_pair = r2 < 1e-24
        r2 = np.maximum(r2, 1e-24)
        s6 = (sigma**2 / r2) ** 3
        val = 4.0 * epsilon * (s6**2 - s6)
        return np.where(self_pair | (r2 > r_cut**2), 0.0, val)

    return SeparablePairKernel(
        name="lennard_jones",
        fields_i=("type",),
        fields_j=("type",),
        f_i=f_i,
        g_j=g_j,
        h_ij=h_ij,
        combine=lambda f, g, h: f * g * h,
        flops_f=1,
        flops_g=1,
        flops_h=14,
        flops_combine=2,
        reaction=+1,
        scratch_registers=10,
    )


def coulomb_kernel(k_e: float, softening: float) -> SeparablePairKernel:
    """Screened Coulomb pair energy: the paper's plasma-physics example."""

    def f_i(state):
        return state["q"]

    def g_j(state):
        return state["q"]

    def h_ij(pi, pj, si, sj):
        d = pi - pj
        r2 = np.einsum("na,na->n", d, d)
        self_pair = r2 < 1e-24
        inv = k_e / np.sqrt(r2 + softening**2)
        return np.where(self_pair, 0.0, inv)

    return SeparablePairKernel(
        name="coulomb",
        fields_i=("q",),
        fields_j=("q",),
        f_i=f_i,
        g_j=g_j,
        h_ij=h_ij,
        combine=lambda f, g, h: f * g * h,
        flops_f=1,
        flops_g=1,
        flops_h=8,
        flops_combine=2,
        reaction=+1,
    )
