"""repro.observe: unified tracing, metrics, and profiling.

The observability substrate of the reproduction — the analog of the
rocprof/CrayPat/Perfetto tooling the paper's performance figures are
built from.  One :class:`Observatory` per run bundles:

- a hierarchical span :class:`~repro.observe.trace.Tracer` (wall-clock
  spans with per-rank tracks, async slices for in-flight nonblocking
  requests, flow arrows post → wait, plus a simulated-fabric clock
  domain for the iosim tier models), exporting Chrome trace-event JSON
  loadable in Perfetto / ``about://tracing``;
- a typed :class:`~repro.observe.metrics.MetricsRegistry`
  (counters/gauges/histograms) that absorbs ``TrafficStats``,
  ``OpCounters`` deltas, and ``SubcycleStats`` as instruments;
- derived metrics (:mod:`repro.observe.derived`): TTS fractions,
  comm-wait shares, roofline position, lane efficiency, utilization —
  what ``bench_fig2_breakdown.py`` / ``bench_fig6_utilization.py``
  consume.

Tracing is off by default (:class:`~repro.observe.trace.NullTracer`,
asserted <2% step overhead in tier-1) and deterministic in span
structure when on, so traces can be diffed in CI.

Usage::

    obs = Observatory(tracing=True)
    sim = Simulation(cfg, parts, observe=obs)
    sim.run()
    obs.export_chrome_trace("trace.json")   # open in ui.perfetto.dev
"""

from __future__ import annotations

import itertools

from . import derived, taxonomy
from .clock import SIM_PID, WALL_PID, SimClock, WallClock
from .export import (
    load_chrome_trace,
    slice_intervals,
    sort_events,
    to_chrome_trace,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    TimerGroup,
)
from .trace import NullTracer, TraceEvent, Tracer

_scope_counter = itertools.count()


class Observatory:
    """Tracer + metrics registry for one run (the per-run façade).

    ``tracing=False`` (the default) installs a :class:`NullTracer`:
    phase timers still accumulate into the registry (StepRecord views
    need them) but no events are recorded and span calls are no-ops.
    """

    def __init__(self, tracing: bool = False, tracer=None,
                 registry: MetricsRegistry | None = None):
        self.tracer = tracer if tracer is not None else (
            Tracer() if tracing else NullTracer()
        )
        self.registry = registry if registry is not None else MetricsRegistry()

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def timer_group(self, prefix: str, keys=(), cat: str = "phase",
                    ) -> TimerGroup:
        """A phase-timer family under ``prefix`` (see :class:`TimerGroup`)."""
        return TimerGroup(self.registry, prefix, keys, self.tracer, cat=cat)

    def scope(self, base: str) -> str:
        """A process-unique instrument prefix (``base`` + running index),
        so repeated runs never collide in the registry."""
        return f"{base}{next(_scope_counter)}"

    def export_chrome_trace(self, path: str | None = None) -> dict:
        """Chrome trace-event JSON of everything recorded so far."""
        if path is None:
            return to_chrome_trace(self.tracer)
        return write_chrome_trace(path, self.tracer)


#: module-level default used by components not handed an Observatory
_default = Observatory()


def default_observatory() -> Observatory:
    return _default


__all__ = [
    "SIM_PID",
    "WALL_PID",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Observatory",
    "SimClock",
    "Timer",
    "TimerGroup",
    "TraceEvent",
    "Tracer",
    "WallClock",
    "default_observatory",
    "derived",
    "load_chrome_trace",
    "slice_intervals",
    "sort_events",
    "taxonomy",
    "to_chrome_trace",
    "write_chrome_trace",
]
