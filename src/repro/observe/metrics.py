"""Typed metrics registry: counters, gauges, histograms, phase timers.

The registry replaces the repo's three bespoke accounting patterns —
``StepRecord.timers`` dicts, ``TrafficStats`` per-rank dicts, and
``OpCounters`` dataclasses — with named instruments:

- :class:`Counter` — monotonically accumulated value (seconds, bytes,
  FLOPs, pair rows);
- :class:`Gauge` — last-set value (utilization, efficiency, fractions);
- :class:`Histogram` — streaming min/max/mean/count plus retained samples
  (per-rank utilization distributions).

``TrafficStats``, ``OpCounters`` and ``SubcycleStats`` objects are
*absorbed* into instruments (``absorb_*``) rather than re-implemented, so
the original producers keep their public shape while every consumer reads
one registry.

:class:`TimerGroup` is the unified wall-clock timer primitive: a
read-only mapping over a family of phase counters whose ``time(phase)``
context manager both accumulates seconds into the registry and emits a
tracer span.  ``StepRecord.timers`` and ``StepRecord.comm_wait`` are
TimerGroups — the public dict shape (keys, float values, ``items()``)
is unchanged, but the numbers now live in the registry.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Mapping

from .trace import NullTracer

_NULL_TRACER = NullTracer()


class Counter:
    """Monotonic accumulator."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, v: float) -> None:
        self.value += v


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)


class Histogram:
    """Streaming distribution summary with retained samples."""

    __slots__ = ("count", "total", "min", "max", "samples")

    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: list[float] = []

    def observe(self, v) -> None:
        try:
            vals = list(v)
        except TypeError:
            vals = [v]
        for x in vals:
            x = float(x)
            self.count += 1
            self.total += x
            self.min = min(self.min, x)
            self.max = max(self.max, x)
            self.samples.append(x)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {"count": self.count, "total": self.total, "mean": self.mean,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0}


def _label_suffix(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


class MetricsRegistry:
    """Get-or-create store of named instruments (thread-safe).

    Instrument names are hierarchical slash paths with optional labels,
    e.g. ``comm/wait_seconds{rank=2}``.  Requesting an existing name with
    a different instrument type is an error — the registry is *typed*.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, labels: dict):
        key = name + _label_suffix(labels)
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = self._instruments[key] = cls()
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"instrument {key!r} already registered as "
                    f"{type(inst).__name__}, requested {cls.__name__}"
                )
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, Counter, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, Gauge, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(name, Histogram, labels)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, key: str):
        """Look up an instrument by its full key (name + label suffix)."""
        with self._lock:
            return self._instruments.get(key)

    def snapshot(self) -> dict:
        """Flat ``{key: value-or-summary}`` view of every instrument."""
        with self._lock:
            items = list(self._instruments.items())
        out = {}
        for key, inst in items:
            out[key] = inst.summary() if isinstance(inst, Histogram) \
                else inst.value
        return out

    # -- absorbers: bespoke stats objects -> instruments ----------------------
    def absorb_traffic(self, stats, prefix: str = "comm") -> None:
        """Absorb a :class:`~repro.parallel.comm.TrafficStats` (aggregate
        message/byte counters plus per-rank wait/byte attribution)."""
        for f in ("p2p_messages", "p2p_bytes", "collective_calls",
                  "collective_bytes"):
            c = self.counter(f"{prefix}/{f}")
            c.value = 0.0
            c.add(getattr(stats, f))
        for rank, sec in sorted(stats.wait_seconds.items()):
            g = self.gauge(f"{prefix}/wait_seconds", rank=rank)
            g.set(sec)
        for rank, nb in sorted(stats.bytes_by_rank.items()):
            g = self.gauge(f"{prefix}/bytes", rank=rank)
            g.set(nb)

    def absorb_op_counters(self, counters, prefix: str = "gpu") -> None:
        """Absorb a :class:`~repro.gpusim.counters.OpCounters` delta into
        cumulative counters plus derived gauges (the §V-B conventions)."""
        for f in counters.__dataclass_fields__:
            self.counter(f"{prefix}/{f}").add(getattr(counters, f))
        self.counter(f"{prefix}/flops").add(counters.flops)
        self.counter(f"{prefix}/bytes_moved").add(counters.bytes_moved)
        issued = self.counter(f"{prefix}/issued_lane_ops").value
        active = self.counter(f"{prefix}/active_lane_ops").value
        self.gauge(f"{prefix}/lane_efficiency").set(
            active / issued if issued else 1.0
        )
        moved = self.counter(f"{prefix}/bytes_moved").value
        flops = self.counter(f"{prefix}/flops").value
        self.gauge(f"{prefix}/arithmetic_intensity").set(
            flops / moved if moved else float("inf")
        )

    def absorb_subcycle(self, stats, prefix: str = "subcycle") -> None:
        """Absorb a :class:`~repro.core.timestep.SubcycleStats`."""
        for f in ("n_substeps", "n_force_evaluations", "n_active_total",
                  "n_fft", "n_pairs"):
            self.counter(f"{prefix}/{f}").add(getattr(stats, f))
        self.gauge(f"{prefix}/deepest_rung").set(stats.deepest_rung)
        self.histogram(f"{prefix}/active_fraction").observe(
            stats.mean_active_fraction
        )


class Timer:
    """Context manager timing one phase into a counter (+ tracer span).

    The unified replacement for the hand-rolled
    ``t0 = time.perf_counter(); ...; timers[k] += time.perf_counter()-t0``
    pattern.  ``seconds`` holds this activation's elapsed time on exit.
    """

    __slots__ = ("_counter", "_span", "_t0", "seconds")

    def __init__(self, counter: Counter, span=None):
        self._counter = counter
        self._span = span
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        if self._span is not None:
            self._span.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._t0
        self._counter.add(self.seconds)
        if self._span is not None:
            self._span.__exit__(*exc)


class TimerGroup(Mapping):
    """Read-only mapping view over a family of phase counters.

    ``group.time("hydro")`` times a block into ``<prefix>/hydro`` and
    emits a tracer span named ``hydro``; ``group["hydro"]`` reads the
    accumulated seconds.  Iteration order is key-registration order, so
    pre-seeded phase taxonomies keep their canonical ordering.
    """

    def __init__(self, registry: MetricsRegistry, prefix: str,
                 keys=(), tracer=None, cat: str = "phase"):
        self._registry = registry
        self._prefix = prefix
        self._tracer = tracer if tracer is not None else _NULL_TRACER
        self._cat = cat
        self._keys: list[str] = []
        self._counters: dict[str, Counter] = {}
        for k in keys:
            self._counter(k)

    def _counter(self, key: str) -> Counter:
        c = self._counters.get(key)
        if c is None:
            c = self._registry.counter(f"{self._prefix}/{key}")
            self._counters[key] = c
            self._keys.append(key)
        return c

    # -- recording ------------------------------------------------------------
    def time(self, key: str, **span_args) -> Timer:
        """Time a block into ``key`` (and emit a span when tracing)."""
        c = self._counter(key)
        tr = self._tracer
        span = tr.span(key, cat=self._cat, **span_args) if tr.enabled else None
        return Timer(c, span)

    def add(self, key: str, seconds: float) -> None:
        """Accumulate externally measured seconds (no span)."""
        self._counter(key).add(seconds)

    # -- mapping interface (the public StepRecord.timers shape) ---------------
    def __getitem__(self, key: str) -> float:
        return self._counters[key].value

    def __iter__(self):
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:
        return f"TimerGroup({dict(self)!r})"
