"""Registered span taxonomy: every span name a trace may contain.

The Fig. 2 / Fig. 6 benches and the CI trace diffs key off span names, so
an instrumented module inventing a name silently breaks attribution.
``scripts/check_spans.py`` statically greps the instrumented modules for
span-name literals and fails when one is not registered here.

Clock model (DESIGN.md "Observability"): wall-clock spans live on
``pid=WALL_PID`` with one ``tid`` per simulated rank; simulated-fabric
events (iosim tier models) carry explicit model timestamps on
``pid=SIM_PID``.
"""

from __future__ import annotations

#: serial driver phases — the StepRecord.timers keys (Fig. 2 breakdown)
SERIAL_PHASES = (
    "tree_build", "long_range", "short_range", "hydro",
    "subgrid", "analysis", "io", "other",
)

#: distributed driver phases — StepRecord.timers/comm_wait keys
DISTRIBUTED_PHASES = ("short_range", "long_range", "migration")

#: deepest rung the per-rung phase taxonomy covers (DistributedConfig
#: validates ``max_rung`` against this so every timer key is registered)
MAX_TAXONOMY_RUNG = 8

#: per-rung phases of the subcycled distributed driver: the substep
#: evaluation whose shallowest closing rung is r is timed (wall and
#: comm-wait alike) under "rung/r", alongside the base phase keys
RUNG_PHASES = tuple(f"rung/{r}" for r in range(MAX_TAXONOMY_RUNG + 1))

#: nonblocking migration: post/settle structural spans plus the async
#: slice spanning the in-flight window (final drift -> payload settle)
MIGRATION_SPANS = (
    "migration/post",
    "migration/settle",
    "migration/flight",
)

#: structural spans of the drivers
DRIVER_SPANS = (
    "step",
    "short_range/interior",
    "short_range/boundary",
    "ghost_exchange",
)

#: communication-layer spans and async slices (SimComm / Request)
COMM_SPANS = (
    "comm/wait",
    "comm/barrier",
    "comm/exchange",
    "comm/ialltoallv",
    "comm/iallgather",
    "comm/iallreduce",
)

#: distributed-FFT stages
FFT_SPANS = (
    "fft/forward",
    "fft/inverse",
    "fft/transpose",
    "fft/stage",
)

#: GPU-resident solver
GPU_SPANS = (
    "gpu/upload",
    "gpu/kernel_launch",
)

#: multi-tier I/O (MultiTierWriter on the simulated clock; AsyncBleeder /
#: CheckpointManager on the wall clock)
IO_SPANS = (
    "io/nvme_write",
    "io/stall",
    "io/bleed",
    "io/pfs_drain",
    "io/checkpoint",
)

#: kernel-backend lifecycle (one-shot JIT warm-up compilation)
BACKEND_SPANS = (
    "backend/compile",
)

#: campaign execution engine: the ``campaign/queued`` async slice spans
#: admission -> dispatch; ``campaign/job`` wraps a whole run on a worker
#: track; power/ics/build are the cache-aware artifact stages; run is the
#: integration itself
CAMPAIGN_SPANS = (
    "campaign/job",
    "campaign/queued",
    "campaign/power",
    "campaign/ics",
    "campaign/build",
    "campaign/run",
    "campaign/retry",
    "campaign/cancelled",
)

#: rank-failure recovery pipeline (RecoveryCoordinator): the five phases
#: between a RankFailure and the resumed step loop, in order — failure
#: detection/attribution, in-flight request teardown audit, checkpoint
#: tier selection + load, re-decomposition over the survivors, and the
#: resumed-segment bookkeeping.  Timed into the registry (the recovery
#: overhead bench reads them back) and visible as spans in Perfetto.
RESILIENCE_SPANS = (
    "resilience/detect",
    "resilience/cancel",
    "resilience/restore",
    "resilience/redistribute",
    "resilience/resume",
)

#: async/flow slices: names legal as ``async_begin``/``flow_start``
#: duration slices (they may open and close in *different* functions —
#: the deep span-balance rule pairs them program-wide against this set)
ASYNC_SPANS = frozenset(
    {"migration/flight", "ghost_exchange", "io/bleed", "io/pfs_drain",
     "campaign/queued"}
) | frozenset(COMM_SPANS)

#: every span name a conforming trace may contain
SPAN_NAMES = frozenset(
    SERIAL_PHASES + DISTRIBUTED_PHASES + RUNG_PHASES + MIGRATION_SPANS
    + DRIVER_SPANS + COMM_SPANS + FFT_SPANS + GPU_SPANS + IO_SPANS
    + BACKEND_SPANS + CAMPAIGN_SPANS + RESILIENCE_SPANS
)

#: Fig. 2 component attribution: span name -> reported component.  The
#: serial phases map one-to-one; distributed comm spans fold into their
#: owning phase.
FIG2_COMPONENTS = {
    "tree_build": "tree_build",
    "long_range": "long_range",
    "short_range": "short_range",
    "hydro": "hydro",
    "subgrid": "subgrid",
    "analysis": "analysis",
    "io": "io",
    "other": "other",
}

#: Fig. 6 derived metrics sourced from gpu/* spans and instruments
FIG6_METRICS = (
    "gpu/lane_efficiency",
    "gpu/arithmetic_intensity",
    "utilization/sustained",
    "utilization/peak",
)


def is_registered(name: str) -> bool:
    return name in SPAN_NAMES


def unregistered(names) -> list[str]:
    """The subset of ``names`` missing from the taxonomy (sorted)."""
    return sorted(set(names) - SPAN_NAMES)
