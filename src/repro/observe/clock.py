"""Clock domains for the observability layer.

Two kinds of time coexist in this repo (DESIGN.md "Observability"):

- **Wall clock** — real elapsed seconds, measured with
  ``time.perf_counter`` against a fixed origin.  Every span the tracer
  measures itself lives on this clock; it is the time the Fig. 2 / Fig. 5
  breakdowns are built from.
- **Simulated fabric clock** — the discrete-event time advanced by the
  performance models (e.g. :class:`~repro.iosim.tiers.MultiTierWriter`
  keeps its own ``_clock`` in simulated seconds).  Events on this clock
  carry *explicit* timestamps supplied by the model; they are exported on
  a separate process track because the two time bases are not comparable.

Both expose ``now() -> float`` seconds.
"""

from __future__ import annotations

import time

#: trace process id for wall-clock rank tracks
WALL_PID = 1
#: trace process id for simulated-fabric-clock tracks (iosim tier models)
SIM_PID = 100


class WallClock:
    """Real time in seconds since this clock's creation."""

    __slots__ = ("origin",)

    name = "wall"

    def __init__(self) -> None:
        self.origin = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self.origin


class SimClock:
    """Manually advanced simulated-time clock (seconds).

    Discrete-event models drive this explicitly with :meth:`advance` /
    :meth:`set`; nothing in it depends on real time, so traces built on a
    SimClock are bit-deterministic across runs.
    """

    __slots__ = ("_t",)

    name = "sim"

    def __init__(self, start: float = 0.0) -> None:
        self._t = float(start)

    def now(self) -> float:
        return self._t

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("simulated time cannot run backward")
        self._t += dt
        return self._t

    def set(self, t: float) -> None:
        if t < self._t:
            raise ValueError("simulated time cannot run backward")
        self._t = float(t)
