"""Hierarchical span tracer with Chrome-trace-event semantics.

The tracer records four kinds of events, matching the subset of the
Trace Event Format that Perfetto / ``about://tracing`` render:

- **complete spans** (``ph="X"``): a named interval with duration, nested
  per track by entry order (``trace.span("hydro")`` context managers);
- **async slices** (``ph="b"``/``"e"``): intervals that outlive the
  enclosing call stack — in-flight nonblocking requests, background I/O
  drains — matched by ``(cat, id)``;
- **flow events** (``ph="s"``/``"f"``): arrows connecting the post of a
  nonblocking request to the wait that completes it;
- **instants/metadata** (``ph="i"``/``"M"``): markers and track names.

Tracks: every event carries ``(pid, tid)``.  Simulated ranks each get
their own ``tid`` on the wall-clock process (:data:`~repro.observe.clock.WALL_PID`);
discrete-event models with their own simulated clock emit onto
:data:`~repro.observe.clock.SIM_PID` with explicit timestamps.

Determinism: each span records a global ``seq`` assigned at *entry*, so
the per-track structure (names, nesting depths, order) is reproducible
run to run even though timestamps are not — :meth:`Tracer.structure` is
the CI-diffable view.

Zero cost when off: :class:`NullTracer` answers every recording method
with a no-op (``span`` returns one shared null context manager), so
instrumented hot loops pay only an attribute lookup and an empty
``with`` block.  A tier-1 test asserts the per-step overhead is <2%.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from .clock import SIM_PID, WALL_PID, WallClock


@dataclass
class TraceEvent:
    """One trace-event-format record (times in seconds, converted to
    microseconds at export)."""

    name: str
    ph: str  # "X" span, "b"/"e" async, "s"/"f" flow, "i" instant, "M" meta
    ts: float
    pid: int = WALL_PID
    tid: int = 0
    dur: float = 0.0  # spans only
    cat: str = "phase"
    args: dict = field(default_factory=dict)
    id: str | None = None  # async/flow correlation id
    seq: int = 0  # global entry-order sequence (structure key)
    depth: int = 0  # nesting depth at entry (spans only)


class _NullSpan:
    """Shared no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set_args(self, **kwargs) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every recording call is a no-op.

    This is the default tracer everywhere, so the instrumented code paths
    run at (asserted) parity with an uninstrumented build.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, cat: str = "phase", **args) -> _NullSpan:
        return _NULL_SPAN

    def set_track(self, tid: int, name: str | None = None) -> None:
        return None

    def instant(self, name: str, **kwargs) -> None:
        return None

    def complete(self, name: str, ts: float, dur: float, **kwargs) -> None:
        return None

    def async_begin(self, name: str, id: str, **kwargs) -> None:
        return None

    def async_end(self, name: str, id: str, **kwargs) -> None:
        return None

    def flow_start(self, name: str, id: str, **kwargs) -> None:
        return None

    def flow_end(self, name: str, id: str, **kwargs) -> None:
        return None

    def next_id(self) -> str:
        return "0"


class _Span:
    """Context manager measuring one complete ("X") span."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_t0", "_seq", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        tr = self._tracer
        self._seq = tr._next_seq()
        local = tr._local
        self._depth = getattr(local, "depth", 0)
        local.depth = self._depth + 1
        self._t0 = tr.clock.now()
        return self

    def set_args(self, **kwargs) -> None:
        """Attach/extend span arguments from inside the ``with`` body."""
        self._args.update(kwargs)

    def __exit__(self, *exc) -> None:
        tr = self._tracer
        t1 = tr.clock.now()
        tr._local.depth = self._depth
        tr._append(TraceEvent(
            name=self._name, ph="X", ts=self._t0, dur=t1 - self._t0,
            pid=WALL_PID, tid=tr._tid(), cat=self._cat, args=self._args,
            seq=self._seq, depth=self._depth,
        ))


class Tracer:
    """Thread-safe hierarchical span tracer.

    One tracer serves all simulated ranks of a run: each rank thread
    declares its track once with :meth:`set_track` and every event it
    records lands on that ``tid``.  Events are buffered in memory;
    :func:`repro.observe.export.to_chrome_trace` turns them into a
    Perfetto-loadable JSON object.
    """

    enabled = True

    def __init__(self, clock: WallClock | None = None):
        self.clock = clock if clock is not None else WallClock()
        self.events: list[TraceEvent] = []
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.track_names: dict[tuple[int, int], str] = {}

    # -- plumbing ------------------------------------------------------------
    def _tid(self) -> int:
        return getattr(self._local, "tid", 0)

    def _next_seq(self) -> int:
        return next(self._seq)

    def next_id(self) -> str:
        """A process-unique correlation id for async/flow events."""
        return str(next(self._ids))

    def _append(self, ev: TraceEvent) -> None:
        with self._lock:
            self.events.append(ev)

    # -- track management -----------------------------------------------------
    def set_track(self, tid: int, name: str | None = None,
                  pid: int = WALL_PID) -> None:
        """Bind the calling thread's events to track ``tid`` (e.g. a rank)."""
        self._local.tid = int(tid)
        if name is not None:
            with self._lock:
                self.track_names[(pid, int(tid))] = name

    # -- recording ------------------------------------------------------------
    def span(self, name: str, cat: str = "phase", **args) -> _Span:
        """Context manager for a nested complete span on this thread's
        track; wall-clock timed."""
        return _Span(self, name, cat, args)

    def complete(self, name: str, ts: float, dur: float, *,
                 cat: str = "phase", tid: int | None = None,
                 pid: int = WALL_PID, **args) -> None:
        """Record a complete span with *explicit* timestamps — the entry
        point for simulated-clock events (``pid=SIM_PID``) and for spans
        measured by foreign timers (e.g. comm wait accounting)."""
        self._append(TraceEvent(
            name=name, ph="X", ts=ts, dur=dur, pid=pid,
            tid=self._tid() if tid is None else tid, cat=cat, args=args,
            seq=self._next_seq(),
            depth=getattr(self._local, "depth", 0),
        ))

    def instant(self, name: str, *, cat: str = "phase",
                ts: float | None = None, pid: int = WALL_PID, **args) -> None:
        self._append(TraceEvent(
            name=name, ph="i", ts=self.clock.now() if ts is None else ts,
            pid=pid, tid=self._tid(), cat=cat, args=args,
            seq=self._next_seq(),
        ))

    def _async(self, ph: str, name: str, id: str, cat: str,
               ts: float | None, pid: int, tid: int | None, args: dict) -> None:
        self._append(TraceEvent(
            name=name, ph=ph, ts=self.clock.now() if ts is None else ts,
            pid=pid, tid=self._tid() if tid is None else tid,
            cat=cat, args=args, id=str(id), seq=self._next_seq(),
        ))

    def async_begin(self, name: str, id: str, *, cat: str = "async",
                    ts: float | None = None, pid: int = WALL_PID,
                    tid: int | None = None, **args) -> None:
        """Open an async slice (``ph="b"``) matched by ``(cat, id)`` —
        an operation in flight while the call stack moves on."""
        self._async("b", name, id, cat, ts, pid, tid, args)

    def async_end(self, name: str, id: str, *, cat: str = "async",
                  ts: float | None = None, pid: int = WALL_PID,
                  tid: int | None = None, **args) -> None:
        self._async("e", name, id, cat, ts, pid, tid, args)

    def flow_start(self, name: str, id: str, *, cat: str = "flow",
                   ts: float | None = None, pid: int = WALL_PID,
                   tid: int | None = None, **args) -> None:
        """Start a flow arrow (``ph="s"``), e.g. at a nonblocking post."""
        self._async("s", name, id, cat, ts, pid, tid, args)

    def flow_end(self, name: str, id: str, *, cat: str = "flow",
                 ts: float | None = None, pid: int = WALL_PID,
                 tid: int | None = None, **args) -> None:
        """Finish a flow arrow (``ph="f"``), e.g. at the completing wait."""
        self._async("f", name, id, cat, ts, pid, tid, args)

    # -- views ---------------------------------------------------------------
    def structure(self) -> dict[tuple[int, int], list[tuple[int, str, str]]]:
        """Deterministic per-track span skeleton: ``(depth, ph, name)`` in
        entry order.  Timestamps and durations are excluded, so two runs
        of the same configuration produce equal structures (asserted in
        tier-1) and traces can be diffed in CI."""
        with self._lock:
            events = sorted(self.events, key=lambda e: e.seq)
        out: dict[tuple[int, int], list[tuple[int, str, str]]] = {}
        for ev in events:
            if ev.ph == "M":
                continue
            out.setdefault((ev.pid, ev.tid), []).append(
                (ev.depth, ev.ph, ev.name)
            )
        return out

    def spans(self, name: str | None = None) -> list[TraceEvent]:
        """All complete spans (optionally filtered by name), seq-ordered."""
        with self._lock:
            evs = [e for e in self.events if e.ph == "X"]
        if name is not None:
            evs = [e for e in evs if e.name == name]
        return sorted(evs, key=lambda e: e.seq)
