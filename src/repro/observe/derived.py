"""Derived metrics: the numbers the paper's figures are actually made of.

Each helper reduces raw instruments (phase timers, comm-wait counters,
OpCounters deltas, per-rank utilization samples) to the quantity a figure
reports — TTS fractions (Fig. 2), comm-wait shares (Fig. 2 companion),
roofline position and lane efficiency (§V-B), vendor/machine utilization
(Fig. 6) — and registers the result as gauges/histograms so traces,
benches, and the CLI all read one source.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import MetricsRegistry


# -- Fig. 2: time-to-solution attribution -------------------------------------
def timing_summary(history) -> dict:
    """Cumulative seconds per phase over a list of StepRecords."""
    total: dict[str, float] = {}
    for rec in history:
        for k, v in rec.timers.items():
            total[k] = total.get(k, 0.0) + v
    return total


def phase_fractions(history) -> dict:
    """Per-phase fraction of total time (the Fig. 2 breakdown shape)."""
    total = timing_summary(history)
    s = sum(total.values())
    if s == 0:
        return {k: 0.0 for k in total}
    return {k: v / s for k, v in total.items()}


@dataclass
class CommWaitRow:
    """One phase of the Fig. 2 companion table: wall vs blocked seconds."""

    phase: str
    wall_seconds: float
    wait_seconds: float

    @property
    def wait_share(self) -> float:
        return self.wait_seconds / max(self.wall_seconds, 1e-12)


def comm_wait_report(records, phases=None) -> list[CommWaitRow]:
    """Per-phase wall/wait totals over distributed StepRecords.

    ``records`` carry ``timers`` and ``comm_wait`` TimerGroup views; the
    report sums them per phase — the overlap engine's observable is these
    waits shrinking while wall stays comparable.  The default phase list
    is the union of keys over every record in first-seen order, so
    subcycled steps contribute their per-rung keys (``"rung/<r>"``) even
    when different steps reached different depths; a record lacking a
    phase counts zero for it.
    """
    if phases is None:
        seen: dict[str, None] = {}
        for rec in records:
            for key in rec.timers:
                seen.setdefault(key)
        phases = list(seen)
    rows = []
    for phase in phases:
        wall = sum(r.timers.get(phase, 0.0) for r in records)
        wait = sum(r.comm_wait.get(phase, 0.0) for r in records)
        rows.append(CommWaitRow(phase, wall, wait))
    return rows


def rung_wait_report(records) -> list[CommWaitRow]:
    """Per-rung wall/wait rows of subcycled distributed StepRecords.

    Collects every ``"rung/<r>"`` phase key the records carry (the
    distributed driver times each substep evaluation under its shallowest
    closing rung) and returns the summed :class:`CommWaitRow` per rung,
    shallowest first — the per-rung companion of :func:`comm_wait_report`
    showing which synchronization levels of the schedule pay wire time.
    """
    keys = sorted(
        {k for rec in records for k in rec.timers if k.startswith("rung/")},
        key=lambda k: int(k.rsplit("/", 1)[1]),
    )
    return comm_wait_report(records, phases=keys)


def comm_wait_fraction(records) -> float:
    """Blocked seconds / wall seconds over every phase of a run."""
    rows = comm_wait_report(records)
    wall = sum(r.wall_seconds for r in rows)
    wait = sum(r.wait_seconds for r in rows)
    return wait / max(wall, 1e-12)


# -- §V-B: roofline position and lane efficiency -------------------------------
@dataclass
class RooflinePoint:
    """Where a kernel (or whole pass) sits against a device roofline."""

    arithmetic_intensity: float  # FLOPs / byte
    flops: float
    attainable_fraction: float  # roofline-attainable / peak at this AI
    bound: str  # "memory" or "compute"

    def achieved_fraction(self, wall_seconds: float, device) -> float:
        """Measured FLOP rate / peak for a pass that took ``wall_seconds``."""
        if wall_seconds <= 0:
            return 0.0
        return self.flops / (device.peak_fp32_flops * wall_seconds)


def roofline_point(counters, device) -> RooflinePoint:
    """Roofline position of an OpCounters delta on a device."""
    ai = counters.arithmetic_intensity
    attainable = device.roofline_flops(ai)
    return RooflinePoint(
        arithmetic_intensity=ai,
        flops=float(counters.flops),
        attainable_fraction=attainable / device.peak_fp32_flops,
        bound="compute" if attainable >= device.peak_fp32_flops else "memory",
    )


def lane_efficiency(counters) -> float:
    """Useful/issued lane fraction of an OpCounters delta."""
    return counters.lane_efficiency


def flop_attribution(tracer, span_name: str = "gpu/kernel_launch") -> dict:
    """FLOPs per kernel, read back from kernel-launch span args.

    Every ``gpu/kernel_launch`` span carries its per-launch OpCounters
    delta; this folds them into ``{kernel_name: flops}`` — the per-phase
    FLOP/s attribution of §V-B without re-running any counter plumbing.
    """
    out: dict[str, float] = {}
    for ev in tracer.spans(span_name):
        kernel = ev.args.get("kernel", "unknown")
        delta = ev.args.get("counters", {})
        out[kernel] = out.get(kernel, 0.0) + float(delta.get("flops", 0.0))
    return out


# -- campaign: per-tenant cost/delivery accounting -----------------------------
@dataclass
class TenantRow:
    """One tenant's campaign totals: cost (wall) vs delivery (sim Gyr)."""

    tenant: str
    jobs_completed: int
    jobs_failed: int
    wall_seconds: float
    sim_gyr: float
    jobs_cancelled: int = 0
    retries: int = 0
    backoff_sim_s: float = 0.0

    @property
    def wall_per_universe(self) -> float:
        return self.wall_seconds / max(self.jobs_completed, 1)


def tenant_report(registry: MetricsRegistry) -> list[TenantRow]:
    """Per-tenant rows derived from the ``campaign/*{tenant=...}``
    labeled counters the scheduler records, sorted by wall cost."""
    tenants: set[str] = set()
    for key in registry.names():
        if key.startswith("campaign/") and "{tenant=" in key:
            tenants.add(key.split("{tenant=", 1)[1].rstrip("}"))

    def _val(name: str, tenant: str) -> float:
        inst = registry.get(f"{name}{{tenant={tenant}}}")
        return inst.value if inst is not None else 0.0

    rows = [
        TenantRow(
            tenant=t,
            jobs_completed=int(_val("campaign/jobs_completed", t)),
            jobs_failed=int(_val("campaign/jobs_failed", t)),
            wall_seconds=_val("campaign/wall_seconds", t),
            sim_gyr=_val("campaign/sim_gyr", t),
            jobs_cancelled=int(_val("campaign/jobs_cancelled", t)),
            retries=int(_val("campaign/retries", t)),
            backoff_sim_s=_val("campaign/backoff_sim_s", t),
        )
        for t in sorted(tenants)
    ]
    rows.sort(key=lambda r: r.wall_seconds, reverse=True)
    return rows


# -- resilience: recovery-pipeline cost ----------------------------------------
@dataclass
class RecoveryPhaseRow:
    """One phase of the detect→resume pipeline: cumulative seconds."""

    phase: str
    seconds: float


def recovery_report(registry: MetricsRegistry) -> list[RecoveryPhaseRow]:
    """Cumulative recovery-pipeline cost per ``resilience/*`` phase.

    The :class:`~repro.resilience.coordinator.RecoveryCoordinator` times
    each phase into scoped counters (``recovery<N>/resilience/<phase>``);
    this sums them across every coordinator in the process and returns
    one row per phase in pipeline order — the recovery-overhead bench's
    raw material.
    """
    from .taxonomy import RESILIENCE_SPANS

    names = registry.names()
    rows = []
    for span in RESILIENCE_SPANS:
        total = 0.0
        for key in names:
            if key == span or key.endswith("/" + span):
                inst = registry.get(key)
                if inst is not None and inst.kind == "counter":
                    total += inst.value
        rows.append(RecoveryPhaseRow(phase=span, seconds=total))
    return rows


# -- Fig. 6: utilization ------------------------------------------------------
def vendor_utilization_table(devices, registry: MetricsRegistry | None = None,
                             ) -> dict:
    """``{vendor: (sustained, peak)}`` single-node utilization (Fig. 6
    left), registered as ``utilization/{sustained,peak}{vendor=...}``
    gauges when a registry is supplied."""
    from ..gpusim.kernels import peak_utilization, sustained_utilization

    out = {}
    for d in devices:
        s = sustained_utilization(d)
        p = peak_utilization(d)
        out[d.vendor] = (s, p)
        if registry is not None:
            registry.gauge("utilization/sustained", vendor=d.vendor).set(s)
            registry.gauge("utilization/peak", vendor=d.vendor).set(p)
    return out


def rank_utilization_distribution(device, a: float, n_ranks: int,
                                  seed: int = 0, flat: bool = False,
                                  registry: MetricsRegistry | None = None,
                                  label: str | None = None) -> np.ndarray:
    """Per-rank utilization samples (Fig. 6 right), recorded as a
    histogram instrument when a registry is supplied."""
    from ..perfmodel.workload import rank_utilization_samples

    samples = rank_utilization_samples(device, a=a, n_ranks=n_ranks,
                                       seed=seed, flat=flat)
    if registry is not None:
        key = label if label is not None else f"a={a:g},flat={flat}"
        registry.histogram("utilization/ranks", phase=key).observe(samples)
    return samples
