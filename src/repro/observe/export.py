"""Chrome trace-event JSON export (Perfetto / ``about://tracing``).

Produces the JSON-object flavour of the Trace Event Format:
``{"traceEvents": [...], "displayTimeUnit": "ms", ...}``.  Timestamps are
microseconds.  Supported phases:

- ``M`` metadata (``process_name`` / ``thread_name``) — one track per
  simulated rank, plus a separate process for simulated-fabric-clock
  events;
- ``X`` complete spans (``ts`` + ``dur``);
- ``b``/``e`` async slices matched on ``(cat, id)`` — in-flight
  nonblocking requests, background I/O drains;
- ``s``/``f`` flow arrows matched on ``id`` — post → wait of a
  nonblocking request;
- ``i`` instants.

Merge determinism: events are ordered by ``(pid, tid, seq)`` — per-rank
entry order — so the *sequence* of events in the exported file is
identical across runs of the same configuration (timestamps excepted),
and multi-rank traces merge the same way every time.
"""

from __future__ import annotations

import json

from .clock import SIM_PID, WALL_PID
from .trace import TraceEvent, Tracer

_US = 1.0e6  # seconds -> microseconds

#: default process names per pid
_PROCESS_NAMES = {WALL_PID: "repro (wall clock)",
                  SIM_PID: "repro (simulated time)"}


def sort_events(events: list[TraceEvent]) -> list[TraceEvent]:
    """Deterministic merge order for multi-rank event streams."""
    return sorted(events, key=lambda e: (e.pid, e.tid, e.seq))


def to_chrome_trace(tracer_or_events, track_names: dict | None = None) -> dict:
    """Render a tracer (or raw event list) as a Chrome trace JSON object."""
    if isinstance(tracer_or_events, Tracer):
        events = list(tracer_or_events.events)
        names = dict(tracer_or_events.track_names)
    else:
        events = list(tracer_or_events)
        names = {}
    if track_names:
        names.update(track_names)

    out = []
    pids = sorted({e.pid for e in events} | {WALL_PID})
    for pid in pids:
        out.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": _PROCESS_NAMES.get(pid, f"process {pid}")},
        })
    for (pid, tid), label in sorted(names.items()):
        out.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": label},
        })

    for ev in sort_events(events):
        rec = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": ev.ph,
            "ts": ev.ts * _US,
            "pid": ev.pid,
            "tid": ev.tid,
        }
        if ev.ph == "X":
            rec["dur"] = ev.dur * _US
        if ev.id is not None:
            rec["id"] = ev.id
        if ev.ph == "f":
            rec["bp"] = "e"  # bind the arrow head to the enclosing slice
        if ev.ph == "i":
            rec["s"] = "t"  # thread-scoped instant
        if ev.args:
            rec["args"] = _jsonable(ev.args)
        out.append(rec)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, tracer_or_events,
                       track_names: dict | None = None) -> dict:
    """Serialize to ``path``; returns the written object."""
    doc = to_chrome_trace(tracer_or_events, track_names)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


def load_chrome_trace(path: str) -> dict:
    """Load an exported trace (round-trip partner of
    :func:`write_chrome_trace`)."""
    with open(path) as fh:
        doc = json.load(fh)
    if "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace-event JSON object")
    return doc


def slice_intervals(doc: dict, name: str, ph: str = "X") -> dict:
    """Extract ``(t0_us, t1_us)`` intervals of named slices per (pid, tid).

    For ``ph="X"`` spans the interval is ``[ts, ts+dur]``; for ``ph="b"``
    async slices it pairs each begin with the next matching-id end.  The
    helper the trace-shape tests (and users poking at artifacts) share.
    """
    out: dict[tuple[int, int], list[tuple[float, float]]] = {}
    if ph == "X":
        for ev in doc["traceEvents"]:
            if ev.get("ph") == "X" and ev.get("name") == name:
                key = (ev["pid"], ev["tid"])
                out.setdefault(key, []).append(
                    (ev["ts"], ev["ts"] + ev.get("dur", 0.0))
                )
        return out
    open_begins: dict[tuple, dict] = {}
    for ev in doc["traceEvents"]:
        if ev.get("name") != name or ev.get("ph") not in ("b", "e"):
            continue
        key = (ev.get("cat"), ev.get("id"))
        if ev["ph"] == "b":
            open_begins[key] = ev
        else:
            b = open_begins.pop(key, None)
            if b is not None:
                track = (b["pid"], b["tid"])
                out.setdefault(track, []).append((b["ts"], ev["ts"]))
    return out


def _jsonable(args: dict) -> dict:
    out = {}
    for k, v in args.items():
        if isinstance(v, (str, int, float, bool)) or v is None:
            out[k] = v
        elif isinstance(v, dict):
            out[k] = _jsonable(v)
        elif isinstance(v, (list, tuple)):
            out[k] = [x if isinstance(x, (str, int, float, bool)) else str(x)
                      for x in v]
        else:
            try:
                out[k] = float(v)
            except (TypeError, ValueError):
                out[k] = str(v)
    return out
