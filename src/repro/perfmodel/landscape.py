"""Simulation landscape data (paper Fig. 1).

Catalog of the state-of-the-art large-volume simulations the paper
compares against, with box sizes and resolution-element counts
(dark-matter/baryon particle *pairs* for hydrodynamic runs, single-species
particle counts for gravity-only runs), plus the matching-resolution line.
Values are from the cited publications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SimulationEntry:
    """One marker of Fig. 1."""

    name: str
    code: str
    box_gpc: float  # comoving box side, Gpc
    resolution_elements: float  # DM-baryon pairs (hydro) or particles (N-body)
    hydro: bool
    gpu_accelerated: bool = False

    @property
    def mass_resolution_proxy(self) -> float:
        """Volume per resolution element (lower = finer mass resolution)."""
        return self.box_gpc**3 / self.resolution_elements


FRONTIER_E = SimulationEntry(
    name="Frontier-E",
    code="CRK-HACC",
    box_gpc=4.7,
    resolution_elements=12600**3,  # 2e12 pairs = 4e12 particles
    hydro=True,
    gpu_accelerated=True,
)

HYDRO_SIMULATIONS = (
    SimulationEntry("FLAMINGO", "SWIFT", 2.8, 5040**3, True),
    SimulationEntry("MillenniumTNG", "AREPO", 0.74, 4320**3, True),
    SimulationEntry("Magneticum", "P-Gadget3", 3.82, 4536**3, True),
)

GRAVITY_ONLY_SIMULATIONS = (
    SimulationEntry("Euclid Flagship", "PKDGRAV3", 4.40, 2.0e12, False),
    SimulationEntry("Last Journey", "HACC", 5.02, 10752**3, False),
    SimulationEntry("Uchuu", "GreeM", 2.96, 12800**3, False),
)


def landscape_catalog() -> list[SimulationEntry]:
    """All Fig. 1 markers, Frontier-E last."""
    return list(HYDRO_SIMULATIONS) + list(GRAVITY_ONLY_SIMULATIONS) + [FRONTIER_E]


def matching_resolution_elements(box_gpc) -> np.ndarray:
    """Fig. 1 dotted line: elements needed to match Frontier-E's mass
    resolution as a function of box size."""
    box_gpc = np.asarray(box_gpc, dtype=np.float64)
    return (
        FRONTIER_E.resolution_elements * (box_gpc / FRONTIER_E.box_gpc) ** 3
    )


def capability_leap_factor() -> float:
    """Frontier-E resolution elements / largest prior hydro simulation.

    The paper quotes 'more than a 15-fold increase over previous efforts'
    in total particles.
    """
    largest = max(s.resolution_elements for s in HYDRO_SIMULATIONS)
    return FRONTIER_E.resolution_elements / largest
