"""Calibrated performance models regenerating the paper's evaluation."""

from .campaign import (
    GRAVITY_ONLY_FACTORS,
    CampaignModel,
    CampaignResult,
    CampaignStep,
    hydro_vs_gravity_cost_ratio,
)
from .ensemble import (
    EnsembleMember,
    EnsemblePlan,
    flagship_vs_ensemble_tradeoff,
    member_cost_node_hours,
    plan_ensemble,
)
from .landscape import (
    FRONTIER_E,
    GRAVITY_ONLY_SIMULATIONS,
    HYDRO_SIMULATIONS,
    SimulationEntry,
    capability_leap_factor,
    landscape_catalog,
    matching_resolution_elements,
)
from .machine import Machine, aurora, frontier, jlse_h100
from .portability import (
    performance_portability,
    portability_verdict,
    solver_portability,
)
from .scaling import (
    ScalingPoint,
    figure4_table,
    machine_flop_rates,
    strong_efficiency,
    strong_scaling_time,
    weak_efficiency,
    weak_scaling_rate,
)
from .workload import (
    clustering_amplitude,
    data_imbalance,
    machine_straggler_factor,
    rank_utilization_samples,
    rank_work_sigma,
    subcycle_depth,
    work_boost,
)

__all__ = [
    "FRONTIER_E",
    "GRAVITY_ONLY_FACTORS",
    "GRAVITY_ONLY_SIMULATIONS",
    "HYDRO_SIMULATIONS",
    "CampaignModel",
    "CampaignResult",
    "CampaignStep",
    "EnsembleMember",
    "EnsemblePlan",
    "Machine",
    "ScalingPoint",
    "SimulationEntry",
    "aurora",
    "capability_leap_factor",
    "clustering_amplitude",
    "data_imbalance",
    "figure4_table",
    "flagship_vs_ensemble_tradeoff",
    "frontier",
    "hydro_vs_gravity_cost_ratio",
    "jlse_h100",
    "landscape_catalog",
    "machine_flop_rates",
    "machine_straggler_factor",
    "member_cost_node_hours",
    "matching_resolution_elements",
    "performance_portability",
    "plan_ensemble",
    "portability_verdict",
    "rank_utilization_samples",
    "solver_portability",
    "rank_work_sigma",
    "strong_efficiency",
    "strong_scaling_time",
    "subcycle_depth",
    "weak_efficiency",
    "weak_scaling_rate",
    "work_boost",
]
