"""Frontier-E campaign model: 625 PM steps of time-to-solution and I/O.

Integrates the full run (paper Figs. 2 and 5): per-step compute component
times whose *shape* over the run follows the clustering-driven workload
model (short-range and analysis costs grow toward z = 0; FFT and tree
build stay flat), and a mechanistic multi-tier I/O trace (checkpoint sizes
growing 150 -> 180 TB with imbalance, NVMe sync writes, asynchronous PFS
bleeds).  Component totals are normalized to the paper's measured
fractions {79.6, 11.6, 2.6, 1.7, 1.7, 2.8}% of the 196-hour wall clock;
the I/O channel is additionally produced by the simulator and verified to
land on the same 2.6% / 5.45 TB/s independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import (
    FRONTIER_E_CHECKPOINT_TB,
    FRONTIER_E_GRAVITY_ONLY_HOURS,
    FRONTIER_E_PM_STEPS,
    FRONTIER_E_SCIENCE_DATA_PB,
    FRONTIER_E_TTS_FRACTIONS,
    FRONTIER_E_WALLCLOCK_HOURS,
)
from ..iosim.nvme import NVMeModel
from ..iosim.pfs import PFSModel
from ..iosim.tiers import MultiTierWriter
from .machine import Machine, frontier
from .workload import clustering_amplitude, data_imbalance, subcycle_depth

#: gravity-only component multipliers relative to the hydro run, calibrated
#: to the paper's "just under 12 hours" (16x cheaper overall): no SPH/CRK
#: kernels or feedback subcycling in the short-range solver, far lighter
#: in situ analysis (no gas/star products), half the checkpoint data.
GRAVITY_ONLY_FACTORS = {
    "short_range": 1.0 / 26.0,
    "analysis": 1.0 / 57.0,
    "io": 1.0 / 5.0,
    "long_range": 1.0,
    "tree_build": 1.0 / 3.0,
    "other": 1.0 / 27.0,
}

#: NVMe derating: sustained achieved bandwidth vs nominal drive spec
#: (filesystem overheads, max-over-nodes variability)
NVME_SUSTAIN_FACTOR = 0.45
#: fixed per-step I/O overhead (file creation, fsync, index writes), seconds
IO_FIXED_OVERHEAD_S = 11.0


@dataclass
class CampaignStep:
    """Per-step record of the campaign model (one Fig. 5 sample)."""

    step: int
    a: float
    z: float
    t_short: float
    t_long: float
    t_tree: float
    t_analysis: float
    t_io: float
    t_other: float
    n_substeps: int
    checkpoint_tb: float
    science_tb: float
    nvme_bw_tbps: float
    pfs_bw_tbps: float

    @property
    def total(self) -> float:
        return (
            self.t_short + self.t_long + self.t_tree
            + self.t_analysis + self.t_io + self.t_other
        )


@dataclass
class CampaignResult:
    """Full-run aggregates and the per-step trace."""

    steps: list
    wallclock_hours: float
    node_hours: float
    total_data_pb: float
    science_data_pb: float
    io_hours: float
    effective_io_tbps: float
    fractions: dict

    def cumulative(self, component: str) -> np.ndarray:
        return np.cumsum([getattr(s, f"t_{component}") for s in self.steps])

    @property
    def gpu_resident_fraction(self) -> float:
        """Fraction of runtime on the GPU: short-range + analysis are
        device-resident (paper: 91.2%)."""
        tot = self.wallclock_hours * 3600.0
        gpu = sum(s.t_short + s.t_analysis for s in self.steps)
        return gpu / tot


class CampaignModel:
    """End-to-end Frontier-E run model."""

    def __init__(
        self,
        machine: Machine | None = None,
        n_steps: int = FRONTIER_E_PM_STEPS,
        a_init: float = 0.02,
        a_final: float = 1.0,
        hydro: bool = True,
        total_hours: float = FRONTIER_E_WALLCLOCK_HOURS,
        seed: int = 12,
    ):
        self.machine = machine or frontier()
        self.n_steps = n_steps
        self.a_init = a_init
        self.a_final = a_final
        self.hydro = hydro
        self.total_hours = total_hours
        self.seed = seed

    # -- workload shapes ---------------------------------------------------------
    def _a_of_step(self, s: int) -> float:
        return self.a_init + (self.a_final - self.a_init) * (s + 1) / self.n_steps

    def _short_weight(self, a: float) -> float:
        """Relative short-range cost per step: grows with clustering and
        subcycle depth (late steps several times costlier than early)."""
        return 1.0 + 7.0 * clustering_amplitude(a) ** 1.5

    def _analysis_weight(self, a: float) -> float:
        """Clustering analysis cost tracks the number of collapsed objects."""
        return 0.3 + 2.0 * clustering_amplitude(a)

    def run(self) -> CampaignResult:
        n = self.n_steps
        a = np.array([self._a_of_step(s) for s in range(n)])
        fr = FRONTIER_E_TTS_FRACTIONS
        total_s = self.total_hours * 3600.0
        gfac = (
            {k: 1.0 for k in GRAVITY_ONLY_FACTORS}
            if self.hydro
            else GRAVITY_ONLY_FACTORS
        )

        # component per-step times: shape x normalization to paper fractions
        w_short = np.array([self._short_weight(x) for x in a])
        t_short = w_short / w_short.sum() * fr["short_range"] * total_s
        t_short *= gfac["short_range"]

        w_ana = np.array([self._analysis_weight(x) for x in a])
        t_analysis = w_ana / w_ana.sum() * fr["analysis"] * total_s
        t_analysis *= gfac["analysis"]

        t_long = np.full(n, fr["long_range"] * total_s / n) * gfac["long_range"]
        t_tree = np.full(n, fr["tree_build"] * total_s / n) * gfac["tree_build"]
        t_other = (
            (0.5 * np.full(n, 1.0 / n) + 0.5 * w_short / w_short.sum())
            * fr["other"] * total_s * gfac["other"]
        )

        # mechanistic I/O: checkpoint every step + periodic science output
        ck_lo, ck_hi = FRONTIER_E_CHECKPOINT_TB
        nvme = NVMeModel(
            capacity_tb=3.5,
            write_bw_gbps=4.0 * NVME_SUSTAIN_FACTOR * (1 if self.hydro else 0.9),
        )
        writer = MultiTierWriter(
            n_nodes=self.machine.n_nodes,
            nvme=nvme,
            pfs=PFSModel(seed=self.seed),
            retention_steps=2,
        )
        science_total_tb = FRONTIER_E_SCIENCE_DATA_PB * 1000.0
        analysis_every = 6  # science output cadence
        # the gravity-only comparison run checkpoints less aggressively
        # (cheaper steps -> less work at risk per Young/Daly)
        checkpoint_every = 1 if self.hydro else 5
        n_science_steps = max(len([s for s in range(n) if s % analysis_every == 0]), 1)
        science_per_step_tb = science_total_tb / n_science_steps

        t_io = np.zeros(n)
        ck_tb = np.zeros(n)
        sci_tb = np.zeros(n)
        nvme_bw = np.zeros(n)
        pfs_bw = np.zeros(n)
        # the I/O channel is fully mechanistic in both modes: gravity-only
        # checkpoints half the particle data (one species) and produces
        # almost no science output
        species_data_factor = 1.0 if self.hydro else 0.5
        science_factor = 1.0 if self.hydro else 0.1
        for s in range(n):
            cl = clustering_amplitude(a[s])
            if s % checkpoint_every != 0:
                continue
            size = (ck_lo + (ck_hi - ck_lo) * cl) * species_data_factor
            science_step = s % analysis_every == 0
            sci = science_per_step_tb * science_factor if science_step else 0.0
            compute_next = float(t_short[s] + t_long[s] + t_tree[s] + t_analysis[s])
            rec = writer.checkpoint(
                s,
                data_tb=size + sci,
                compute_seconds=compute_next,
                imbalance=data_imbalance(a[s]),
                concurrent_analysis_read=science_step,
            )
            t_io[s] = rec.sync_seconds + rec.stall_seconds + IO_FIXED_OVERHEAD_S
            ck_tb[s] = size
            sci_tb[s] = sci
            nvme_bw[s] = rec.nvme_bw_tbps
            pfs_bw[s] = rec.pfs_bw_tbps

        steps = [
            CampaignStep(
                step=s,
                a=float(a[s]),
                z=float(1.0 / a[s] - 1.0),
                t_short=float(t_short[s]),
                t_long=float(t_long[s]),
                t_tree=float(t_tree[s]),
                t_analysis=float(t_analysis[s]),
                t_io=float(t_io[s]),
                t_other=float(t_other[s]),
                n_substeps=2 ** subcycle_depth(float(a[s])),
                checkpoint_tb=float(ck_tb[s]),
                science_tb=float(sci_tb[s]),
                nvme_bw_tbps=float(nvme_bw[s]),
                pfs_bw_tbps=float(pfs_bw[s]),
            )
            for s in range(n)
        ]

        wall_s = sum(st.total for st in steps)
        io_s = float(t_io.sum())
        data_pb = float((ck_tb.sum() + sci_tb.sum()) / 1000.0)
        fractions = {
            "short_range": float(t_short.sum() / wall_s),
            "analysis": float(t_analysis.sum() / wall_s),
            "io": io_s / wall_s,
            "long_range": float(t_long.sum() / wall_s),
            "tree_build": float(t_tree.sum() / wall_s),
            "other": float(t_other.sum() / wall_s),
        }
        return CampaignResult(
            steps=steps,
            wallclock_hours=wall_s / 3600.0,
            node_hours=wall_s / 3600.0 * self.machine.n_nodes,
            total_data_pb=data_pb,
            science_data_pb=float(sci_tb.sum() / 1000.0),
            io_hours=io_s / 3600.0,
            effective_io_tbps=float((ck_tb.sum() + sci_tb.sum()) / max(io_s, 1e-9)),
            fractions=fractions,
        )


def schedule_events(result: CampaignResult) -> list:
    """Render a campaign result as simulated-clock trace events.

    One ``step`` span per PM step on the simulated-time process
    (``SIM_PID``, tid 1), with the component times (``short_range``,
    ``long_range``, ``tree_build``, ``analysis``, ``io``, ``other``)
    nested inside it back-to-back — the full 625-step Frontier-E
    timeline, loadable in Perfetto next to wall-clock traces.
    """
    from ..observe.clock import SIM_PID
    from ..observe.trace import TraceEvent

    events = []
    seq = 0
    t = 0.0
    for st in result.steps:
        components = (
            ("short_range", st.t_short), ("long_range", st.t_long),
            ("tree_build", st.t_tree), ("analysis", st.t_analysis),
            ("io", st.t_io), ("other", st.t_other),
        )
        events.append(TraceEvent(
            name="step", ph="X", ts=t, dur=st.total, pid=SIM_PID, tid=1,
            cat="campaign_model", seq=seq,
            args={"step": st.step, "a": st.a, "z": st.z,
                  "n_substeps": st.n_substeps,
                  "checkpoint_tb": st.checkpoint_tb},
        ))
        seq += 1
        tc = t
        for name, dur in components:
            if dur <= 0.0:
                continue
            events.append(TraceEvent(
                name=name, ph="X", ts=tc, dur=dur, pid=SIM_PID, tid=1,
                cat="campaign_model", seq=seq, depth=1,
            ))
            seq += 1
            tc += dur
        t += st.total
    return events


def export_schedule(result: CampaignResult, path: str | None = None) -> dict:
    """Chrome-trace JSON of the campaign step schedule (write to ``path``
    when given); the ROADMAP's "campaign timeline in Perfetto" artifact."""
    from ..observe.clock import SIM_PID
    from ..observe.export import to_chrome_trace, write_chrome_trace

    events = schedule_events(result)
    names = {(SIM_PID, 1): "campaign schedule (625-step model)"}
    if path is not None:
        return write_chrome_trace(path, events, track_names=names)
    return to_chrome_trace(events, track_names=names)


def hydro_vs_gravity_cost_ratio(machine: Machine | None = None) -> dict:
    """The paper's 16x hydro/gravity-only cost comparison (Section VI-B)."""
    hydro = CampaignModel(machine=machine, hydro=True).run()
    gravity = CampaignModel(machine=machine, hydro=False).run()
    return {
        "hydro_hours": hydro.wallclock_hours,
        "gravity_only_hours": gravity.wallclock_hours,
        "ratio": hydro.wallclock_hours / gravity.wallclock_hours,
    }
