"""Clustering-driven workload evolution (paper Sections V-C, VI-C, Fig. 3/6).

At high redshift the matter distribution is nearly homogeneous and work is
balanced; by z = 0 matter has collapsed into halos and filaments, so
per-rank work and timestep depth vary strongly.  This module models that
evolution: the per-rank work spread (lognormal, widening toward z = 0),
the checkpoint-size imbalance (growing to ~2x), subcycle depth, and the
utilization boost dense neighborhoods give the interaction kernels.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.device import GPUSpec
from ..gpusim.kernels import peak_utilization, sustained_utilization


def clustering_amplitude(a: float) -> float:
    """Dimensionless clustering strength in [0, 1] at scale factor a.

    Tracks the nonlinear mass fraction: ~0 in the homogeneous era,
    saturating toward z = 0.  A logistic in log(a) with midpoint near
    z ~ 2 reproduces the qualitative growth of sigma8(a).
    """
    a = np.clip(a, 1e-4, 1.0)
    x = np.log(a / 0.33) / 0.35  # midpoint z ~ 2
    return float(1.0 / (1.0 + np.exp(-x)))


def rank_work_sigma(a: float) -> float:
    """Lognormal sigma of the per-rank throughput/utilization spread.

    Narrow while the universe is homogeneous; broadens at low redshift as
    timestep depth and halo occupancy vary across ranks (Fig. 6 right).
    """
    return 0.012 + 0.088 * clustering_amplitude(a)


def data_imbalance(a: float) -> float:
    """Max/mean checkpoint shard size (paper: grows to ~2x by run's end)."""
    return 1.0 + 1.0 * clustering_amplitude(a)


def subcycle_depth(a: float, max_depth: int = 12) -> int:
    """Deepest local timestep rung at scale factor a.

    High-z steps are nearly synchronous; by late times feedback in dense
    regions forces thousands of substeps per PM step (paper Section IV-A):
    depth 11-12 -> 2048-4096 substeps.
    """
    depth = 2 + clustering_amplitude(a) * (max_depth - 2)
    return int(round(min(depth, max_depth)))


def work_boost(a: float, max_boost: float = 0.057) -> float:
    """Kernel-efficiency boost from denser interaction lists at low z.

    Calibrated so sustained utilization moves 26.5% -> 28% over the run
    (Fig. 6 right).
    """
    return max_boost * clustering_amplitude(a)


def rank_utilization_samples(
    device: GPUSpec,
    a: float,
    n_ranks: int,
    seed: int = 0,
    flat: bool = False,
    kind: str = "sustained",
) -> np.ndarray:
    """Per-rank device-utilization samples (paper Fig. 6 right panel).

    ``flat=True`` reproduces the artificial synchronized-timestep
    configuration: the per-rank *time-integration* variability vanishes,
    leaving only the narrow hardware-level spread, while the mean stays
    put — the paper's evidence that adaptive stepping costs nothing.
    """
    rng = np.random.default_rng(seed)
    if kind == "sustained":
        mean = sustained_utilization(device, work_boost=work_boost(a))
    elif kind == "peak":
        mean = peak_utilization(device) * (1.0 + 0.35 * work_boost(a))
    else:
        raise ValueError(f"unknown kind {kind!r}")

    base_sigma = 0.012  # hardware/measurement jitter, always present
    timestep_sigma = 0.0 if flat else rank_work_sigma(a)
    sigma = float(np.hypot(base_sigma, timestep_sigma))
    samples = mean * rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n_ranks)
    return np.clip(samples, 0.0, 1.0)


def machine_straggler_factor(a: float, n_ranks: int) -> float:
    """Max-over-ranks time penalty: machine-level rate = mean rate / factor.

    The paper conservatively measures system FLOPs with the *max* time
    across ranks (Section V-B), so whole-machine utilization sits below the
    per-GPU mean by the expected-maximum factor of the work distribution,
    exp(sigma * sqrt(2 ln n)) for a lognormal spread (deterministic
    approximation of E[max]/mean).
    """
    n = max(n_ranks, 2)
    sigma = rank_work_sigma(a)
    return float(np.exp(sigma * np.sqrt(2.0 * np.log(n))))
