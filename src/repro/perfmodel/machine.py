"""Machine descriptions: Frontier, Aurora, JLSE (paper Section V-A)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpusim.device import H100_SXM5, MI250X_GCD, PVC_TILE, GPUSpec
from ..iosim.nvme import NVMeModel
from ..iosim.pfs import PFSModel


@dataclass(frozen=True)
class Machine:
    """A GPU system as CRK-HACC sees it: ranks = GPU compute units."""

    name: str
    n_nodes: int
    gpus_per_node: int  # MPI ranks per node (one per GCD / tile / device)
    device: GPUSpec
    nvme_per_node: NVMeModel = field(default_factory=NVMeModel)
    pfs: PFSModel = field(default_factory=PFSModel)
    interconnect: str = "Slingshot 11 dragonfly"

    @property
    def n_ranks(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def peak_fp32_flops(self) -> float:
        return self.n_ranks * self.device.peak_fp32_flops

    @property
    def peak_fp32_eflops(self) -> float:
        return self.peak_fp32_flops / 1.0e18

    @property
    def aggregate_nvme_write_tbps(self) -> float:
        return self.n_nodes * self.nvme_per_node.write_bw_gbps / 1000.0

    def subset(self, n_nodes: int) -> "Machine":
        """The same machine at a smaller node count (for scaling sweeps)."""
        return Machine(
            name=self.name,
            n_nodes=n_nodes,
            gpus_per_node=self.gpus_per_node,
            device=self.device,
            nvme_per_node=self.nvme_per_node,
            pfs=self.pfs,
            interconnect=self.interconnect,
        )


def frontier(n_nodes: int = 9000) -> Machine:
    """OLCF Frontier: 64-core Trento + 4x MI250X (8 GCDs) per node.

    The Frontier-E campaign used 9,000 of the 9,408 nodes (>95%), for a
    theoretical 1.72 EFLOPs FP32 and 36 TB/s aggregate NVMe write bandwidth.
    """
    return Machine(
        name="Frontier",
        n_nodes=n_nodes,
        gpus_per_node=8,
        device=MI250X_GCD,
        nvme_per_node=NVMeModel(capacity_tb=3.5, write_bw_gbps=4.0,
                                read_bw_gbps=8.0),
        pfs=PFSModel(peak_write_tbps=4.6, peak_read_tbps=5.5),
    )


def aurora(n_nodes: int = 2048) -> Machine:
    """ALCF Aurora: 2x Xeon Max + 6x PVC (12 tiles) per node; RAM-disk tier."""
    return Machine(
        name="Aurora",
        n_nodes=n_nodes,
        gpus_per_node=12,
        device=PVC_TILE,
        nvme_per_node=NVMeModel(capacity_tb=1.0, write_bw_gbps=8.0,
                                read_bw_gbps=12.0),  # RAM-disk stand-in
        pfs=PFSModel(peak_write_tbps=2.0, peak_read_tbps=3.0),
        interconnect="Slingshot 11 dragonfly",
    )


def jlse_h100(n_nodes: int = 1) -> Machine:
    """JLSE H100 testbed: 2x Xeon 8468 + 4x H100 SXM5 per node."""
    return Machine(
        name="JLSE H100",
        n_nodes=n_nodes,
        gpus_per_node=4,
        device=H100_SXM5,
        nvme_per_node=NVMeModel(capacity_tb=7.0, write_bw_gbps=6.0,
                                read_bw_gbps=12.0),
        pfs=PFSModel(peak_write_tbps=0.2, peak_read_tbps=0.3),
        interconnect="InfiniBand",
    )
