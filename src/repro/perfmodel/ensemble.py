"""Ensemble campaign planning (paper §VII, Implications).

The paper argues the demonstrated throughput "advances the scale and
fidelity of ensemble campaigns — important for building emulators,
incorporating AI/ML approaches, calibrating models, and estimating
covariances."  This module turns that into arithmetic: given a node-hour
budget and the calibrated campaign model, how many ensemble members fit at
which resolution, and what covariance precision do they buy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import FRONTIER_E_PARTICLES
from .campaign import CampaignModel
from .machine import Machine, frontier


@dataclass
class EnsembleMember:
    """One simulation design in an ensemble campaign."""

    name: str
    particles: float
    box_gpc: float
    hydro: bool
    node_hours: float


def member_cost_node_hours(
    particles: float,
    hydro: bool = True,
    machine: Machine | None = None,
) -> float:
    """Node-hours for one member, scaled from the Frontier-E anchor.

    Solver cost scales ~linearly with particle count at fixed per-step
    depth (the weak-scaling regime); hydro carries the measured ~16x
    multiplier over gravity-only.
    """
    machine = machine or frontier()
    anchor = CampaignModel(machine=machine, hydro=hydro).run().node_hours
    return anchor * particles / FRONTIER_E_PARTICLES


@dataclass
class EnsemblePlan:
    """A budgeted ensemble design."""

    members: list
    total_node_hours: float
    budget_node_hours: float

    @property
    def n_members(self) -> int:
        return len(self.members)

    @property
    def budget_used(self) -> float:
        return self.total_node_hours / self.budget_node_hours

    def covariance_precision(self, n_observables: int = 20) -> float:
        """Fractional covariance-matrix error ~ sqrt(2 / (N - p - 2)).

        The Taylor et al. scaling for sample covariances from N
        realizations of p observables; the reason ensembles need many
        members.
        """
        dof = self.n_members - n_observables - 2
        if dof <= 0:
            return float("inf")
        return float(np.sqrt(2.0 / dof))


def plan_ensemble(
    budget_node_hours: float,
    particles_per_member: float,
    hydro: bool = True,
    machine: Machine | None = None,
    reserve_fraction: float = 0.05,
) -> EnsemblePlan:
    """Fill a node-hour budget with identical ensemble members.

    ``reserve_fraction`` holds back machine time for failures and restarts
    (the MTTI reality of Section IV-B4).
    """
    if budget_node_hours <= 0:
        raise ValueError("budget must be positive")
    cost = member_cost_node_hours(particles_per_member, hydro, machine)
    usable = budget_node_hours * (1.0 - reserve_fraction)
    n = int(usable // cost)
    members = [
        EnsembleMember(
            name=f"member_{i:03d}",
            particles=particles_per_member,
            box_gpc=4.7 * (particles_per_member / FRONTIER_E_PARTICLES) ** (1 / 3),
            hydro=hydro,
            node_hours=cost,
        )
        for i in range(n)
    ]
    return EnsemblePlan(
        members=members,
        total_node_hours=n * cost,
        budget_node_hours=budget_node_hours,
    )


def flagship_vs_ensemble_tradeoff(
    budget_node_hours: float, machine: Machine | None = None
) -> dict:
    """The §VII design question: one flagship or N smaller members?

    Compares a single Frontier-E-class run against ensembles at 1/8 and
    1/64 the particle count under the same budget.
    """
    out = {}
    for frac, label in ((1.0, "flagship"), (1 / 8, "eighth"), (1 / 64, "64th")):
        plan = plan_ensemble(
            budget_node_hours, FRONTIER_E_PARTICLES * frac, machine=machine
        )
        out[label] = {
            "members": plan.n_members,
            "covariance_precision": plan.covariance_precision(),
            "node_hours_per_member": (
                plan.members[0].node_hours if plan.members else float("nan")
            ),
        }
    return out
