"""Performance portability across GPU vendors (paper §VI-C and Ref. [20]).

The paper demonstrates CRK-HACC sustains consistent utilization on AMD,
Intel, and NVIDIA hardware; its Ref. [20] (Rangel, Pennycook, et al.)
quantifies this with the Pennycook performance-portability metric: the
harmonic mean of an application's efficiency over a platform set H,

    PP(a, p, H) = |H| / sum_i 1 / e_i(a, p),

which is zero if any platform fails and rewards uniform efficiency.  Here
the per-platform efficiencies come from the calibrated utilization model
(architectural efficiency: achieved / peak FP32).
"""

from __future__ import annotations

import numpy as np

from ..gpusim.device import H100_SXM5, MI250X_GCD, PVC_TILE, GPUSpec
from ..gpusim.kernels import peak_utilization, sustained_utilization

DEFAULT_PLATFORMS = (MI250X_GCD, PVC_TILE, H100_SXM5)


def performance_portability(efficiencies) -> float:
    """Pennycook PP metric: harmonic mean; 0 if any platform is 0."""
    e = np.asarray(list(efficiencies), dtype=np.float64)
    if len(e) == 0:
        raise ValueError("need at least one platform")
    if np.any(e < 0) or np.any(e > 1):
        raise ValueError("efficiencies must lie in [0, 1]")
    if np.any(e == 0):
        return 0.0
    return float(len(e) / np.sum(1.0 / e))


def solver_portability(
    platforms: tuple[GPUSpec, ...] = DEFAULT_PLATFORMS,
    kind: str = "sustained",
) -> dict:
    """PP of the CRK-HACC solver over the paper's three platforms.

    ``kind`` selects sustained (whole solver stack) or peak (best kernel)
    architectural efficiency.
    """
    if kind == "sustained":
        eff = {d.vendor: sustained_utilization(d) for d in platforms}
    elif kind == "peak":
        eff = {d.vendor: peak_utilization(d) for d in platforms}
    else:
        raise ValueError(f"unknown kind {kind!r}")
    return {
        "efficiencies": eff,
        "pp": performance_portability(eff.values()),
        "kind": kind,
    }


def portability_verdict(pp: float, best_efficiency: float) -> str:
    """Qualitative reading: PP close to the best single-platform
    efficiency means the code is genuinely portable (no platform is
    carried by the others)."""
    if pp == 0.0:
        return "not portable (fails on at least one platform)"
    ratio = pp / best_efficiency
    if ratio > 0.9:
        return "performance portable (uniform efficiency across platforms)"
    if ratio > 0.6:
        return "mostly portable (one platform lags)"
    return "poorly portable (efficiency dominated by one platform)"
