"""Strong/weak scaling and machine FLOP-rate model (paper Fig. 4, §VI-A).

Scaling losses come from mechanisms with known shapes — the distributed
FFT's log-P communication growth, collective synchronization, and the
straggler factor of the per-rank work spread — folded into a single
``1/(1 + alpha log2(P/P_ref))`` efficiency law per mode.  The alpha
constants are calibrated so the 9,000-node anchors land exactly on the
paper's measurements (92% strong, 95% weak efficiency); everything in
between follows the log shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import (
    FRONTIER_E_NODES,
    FRONTIER_E_PARTICLES_PER_SEC,
    FRONTIER_E_PEAK_PFLOPS,
    FRONTIER_E_STRONG_EFFICIENCY,
    FRONTIER_E_SUSTAINED_PFLOPS,
    FRONTIER_E_WEAK_EFFICIENCY,
)
from ..gpusim.kernels import peak_utilization, sustained_utilization
from .machine import Machine, frontier
from .workload import machine_straggler_factor, work_boost

#: node count of the smallest configuration in Fig. 4
SCALING_MIN_NODES = 128
#: strong-scaling problem size (paper: 2 x 3840^3, the 256-node weak config)
STRONG_SCALING_PARTICLES = 2 * 3840**3

_REF_RANKS = SCALING_MIN_NODES * 8
_FULL_RANKS = FRONTIER_E_NODES * 8


def _alpha_from_anchor(efficiency_at_full: float) -> float:
    """Solve eff = 1/(1 + alpha log2(P_full/P_ref)) for alpha."""
    span = np.log2(_FULL_RANKS / _REF_RANKS)
    return (1.0 / efficiency_at_full - 1.0) / span


ALPHA_WEAK = _alpha_from_anchor(FRONTIER_E_WEAK_EFFICIENCY)
ALPHA_STRONG = _alpha_from_anchor(FRONTIER_E_STRONG_EFFICIENCY)

#: scale factor of the paper's high-redshift measurement window (z ~ 9)
HIGH_Z_A = 0.1

# Residual calibration for whole-machine rates: kernel-launch transients
# and profiling overheads the utilization/straggler decomposition does not
# capture.  Set so the Frontier-E anchors land exactly (513.1 / 420.5
# PFLOPs); both factors are within a few percent of unity, i.e. the
# mechanistic model carries ~97% of the answer.
PEAK_RATE_CALIBRATION = 0.9685
SUSTAINED_RATE_CALIBRATION = 0.9836


def weak_efficiency(n_nodes) -> np.ndarray:
    """Weak-scaling efficiency relative to the 128-node baseline."""
    p = np.asarray(n_nodes, dtype=np.float64) * 8
    return 1.0 / (1.0 + ALPHA_WEAK * np.maximum(np.log2(p / _REF_RANKS), 0.0))


def strong_efficiency(n_nodes) -> np.ndarray:
    """Strong-scaling efficiency relative to the 128-node baseline."""
    p = np.asarray(n_nodes, dtype=np.float64) * 8
    return 1.0 / (1.0 + ALPHA_STRONG * np.maximum(np.log2(p / _REF_RANKS), 0.0))


def weak_scaling_rate(n_nodes) -> np.ndarray:
    """Particles processed per second at each node count (weak scaling).

    Per-rank problem size fixed at the Frontier-E loading; anchored so the
    full machine processes 46.6e9 particles/s.
    """
    nodes = np.asarray(n_nodes, dtype=np.float64)
    per_rank_ideal = FRONTIER_E_PARTICLES_PER_SEC / (
        _FULL_RANKS * weak_efficiency(FRONTIER_E_NODES)
    )
    return nodes * 8 * per_rank_ideal * weak_efficiency(nodes)


def strong_scaling_time(n_nodes) -> np.ndarray:
    """Seconds per high-z step for the fixed 2 x 3840^3 problem."""
    nodes = np.asarray(n_nodes, dtype=np.float64)
    # loss-free per-rank rate from the weak-scaling anchor
    per_rank_rate_ideal = FRONTIER_E_PARTICLES_PER_SEC / (
        _FULL_RANKS * weak_efficiency(FRONTIER_E_NODES)
    )
    t_ideal = STRONG_SCALING_PARTICLES / (per_rank_rate_ideal * nodes * 8)
    return t_ideal / strong_efficiency(nodes)


def machine_flop_rates(
    machine: Machine | None = None, a: float = HIGH_Z_A
) -> dict:
    """Peak and sustained machine FLOP rates (PFLOPs) at scale factor a.

    mean-per-GPU utilization x aggregate peak, divided by the straggler
    factor (the paper's conservative max-time convention).
    """
    machine = machine or frontier()
    boost = work_boost(a)
    straggler = machine_straggler_factor(a, machine.n_ranks)
    sustained = (
        sustained_utilization(machine.device, work_boost=boost)
        * machine.peak_fp32_flops
        / straggler
        * SUSTAINED_RATE_CALIBRATION
    )
    peak = (
        peak_utilization(machine.device)
        * (1.0 + 0.35 * boost)
        * machine.peak_fp32_flops
        / straggler
        * PEAK_RATE_CALIBRATION
    )
    return {
        "peak_pflops": peak / 1.0e15,
        "sustained_pflops": sustained / 1.0e15,
        "straggler_factor": straggler,
        "machine_peak_pflops_theoretical": machine.peak_fp32_flops / 1.0e15,
    }


@dataclass
class ScalingPoint:
    """One row of the Fig. 4 data."""

    n_nodes: int
    weak_particles_per_sec: float
    weak_efficiency: float
    strong_seconds_per_step: float
    strong_efficiency: float


def figure4_table(node_counts=None) -> list[ScalingPoint]:
    """The full Fig. 4 dataset: strong+weak curves from 128 to 9,000 nodes."""
    if node_counts is None:
        node_counts = [128, 256, 512, 1024, 2048, 4096, 9000]
    rows = []
    for n in node_counts:
        rows.append(
            ScalingPoint(
                n_nodes=n,
                weak_particles_per_sec=float(weak_scaling_rate(n)),
                weak_efficiency=float(weak_efficiency(n)),
                strong_seconds_per_step=float(strong_scaling_time(n)),
                strong_efficiency=float(strong_efficiency(n)),
            )
        )
    return rows
