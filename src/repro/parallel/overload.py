"""Particle overloading: ghost replication across rank boundaries.

Every rank holds its owned particles plus copies of all particles within
``overload_width`` of its domain (periodic-aware), so short-range forces
never need communication during a PM step — the defining CRK-HACC design
choice (paper Section IV-A).  After the step, refreshed ghosts are
re-exchanged and particles that drifted across boundaries migrate owners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .decomposition import CartesianDecomposition


@dataclass
class OverloadedDomain:
    """One rank's overloaded particle view."""

    rank: int
    owned_idx: np.ndarray  # global indices of owned particles
    ghost_idx: np.ndarray  # global indices of replicated boundary particles
    # ghost positions may be shifted by a box period so they are spatially
    # contiguous with the rank domain
    ghost_shift: np.ndarray  # (n_ghost, 3) additive periodic shifts

    @property
    def n_owned(self) -> int:
        return len(self.owned_idx)

    @property
    def n_ghost(self) -> int:
        return len(self.ghost_idx)

    @property
    def overload_fraction(self) -> float:
        return self.n_ghost / max(self.n_owned, 1)


def _ghost_images(pos, lo, hi, width, box, exclude_unshifted=False):
    """All (index, shift) pairs whose shifted copy lies in the expanded
    domain [lo - width, hi + width).

    Enumerates the 27 periodic images explicitly: a particle can enter a
    rank's overloaded region through several wraps at once when the domain
    spans (nearly) the whole box in some dimension — including a rank's
    *own* particles, whose nonzero-shift images act as short-range sources
    across the periodic boundary.  ``exclude_unshifted`` drops the
    zero-shift copies (used for dest == self, where those are the owned
    particles themselves).
    """
    pos = np.asarray(pos, dtype=np.float64)
    idx_chunks = []
    shift_chunks = []
    lo_e = lo - width
    hi_e = hi + width
    for sx in (-box, 0.0, box):
        for sy in (-box, 0.0, box):
            for sz in (-box, 0.0, box):
                shift = np.array([sx, sy, sz])
                if exclude_unshifted and sx == sy == sz == 0.0:
                    continue
                shifted = pos + shift
                mask = np.all((shifted >= lo_e) & (shifted < hi_e), axis=1)
                if mask.any():
                    sel = np.nonzero(mask)[0]
                    idx_chunks.append(sel)
                    shift_chunks.append(np.broadcast_to(shift, (len(sel), 3)))
    if idx_chunks:
        return np.concatenate(idx_chunks), np.vstack(shift_chunks)
    return np.empty(0, dtype=np.int64), np.empty((0, 3))


def _in_expanded_domain(pos, lo, hi, width, box):
    """Back-compat single-image mask (first matching wrap per particle)."""
    idx, shift = _ghost_images(pos, lo, hi, width, box)
    n = len(pos)
    mask = np.zeros(n, dtype=bool)
    out_shift = np.zeros((n, 3))
    # keep the first image per particle (ordering: shift loop order)
    seen = set()
    for i, s in zip(idx.tolist(), shift):
        if i not in seen:
            seen.add(i)
            mask[i] = True
            out_shift[i] = s
    return mask, out_shift


def build_overloaded_domains(
    pos: np.ndarray,
    decomp: CartesianDecomposition,
    overload_width: float,
) -> list[OverloadedDomain]:
    """Compute owned + ghost particle sets for every rank (global view).

    This is the serial "oracle" used to validate the communicating exchange
    and to drive single-process multi-rank simulations.
    """
    pos = np.mod(np.asarray(pos, dtype=np.float64), decomp.box)
    if overload_width < 0:
        raise ValueError("overload_width must be non-negative")
    if 2.0 * overload_width >= decomp.widths.min():
        raise ValueError(
            "overload width exceeds half the rank domain width; "
            "decomposition too fine for this interaction range"
        )
    owner = decomp.rank_of_positions(pos)
    domains = []
    for rank in range(decomp.n_ranks):
        lo, hi = decomp.bounds(rank)
        owned = np.nonzero(owner == rank)[0]
        idx, shift = _ghost_images(pos, lo, hi, overload_width, decomp.box)
        # the unshifted copies of this rank's own particles are the owned
        # set, not ghosts; shifted self-images ARE ghosts (periodic wrap
        # sources for short-range forces)
        unshifted = np.all(shift == 0.0, axis=1)
        keep = ~(unshifted & (owner[idx] == rank))
        domains.append(
            OverloadedDomain(
                rank=rank,
                owned_idx=owned,
                ghost_idx=idx[keep],
                ghost_shift=shift[keep],
            )
        )
    return domains


def exchange_overload(comm, pos_local, ids_local, decomp, overload_width):
    """Communicating ghost exchange (runs inside a SimComm rank function).

    Each rank ships boundary particles to every neighbor whose expanded
    domain they intersect via ``alltoallv``.  Returns (ghost_pos, ghost_ids)
    received by this rank, with periodic shifts already applied.
    """
    rank = comm.rank
    pos_local = np.asarray(pos_local, dtype=np.float64)
    outgoing_pos = []
    outgoing_ids = []
    for dest in range(comm.size):
        lo, hi = decomp.bounds(dest)
        # to self: only shifted images (periodic-wrap sources); to others:
        # every image that lands in their overloaded region
        idx, shift = _ghost_images(
            pos_local, lo, hi, overload_width, decomp.box,
            exclude_unshifted=(dest == rank),
        )
        outgoing_pos.append(pos_local[idx] + shift)
        outgoing_ids.append(np.asarray(ids_local)[idx])

    got_pos = comm.alltoallv(outgoing_pos)
    got_ids = comm.alltoallv(outgoing_ids)
    ghost_pos = np.concatenate(got_pos) if got_pos else np.empty((0, 3))
    ghost_ids = np.concatenate(got_ids) if got_ids else np.empty(0, dtype=np.int64)
    return ghost_pos, ghost_ids


class MigrationFlight:
    """A nonblocking particle migration in flight, shipped in two waves.

    The closing half-kick of a KDK step only touches ``vel``/``u``, so
    the destination of every particle is fixed the moment the final drift
    lands.  Wave 1 (posted right then, before the closing force
    evaluation) ships wrapped positions plus the kick-invariant fields;
    wave 2 (posted once the closing kick has landed) ships the fields the
    kick still mutates — velocities, internal energy, and the cached
    ``acc_long`` rows that ride through migration.  Both waves reuse the
    per-destination owner selections computed at wave-1 time and keep
    source row order, the exact chunking of :func:`migrate_particles`, so
    the settled arrays are bitwise identical to the blocking exchange.

    ``cancel`` settles every posted request (idempotently) so an abort
    cascade between post and settle leaves no leaked handles for the comm
    sanitizer to report.
    """

    def __init__(self, comm, pos_local, early_fields, decomp):
        self._comm = comm
        wrapped = np.mod(np.asarray(pos_local, dtype=np.float64), decomp.box)
        owner = decomp.rank_of_positions(wrapped)
        self._sels = [owner == dest for dest in range(comm.size)]
        self._reqs1 = {"pos": comm.ialltoallv(
            [wrapped[sel] for sel in self._sels]
        )}
        for k, arr in early_fields.items():
            self._reqs1[k] = comm.ialltoallv(
                [np.asarray(arr)[sel] for sel in self._sels]
            )
        self._reqs2: dict = {}
        self.arrivals_settled = False

    def post_payload(self, late_fields: dict) -> None:
        """Post wave 2 using the wave-1 owner selections."""
        for k, arr in late_fields.items():
            self._reqs2[k] = self._comm.ialltoallv(
                [np.asarray(arr)[sel] for sel in self._sels]
            )

    def settle_arrivals(self) -> dict:
        """Complete wave 1: ``{"pos": ..., <early field>: ...}`` arrays."""
        out = {k: np.concatenate(r.wait()) for k, r in self._reqs1.items()}
        self.arrivals_settled = True
        return out

    def settle_payload(self) -> dict:
        """Complete wave 2: the late (post-kick) field arrays."""
        return {k: np.concatenate(r.wait()) for k, r in self._reqs2.items()}

    def cancel(self) -> None:
        """Settle every request of both waves (error paths only)."""
        for reqs in (self._reqs1, self._reqs2):
            for req in reqs.values():
                req.cancel()


def post_migration(comm, pos_local, early_fields, decomp) -> MigrationFlight:
    """Post wave 1 of a nonblocking migration (see MigrationFlight)."""
    return MigrationFlight(comm, pos_local, early_fields, decomp)


def migrate_particles(comm, pos_local, payload_local, decomp):
    """Re-home particles that drifted out of this rank's domain.

    ``payload_local`` is a dict of per-particle arrays to ship along with
    positions.  Returns (new_pos, new_payload) after the exchange.
    """
    pos_local = np.mod(np.asarray(pos_local, dtype=np.float64), decomp.box)
    owner = decomp.rank_of_positions(pos_local)
    out_pos = []
    out_payload = {k: [] for k in payload_local}
    for dest in range(comm.size):
        sel = owner == dest
        out_pos.append(pos_local[sel])
        for k, arr in payload_local.items():
            out_payload[k].append(np.asarray(arr)[sel])
    new_pos = np.concatenate(comm.alltoallv(out_pos))
    new_payload = {
        k: np.concatenate(comm.alltoallv(chunks))
        for k, chunks in out_payload.items()
    }
    return new_pos, new_payload
