"""Distributed gravity simulation over simulated ranks.

Runs the full CRK-HACC communication pattern at laptop scale: each rank
owns a cuboid subdomain, replicates ghost particles out to the short-range
cutoff (overloading), solves the long-range field with the distributed
slab FFT, evaluates short-range pair forces entirely node-locally, and
migrates particles after each PM step's drift.  One PM step needs exactly
three communication phases — ghost exchange, grid reduction + FFT
transposes, and migration — everything else is rank-local, which is the
design the paper credits for its scalability (Section IV-A).

Every step splits the short-range work into **interior** and **boundary**
rows.  Interior sinks are those provably out of reach of any ghost at the
current positions: farther than ``cutoff + drift`` from every domain face
for gravity, and outside the 2-hop :meth:`PairCache.hop_closure` of the
ghost-adjacent seed zone for CRKSPH (a sink's evaluation reads data three
pair-hops out, so two hops from a seed that may *pair* a ghost bounds the
contaminated set).  ``drift`` is the globally allreduced maximum
displacement since the last migration, which bounds how far a ghost can
have wandered into the domain.  Interior rows depend only on owned data,
so with ``comm_mode="overlap"`` they are evaluated while the posted ghost
exchange is still in flight; the boundary rows finish after ``wait()``.
Both comm modes execute this identical split — only the position of the
wait differs — so overlap is bit-identical to blocking by construction.

With ``subcycle=True`` the step loop runs the hierarchical power-of-two
rung schedule (:mod:`repro.core.timestep`) instead of one flat KDK:
rungs are assigned from the opening forces, the depth is globally
reduced, and ``2^depth`` fine substeps evaluate only the closing rungs'
rows (``active_set=True``) via the rank-local active-sink pair queries.
Each substep evaluation is timed under its shallowest closing rung
(``"rung/<r>"`` phase keys, comm-wait alike) and the step's
:class:`~repro.core.timestep.SubcycleStats` are globally reduced into
the :class:`~repro.core.simulation.StepRecord`.  Under overlap the
migration is nonblocking and two-waved: the closing half-kick only
touches ``vel``/``u``, so positions + kick-invariant fields ship the
moment the final drift lands (maturing behind the closing evaluation),
and the post-kick payload (``vel``, ``u``, cached ``acc_long`` rows)
ships after the closing kick and settles under the next step's opening
evaluation.  Both waves reuse the blocking exchange's exact chunking,
so subcycled overlap is bit-identical to subcycled blocking with full
evaluation — the correctness anchor asserted in tests.

The result is verified (tests) to match the serial ``Simulation`` driver
to floating-point roundoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend import select_backend, use_backend
from ..constants import G_COSMO
from ..cosmology.background import Cosmology
from ..core.gravity.force_split import recommended_cutoff
from ..core.gravity.pm import cic_deposit, cic_interpolate, cic_window_sq
from ..core.gravity.short_range import short_range_accelerations
from ..core.simulation import StepRecord
from ..core.timestep import (
    SubcycleStats,
    active_mask,
    assign_rungs,
    closing_rung,
    deepest_rung,
    rung_dt,
    timestep_criteria,
)
from ..observe import Observatory
from ..observe.taxonomy import DISTRIBUTED_PHASES, MAX_TAXONOMY_RUNG
from ..sanitize.numerics import NumericsSanitizer, kinetic_internal_energy
from ..tree import PairCache
from .comm import World
from .decomposition import make_decomposition
from .overload import exchange_overload, migrate_particles, post_migration
from .swfft import DistributedFFT, slab_bounds


@dataclass
class DistributedConfig:
    """Configuration of a distributed run (gravity, optionally + CRKSPH)."""

    box: float
    pm_grid: int = 16
    a_init: float = 0.2
    a_final: float = 0.5
    n_pm_steps: int = 5
    cosmo: Cosmology = None
    r_split_cells: float = 2.0
    softening_cells: float = 0.05
    static: bool = False
    gravity: bool = True
    hydro: bool = False
    #: frozen SPH support radius (Mpc/h); distributed runs use a fixed h so
    #: the overload width is known a priori (serial analog: fixed_h=True)
    sph_h: float = 0.0
    kernel: str = "wendland_c4"
    #: Verlet skin fraction for the per-rank cached pair lists; the second
    #: force evaluation of each kick-drift-kick step reuses the first
    #: evaluation's list whenever intra-step drift stays within skin*h/2
    pair_skin: float = 0.25
    #: "blocking" serializes exchange -> solve; "overlap" computes the
    #: interior rows while the ghost exchange and FFT transposes are in
    #: flight.  The two modes are bit-identical (asserted in tests).
    comm_mode: str = "blocking"
    #: pipeline depth (z-chunks) of the overlap-mode FFT transposes
    fft_stages: int = 2
    #: simulated fabric cost (see :class:`~repro.parallel.World`): per-
    #: message latency in seconds plus payload time at ``net_gb_per_s``
    #: GB/s (0 = ideal wire).  Values are unchanged — transfers just take
    #: time, which blocking mode pays idle and overlap mode hides.
    net_latency_s: float = 0.0
    net_gb_per_s: float = 0.0
    #: enable the runtime sanitizers: the comm sanitizer on the World
    #: (request leaks / double-waits / deadlocks, reported at teardown)
    #: and per-rank NaN/Inf + energy checks at phase boundaries
    sanitize: bool = False
    #: hung-rank timeout of ``World.run`` (seconds): a rank making no
    #: progress for this long fails the run with a typed
    #: :class:`~repro.parallel.comm.RankFailure` carrying the rank and
    #: its last-seen phase — the detector input of the resilience layer
    comm_timeout_s: float = 600.0
    #: hierarchical power-of-two subcycling: assign rungs from the opening
    #: forces and run 2^depth fine KDK substeps per PM interval (depth is
    #: the global maximum assigned rung, allreduced so the substep
    #: schedule — and every collective inside it — stays structural)
    subcycle: bool = False
    #: with ``subcycle``: evaluate only the closing rungs' rows per
    #: substep via active-sink pair queries; ``False`` evaluates everyone
    #: every substep (the bit-identity reference — per-sink rows are
    #: identical regardless of the sink set, so results match bitwise)
    active_set: bool = True
    #: deepest rung the assignment may use (2^max_rung substeps at most)
    max_rung: int = 3
    #: CFL factor of the per-particle timestep criterion (gas rows)
    cfl: float = 0.25
    #: acceleration-criterion prefactor of the timestep criterion
    eta_accel: float = 0.05
    #: kernel backend the hot loops dispatch to: "numpy" (reference) or
    #: "jit" (numba-compiled, parity-gated; falls back to numpy with a
    #: one-time warning when numba is absent).  The ``REPRO_BACKEND`` env
    #: var overrides this.  See :mod:`repro.backend`.
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.cosmo is None:
            self.cosmo = Cosmology()
        if self.hydro and self.sph_h <= 0:
            raise ValueError("hydro runs need a positive sph_h")
        if self.comm_mode not in ("blocking", "overlap"):
            raise ValueError(f"unknown comm_mode {self.comm_mode!r}")
        if not 0 <= self.max_rung <= MAX_TAXONOMY_RUNG:
            raise ValueError(
                f"max_rung must be in [0, {MAX_TAXONOMY_RUNG}] (the "
                f"registered rung/* phase taxonomy)"
            )

    @property
    def r_split(self) -> float:
        return self.r_split_cells * self.box / self.pm_grid

    @property
    def softening(self) -> float:
        return self.softening_cells * self.box / self.pm_grid

    @property
    def cutoff(self) -> float:
        return recommended_cutoff(self.r_split, tol=1e-4) if self.gravity else 0.0

    @property
    def overload_width(self) -> float:
        """Ghost-region width: the gravity cutoff, or 2x the SPH support
        (ghosts within h of the domain interact with owned particles, and
        *their* CRK neighborhoods reach another h out; with a constant
        support radius 2h is exact, plus a small drift margin)."""
        return max(self.cutoff, 2.05 * self.sph_h if self.hydro else 0.0)


def _face_distance(pos: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Signed distance of each position to its nearest domain face
    (negative once a particle has drifted outside the cuboid)."""
    return np.minimum(pos - lo, hi - pos).min(axis=1)


class DistributedSimulation:
    """SPMD gravity solver: run with ``results = sim.run(pos, vel, mass)``."""

    def __init__(self, config: DistributedConfig, n_ranks: int,
                 observe: Observatory | None = None, fault_plan=None):
        self.config = config
        self.n_ranks = n_ranks
        #: optional :class:`~repro.resilience.faults.FaultPlan`: injected
        #: rank deaths fire from inside the phase entries below (or the
        #: comm layer), raising typed RankFailure for the recovery tests
        self.fault_plan = fault_plan
        #: end-of-step callbacks ``hook(comm, istep, a, my)`` run by every
        #: rank after its closing kick, where the union of owned arrays is
        #: the complete consistent global state — the checkpoint point
        #: (hooks must stay structural: same collectives on every rank)
        self.step_hooks: list = []
        # observability: one tracer serves all simulated ranks (one trace
        # track per rank); phase timers and comm-wait live in the registry
        self.observe = observe if observe is not None else Observatory()
        # resolve the kernel backend once (env override + numba fallback)
        # and warm JIT compilation outside the per-step timers
        self.backend = select_backend(config.backend, observe=self.observe)
        self.decomp = make_decomposition(config.box, n_ranks)
        if 2.0 * config.overload_width >= self.decomp.widths.min():
            raise ValueError(
                "short-range cutoff exceeds half the rank domain width; "
                "use fewer ranks or a larger box"
            )
        # precompute the spectral Green's function pieces per rank lazily
        self._green_cache = {}
        #: per-rank count of distributed PM solves (one forward + three
        #: gradient FFT sets each); the kick split holds this at one solve
        #: per PM step in steady state instead of two
        self.pm_eval_counts = np.zeros(n_ranks, dtype=np.int64)
        #: rank-0 per-step records (timers + per-phase comm wait)
        self.step_records: list[StepRecord] = []
        #: TrafficStats of the last run (per-rank wait/bytes counters)
        self.traffic = None

    # -- helpers --------------------------------------------------------------
    def _a_h(self, a: float, cosmo: Cosmology) -> float:
        if self.config.static:
            return 1.0
        return float(a * cosmo.hubble(a))

    def _long_range_accel(self, comm, fft, pos_owned, mass_owned, coeff,
                          rho=None):
        """Distributed PM accelerations at owned particle positions.

        Deposit is a grid allreduce (every rank contributes its owned
        particles); the Poisson solve + spectral gradient runs on
        slab-decomposed FFTs; acceleration slabs are allgathered for the
        final rank-local CIC interpolation.  Overlap-mode callers may pass
        a ``rho`` they reduced earlier (hidden behind short-range work);
        with ``fft.mode == "overlap"`` the three gradient-axis gathers are
        pipelined — each axis' slab allgather rides the wire while the next
        axis' inverse FFT computes.
        """
        cfg = self.config
        n = cfg.pm_grid
        self.pm_eval_counts[comm.rank] += 1
        if rho is None:
            rho = comm.allreduce(cic_deposit(pos_owned, mass_owned, n,
                                             cfg.box))
        rho_mean = float(rho.mean())

        xs, xe = slab_bounds(n, comm.size, comm.rank)
        spec = fft.forward((rho - rho_mean)[xs:xe].astype(complex))

        # spectrally filtered Green's function on this rank's y-slab
        key = (comm.rank, comm.size)
        if key not in self._green_cache:
            dk = 2.0 * np.pi / cfg.box
            k1 = np.fft.fftfreq(n, d=1.0 / n) * dk
            ys, ye = slab_bounds(n, comm.size, comm.rank)
            k2 = (
                k1[:, None, None] ** 2
                + k1[ys:ye][None, :, None] ** 2
                + k1[None, None, :] ** 2
            )
            green = np.zeros_like(k2)
            nz = k2 > 0
            green[nz] = -1.0 / k2[nz]
            if cfg.r_split > 0:
                green *= np.exp(-k2 * cfg.r_split**2)
            # CIC deconvolution (full-complex layout)
            f1 = np.fft.fftfreq(n)
            w = (
                np.sinc(f1)[:, None, None]
                * np.sinc(f1[ys:ye])[None, :, None]
                * np.sinc(f1)[None, None, :]
            ) ** 2
            green /= np.maximum(w**2, 1e-12)  # divide by W_CIC^2 (sinc^4/axis)
            kx = k1[:, None, None] * np.ones_like(k2)
            ky = k1[ys:ye][None, :, None] * np.ones_like(k2)
            kz = k1[None, None, :] * np.ones_like(k2)
            self._green_cache[key] = (green, (kx, ky, kz))
        green, kvecs = self._green_cache[key]

        phik = coeff * green * spec
        accel = np.empty((len(pos_owned), 3))
        if fft.mode == "overlap":
            # pipeline the axes: all three inverse transforms share one
            # posting wave (inverse_many), then each slab gather rides the
            # wire while the previous axis' CIC interpolation computes
            comps = fft.inverse_many(
                [-1j * kvecs[axis] * phik for axis in range(3)]
            )
            reqs = [comm.iallgather(c.real) for c in comps]
            for axis in range(3):
                comp = np.concatenate(reqs[axis].wait(), axis=0)
                accel[:, axis] = cic_interpolate(comp, pos_owned, cfg.box)
        else:
            for axis in range(3):
                comp_slab = fft.inverse(-1j * kvecs[axis] * phik).real
                comp = np.concatenate(comm.allgather(comp_slab), axis=0)
                accel[:, axis] = cic_interpolate(comp, pos_owned, cfg.box)
        return accel

    def _short_range_accel(self, pos_owned, all_pos, all_mass, n_owned, a_eff,
                           pairs):
        """Node-local short-range forces on owned particles.

        ``all_pos/all_mass`` hold owned particles first, then ghosts.  The
        overload guarantees completeness within the cutoff, so a
        *non-periodic* neighbor search over the overloaded set is exact
        for the owned rows.  ``pairs`` is the rank-local ``(pi, pj)`` list
        from the caller's :class:`~repro.tree.PairCache`.
        """
        cfg = self.config
        pi, pj = pairs
        accel = short_range_accelerations(
            all_pos, all_mass, pi, pj,
            r_split=cfg.r_split, softening=cfg.softening, box=None,
            g_newton=G_COSMO / a_eff,
        )
        return accel[:n_owned]

    # -- main entry --------------------------------------------------------------
    def run(self, pos: np.ndarray, vel: np.ndarray, mass: np.ndarray,
            u: np.ndarray | None = None, gas: np.ndarray | None = None):
        """Evolve the global particle set across the simulated ranks.

        Gravity-only: returns ``(pos, vel, ids)``.  With ``hydro=True``:
        returns ``(pos, vel, u, ids)``.  ``gas`` optionally marks the gas
        subset of a mixed DM+gas run (default: all particles are gas when
        ``hydro=True``); CRKSPH forces act on gas rows only while gravity
        couples everything.  ``ids`` maps rows back to the input order.
        """
        cfg = self.config
        decomp = self.decomp
        pos = np.mod(np.asarray(pos, dtype=np.float64), cfg.box)
        owner = decomp.rank_of_positions(pos)
        ids = np.arange(len(pos))
        if cfg.hydro and u is None:
            raise ValueError("hydro runs need initial internal energies u")
        u_global = (
            np.asarray(u, dtype=np.float64)
            if u is not None
            else np.zeros(len(pos))
        )
        gas_global = (
            np.asarray(gas, dtype=bool)
            if gas is not None
            else np.ones(len(pos), dtype=bool)
        )

        from ..constants import GAMMA_IDEAL
        from ..core.sph.hydro import crksph_derivatives_active
        from ..core.sph.kernels import get_kernel

        kernel = get_kernel(cfg.kernel) if cfg.hydro else None
        width = cfg.overload_width
        overlap = cfg.comm_mode == "overlap"

        run_scope = self.observe.scope("dist")

        def rank_fn(comm):
            tracer = comm.world.tracer
            tracer.set_track(comm.rank, f"rank {comm.rank}")
            mine = owner == comm.rank
            my = {
                "pos": pos[mine].copy(),
                "vel": vel[mine].copy(),
                "mass": np.asarray(mass, dtype=np.float64)[mine].copy(),
                "u": u_global[mine].copy(),
                "ids": ids[mine].copy(),
                "gas": gas_global[mine].copy(),
            }
            # unit-coefficient PM acceleration rows for owned particles;
            # None marks the field stale (positions moved).  Staleness is a
            # structural decision (set after the drift on every rank alike)
            # so the collective FFT solve is entered by all ranks together.
            my["acc_long"] = None
            fft = (
                DistributedFFT(
                    comm, cfg.pm_grid, mode=cfg.comm_mode,
                    n_stages=cfg.fft_stages,
                )
                if cfg.gravity
                else None
            )
            # per-rank Verlet caches: the *_own caches cover owned
            # particles only and serve the interior rows (available before
            # the ghost exchange lands); the overloaded caches cover
            # owned + ghost and serve the boundary rows.  Ghost ids ride
            # along in the exchange so the caches can tell "same
            # neighborhood, small drift" (reuse) from "membership changed"
            # (rebuild).
            grav_cache = PairCache(skin=cfg.pair_skin, box=None)
            grav_cache_own = PairCache(skin=cfg.pair_skin, box=None)
            hydro_cache = PairCache(skin=cfg.pair_skin, box=None)
            hydro_cache_own = PairCache(skin=cfg.pair_skin, box=None)
            lo, hi = decomp.bounds(comm.rank)
            # max displacement of ANY particle since the last migration
            # (globally reduced): bounds how far a ghost can have drifted
            # into this domain, so the interior margin stays sound.  Under
            # subcycling, displacement accumulates over the fine substeps
            # (disp_accum: running sum of per-substep max norms — a
            # conservative bound on any particle's total wander).
            state = {"drift_req": None, "drift_max": 0.0, "rho_req": None,
                     "disp_accum": 0.0, "n_pairs": 0, "istep": 0}
            # the in-flight nonblocking migration (overlap mode): wave 1
            # posted after the final drift of a step, wave 2 after its
            # closing kick, settled under the next step's opening work
            mig = {"flight": None, "fid": 0}
            records: list[StepRecord] = []
            # numerics tripwire (cfg.sanitize): NaN/Inf + energy blowup
            # checks at the kick/migration phase boundaries of every step
            nsan = (
                NumericsSanitizer(context=f"dist rank {comm.rank}")
                if cfg.sanitize
                else None
            )

            def cancel_state_reqs():
                """Settle posted-ahead requests on an error path so the
                comm sanitizer's teardown leak report stays clean."""
                for key in ("drift_req", "rho_req"):
                    if state[key] is not None:
                        state[key].cancel()
                        state[key] = None

            def cancel_migration():
                """Settle both waves of an in-flight migration on an
                error path (cancel is idempotent; already-completed
                requests are safe to re-settle)."""
                if mig["flight"] is not None:
                    mig["flight"].cancel()
                    mig["flight"] = None

            def rank_wait():
                return comm.world.stats.wait_seconds.get(comm.rank, 0.0)

            def long_range_dvda(a):
                """Long-range dv/da on owned particles at scale factor a.

                The PM acceleration depends on positions only and is linear
                in the source coefficient, so the unit-coefficient field is
                solved once per position state and rescaled per kick.  The
                closing evaluation of one step is reused as the opening of
                the next (positions are unchanged across the boundary; the
                cached rows ride through migration with their particles),
                halving the distributed FFT count in steady state.
                """
                if not cfg.gravity:
                    return 0.0
                a_eff = 1.0 if cfg.static else a
                ah = self._a_h(a, cfg.cosmo)
                if my["acc_long"] is None:
                    rho = None
                    if state["rho_req"] is not None:
                        # reduction posted back in short_forces: by now it
                        # has matured behind the short-range evaluation
                        rho = state["rho_req"].wait()
                        state["rho_req"] = None
                    my["acc_long"] = self._long_range_accel(
                        comm, fft, my["pos"], my["mass"], 1.0, rho=rho
                    )
                coeff = 4.0 * np.pi * G_COSMO / a_eff
                return my["acc_long"] * (coeff / ah)

            def short_forces(a, sinks=None, rho_ahead=True):
                """Short-range (dv/da, du/da, vsig) on owned rows at a.

                Posts the ghost exchange, partitions the sink rows into
                interior/boundary, evaluates the interior rows from owned
                data (while the exchange is in flight under
                ``comm_mode="overlap"``), then completes the boundary rows
                from the overloaded set.  Identical arithmetic in both
                modes — only the wait position differs.  ``sinks`` (sorted
                owned-row indices) restricts evaluation to the active set:
                per-sink pair rows are identical regardless of the sink
                set, so restricted rows match the full evaluation bitwise.
                ``rho_ahead`` marks evaluations that immediately precede a
                long-range solve with genuinely stale ``acc_long``, so the
                PM density reduction can be posted behind this work —
                subcycle substeps and openings with a migration payload in
                flight must pass False or the reduction leaks/mismatches.
                """
                a_eff = 1.0 if cfg.static else a
                ah = self._a_h(a, cfg.cosmo)
                n_owned = len(my["pos"])
                # gravity-only runs never read ghost vel/u — don't ship it
                fields = {"mass": my["mass"], "ids": my["ids"]}
                if cfg.hydro:
                    fields.update(vel=my["vel"], u=my["u"], gas=my["gas"])
                reqs = _post_exchange_fields(
                    comm, my["pos"], fields, decomp, width
                )
                try:
                    return _short_forces_posted(
                        a, a_eff, ah, n_owned, reqs, sinks, rho_ahead
                    )
                except BaseException:
                    # a failure (typically a CommAborted cascade from a
                    # peer) between post and wait leaves the exchange and
                    # the posted-ahead reductions in flight — settle them
                    _cancel_exchange_fields(reqs)
                    cancel_state_reqs()
                    raise

            def _short_forces_posted(a, a_eff, ah, n_owned, reqs, sinks,
                                     rho_ahead):
                if (rho_ahead and overlap and cfg.gravity
                        and my["acc_long"] is None):
                    # the PM solve that follows needs the global density at
                    # these same positions; post its reduction now so it
                    # matures behind the short-range work.  Staleness of
                    # acc_long is structural (every rank alike), so every
                    # rank posts — the sequence numbers stay matched.
                    state["rho_req"] = comm.iallreduce(cic_deposit(
                        my["pos"], my["mass"], cfg.pm_grid, cfg.box
                    ))

                if state["drift_req"] is not None:
                    state["drift_max"] = float(state["drift_req"].wait())
                    state["drift_req"] = None
                drift = state["drift_max"]

                # -- interior/boundary partition from owned data only ----
                # the partition is structural (positions + drift bound,
                # never force values) and the per-sink pair rows are
                # sink-set independent, so restricting to ``sinks`` is
                # bitwise neutral per evaluated row
                face = _face_distance(my["pos"], lo, hi)
                if cfg.gravity:
                    grav_bnd = face < cfg.cutoff + drift
                    g_sinks = (np.arange(n_owned) if sinks is None
                               else sinks)
                if cfg.hydro:
                    gas_rows = np.nonzero(my["gas"])[0]
                    gpos = my["pos"][gas_rows]
                    gh = np.full(len(gas_rows), cfg.sph_h)
                    gids = my["ids"][gas_rows]
                    # seeds: owned gas that may hold a fresh pair with a
                    # ghost; the CRKSPH evaluation of a sink reads data 3
                    # pair-hops out, so 2 more hops bound the sinks whose
                    # result could touch ghost data
                    seeds = face[gas_rows] < cfg.sph_h + drift
                    hyd_bnd = hydro_cache_own.hop_closure(
                        gpos, gh, seeds, hops=2, ids=gids
                    )
                    if sinks is None:
                        h_sinks = np.arange(len(gas_rows))
                    else:
                        h_sinks = np.searchsorted(
                            gas_rows, sinks[my["gas"][sinks]]
                        )

                if not overlap:
                    ghost_pos, gfl = _wait_exchange_fields(reqs)

                accel = np.zeros((n_owned, 3))
                du_dt = np.zeros(n_owned)
                vsig = np.zeros(n_owned)

                # -- interior rows: owned data only (overlaps exchange) --
                with tracer.span("short_range/interior", cat="driver"):
                    if cfg.gravity:
                        intr = g_sinks[~grav_bnd[g_sinks]]
                        if len(intr):
                            pi_i, pj_i = grav_cache_own.get_for_sinks(
                                my["pos"], np.full(n_owned, cfg.cutoff),
                                intr, ids=my["ids"],
                            )
                            accel[intr] += short_range_accelerations(
                                my["pos"], my["mass"], pi_i, pj_i,
                                r_split=cfg.r_split, softening=cfg.softening,
                                box=None, g_newton=G_COSMO / a_eff,
                                sink_index=np.searchsorted(intr, pi_i),
                                n_out=len(intr),
                            )
                            state["n_pairs"] += len(pi_i)
                    if cfg.hydro:
                        intr_g = h_sinks[~hyd_bnd[h_sinks]]
                        if len(intr_g):
                            sl = hydro_cache_own.active_slices(
                                gpos, gh, intr_g, ids=gids
                            )
                            d = crksph_derivatives_active(
                                gpos, my["vel"][gas_rows] / a_eff,
                                my["mass"][gas_rows], my["u"][gas_rows],
                                gh, sl, kernel, box=None,
                            )
                            rows = gas_rows[intr_g]
                            accel[rows] += d.accel
                            du_dt[rows] = d.du_dt
                            vsig[rows] = d.max_signal_speed
                            state["n_pairs"] += d.n_pairs

                if overlap:
                    ghost_pos, gfl = _wait_exchange_fields(reqs)

                # -- boundary rows: need the overloaded set --------------
                with tracer.span("short_range/boundary", cat="driver"):
                    all_pos = np.vstack([my["pos"], ghost_pos])
                    all_mass = np.concatenate([my["mass"], gfl["mass"]])
                    all_ids = np.concatenate([my["ids"], gfl["ids"]])
                    if cfg.gravity:
                        bnd = g_sinks[grav_bnd[g_sinks]]
                        if len(bnd):
                            pi_b, pj_b = grav_cache.get_for_sinks(
                                all_pos, np.full(len(all_pos), cfg.cutoff),
                                bnd, ids=all_ids,
                            )
                            accel[bnd] += short_range_accelerations(
                                all_pos, all_mass, pi_b, pj_b,
                                r_split=cfg.r_split, softening=cfg.softening,
                                box=None, g_newton=G_COSMO / a_eff,
                                sink_index=np.searchsorted(bnd, pi_b),
                                n_out=len(bnd),
                            )
                            state["n_pairs"] += len(pi_b)
                    if cfg.hydro:
                        bnd_g = h_sinks[hyd_bnd[h_sinks]]
                        if len(bnd_g):
                            all_gas = np.concatenate([my["gas"], gfl["gas"]])
                            agr = np.nonzero(all_gas)[0]
                            all_vel = np.vstack([my["vel"], gfl["vel"]])
                            all_u = np.concatenate([my["u"], gfl["u"]])
                            h_ga = np.full(len(agr), cfg.sph_h)
                            # owned rows precede ghosts, so owned-gas-frame
                            # sink indices are valid in the overloaded gas
                            # frame unchanged
                            sl = hydro_cache.active_slices(
                                all_pos[agr], h_ga, bnd_g, ids=all_ids[agr]
                            )
                            d = crksph_derivatives_active(
                                all_pos[agr], all_vel[agr] / a_eff,
                                all_mass[agr], all_u[agr], h_ga, sl,
                                kernel, box=None,
                            )
                            rows = gas_rows[bnd_g]
                            accel[rows] += d.accel
                            du_dt[rows] = d.du_dt
                            vsig[rows] = d.max_signal_speed
                            state["n_pairs"] += d.n_pairs

                du_da = du_dt / (a_eff * ah)
                if cfg.hydro and not cfg.static:
                    g = my["gas"]
                    du_da[g] = du_da[g] - (
                        3.0 * (GAMMA_IDEAL - 1.0) * my["u"][g] / a
                    )
                return accel / ah, du_da, vsig

            # per-step phase timers and comm-wait attribution live in the
            # run's metrics registry; ``groups`` holds the current step's
            # TimerGroup views (rebound each step, snapshot-free: each step
            # gets fresh instruments under its own prefix)
            groups = {}
            fplan = self.fault_plan

            def timed(phase, fn, *fn_args):
                # phase entry doubles as the failure surface: the fault
                # plan's compute kills fire here (typed RankFailure), and
                # the world records the phase so a hung rank's timeout
                # report can say where it was last seen
                if fplan is not None:
                    fplan.enter(comm.rank, state["istep"], phase)
                comm.world.note_phase(comm.rank, state["istep"], phase)
                w0 = rank_wait()
                with groups["timers"].time(phase):
                    out = fn(*fn_args)
                groups["cwait"].add(phase, rank_wait() - w0)
                return out

            # --- migration (blocking + two-wave nonblocking) -------------
            def do_migrate():
                """Blocking migration: one alltoallv per field, serial."""
                payload_in = {"vel": my["vel"], "mass": my["mass"],
                              "u": my["u"], "ids": my["ids"],
                              "gas": my["gas"]}
                if cfg.gravity:
                    payload_in["acc_long"] = my["acc_long"]
                return migrate_particles(comm, my["pos"], payload_in, decomp)

            def post_departures():
                """Wave 1: wrapped positions + kick-invariant fields, the
                moment the final drift fixes every destination; matures
                behind the closing force evaluation."""
                early = {"mass": my["mass"], "ids": my["ids"],
                         "gas": my["gas"]}
                with tracer.span("migration/post", cat="driver"):
                    mig["flight"] = post_migration(
                        comm, my["pos"], early, decomp
                    )
                if tracer.enabled:
                    mig["fid"] = tracer.next_id()
                    tracer.async_begin("migration/flight", mig["fid"],
                                       cat="async", tid=comm.rank)

            def post_payload():
                """Wave 2: the fields the closing half-kick mutates
                (vel/u) plus the cached acc_long rows; matures behind the
                next step's opening evaluation."""
                late = {"vel": my["vel"], "u": my["u"]}
                if cfg.gravity:
                    late["acc_long"] = my["acc_long"]
                with tracer.span("migration/post", cat="driver"):
                    mig["flight"].post_payload(late)

            def finish_payload():
                fl = mig["flight"]
                if fl is None or not fl.arrivals_settled:
                    return
                with tracer.span("migration/settle", cat="driver"):
                    got = fl.settle_payload()
                my["vel"] = got["vel"]
                my["u"] = got["u"]
                if "acc_long" in got:
                    my["acc_long"] = got["acc_long"]
                if tracer.enabled:
                    tracer.async_end("migration/flight", mig["fid"],
                                     cat="async", tid=comm.rank)
                mig["flight"] = None

            def settle_migration():
                """Complete wave 1 (re-homed positions + early fields) and
                reset the drift-since-migration bound.  Hydro settles the
                payload too — the opening ghost exchange ships vel/u —
                while gravity-only runs leave it maturing until after the
                opening short-range evaluation."""
                fl = mig["flight"]
                if fl is None:
                    return
                with tracer.span("migration/settle", cat="driver"):
                    got = fl.settle_arrivals()
                my["pos"] = got.pop("pos")
                my.update(got)
                state["drift_max"] = 0.0
                state["disp_accum"] = 0.0
                if cfg.hydro or not cfg.gravity:
                    finish_payload()

            # --- step bodies ---------------------------------------------
            def assign_step_rungs(dv_tot, vsig, a, da):
                """Per-particle rung assignment from the opening forces
                (the serial driver's criteria on the owned rows: CFL for
                gas at the fixed support radius, acceleration for all)."""
                ah = self._a_h(a, cfg.cosmo)
                n_owned = len(my["pos"])
                if cfg.hydro:
                    h_eff = np.where(my["gas"], cfg.sph_h,
                                     cfg.softening * 4.0)
                    vsig_a = np.where(my["gas"], vsig, 0.0) / ah
                else:
                    h_eff = np.full(n_owned, cfg.softening * 4.0)
                    vsig_a = np.zeros(n_owned)
                dt_req = timestep_criteria(
                    dv_tot, h_eff, vsig_a, cfl=cfg.cfl,
                    eta_accel=cfg.eta_accel, dt_max=da,
                )
                return assign_rungs(dt_req, da, max_rung=cfg.max_rung)

            def flat_step(istep, a, da, dv_da, du_da, lr):
                """One flat KDK interval (n_substeps=1)."""
                my["vel"] += 0.5 * da * (dv_da + lr)
                my["u"] = np.maximum(my["u"] + 0.5 * da * du_da, 0.0)
                if nsan is not None:
                    nsan.check_finite(istep, "opening half-kick",
                                      vel=my["vel"], u=my["u"])

                a_mid = a + 0.5 * da
                ah_mid = self._a_h(a_mid, cfg.cosmo)
                a_eff_mid = 1.0 if cfg.static else a_mid
                # drift WITHOUT wrapping: a boundary particle that
                # wraps mid-step would teleport across the box and
                # lose its (non-periodic) overloaded neighborhood;
                # migration wraps and re-homes everyone at step end
                disp = my["vel"] * (da / (a_eff_mid * ah_mid))
                my["pos"] = my["pos"] + disp
                my["acc_long"] = None  # positions moved: field stale
                d2 = np.einsum("na,na->n", disp, disp)
                local_max = float(np.sqrt(d2.max())) if len(d2) else 0.0
                state["drift_req"] = comm.iallreduce(local_max, op="max")
                if overlap:
                    # destinations are fixed: wave 1 rides the wire while
                    # the closing evaluation computes
                    timed("migration", post_departures)

                a_new = a + da
                dv_da, du_da, _ = timed("short_range", short_forces, a_new)
                lr = timed("long_range", long_range_dvda, a_new)
                my["vel"] += 0.5 * da * (dv_da + lr)
                my["u"] = np.maximum(my["u"] + 0.5 * da * du_da, 0.0)
                if nsan is not None:
                    nsan.check_finite(istep, "closing half-kick",
                                      pos=my["pos"], vel=my["vel"],
                                      u=my["u"])
                if overlap:
                    timed("migration", post_payload)
                else:
                    my["pos"], payload = timed("migration", do_migrate)
                    my.update(payload)
                    state["drift_req"] = None
                    state["drift_max"] = 0.0
                    state["disp_accum"] = 0.0

            def subcycled_step(istep, a, da, dv_da, du_da, vsig, lr):
                """One hierarchically subcycled PM interval.

                Mirrors the serial kick-split pm_step: rungs from the
                opening forces, an interval-spanning long-range half-kick,
                2^depth fine KDK substeps evaluating only the closing
                rows, one fresh FFT at the closing long-range solve.  The
                depth is globally reduced so every collective inside the
                substep loop is entered by all ranks together.  Unlike the
                serial driver there is no mid-step rung promotion: the
                schedule is frozen at assignment, a pure function of the
                opening forces — which is what makes active-set overlap
                runs bit-identical to full-evaluation blocking runs.
                """
                rungs = assign_step_rungs(dv_da + lr, vsig, a, da)
                depth = timed("short_range", lambda: int(comm.allreduce(
                    deepest_rung(rungs), op="max"
                )))
                nsub = 1 << depth
                dt_fine = da / nsub
                dts = rung_dt(rungs, da)
                n_act = len(my["pos"])  # substep-0 active set: everyone
                n_evals = 1

                # long-range half-kick over the whole PM interval (the
                # kick-split: PM is solved at unit coefficient once per
                # step, never inside the substep loop)
                my["vel"] += 0.5 * da * lr
                if nsan is not None:
                    nsan.check_finite(istep, "opening half-kick",
                                      vel=my["vel"], u=my["u"])

                for s in range(nsub):
                    act = active_mask(rungs, s, depth)
                    my["vel"][act] += 0.5 * dts[act, None] * dv_da[act]
                    my["u"][act] = np.maximum(
                        my["u"][act] + 0.5 * dts[act] * du_da[act], 0.0
                    )

                    # fine drift for everyone, unwrapped (see flat_step)
                    a_mid = a + (s + 0.5) * dt_fine
                    ah_mid = self._a_h(a_mid, cfg.cosmo)
                    a_eff_mid = 1.0 if cfg.static else a_mid
                    disp = my["vel"] * (dt_fine / (a_eff_mid * ah_mid))
                    my["pos"] = my["pos"] + disp
                    my["acc_long"] = None
                    d2 = np.einsum("na,na->n", disp, disp)
                    local_max = (
                        float(np.sqrt(d2.max())) if len(d2) else 0.0
                    )
                    # cumulative bound on any particle's total wander
                    # since the last migration (sum of per-substep maxima
                    # — conservative, keeps the interior margin sound as
                    # ghosts drift deeper into the domain over substeps)
                    state["disp_accum"] += local_max
                    state["drift_req"] = comm.iallreduce(
                        state["disp_accum"], op="max"
                    )

                    last = s + 1 == nsub
                    if last and overlap:
                        # final destinations are fixed: wave 1 matures
                        # behind the full closing evaluation + FFT
                        timed("migration", post_departures)

                    # closing evaluation: the closing set of substep s is
                    # the opening set of s+1, so evaluating exactly these
                    # rows keeps every kick on fresh forces; the substep
                    # is timed under its shallowest closing rung
                    a_sub = a + (s + 1) * dt_fine
                    closing = active_mask(rungs, s + 1, depth)
                    sinks = None
                    if cfg.active_set and not closing.all():
                        sinks = np.nonzero(closing)[0]
                    dv_s, du_s, _ = timed(
                        "rung/%d" % closing_rung(s, depth),
                        short_forces, a_sub, sinks, last,
                    )
                    if sinks is None:
                        dv_da, du_da = dv_s, du_s
                    else:
                        dv_da[sinks] = dv_s[sinks]
                        du_da[sinks] = du_s[sinks]
                    my["vel"][closing] += (
                        0.5 * dts[closing, None] * dv_da[closing]
                    )
                    my["u"][closing] = np.maximum(
                        my["u"][closing]
                        + 0.5 * dts[closing] * du_da[closing], 0.0
                    )
                    n_act += int(closing.sum())
                    n_evals += 1

                # closing long-range solve: the step's one fresh FFT
                lr = timed("long_range", long_range_dvda, a + da)
                my["vel"] += 0.5 * da * lr
                if nsan is not None:
                    nsan.check_finite(istep, "closing half-kick",
                                      pos=my["pos"], vel=my["vel"],
                                      u=my["u"])
                if overlap:
                    timed("migration", post_payload)
                else:
                    my["pos"], payload = timed("migration", do_migrate)
                    my.update(payload)
                    state["drift_req"] = None
                    state["drift_max"] = 0.0
                    state["disp_accum"] = 0.0

                # global schedule bookkeeping in one sum-reduce: active
                # totals, pair rows, particle count, rung histogram (the
                # substep schedule is a pure function of the histogram,
                # which is what makes StepRecord honesty testable)
                hist = np.bincount(rungs.astype(np.int64),
                                   minlength=cfg.max_rung + 1)
                tot = comm.allreduce(np.concatenate((
                    [float(n_act), float(state["n_pairs"]),
                     float(len(my["pos"]))],
                    hist.astype(np.float64),
                )))
                return SubcycleStats(
                    n_substeps=nsub, n_force_evaluations=n_evals,
                    n_active_total=int(round(tot[0])), deepest_rung=depth,
                    n_particles=int(round(tot[2])),
                    n_pairs=int(round(tot[1])),
                    rung_counts=tuple(int(round(x)) for x in tot[3:]),
                )

            da = (cfg.a_final - cfg.a_init) / cfg.n_pm_steps
            a = cfg.a_init
            try:
                for istep in range(cfg.n_pm_steps):
                    state["istep"] = istep
                    step_scope = (
                        f"{run_scope}/rank{comm.rank}/step{istep:05d}"
                    )
                    groups["timers"] = self.observe.timer_group(
                        step_scope, keys=DISTRIBUTED_PHASES
                    )
                    groups["cwait"] = self.observe.timer_group(
                        f"{step_scope}/wait", keys=DISTRIBUTED_PHASES
                    )
                    state["n_pairs"] = 0
                    fft0 = self.pm_eval_counts[comm.rank]

                    # settle the previous step's migration: wave 1 matured
                    # behind its closing evaluation and FFT
                    if mig["flight"] is not None:
                        timed("migration", settle_migration)

                    # opening forces.  A posted-ahead rho reduction is
                    # only wanted when no cached (or in-flight migrating)
                    # acc_long will serve the opening long-range solve —
                    # in steady state that is never, the closing solve of
                    # the previous step rides through migration
                    open_rho = (my["acc_long"] is None
                                and mig["flight"] is None)
                    dv_da, du_da, vsig = timed(
                        "short_range", short_forces, a, None, open_rho
                    )
                    if mig["flight"] is not None:
                        # gravity-only: vel/acc_long were not needed until
                        # now — wave 2 matured behind the opening work
                        timed("migration", finish_payload)
                    lr = timed("long_range", long_range_dvda, a)

                    if cfg.subcycle:
                        stats = subcycled_step(
                            istep, a, da, dv_da, du_da, vsig, lr
                        )
                        stats.n_fft = int(
                            self.pm_eval_counts[comm.rank] - fft0
                        )
                        nsub, depth_step = stats.n_substeps, \
                            stats.deepest_rung
                    else:
                        flat_step(istep, a, da, dv_da, du_da, lr)
                        stats = None
                        nsub, depth_step = 1, 0
                    a = a + da

                    if nsan is not None:
                        nsan.check_finite(istep, "migration",
                                          pos=my["pos"], vel=my["vel"],
                                          u=my["u"])
                        # global (not per-rank) energy: migration moves
                        # particles between ranks, so only the reduced
                        # total is step-to-step comparable
                        nsan.check_energy(istep, comm.allreduce(
                            kinetic_internal_energy(
                                my["mass"], my["vel"], my["u"]
                            )
                        ))
                    records.append(StepRecord(
                        step=istep, a=a, timers=groups["timers"],
                        n_substeps=nsub, deepest_rung=depth_step,
                        n_particles=len(my["pos"]),
                        subcycle=stats,
                        n_fft=int(self.pm_eval_counts[comm.rank] - fft0),
                        comm_wait=groups["cwait"], comm_mode=cfg.comm_mode,
                        backend=self.backend,
                    ))
                    # end-of-step hooks (checkpointers): the closing kick
                    # has landed everywhere and migration only re-homes
                    # rows, so the union of owned arrays is the complete
                    # global state at scale factor ``a``
                    for hook in self.step_hooks:
                        hook(comm, istep, a, my)
                # the final step's migration is still in flight: settle it
                # under that step's migration timer (the record's timer
                # views are live, so the wait lands in the right phase)
                if mig["flight"] is not None:
                    timed("migration", settle_migration)
                    timed("migration", finish_payload)
            except BaseException:
                # any mid-step failure (peer abort, numerics tripwire)
                # can strand the posted-ahead drift/rho reductions and
                # the in-flight migration waves
                cancel_state_reqs()
                cancel_migration()
                raise

            return my["pos"], my["vel"], my["u"], my["ids"], records

        world = World(self.n_ranks, latency_s=cfg.net_latency_s,
                      gb_per_s=cfg.net_gb_per_s,
                      tracer=self.observe.tracer, sanitize=cfg.sanitize,
                      fault_plan=self.fault_plan)
        #: kept for post-run inspection (traffic stats, sanitizer findings)
        self.world = world
        with use_backend(self.backend):
            results = world.run(rank_fn, timeout=cfg.comm_timeout_s)
        self.step_records = results[0][4]
        self.traffic = world.stats
        self.observe.registry.absorb_traffic(world.stats)
        for rec in self.step_records:
            if rec.subcycle is not None:
                self.observe.registry.absorb_subcycle(rec.subcycle)
        out_pos = np.vstack([r[0] for r in results])
        out_vel = np.vstack([r[1] for r in results])
        out_u = np.concatenate([r[2] for r in results])
        out_ids = np.concatenate([r[3] for r in results])
        order = np.argsort(out_ids)
        if cfg.hydro:
            return (out_pos[order], out_vel[order], out_u[order],
                    out_ids[order])
        return out_pos[order], out_vel[order], out_ids[order]


def _exchange_with_mass(comm, pos_local, mass_local, ids_local, decomp, width):
    """Ghost exchange shipping (position, mass) pairs, images included."""
    ghost_pos, fields = _exchange_fields(
        comm, pos_local, {"mass": mass_local}, decomp, width
    )
    return ghost_pos, fields["mass"]


def _exchange_fields(comm, pos_local, fields: dict, decomp, width):
    """Blocking ghost exchange of positions plus per-particle fields."""
    return _wait_exchange_fields(
        _post_exchange_fields(comm, pos_local, fields, decomp, width)
    )


def _post_exchange_fields(comm, pos_local, fields: dict, decomp, width):
    """Post the ghost exchange; returns request handles keyed by field.

    Ships every periodic image landing in each destination's overloaded
    region (including this rank's own wrap images).  The per-field
    ``ialltoallv`` posts happen in deterministic dict order on every rank,
    which is what matches them across ranks.
    """
    from .overload import _ghost_images

    pos_local = np.asarray(pos_local, dtype=np.float64)
    out_pos = []
    out_fields = {k: [] for k in fields}
    for dest in range(comm.size):
        lo, hi = decomp.bounds(dest)
        idx, shift = _ghost_images(
            pos_local, lo, hi, width, decomp.box,
            exclude_unshifted=(dest == comm.rank),
        )
        out_pos.append(pos_local[idx] + shift)
        for k, arr in fields.items():
            out_fields[k].append(np.asarray(arr)[idx])
    reqs = {"pos": comm.ialltoallv(out_pos)}
    for k, chunks in out_fields.items():
        reqs[k] = comm.ialltoallv(chunks)
    tr = comm.world.tracer
    if tr.enabled:
        # one async slice spanning the whole exchange, post -> wait; under
        # comm_mode="overlap" the interior-compute span sits inside this
        # interval, which is the overlap made visible in Perfetto
        gid = tr.next_id()
        tr.async_begin("ghost_exchange", gid, cat="async", tid=comm.rank,
                       fields=sorted(fields))
        reqs["_trace"] = (tr, gid, comm.rank)
    return reqs


def _wait_exchange_fields(reqs: dict):
    """Complete a posted ghost exchange: ``(ghost_pos, ghost_fields)``."""
    trace = reqs.pop("_trace", None)
    try:
        ghost_pos = np.concatenate(reqs["pos"].wait())
        ghost_fields = {
            k: np.concatenate(r.wait()) for k, r in reqs.items() if k != "pos"
        }
    except BaseException:
        # the first failing wait (abort cascade) must not strand the
        # remaining per-field requests: settle every handle in the batch
        _cancel_exchange_fields(reqs)
        raise
    if trace is not None:
        tr, gid, rank = trace
        tr.async_end("ghost_exchange", gid, cat="async", tid=rank)
    return ghost_pos, ghost_fields


def _cancel_exchange_fields(reqs: dict) -> None:
    """Settle every request of a posted exchange (error paths only).

    ``cancel`` is idempotent, so handles that already completed (or
    already observed the abort) are safe to re-settle.
    """
    for key, req in reqs.items():
        if key != "_trace":
            req.cancel()
