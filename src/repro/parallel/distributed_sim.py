"""Distributed gravity-only simulation over simulated ranks.

Runs the full CRK-HACC communication pattern at laptop scale: each rank
owns a cuboid subdomain, replicates ghost particles out to the short-range
cutoff (overloading), solves the long-range field with the distributed
slab FFT, evaluates short-range pair forces entirely node-locally, and
migrates particles after each PM step's drift.  One PM step needs exactly
three communication phases — ghost exchange, grid reduction + FFT
transposes, and migration — everything else is rank-local, which is the
design the paper credits for its scalability (Section IV-A).

The result is verified (tests) to match the serial ``Simulation`` driver
to floating-point roundoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import G_COSMO
from ..cosmology.background import Cosmology
from ..core.gravity.force_split import recommended_cutoff
from ..core.gravity.pm import cic_deposit, cic_interpolate, cic_window_sq
from ..core.gravity.short_range import short_range_accelerations
from ..tree import PairCache
from .comm import World
from .decomposition import make_decomposition
from .overload import exchange_overload, migrate_particles
from .swfft import DistributedFFT, slab_bounds


@dataclass
class DistributedConfig:
    """Configuration of a distributed run (gravity, optionally + CRKSPH)."""

    box: float
    pm_grid: int = 16
    a_init: float = 0.2
    a_final: float = 0.5
    n_pm_steps: int = 5
    cosmo: Cosmology = None
    r_split_cells: float = 2.0
    softening_cells: float = 0.05
    static: bool = False
    gravity: bool = True
    hydro: bool = False
    #: frozen SPH support radius (Mpc/h); distributed runs use a fixed h so
    #: the overload width is known a priori (serial analog: fixed_h=True)
    sph_h: float = 0.0
    kernel: str = "wendland_c4"
    #: Verlet skin fraction for the per-rank cached pair lists; the second
    #: force evaluation of each kick-drift-kick step reuses the first
    #: evaluation's list whenever intra-step drift stays within skin*h/2
    pair_skin: float = 0.25

    def __post_init__(self) -> None:
        if self.cosmo is None:
            self.cosmo = Cosmology()
        if self.hydro and self.sph_h <= 0:
            raise ValueError("hydro runs need a positive sph_h")

    @property
    def r_split(self) -> float:
        return self.r_split_cells * self.box / self.pm_grid

    @property
    def softening(self) -> float:
        return self.softening_cells * self.box / self.pm_grid

    @property
    def cutoff(self) -> float:
        return recommended_cutoff(self.r_split, tol=1e-4) if self.gravity else 0.0

    @property
    def overload_width(self) -> float:
        """Ghost-region width: the gravity cutoff, or 2x the SPH support
        (ghosts within h of the domain interact with owned particles, and
        *their* CRK neighborhoods reach another h out; with a constant
        support radius 2h is exact, plus a small drift margin)."""
        return max(self.cutoff, 2.05 * self.sph_h if self.hydro else 0.0)


class DistributedSimulation:
    """SPMD gravity solver: run with ``results = sim.run(pos, vel, mass)``."""

    def __init__(self, config: DistributedConfig, n_ranks: int):
        self.config = config
        self.n_ranks = n_ranks
        self.decomp = make_decomposition(config.box, n_ranks)
        if 2.0 * config.overload_width >= self.decomp.widths.min():
            raise ValueError(
                "short-range cutoff exceeds half the rank domain width; "
                "use fewer ranks or a larger box"
            )
        # precompute the spectral Green's function pieces per rank lazily
        self._green_cache = {}
        #: per-rank count of distributed PM solves (one forward + three
        #: gradient FFT sets each); the kick split holds this at one solve
        #: per PM step in steady state instead of two
        self.pm_eval_counts = np.zeros(n_ranks, dtype=np.int64)

    # -- helpers --------------------------------------------------------------
    def _a_h(self, a: float, cosmo: Cosmology) -> float:
        if self.config.static:
            return 1.0
        return float(a * cosmo.hubble(a))

    def _long_range_accel(self, comm, fft, pos_owned, mass_owned, coeff):
        """Distributed PM accelerations at owned particle positions.

        Deposit is a grid allreduce (every rank contributes its owned
        particles); the Poisson solve + spectral gradient runs on
        slab-decomposed FFTs; acceleration slabs are allgathered for the
        final rank-local CIC interpolation.
        """
        cfg = self.config
        n = cfg.pm_grid
        self.pm_eval_counts[comm.rank] += 1
        rho_local = cic_deposit(pos_owned, mass_owned, n, cfg.box)
        rho = comm.allreduce(rho_local)
        rho_mean = float(rho.mean())

        xs, xe = slab_bounds(n, comm.size, comm.rank)
        spec = fft.forward((rho - rho_mean)[xs:xe].astype(complex))

        # spectrally filtered Green's function on this rank's y-slab
        key = (comm.rank, comm.size)
        if key not in self._green_cache:
            dk = 2.0 * np.pi / cfg.box
            k1 = np.fft.fftfreq(n, d=1.0 / n) * dk
            ys, ye = slab_bounds(n, comm.size, comm.rank)
            k2 = (
                k1[:, None, None] ** 2
                + k1[ys:ye][None, :, None] ** 2
                + k1[None, None, :] ** 2
            )
            green = np.zeros_like(k2)
            nz = k2 > 0
            green[nz] = -1.0 / k2[nz]
            if cfg.r_split > 0:
                green *= np.exp(-k2 * cfg.r_split**2)
            # CIC deconvolution (full-complex layout)
            f1 = np.fft.fftfreq(n)
            w = (
                np.sinc(f1)[:, None, None]
                * np.sinc(f1[ys:ye])[None, :, None]
                * np.sinc(f1)[None, None, :]
            ) ** 2
            green /= np.maximum(w**2, 1e-12)  # divide by W_CIC^2 (sinc^4/axis)
            kx = k1[:, None, None] * np.ones_like(k2)
            ky = k1[ys:ye][None, :, None] * np.ones_like(k2)
            kz = k1[None, None, :] * np.ones_like(k2)
            self._green_cache[key] = (green, (kx, ky, kz))
        green, kvecs = self._green_cache[key]

        phik = coeff * green * spec
        accel = np.empty((len(pos_owned), 3))
        for axis in range(3):
            comp_slab = fft.inverse(-1j * kvecs[axis] * phik).real
            comp = np.concatenate(comm.allgather(comp_slab), axis=0)
            accel[:, axis] = cic_interpolate(comp, pos_owned, cfg.box)
        return accel

    def _short_range_accel(self, pos_owned, all_pos, all_mass, n_owned, a_eff,
                           pairs):
        """Node-local short-range forces on owned particles.

        ``all_pos/all_mass`` hold owned particles first, then ghosts.  The
        overload guarantees completeness within the cutoff, so a
        *non-periodic* neighbor search over the overloaded set is exact
        for the owned rows.  ``pairs`` is the rank-local ``(pi, pj)`` list
        from the caller's :class:`~repro.tree.PairCache`.
        """
        cfg = self.config
        pi, pj = pairs
        accel = short_range_accelerations(
            all_pos, all_mass, pi, pj,
            r_split=cfg.r_split, softening=cfg.softening, box=None,
            g_newton=G_COSMO / a_eff,
        )
        return accel[:n_owned]

    # -- main entry --------------------------------------------------------------
    def run(self, pos: np.ndarray, vel: np.ndarray, mass: np.ndarray,
            u: np.ndarray | None = None):
        """Evolve the global particle set across the simulated ranks.

        Gravity-only: returns ``(pos, vel, ids)``.  With ``hydro=True``
        (all particles treated as gas with frozen support ``sph_h``):
        returns ``(pos, vel, u, ids)``.  ``ids`` maps rows back to the
        input order.
        """
        cfg = self.config
        decomp = self.decomp
        pos = np.mod(np.asarray(pos, dtype=np.float64), cfg.box)
        owner = decomp.rank_of_positions(pos)
        ids = np.arange(len(pos))
        if cfg.hydro and u is None:
            raise ValueError("hydro runs need initial internal energies u")
        u_global = (
            np.asarray(u, dtype=np.float64)
            if u is not None
            else np.zeros(len(pos))
        )

        from ..constants import GAMMA_IDEAL
        from ..core.sph.hydro import crksph_derivatives
        from ..core.sph.kernels import get_kernel

        kernel = get_kernel(cfg.kernel) if cfg.hydro else None
        width = cfg.overload_width

        def rank_fn(comm):
            mine = owner == comm.rank
            my = {
                "pos": pos[mine].copy(),
                "vel": vel[mine].copy(),
                "mass": np.asarray(mass, dtype=np.float64)[mine].copy(),
                "u": u_global[mine].copy(),
                "ids": ids[mine].copy(),
            }
            # unit-coefficient PM acceleration rows for owned particles;
            # None marks the field stale (positions moved).  Staleness is a
            # structural decision (set after the drift on every rank alike)
            # so the collective FFT solve is entered by all ranks together.
            my["acc_long"] = None
            fft = DistributedFFT(comm, cfg.pm_grid) if cfg.gravity else None
            # per-rank Verlet caches over the overloaded (owned + ghost)
            # particle set; ghost ids ride along in the exchange so the
            # caches can tell "same neighborhood, small drift" (reuse)
            # from "overload membership changed" (rebuild)
            grav_cache = PairCache(skin=cfg.pair_skin, box=None)
            hydro_cache = PairCache(skin=cfg.pair_skin, box=None)

            def long_range_dvda(a):
                """Long-range dv/da on owned particles at scale factor a.

                The PM acceleration depends on positions only and is linear
                in the source coefficient, so the unit-coefficient field is
                solved once per position state and rescaled per kick.  The
                closing evaluation of one step is reused as the opening of
                the next (positions are unchanged across the boundary; the
                cached rows ride through migration with their particles),
                halving the distributed FFT count in steady state.
                """
                if not cfg.gravity:
                    return 0.0
                a_eff = 1.0 if cfg.static else a
                ah = self._a_h(a, cfg.cosmo)
                if my["acc_long"] is None:
                    my["acc_long"] = self._long_range_accel(
                        comm, fft, my["pos"], my["mass"], 1.0
                    )
                coeff = 4.0 * np.pi * G_COSMO / a_eff
                return my["acc_long"] * (coeff / ah)

            def short_forces(a):
                """Short-range (dv/da, du/da) on owned particles at a."""
                a_eff = 1.0 if cfg.static else a
                ah = self._a_h(a, cfg.cosmo)
                n_owned = len(my["pos"])
                ghost_pos, gfields = _exchange_fields(
                    comm, my["pos"],
                    {"mass": my["mass"], "vel": my["vel"], "u": my["u"],
                     "ids": my["ids"]},
                    decomp, width,
                )
                all_pos = np.vstack([my["pos"], ghost_pos])
                all_mass = np.concatenate([my["mass"], gfields["mass"]])
                all_ids = np.concatenate([my["ids"], gfields["ids"]])

                accel = np.zeros((n_owned, 3))
                if cfg.gravity:
                    pairs = grav_cache.get(
                        all_pos, np.full(len(all_pos), cfg.cutoff),
                        ids=all_ids,
                    )
                    accel += self._short_range_accel(
                        my["pos"], all_pos, all_mass, n_owned, a_eff, pairs
                    )
                du_da = np.zeros(n_owned)
                if cfg.hydro:
                    all_vel = np.vstack([my["vel"], gfields["vel"]])
                    all_u = np.concatenate([my["u"], gfields["u"]])
                    h_arr = np.full(len(all_pos), cfg.sph_h)
                    pi_, pj_ = hydro_cache.get(all_pos, h_arr, ids=all_ids)
                    d = crksph_derivatives(
                        all_pos, all_vel / a_eff, all_mass, all_u, h_arr,
                        pi_, pj_, kernel, box=None,
                    )
                    accel += d.accel[:n_owned]
                    du_da = d.du_dt[:n_owned] / (a_eff * ah)
                    if not cfg.static:
                        du_da = du_da - 3.0 * (GAMMA_IDEAL - 1.0) * my["u"] / a
                return accel / ah, du_da

            da = (cfg.a_final - cfg.a_init) / cfg.n_pm_steps
            a = cfg.a_init
            for _ in range(cfg.n_pm_steps):
                dv_da, du_da = short_forces(a)
                my["vel"] += 0.5 * da * (dv_da + long_range_dvda(a))
                my["u"] = np.maximum(my["u"] + 0.5 * da * du_da, 0.0)

                a_mid = a + 0.5 * da
                ah_mid = self._a_h(a_mid, cfg.cosmo)
                a_eff_mid = 1.0 if cfg.static else a_mid
                # drift WITHOUT wrapping: a boundary particle that wraps
                # mid-step would teleport across the box and lose its
                # (non-periodic) overloaded neighborhood; migration wraps
                # and re-homes everyone at the end of the step
                my["pos"] = my["pos"] + my["vel"] * (da / (a_eff_mid * ah_mid))
                my["acc_long"] = None  # positions moved: PM field is stale

                a_new = a + da
                dv_da, du_da = short_forces(a_new)
                my["vel"] += 0.5 * da * (dv_da + long_range_dvda(a_new))
                my["u"] = np.maximum(my["u"] + 0.5 * da * du_da, 0.0)

                # --- migration ----------------------------------------------
                payload_in = {"vel": my["vel"], "mass": my["mass"],
                              "u": my["u"], "ids": my["ids"]}
                if cfg.gravity:
                    payload_in["acc_long"] = my["acc_long"]
                my["pos"], payload = migrate_particles(
                    comm, my["pos"], payload_in, decomp,
                )
                my.update(payload)
                a = a_new

            return my["pos"], my["vel"], my["u"], my["ids"]

        world = World(self.n_ranks)
        results = world.run(rank_fn)
        out_pos = np.vstack([r[0] for r in results])
        out_vel = np.vstack([r[1] for r in results])
        out_u = np.concatenate([r[2] for r in results])
        out_ids = np.concatenate([r[3] for r in results])
        order = np.argsort(out_ids)
        if cfg.hydro:
            return (out_pos[order], out_vel[order], out_u[order],
                    out_ids[order])
        return out_pos[order], out_vel[order], out_ids[order]


def _exchange_with_mass(comm, pos_local, mass_local, ids_local, decomp, width):
    """Ghost exchange shipping (position, mass) pairs, images included."""
    ghost_pos, fields = _exchange_fields(
        comm, pos_local, {"mass": mass_local}, decomp, width
    )
    return ghost_pos, fields["mass"]


def _exchange_fields(comm, pos_local, fields: dict, decomp, width):
    """Ghost exchange of positions plus arbitrary per-particle fields.

    Ships every periodic image landing in each destination's overloaded
    region (including this rank's own wrap images).  Returns
    ``(ghost_pos, ghost_fields)`` with shifts applied to positions.
    """
    from .overload import _ghost_images

    pos_local = np.asarray(pos_local, dtype=np.float64)
    out_pos = []
    out_fields = {k: [] for k in fields}
    for dest in range(comm.size):
        lo, hi = decomp.bounds(dest)
        idx, shift = _ghost_images(
            pos_local, lo, hi, width, decomp.box,
            exclude_unshifted=(dest == comm.rank),
        )
        out_pos.append(pos_local[idx] + shift)
        for k, arr in fields.items():
            out_fields[k].append(np.asarray(arr)[idx])
    ghost_pos = np.concatenate(comm.alltoallv(out_pos))
    ghost_fields = {
        k: np.concatenate(comm.alltoallv(chunks))
        for k, chunks in out_fields.items()
    }
    return ghost_pos, ghost_fields
