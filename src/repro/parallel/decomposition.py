"""Cuboid domain decomposition (paper Section IV-A, Fig. 2).

The global periodic box is divided into a 3D grid of cuboid subdomains,
one per rank.  Utilities here map ranks to domains, particles to owning
ranks, and quantify the overload (ghost-zone) memory cost — the
surface-to-volume term that drives weak-scaling overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def factor_ranks_3d(n_ranks: int) -> tuple[int, int, int]:
    """Factor a rank count into the most cubic (nx, ny, nz) grid."""
    if n_ranks < 1:
        raise ValueError("n_ranks must be positive")
    best = (n_ranks, 1, 1)
    best_score = float("inf")
    for nx in range(1, n_ranks + 1):
        if n_ranks % nx:
            continue
        rem = n_ranks // nx
        for ny in range(1, rem + 1):
            if rem % ny:
                continue
            nz = rem // ny
            dims = sorted((nx, ny, nz))
            score = dims[2] / dims[0]  # aspect ratio: 1 is cubic
            if score < best_score:
                best_score = score
                best = (nx, ny, nz)
    return best


@dataclass(frozen=True)
class CartesianDecomposition:
    """Regular rank grid over a periodic cubic box."""

    box: float
    dims: tuple[int, int, int]

    @property
    def n_ranks(self) -> int:
        nx, ny, nz = self.dims
        return nx * ny * nz

    @property
    def widths(self) -> np.ndarray:
        return self.box / np.asarray(self.dims, dtype=np.float64)

    def coords_of(self, rank: int) -> tuple[int, int, int]:
        nx, ny, nz = self.dims
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        return (rank // (ny * nz), (rank // nz) % ny, rank % nz)

    def rank_of_coords(self, cx: int, cy: int, cz: int) -> int:
        nx, ny, nz = self.dims
        return (cx % nx) * ny * nz + (cy % ny) * nz + (cz % nz)

    def bounds(self, rank: int):
        """(lo, hi) corners of a rank's owned cuboid."""
        c = np.asarray(self.coords_of(rank), dtype=np.float64)
        w = self.widths
        return c * w, (c + 1.0) * w

    def rank_of_positions(self, pos: np.ndarray) -> np.ndarray:
        """Owning rank per particle (positions wrapped into the box)."""
        pos = np.mod(np.asarray(pos, dtype=np.float64), self.box)
        w = self.widths
        cells = np.minimum(
            (pos / w).astype(np.int64), np.asarray(self.dims) - 1
        )
        nx, ny, nz = self.dims
        return (cells[:, 0] * ny + cells[:, 1]) * nz + cells[:, 2]

    def overload_volume_fraction(self, overload_width: float) -> float:
        """Ghost volume / owned volume for one rank.

        ((w + 2d)^3 products) / (w^3 products) - 1; the memory and
        redundant-work overhead of the overloading strategy.
        """
        w = self.widths
        padded = np.prod(w + 2.0 * overload_width)
        return float(padded / np.prod(w) - 1.0)


def make_decomposition(box: float, n_ranks: int) -> CartesianDecomposition:
    """Most-cubic decomposition of a box over ``n_ranks``."""
    return CartesianDecomposition(box=box, dims=factor_ranks_3d(n_ranks))
