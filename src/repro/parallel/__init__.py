"""Simulated distributed substrate: ranks, decomposition, overload, SWFFT."""

from .comm import (
    CommAborted,
    CommError,
    CompletedRequest,
    RankFailure,
    Request,
    SimComm,
    TrafficStats,
    World,
)
from .decomposition import (
    CartesianDecomposition,
    factor_ranks_3d,
    make_decomposition,
)
from .overload import (
    OverloadedDomain,
    build_overloaded_domains,
    exchange_overload,
    migrate_particles,
)
from .swfft import DistributedFFT, gather_slabs, scatter_slabs, slab_bounds

__all__ = [
    "CartesianDecomposition",
    "CommAborted",
    "CommError",
    "CompletedRequest",
    "DistributedFFT",
    "RankFailure",
    "Request",
    "OverloadedDomain",
    "SimComm",
    "TrafficStats",
    "World",
    "build_overloaded_domains",
    "exchange_overload",
    "factor_ranks_3d",
    "gather_slabs",
    "make_decomposition",
    "migrate_particles",
    "scatter_slabs",
    "slab_bounds",
]
