"""SWFFT analog: distributed 3D FFT over simulated ranks.

Implements the slab-decomposed distributed FFT strategy: each rank owns a
contiguous slab of x-planes, performs local 2D FFTs, redistributes via
all-to-all into y-slabs, and finishes with the 1D FFT along x.  This is the
communication pattern whose cost the paper's long-range solver minimizes
(two trillion cells, ~1.7% of runtime) — here it runs on ``SimComm`` ranks
and is validated against ``numpy.fft.fftn``.
"""

from __future__ import annotations

import numpy as np


def slab_bounds(n: int, n_ranks: int, rank: int) -> tuple[int, int]:
    """[start, end) of the planes owned by ``rank`` (near-even split)."""
    base = n // n_ranks
    extra = n % n_ranks
    start = rank * base + min(rank, extra)
    size = base + (1 if rank < extra else 0)
    return start, start + size


def scatter_slabs(field: np.ndarray, n_ranks: int) -> list[np.ndarray]:
    """Split a global n^3 field into x-slabs, one per rank."""
    n = field.shape[0]
    return [
        np.ascontiguousarray(field[slice(*slab_bounds(n, n_ranks, r))])
        for r in range(n_ranks)
    ]


def gather_slabs(slabs: list[np.ndarray]) -> np.ndarray:
    """Reassemble x-slabs into the global field."""
    return np.concatenate(slabs, axis=0)


class DistributedFFT:
    """Slab-decomposed forward/inverse FFT bound to one rank of a comm."""

    def __init__(self, comm, n: int):
        if n < comm.size:
            raise ValueError("grid too small for rank count")
        self.comm = comm
        self.n = n

    # -- data movement ----------------------------------------------------------
    def _transpose_x_to_y(self, slab_x: np.ndarray) -> np.ndarray:
        """(x_local, n, n) -> (n, y_local, n) via all-to-all."""
        comm, n = self.comm, self.n
        chunks = []
        for dest in range(comm.size):
            ys, ye = slab_bounds(n, comm.size, dest)
            chunks.append(np.ascontiguousarray(slab_x[:, ys:ye, :]))
        got = comm.alltoallv(chunks)
        # got[src] has shape (x_src, y_local, n); stack along x
        return np.concatenate(got, axis=0)

    def _transpose_y_to_x(self, slab_y: np.ndarray) -> np.ndarray:
        """(n, y_local, n) -> (x_local, n, n) via all-to-all."""
        comm, n = self.comm, self.n
        chunks = []
        for dest in range(comm.size):
            xs, xe = slab_bounds(n, comm.size, dest)
            chunks.append(np.ascontiguousarray(slab_y[xs:xe, :, :]))
        got = comm.alltoallv(chunks)
        return np.concatenate(got, axis=1)

    # -- transforms ---------------------------------------------------------------
    def forward(self, slab_x: np.ndarray) -> np.ndarray:
        """Forward FFT of the rank's x-slab; returns the rank's y-slab of
        the full complex spectrum (layout: (n, y_local, n))."""
        f = np.fft.fft(np.fft.fft(slab_x, axis=1), axis=2)
        f = self._transpose_x_to_y(f)
        return np.fft.fft(f, axis=0)

    def inverse(self, spec_y: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward`; returns the rank's real-space x-slab."""
        f = np.fft.ifft(spec_y, axis=0)
        f = self._transpose_y_to_x(f)
        return np.fft.ifft(np.fft.ifft(f, axis=2), axis=1)

    def poisson_greens(self, spec_y: np.ndarray, box: float, coeff: float):
        """Apply the -coeff/k^2 Green's function to a forward spectrum.

        Works on the rank's y-slab layout; the k=0 mode is zeroed (mean
        subtraction), matching the PMSolver convention.
        """
        n, comm = self.n, self.comm
        dk = 2.0 * np.pi / box
        kx = np.fft.fftfreq(n, d=1.0 / n) * dk
        ys, ye = slab_bounds(n, comm.size, comm.rank)
        ky = (np.fft.fftfreq(n, d=1.0 / n) * dk)[ys:ye]
        kz = np.fft.fftfreq(n, d=1.0 / n) * dk
        k2 = (
            kx[:, None, None] ** 2
            + ky[None, :, None] ** 2
            + kz[None, None, :] ** 2
        )
        green = np.zeros_like(k2)
        nz = k2 > 0
        green[nz] = -coeff / k2[nz]
        return spec_y * green
