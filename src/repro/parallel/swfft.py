"""SWFFT analog: distributed 3D FFT over simulated ranks.

Implements the slab-decomposed distributed FFT strategy: each rank owns a
contiguous slab of x-planes, performs local 2D FFTs, redistributes via
all-to-all into y-slabs, and finishes with the 1D FFT along x.  This is the
communication pattern whose cost the paper's long-range solver minimizes
(two trillion cells, ~1.7% of runtime) — here it runs on ``SimComm`` ranks
and is validated against ``numpy.fft.fftn``.

In ``mode="overlap"`` the slab transpose is pipelined: the grid is split
into z-chunks (z is untouched by the x<->y redistribution), the alltoallv
for chunk k+1 is posted while the 1-D FFTs of chunk k are computed — a
two-stage double buffer.  Every 1-D transform adjacent to the transpose is
independent per z-column, so the chunked schedule is bit-identical to the
blocking one.
"""

from __future__ import annotations

import numpy as np

from ..observe.trace import NullTracer

_NULL_TRACER = NullTracer()


def slab_bounds(n: int, n_ranks: int, rank: int) -> tuple[int, int]:
    """[start, end) of the planes owned by ``rank`` (near-even split)."""
    base = n // n_ranks
    extra = n % n_ranks
    start = rank * base + min(rank, extra)
    size = base + (1 if rank < extra else 0)
    return start, start + size


def scatter_slabs(field: np.ndarray, n_ranks: int) -> list[np.ndarray]:
    """Split a global n^3 field into x-slabs, one per rank."""
    n = field.shape[0]
    return [
        np.ascontiguousarray(field[slice(*slab_bounds(n, n_ranks, r))])
        for r in range(n_ranks)
    ]


def gather_slabs(slabs: list[np.ndarray]) -> np.ndarray:
    """Reassemble x-slabs into the global field."""
    return np.concatenate(slabs, axis=0)


def _z_chunks(n: int, n_stages: int) -> list[tuple[int, int]]:
    """Split the z extent into ``n_stages`` near-even contiguous chunks."""
    k = max(1, min(n_stages, n))
    return [slab_bounds(n, k, c) for c in range(k)]


def _cancel_requests(reqs) -> None:
    """Settle in-flight request handles on an error path (idempotent;
    ``cancel`` never raises on an already-completed request)."""
    for r in reqs:
        if r is not None:
            r.cancel()


class DistributedFFT:
    """Slab-decomposed forward/inverse FFT bound to one rank of a comm.

    ``mode="overlap"`` pipelines the transposes (see module docstring);
    ``n_stages`` sets the number of z-chunks in the pipeline.
    """

    def __init__(self, comm, n: int, mode: str = "blocking", n_stages: int = 2):
        if n < comm.size:
            raise ValueError("grid too small for rank count")
        if mode not in ("blocking", "overlap"):
            raise ValueError(f"unknown FFT mode {mode!r}")
        self.comm = comm
        self.n = n
        self.mode = mode
        self.n_stages = n_stages
        # transpose stages land on the world's shared tracer (no-op when
        # tracing is off or the comm carries no tracer)
        self.tracer = getattr(comm.world, "tracer", None) or _NULL_TRACER

    # -- data movement ----------------------------------------------------------
    def _transpose_x_to_y(self, slab_x: np.ndarray) -> np.ndarray:
        """(x_local, n, n) -> (n, y_local, n) via all-to-all."""
        comm, n = self.comm, self.n
        with self.tracer.span("fft/transpose", cat="fft", axis="x->y"):
            chunks = []
            for dest in range(comm.size):
                ys, ye = slab_bounds(n, comm.size, dest)
                chunks.append(np.ascontiguousarray(slab_x[:, ys:ye, :]))
            got = comm.alltoallv(chunks)
            # got[src] has shape (x_src, y_local, n); stack along x
            return np.concatenate(got, axis=0)

    def _transpose_y_to_x(self, slab_y: np.ndarray) -> np.ndarray:
        """(n, y_local, n) -> (x_local, n, n) via all-to-all."""
        comm, n = self.comm, self.n
        with self.tracer.span("fft/transpose", cat="fft", axis="y->x"):
            chunks = []
            for dest in range(comm.size):
                xs, xe = slab_bounds(n, comm.size, dest)
                chunks.append(np.ascontiguousarray(slab_y[xs:xe, :, :]))
            got = comm.alltoallv(chunks)
            return np.concatenate(got, axis=1)

    # -- transforms ---------------------------------------------------------------
    def forward(self, slab_x: np.ndarray) -> np.ndarray:
        """Forward FFT of the rank's x-slab; returns the rank's y-slab of
        the full complex spectrum (layout: (n, y_local, n))."""
        with self.tracer.span("fft/forward", cat="fft", mode=self.mode):
            f = np.fft.fft(np.fft.fft(slab_x, axis=1), axis=2)
            if self.mode == "blocking":
                f = self._transpose_x_to_y(f)
                return np.fft.fft(f, axis=0)
            return self._forward_pipelined(f)

    def _forward_pipelined(self, f: np.ndarray) -> np.ndarray:
        """Transpose + axis-0 FFT, z-chunked: post the alltoallv for chunk
        k+1 while the axis-0 FFTs of chunk k are computed."""
        comm, n = self.comm, self.n
        bounds = [slab_bounds(n, comm.size, d) for d in range(comm.size)]
        chunks = _z_chunks(n, self.n_stages)
        out: list = [None] * len(chunks)
        req = prev_req = prev_idx = None
        try:
            for k, (zs, ze) in enumerate(chunks):
                with self.tracer.span("fft/stage", cat="fft", stage=k):
                    parts = [
                        np.ascontiguousarray(f[:, ys:ye, zs:ze])
                        for ys, ye in bounds
                    ]
                    req = comm.ialltoallv(parts)
                    if prev_req is not None:
                        got = prev_req.wait()
                        out[prev_idx] = np.fft.fft(
                            np.concatenate(got, axis=0), axis=0
                        )
                prev_req, prev_idx = req, k
            got = prev_req.wait()
        except BaseException:
            # a peer abort (CommAborted) or local failure mid-pipeline
            # leaves up to two transposes posted; settle the handles so
            # the teardown leak report stays about real bugs
            _cancel_requests((prev_req, req))
            raise
        out[prev_idx] = np.fft.fft(np.concatenate(got, axis=0), axis=0)
        return np.concatenate(out, axis=2)

    def inverse(self, spec_y: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward`; returns the rank's real-space x-slab."""
        with self.tracer.span("fft/inverse", cat="fft", mode=self.mode):
            if self.mode == "blocking":
                f = np.fft.ifft(spec_y, axis=0)
                f = self._transpose_y_to_x(f)
            else:
                f = self._inverse_transpose_pipelined(spec_y)
            return np.fft.ifft(np.fft.ifft(f, axis=2), axis=1)

    def _inverse_transpose_pipelined(self, spec_y: np.ndarray) -> np.ndarray:
        """Axis-0 inverse FFT + transpose, z-chunked: compute the axis-0
        iFFTs of chunk k+1 while chunk k's alltoallv is in flight."""
        comm, n = self.comm, self.n
        bounds = [slab_bounds(n, comm.size, d) for d in range(comm.size)]
        chunks = _z_chunks(n, self.n_stages)
        received: list = [None] * len(chunks)
        req = prev_req = prev_idx = None
        try:
            for k, (zs, ze) in enumerate(chunks):
                with self.tracer.span("fft/stage", cat="fft", stage=k):
                    g = np.fft.ifft(spec_y[:, :, zs:ze], axis=0)
                    parts = [
                        np.ascontiguousarray(g[xs:xe, :, :])
                        for xs, xe in bounds
                    ]
                    req = comm.ialltoallv(parts)
                    if prev_req is not None:
                        received[prev_idx] = np.concatenate(
                            prev_req.wait(), axis=1
                        )
                prev_req, prev_idx = req, k
            received[prev_idx] = np.concatenate(prev_req.wait(), axis=1)
        except BaseException:
            _cancel_requests((prev_req, req))
            raise
        return np.concatenate(received, axis=2)

    def inverse_many(self, specs: list) -> list:
        """Inverse-transform several y-slab spectra (:meth:`inverse` each).

        In overlap mode the chunked transposes of *all* spectra are posted
        before any is awaited, so one spectrum's wire time hides behind the
        other spectra's axis-0 iFFT compute — the PM gradient solve uses
        this across its three axes.  Arithmetic per spectrum is identical
        to :meth:`inverse` (same chunking, same assembly order).
        """
        if self.mode == "blocking" or len(specs) <= 1:
            return [self.inverse(s) for s in specs]
        comm, n = self.comm, self.n
        with self.tracer.span("fft/inverse", cat="fft", mode=self.mode,
                              n_spectra=len(specs)):
            bounds = [slab_bounds(n, comm.size, d) for d in range(comm.size)]
            chunks = _z_chunks(n, self.n_stages)
            reqs = []
            try:
                for spec_y in specs:
                    per = []
                    for zs, ze in chunks:
                        g = np.fft.ifft(spec_y[:, :, zs:ze], axis=0)
                        parts = [
                            np.ascontiguousarray(g[xs:xe, :, :])
                            for xs, xe in bounds
                        ]
                        per.append(comm.ialltoallv(parts))
                    reqs.append(per)
                out = []
                for per in reqs:
                    f = np.concatenate(
                        [np.concatenate(r.wait(), axis=1) for r in per],
                        axis=2,
                    )
                    out.append(np.fft.ifft(np.fft.ifft(f, axis=2), axis=1))
            except BaseException:
                # the posting wave covers all spectra before any wait: on
                # failure every remaining transpose handle must be settled
                _cancel_requests(r for per in reqs for r in per)
                raise
            return out

    def poisson_greens(self, spec_y: np.ndarray, box: float, coeff: float):
        """Apply the -coeff/k^2 Green's function to a forward spectrum.

        Works on the rank's y-slab layout; the k=0 mode is zeroed (mean
        subtraction), matching the PMSolver convention.
        """
        n, comm = self.n, self.comm
        dk = 2.0 * np.pi / box
        kx = np.fft.fftfreq(n, d=1.0 / n) * dk
        ys, ye = slab_bounds(n, comm.size, comm.rank)
        ky = (np.fft.fftfreq(n, d=1.0 / n) * dk)[ys:ye]
        kz = np.fft.fftfreq(n, d=1.0 / n) * dk
        k2 = (
            kx[:, None, None] ** 2
            + ky[None, :, None] ** 2
            + kz[None, None, :] ** 2
        )
        green = np.zeros_like(k2)
        nz = k2 > 0
        green[nz] = -coeff / k2[nz]
        return spec_y * green
