"""Simulated MPI: an in-process, thread-based SPMD communicator.

Each simulated rank runs the same function on its own thread; collectives
synchronize through barriers and shared slots, giving true MPI semantics
(blocking collectives, rank-private control flow) without an MPI runtime.
The API mirrors the mpi4py lowercase conventions (``bcast``, ``allreduce``,
``alltoallv``, ...) so the code reads like the real thing.

On top of the blocking layer sits a nonblocking request model
(``isend``/``irecv``/``ialltoallv``/``iallreduce`` returning :class:`Request`
handles with ``wait()``/``test()``).  Nonblocking collectives match across
ranks by per-rank posting order — the MPI ordering rule — through
sequence-numbered deposit buffers guarded by a condition variable, so a rank
that has deposited its contribution proceeds immediately instead of paying
two barrier crossings.  Because NumPy releases the GIL, overlapping compute
with an in-flight exchange yields real wall-clock wins here.

This substitutes for the Slingshot/MPI transport of the paper's runs; the
algorithms layered on top (overloading, pencil FFT redistribution) are the
same — only the wire is a Python list instead of a NIC.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..observe.trace import NullTracer

# The transport layer is exempt from the clock-discipline lint rule: the
# perf_counter reads below ARE the simulated wire (transfer-ready
# deadlines, wait attribution), not unattributed measurements.
# sanitize: allow-file-clock-discipline

#: poll interval for condition waits; bounds abort-detection latency
_POLL = 0.05


class CommError(RuntimeError):
    """Raised when a simulated rank fails; carries the rank id."""


class CommAborted(CommError):
    """An in-flight request observed a peer rank's abort.

    A cascade symptom, not a root cause — ``World.run`` filters these out
    of its failure report the same way it filters BrokenBarrierError.
    """


class RankFailure(CommError):
    """A simulated rank died (injected fault or hung-rank timeout).

    The typed root-cause exception the resilience layer keys off: it
    carries the failed rank, the global step it was executing, and the
    last phase it was seen entering, so a
    :class:`~repro.resilience.coordinator.RecoveryCoordinator` (and the
    tests) share one exception taxonomy with the detector instead of
    string-matching a generic :class:`CommError`.  ``World.run``
    re-raises it unwrapped when it is the primary failure.
    """

    def __init__(self, rank: int, step: int | None = None,
                 phase: str | None = None, reason: str = "rank failure"):
        self.rank = int(rank)
        self.step = step
        self.phase = phase
        self.reason = reason
        where = f" at step {step}" if step is not None else ""
        seen = f" in phase {phase!r}" if phase is not None else ""
        super().__init__(f"rank {rank} died{where}{seen}: {reason}")


class CommSanitizerError(CommError):
    """Comm-sanitizer findings reported at ``World.run`` teardown.

    Raised only for runs that otherwise completed cleanly (a real rank
    failure takes precedence and expects torn-down requests anyway).
    ``findings`` holds the :class:`~repro.sanitize.comm.CommFinding`
    objects for programmatic inspection.
    """

    def __init__(self, findings):
        self.findings = list(findings)
        lines = "\n  ".join(f.render() for f in self.findings)
        super().__init__(
            f"comm sanitizer: {len(self.findings)} finding(s)\n  {lines}"
        )


def _caller_site() -> str:
    """``file:line`` of the nearest caller outside this module."""
    f = sys._getframe(1)
    while f is not None and f.f_code.co_filename == __file__:
        f = f.f_back
    if f is None:  # pragma: no cover - only direct internal calls
        return "<unknown>"
    return f"{f.f_code.co_filename}:{f.f_lineno}"


@dataclass
class TrafficStats:
    """Bytes moved through the simulated fabric (for the perf model).

    Aggregate counters mirror the original blocking layer; the per-rank
    dicts attribute blocking-wait time and shipped bytes to individual
    ranks so overlap (reduced wait with identical traffic) is observable.
    """

    p2p_messages: int = 0
    p2p_bytes: int = 0
    collective_calls: int = 0
    collective_bytes: int = 0
    #: rank -> seconds spent blocked in wait()/recv()/collective sync
    wait_seconds: dict = field(default_factory=dict)
    #: rank -> payload bytes shipped by that rank (p2p + collectives)
    bytes_by_rank: dict = field(default_factory=dict)

    def add_wait(self, rank: int, seconds: float) -> None:
        self.wait_seconds[rank] = self.wait_seconds.get(rank, 0.0) + seconds

    def add_bytes(self, rank: int, nbytes: int) -> None:
        self.bytes_by_rank[rank] = self.bytes_by_rank.get(rank, 0) + nbytes


class _Mailbox:
    """Tag-matched message store for one (src, dst) rank pair.

    Messages whose tag does not match the posted receive stay queued under
    their own tag until a matching receive arrives — they are never dropped
    or mis-delivered.  Each message carries a transfer-ready timestamp
    (simulated network latency); receives complete only once it has passed.
    """

    def __init__(self):
        self.cond = threading.Condition()
        #: tag -> deque of (ready_time, value); FIFO per tag
        self.by_tag: dict[int, deque] = {}

    def put(self, tag: int, value, ready: float = 0.0) -> None:
        with self.cond:
            self.by_tag.setdefault(tag, deque()).append((ready, value))
            self.cond.notify_all()

    def try_get(self, tag: int):
        """Return (True, value) if a delivered message with ``tag`` is
        queued (its simulated transfer has completed)."""
        with self.cond:
            q = self.by_tag.get(tag)
            if q and q[0][0] <= time.perf_counter():
                return True, q.popleft()[1]
            return False, None


class _CollectiveBuffer:
    """One in-flight nonblocking collective: per-rank deposit slots."""

    __slots__ = ("values", "count", "taken", "ready")

    def __init__(self, n_ranks: int):
        self.values: list = [None] * n_ranks
        self.count = 0
        self.taken = 0
        #: simulated transfer completion time (max over contributions)
        self.ready = 0.0


class World:
    """Shared state for a set of simulated ranks.

    ``latency_s``/``gb_per_s`` give the simulated fabric a transfer cost
    (per-message latency plus payload/bandwidth) — the quantity the async
    engine hides behind compute.  Blocking calls pay it idle before
    returning; nonblocking requests simply do not complete until it has
    elapsed, so a rank with interior work in flight never notices.  The
    default (0, 0) is an ideal zero-latency wire.
    """

    def __init__(self, n_ranks: int, latency_s: float = 0.0,
                 gb_per_s: float = 0.0, tracer=None, sanitize: bool = False,
                 fault_plan=None):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        #: optional :class:`~repro.resilience.faults.FaultPlan`; when set,
        #: the comm layer gives it a kill point inside every blocking and
        #: nonblocking collective post (``phase="comm"`` injections), and
        #: the drivers call :meth:`note_phase` so a dying rank's exception
        #: carries the phase it died in
        self.fault_plan = fault_plan
        #: rank -> (step, phase) last reported through :meth:`note_phase`;
        #: the hung-rank timeout reads it to type its RankFailure
        self._last_phase: dict[int, tuple] = {}
        #: request-lifecycle sanitizer (``sanitize=True``); every hook in
        #: the hot path sits behind an ``is not None`` guard, so the
        #: default world pays one attribute read per post/wait at most
        if sanitize:
            from ..sanitize.comm import CommSanitizer

            self.sanitizer = CommSanitizer(n_ranks)
        else:
            self.sanitizer = None
        self.latency_s = float(latency_s)
        self.gb_per_s = float(gb_per_s)
        #: span tracer shared by every rank (observe.Tracer when tracing;
        #: the default NullTracer makes every recording call a no-op)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.barrier = threading.Barrier(n_ranks)
        self.slots: list = [None] * n_ranks
        self.mailboxes = {
            (s, d): _Mailbox() for s in range(n_ranks) for d in range(n_ranks)
        }
        self.stats = TrafficStats()
        self._stats_lock = threading.Lock()
        #: set when any rank fails; in-flight requests observe it and raise
        self.abort_event = threading.Event()
        # nonblocking-collective matching state: each rank's k-th posted
        # nonblocking collective pairs with every other rank's k-th (MPI
        # ordering semantics), via sequence-numbered deposit buffers
        self._icoll_cond = threading.Condition()
        self._icoll_seq = [0] * n_ranks
        self._icoll_bufs: dict[int, _CollectiveBuffer] = {}

    def comm(self, rank: int) -> "SimComm":
        return SimComm(self, rank)

    def note_phase(self, rank: int, step: int, phase: str) -> None:
        """Record the phase a rank is entering (dict write, no lock: each
        rank only writes its own slot).  Failure reports read it back."""
        self._last_phase[rank] = (step, phase)

    def _fault_check(self, rank: int) -> None:
        """Give an installed fault plan its comm-layer kill point."""
        fp = self.fault_plan
        if fp is not None:
            fp.on_comm(rank)

    def _xfer_delay(self, nbytes: int) -> float:
        """Simulated wire time for a payload of ``nbytes``."""
        d = self.latency_s
        if self.gb_per_s > 0.0:
            d += nbytes / (self.gb_per_s * 1e9)
        return d

    def _icoll_post(self, rank: int, value) -> int:
        self._fault_check(rank)
        with self._icoll_cond:
            seq = self._icoll_seq[rank]
            self._icoll_seq[rank] += 1
            buf = self._icoll_bufs.get(seq)
            if buf is None:
                buf = self._icoll_bufs[seq] = _CollectiveBuffer(self.n_ranks)
            buf.values[rank] = value
            buf.count += 1
            ready = time.perf_counter() + self._xfer_delay(_nbytes(value))
            if ready > buf.ready:
                buf.ready = ready
            self._icoll_cond.notify_all()
        return seq

    def _icoll_done(self, seq: int) -> bool:
        with self._icoll_cond:
            buf = self._icoll_bufs.get(seq)
            return (buf is not None and buf.count == self.n_ranks
                    and buf.ready <= time.perf_counter())

    def _icoll_collect(self, seq: int, rank: int, timeout: float) -> list:
        """Block until all ranks deposited for ``seq`` and the simulated
        transfer completed; return the slots."""
        deadline = time.perf_counter() + timeout
        with self._icoll_cond:
            while True:
                now = time.perf_counter()
                buf = self._icoll_bufs.get(seq)
                if (buf is not None and buf.count == self.n_ranks
                        and buf.ready <= now):
                    break
                if self.abort_event.is_set():
                    raise CommAborted(
                        f"rank {rank}: aborted while waiting on collective"
                    )
                if now > deadline:
                    raise CommError(
                        f"rank {rank}: collective wait timed out"
                    )
                # once all deposits are in, only the wire time remains —
                # sleep exactly that instead of a full poll chunk
                delay = _POLL
                if buf is not None and buf.count == self.n_ranks:
                    delay = min(delay, max(buf.ready - now, 1e-4))
                self._icoll_cond.wait(delay)
            vals = list(buf.values)
            buf.taken += 1
            if buf.taken == self.n_ranks:
                del self._icoll_bufs[seq]
        return vals

    def run(self, fn, *args, timeout: float = 600.0):
        """Execute ``fn(comm, *args)`` on every rank; return per-rank results.

        Any rank raising aborts the job with CommError (after all threads
        stop), mirroring an MPI abort.  A rank still alive after ``timeout``
        seconds raises a typed :class:`RankFailure` (with the hung rank's
        last-seen step/phase) instead of silently yielding None; a primary
        :class:`RankFailure` raised by a rank is re-raised unwrapped so
        callers see one exception taxonomy for both failure modes.

        With ``sanitize=True`` the comm sanitizer's teardown report runs
        after a clean join: any leaked request, double-wait, or
        unconsumed/mismatched message raises :class:`CommSanitizerError`.
        """
        self.abort_event.clear()
        if self.sanitizer is not None:
            self.sanitizer.reset()
        results = [None] * self.n_ranks
        errors = [None] * self.n_ranks

        def runner(r):
            try:
                results[r] = fn(self.comm(r), *args)
            except BaseException as exc:  # noqa: BLE001 - must not hang peers
                errors[r] = exc
                self.abort_event.set()
                self.barrier.abort()

        threads = [
            threading.Thread(target=runner, args=(r,), daemon=True)
            for r in range(self.n_ranks)
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + timeout
        for t in threads:
            t.join(max(0.0, deadline - time.monotonic()))
        hung = [r for r, t in enumerate(threads) if t.is_alive()]
        if hung:
            # unblock whoever can still be unblocked before reporting
            self.abort_event.set()
            self.barrier.abort()
            step, phase = self._last_phase.get(hung[0], (None, None))
            raise RankFailure(
                hung[0], step=step, phase=phase,
                reason=f"no progress within {timeout}s (hung-rank timeout)",
            )
        # report the root-cause failure, not the BrokenBarrierError cascade
        # it triggers on the surviving ranks
        primary = [
            (r, e)
            for r, e in enumerate(errors)
            if e is not None
            and not isinstance(e, (threading.BrokenBarrierError, CommAborted))
        ]
        cascade = [(r, e) for r, e in enumerate(errors) if e is not None]
        if primary:
            r, err = primary[0]
            if isinstance(err, RankFailure):
                raise err
            raise CommError(f"rank {r} failed: {err!r}") from err
        if cascade:
            r, err = cascade[0]
            raise CommError(f"rank {r} failed: {err!r}") from err
        if self.sanitizer is not None:
            findings = self.sanitizer.finalize(self.mailboxes)
            if findings:
                raise CommSanitizerError(findings)
        return results


def _nbytes(obj) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple)) and obj and isinstance(obj[0], np.ndarray):
        return sum(a.nbytes for a in obj)
    return 64  # rough pickle floor for small python objects


# -- request handles ----------------------------------------------------------
class Request:
    """Handle for an in-flight nonblocking operation.

    ``wait()`` blocks until completion and returns the operation's result
    (None for sends); ``test()`` polls without blocking and returns True
    once the operation can complete locally.  Time spent blocked inside
    ``wait()`` is charged to the owning rank's ``TrafficStats.wait_seconds``.

    Every request supports ``cancel()``: an idempotent local release for
    error paths, so an exchange torn down mid-flight does not read as a
    leak to the comm sanitizer.
    """

    #: lifecycle record attached by the comm sanitizer (None when off)
    _sanrec = None

    def wait(self, timeout: float = 60.0):
        raise NotImplementedError

    def test(self) -> bool:
        raise NotImplementedError

    def cancel(self) -> None:
        """Release the request locally without completing it (idempotent).

        The underlying operation is not revoked — a peer's matching call
        still completes — but this handle is settled: exception cleanup
        paths call it so the sanitizer never reports an intentionally
        abandoned request as leaked.
        """
        self._san_settled()

    def _san_waited(self) -> None:
        if self._sanrec is not None:
            self._sanrec.sanitizer.on_wait(self)

    def _san_settled(self) -> None:
        if self._sanrec is not None:
            self._sanrec.sanitizer.on_settle(self)


class CompletedRequest(Request):
    """A request that completed at post time (e.g. buffered isend)."""

    def __init__(self, result=None):
        self._result = result

    def wait(self, timeout: float = 60.0):
        self._san_waited()
        return self._result

    def test(self) -> bool:
        self._san_settled()
        return True


class RecvRequest(Request):
    """In-flight irecv: completes when a tag-matched message arrives."""

    def __init__(self, comm: "SimComm", source: int, tag: int):
        self._comm = comm
        self._box = comm.world.mailboxes[(source, comm.rank)]
        self._source = source
        self._tag = tag
        self._done = False
        self._value = None

    def test(self) -> bool:
        if self._done:
            return True
        ok, value = self._box.try_get(self._tag)
        if ok:
            self._value = value
            self._done = True
            self._san_settled()
        return self._done

    def wait(self, timeout: float = 60.0):
        if self._done:
            self._san_waited()
            return self._value
        comm = self._comm
        san = comm.world.sanitizer
        t0 = time.perf_counter()
        deadline = t0 + timeout
        if san is not None:
            san.enter_recv_wait(comm.rank, self._source, self._tag)
        try:
            with self._box.cond:
                while True:
                    now = time.perf_counter()
                    q = self._box.by_tag.get(self._tag)
                    if q and q[0][0] <= now:
                        self._value = q.popleft()[1]
                        self._done = True
                        break
                    if comm.world.abort_event.is_set():
                        self._san_settled()
                        raise CommAborted(
                            f"rank {comm.rank}: aborted while receiving from "
                            f"{self._source} (tag {self._tag})"
                        )
                    if now > deadline:
                        self._san_settled()
                        raise CommError(
                            f"rank {comm.rank}: recv from {self._source} "
                            f"(tag {self._tag}) timed out"
                        )
                    if san is not None:
                        cycle = san.check_deadlock(
                            comm.rank, comm.world.mailboxes
                        )
                        if cycle is not None:
                            self._san_settled()
                            raise CommError(cycle)
                    # a queued message only lacks wire time: sleep exactly
                    # that
                    delay = _POLL
                    if q:
                        delay = min(delay, max(q[0][0] - now, 1e-4))
                    self._box.cond.wait(delay)
        finally:
            if san is not None:
                san.leave_recv_wait(comm.rank)
        comm._charge_wait(time.perf_counter() - t0)
        self._san_waited()
        return self._value


class CollectiveRequest(Request):
    """In-flight nonblocking collective, finalized by ``_finish(slots)``.

    When tracing, the request's lifetime post → completion is an async
    slice (with a flow arrow into the completing wait), so overlap of
    in-flight collectives with compute is directly visible in Perfetto.
    """

    def __init__(self, comm: "SimComm", seq: int, finish,
                 name: str = "comm/icollective", trace_id: str | None = None):
        self._comm = comm
        self._seq = seq
        self._finish = finish
        self._name = name
        self._trace_id = trace_id
        self._done = False
        self._result = None

    def test(self) -> bool:
        if self._done:
            return True
        if self._comm.world._icoll_done(self._seq):
            self._complete(timeout=1.0)
        return self._done

    def _complete(self, timeout: float) -> None:
        comm = self._comm
        t0 = time.perf_counter()
        try:
            vals = comm.world._icoll_collect(self._seq, comm.rank, timeout)
        except CommError:
            # abort cascade or timeout: this handle is dead either way —
            # settle it so teardown does not double-report it as a leak
            self._san_settled()
            raise
        comm._charge_wait(time.perf_counter() - t0)
        tr = comm.world.tracer
        if tr.enabled and self._trace_id is not None:
            tr.async_end(self._name, self._trace_id, cat="comm",
                         tid=comm.rank)
            tr.flow_end(self._name, self._trace_id, tid=comm.rank)
        self._result = self._finish(vals)
        self._done = True
        self._san_settled()

    def wait(self, timeout: float = 60.0):
        if not self._done:
            self._complete(timeout)
        self._san_waited()
        return self._result


class SimComm:
    """Rank-local handle: the mpi4py-like communication interface."""

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        return self.world.n_ranks

    def _charge_wait(self, seconds: float, name: str = "comm/wait") -> None:
        with self.world._stats_lock:
            self.world.stats.add_wait(self.rank, seconds)
        tr = self.world.tracer
        if tr.enabled:
            # the wait just ended: record it as a complete span covering
            # the blocked interval on this rank's track
            tr.complete(name, ts=tr.clock.now() - seconds, dur=seconds,
                        cat="comm", tid=self.rank)

    def _charge_sent(self, nbytes: int) -> None:
        with self.world._stats_lock:
            self.world.stats.add_bytes(self.rank, nbytes)

    def _san_post(self, req: Request, kind: str, detail: str,
                  source: int | None = None, tag: int | None = None):
        """Register a freshly posted request with the comm sanitizer."""
        san = self.world.sanitizer
        if san is not None:
            san.on_post(req, self.rank, kind, detail, site=_caller_site(),
                        source=source, tag=tag)
        return req

    # -- core synchronization ------------------------------------------------
    def barrier(self) -> None:
        t0 = time.perf_counter()
        self.world.barrier.wait()
        self._charge_wait(time.perf_counter() - t0, name="comm/barrier")

    def _exchange(self, value):
        """All-to-all slot exchange: the primitive under every collective.

        With a simulated fabric cost configured, every rank pays the wire
        time of the largest contribution idle before returning — this is
        exactly the latency the nonblocking path lets callers hide."""
        self.world._fault_check(self.rank)
        t0 = time.perf_counter()
        self.world.slots[self.rank] = value
        self.world.barrier.wait()
        vals = list(self.world.slots)
        self.world.barrier.wait()
        if self.world.latency_s > 0.0 or self.world.gb_per_s > 0.0:
            time.sleep(max(self.world._xfer_delay(_nbytes(v)) for v in vals))
        with self.world._stats_lock:
            self.world.stats.collective_calls += 1
            self.world.stats.collective_bytes += _nbytes(value)
            self.world.stats.add_bytes(self.rank, _nbytes(value))
        self._charge_wait(time.perf_counter() - t0, name="comm/exchange")
        return vals

    # -- collectives ---------------------------------------------------------
    def bcast(self, value, root: int = 0):
        vals = self._exchange(value if self.rank == root else None)
        return vals[root]

    def gather(self, value, root: int = 0):
        vals = self._exchange(value)
        return vals if self.rank == root else None

    def allgather(self, value):
        return self._exchange(value)

    def scatter(self, values, root: int = 0):
        if self.rank == root and (values is None or len(values) != self.size):
            raise ValueError("scatter needs one value per rank at the root")
        vals = self._exchange(values if self.rank == root else None)
        return vals[root][self.rank]

    def allreduce(self, value, op: str = "sum"):
        vals = self._exchange(value)
        return _reduce_vals(vals, op)

    def reduce(self, value, op: str = "sum", root: int = 0):
        out = self.allreduce(value, op=op)
        return out if self.rank == root else None

    def alltoall(self, values):
        """values[d] goes to rank d; returns list indexed by source."""
        if len(values) != self.size:
            raise ValueError("alltoall needs one entry per destination")
        mat = self._exchange(values)
        return [mat[src][self.rank] for src in range(self.size)]

    def alltoallv(self, arrays: list[np.ndarray]) -> list[np.ndarray]:
        """Variable-size numpy all-to-all (arrays[d] shipped to rank d)."""
        return self.alltoall(arrays)

    def _trace_post(self, name: str, nbytes: int) -> str | None:
        """Open the async slice + flow arrow for a nonblocking post."""
        tr = self.world.tracer
        if not tr.enabled:
            return None
        trace_id = tr.next_id()
        tr.async_begin(name, trace_id, cat="comm", tid=self.rank,
                       bytes=nbytes)
        tr.flow_start(name, trace_id, tid=self.rank)
        return trace_id

    # -- nonblocking collectives ---------------------------------------------
    def ialltoallv(self, arrays: list[np.ndarray]) -> Request:
        """Post a variable-size all-to-all; returns a Request.

        ``wait()`` returns the received arrays indexed by source rank.
        Unlike the blocking ``alltoallv`` (two barrier crossings), the
        posting rank deposits its contribution and continues immediately.
        """
        if len(arrays) != self.size:
            raise ValueError("ialltoallv needs one entry per destination")
        nbytes = _nbytes(arrays)
        with self.world._stats_lock:
            self.world.stats.collective_calls += 1
            self.world.stats.collective_bytes += nbytes
            self.world.stats.add_bytes(self.rank, nbytes)
        seq = self.world._icoll_post(self.rank, arrays)
        me = self.rank
        n = self.size
        return self._san_post(CollectiveRequest(
            self, seq, lambda mat: [mat[src][me] for src in range(n)],
            name="comm/ialltoallv",
            trace_id=self._trace_post("comm/ialltoallv", nbytes),
        ), "ialltoallv", f"{nbytes} B, seq {seq}")

    def iallgather(self, value) -> Request:
        """Post an allgather; ``wait()`` returns the per-rank value list."""
        nbytes = _nbytes(value)
        with self.world._stats_lock:
            self.world.stats.collective_calls += 1
            self.world.stats.collective_bytes += nbytes
            self.world.stats.add_bytes(self.rank, nbytes)
        seq = self.world._icoll_post(self.rank, value)
        return self._san_post(CollectiveRequest(
            self, seq, list, name="comm/iallgather",
            trace_id=self._trace_post("comm/iallgather", nbytes),
        ), "iallgather", f"{nbytes} B, seq {seq}")

    def iallreduce(self, value, op: str = "sum") -> Request:
        """Post an allreduce; ``wait()`` returns the reduced value."""
        if op not in ("sum", "min", "max"):
            raise ValueError(f"unknown reduction {op!r}")
        nbytes = _nbytes(value)
        with self.world._stats_lock:
            self.world.stats.collective_calls += 1
            self.world.stats.collective_bytes += nbytes
            self.world.stats.add_bytes(self.rank, nbytes)
        seq = self.world._icoll_post(self.rank, value)
        return self._san_post(CollectiveRequest(
            self, seq, lambda vals: _reduce_vals(vals, op),
            name="comm/iallreduce",
            trace_id=self._trace_post("comm/iallreduce", nbytes),
        ), "iallreduce", f"op {op}, {nbytes} B, seq {seq}")

    # -- point to point --------------------------------------------------------
    def send(self, value, dest: int, tag: int = 0) -> None:
        # the blocking send completes its own (buffered) request, so the
        # sanitizer never sees the dropped handle as a leak
        self.isend(value, dest, tag=tag).wait()

    def isend(self, value, dest: int, tag: int = 0) -> Request:
        """Buffered send: completes at post time (the fabric is a list).

        The matching receive still pays the simulated wire time: the
        message only becomes visible once its transfer delay has elapsed."""
        nbytes = _nbytes(value)
        with self.world._stats_lock:
            self.world.stats.p2p_messages += 1
            self.world.stats.p2p_bytes += nbytes
            self.world.stats.add_bytes(self.rank, nbytes)
        ready = time.perf_counter() + self.world._xfer_delay(nbytes)
        self.world.mailboxes[(self.rank, dest)].put(tag, value, ready)
        return self._san_post(
            CompletedRequest(), "isend",
            f"to rank {dest}, tag {tag}, {nbytes} B",
        )

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Post a receive matched on (source, tag); returns a Request."""
        return self._san_post(
            RecvRequest(self, source, tag), "irecv",
            f"from rank {source}, tag {tag}", source=source, tag=tag,
        )

    def recv(self, source: int, tag: int = 0, timeout: float = 60.0):
        """Blocking tag-matched receive.

        Messages queued under other tags on the same (src, dst) channel are
        held back for their own receives, never dropped.
        """
        return RecvRequest(self, source, tag).wait(timeout)

    def sendrecv(self, value, dest: int, source: int, tag: int = 0):
        self.send(value, dest, tag=tag)
        return self.recv(source, tag=tag)


def _reduce_vals(vals: list, op: str):
    if op == "sum":
        out = vals[0]
        for v in vals[1:]:
            out = out + v
        return out
    if op == "min":
        return min(vals) if np.isscalar(vals[0]) else np.minimum.reduce(vals)
    if op == "max":
        return max(vals) if np.isscalar(vals[0]) else np.maximum.reduce(vals)
    raise ValueError(f"unknown reduction {op!r}")
