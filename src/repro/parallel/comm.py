"""Simulated MPI: an in-process, thread-based SPMD communicator.

Each simulated rank runs the same function on its own thread; collectives
synchronize through barriers and shared slots, giving true MPI semantics
(blocking collectives, rank-private control flow) without an MPI runtime.
The API mirrors the mpi4py lowercase conventions (``bcast``, ``allreduce``,
``alltoallv``, ...) so the code reads like the real thing.

This substitutes for the Slingshot/MPI transport of the paper's runs; the
algorithms layered on top (overloading, pencil FFT redistribution) are the
same — only the wire is a Python list instead of a NIC.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

import numpy as np


class CommError(RuntimeError):
    """Raised when a simulated rank fails; carries the rank id."""


@dataclass
class TrafficStats:
    """Bytes moved through the simulated fabric (for the perf model)."""

    p2p_messages: int = 0
    p2p_bytes: int = 0
    collective_calls: int = 0
    collective_bytes: int = 0


class World:
    """Shared state for a set of simulated ranks."""

    def __init__(self, n_ranks: int):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.barrier = threading.Barrier(n_ranks)
        self.slots: list = [None] * n_ranks
        self.mailboxes = {
            (s, d): queue.Queue() for s in range(n_ranks) for d in range(n_ranks)
        }
        self.stats = TrafficStats()
        self._stats_lock = threading.Lock()

    def comm(self, rank: int) -> "SimComm":
        return SimComm(self, rank)

    def run(self, fn, *args, timeout: float = 600.0):
        """Execute ``fn(comm, *args)`` on every rank; return per-rank results.

        Any rank raising aborts the job with CommError (after all threads
        stop), mirroring an MPI abort.
        """
        results = [None] * self.n_ranks
        errors = [None] * self.n_ranks

        def runner(r):
            try:
                results[r] = fn(self.comm(r), *args)
            except BaseException as exc:  # noqa: BLE001 - must not hang peers
                errors[r] = exc
                self.barrier.abort()

        threads = [
            threading.Thread(target=runner, args=(r,), daemon=True)
            for r in range(self.n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout)
        # report the root-cause failure, not the BrokenBarrierError cascade
        # it triggers on the surviving ranks
        primary = [
            (r, e)
            for r, e in enumerate(errors)
            if e is not None and not isinstance(e, threading.BrokenBarrierError)
        ]
        cascade = [(r, e) for r, e in enumerate(errors) if e is not None]
        if primary:
            r, err = primary[0]
            raise CommError(f"rank {r} failed: {err!r}") from err
        if cascade:
            r, err = cascade[0]
            raise CommError(f"rank {r} failed: {err!r}") from err
        return results


def _nbytes(obj) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    return 64  # rough pickle floor for small python objects


class SimComm:
    """Rank-local handle: the mpi4py-like communication interface."""

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        return self.world.n_ranks

    # -- core synchronization ------------------------------------------------
    def barrier(self) -> None:
        self.world.barrier.wait()

    def _exchange(self, value):
        """All-to-all slot exchange: the primitive under every collective."""
        self.world.slots[self.rank] = value
        self.world.barrier.wait()
        vals = list(self.world.slots)
        self.world.barrier.wait()
        with self.world._stats_lock:
            self.world.stats.collective_calls += 1
            self.world.stats.collective_bytes += _nbytes(value)
        return vals

    # -- collectives ---------------------------------------------------------
    def bcast(self, value, root: int = 0):
        vals = self._exchange(value if self.rank == root else None)
        return vals[root]

    def gather(self, value, root: int = 0):
        vals = self._exchange(value)
        return vals if self.rank == root else None

    def allgather(self, value):
        return self._exchange(value)

    def scatter(self, values, root: int = 0):
        if self.rank == root and (values is None or len(values) != self.size):
            raise ValueError("scatter needs one value per rank at the root")
        vals = self._exchange(values if self.rank == root else None)
        return vals[root][self.rank]

    def allreduce(self, value, op: str = "sum"):
        vals = self._exchange(value)
        if op == "sum":
            out = vals[0]
            for v in vals[1:]:
                out = out + v
            return out
        if op == "min":
            return min(vals) if np.isscalar(vals[0]) else np.minimum.reduce(vals)
        if op == "max":
            return max(vals) if np.isscalar(vals[0]) else np.maximum.reduce(vals)
        raise ValueError(f"unknown reduction {op!r}")

    def reduce(self, value, op: str = "sum", root: int = 0):
        out = self.allreduce(value, op=op)
        return out if self.rank == root else None

    def alltoall(self, values):
        """values[d] goes to rank d; returns list indexed by source."""
        if len(values) != self.size:
            raise ValueError("alltoall needs one entry per destination")
        mat = self._exchange(values)
        return [mat[src][self.rank] for src in range(self.size)]

    def alltoallv(self, arrays: list[np.ndarray]) -> list[np.ndarray]:
        """Variable-size numpy all-to-all (arrays[d] shipped to rank d)."""
        return self.alltoall(arrays)

    # -- point to point --------------------------------------------------------
    def send(self, value, dest: int, tag: int = 0) -> None:
        with self.world._stats_lock:
            self.world.stats.p2p_messages += 1
            self.world.stats.p2p_bytes += _nbytes(value)
        self.world.mailboxes[(self.rank, dest)].put((tag, value))

    def recv(self, source: int, tag: int = 0, timeout: float = 60.0):
        t, value = self.world.mailboxes[(source, self.rank)].get(timeout=timeout)
        if t != tag:
            raise CommError(
                f"rank {self.rank}: expected tag {tag} from {source}, got {t}"
            )
        return value

    def sendrecv(self, value, dest: int, source: int, tag: int = 0):
        self.send(value, dest, tag=tag)
        return self.recv(source, tag=tag)
