"""Physical and code constants.

CRK-HACC-style unit conventions: comoving Mpc/h for lengths, Msun/h for
masses, km/s for peculiar velocities.  Internal gravitational dynamics use
the scale factor ``a`` as the time variable where convenient.
"""

from __future__ import annotations

import math

# --- fundamental constants (CGS) -----------------------------------------
G_CGS = 6.674e-8  # gravitational constant [cm^3 g^-1 s^-2]
K_BOLTZMANN = 1.380649e-16  # Boltzmann constant [erg/K]
M_PROTON = 1.67262192e-24  # proton mass [g]
M_ELECTRON = 9.1093837e-28  # electron mass [g]
SIGMA_THOMSON = 6.6524587e-25  # Thomson cross section [cm^2]
C_LIGHT = 2.99792458e10  # speed of light [cm/s]

# --- astrophysical unit conversions ---------------------------------------
MPC_CM = 3.0856775814913673e24  # 1 Mpc in cm
KPC_CM = MPC_CM / 1.0e3
KM_CM = 1.0e5
MSUN_G = 1.98892e33  # solar mass in g
YEAR_S = 3.15576e7  # Julian year in seconds
GYR_S = 1.0e9 * YEAR_S

# --- derived, in "cosmology" units ----------------------------------------
# G in units of (Mpc (km/s)^2 / Msun): G * Msun / (Mpc * km^2/s^2)
G_COSMO = G_CGS * MSUN_G / (MPC_CM * KM_CM**2)  # ~4.30e-9 Mpc Msun^-1 (km/s)^2

# Hubble constant scale: H0 = 100 h km/s/Mpc in 1/s
H100_S = 100.0 * KM_CM / MPC_CM

# Critical density today in Msun h^2 / Mpc^3:
#   rho_crit = 3 H0^2 / (8 pi G)
RHO_CRIT_COSMO = 3.0 * 100.0**2 / (8.0 * math.pi * G_COSMO)  # ~2.775e11

# --- gas physics -----------------------------------------------------------
GAMMA_IDEAL = 5.0 / 3.0  # monatomic ideal gas adiabatic index
MU_PRIMORDIAL_NEUTRAL = 1.22  # mean molecular weight, neutral primordial gas
MU_PRIMORDIAL_IONIZED = 0.59  # fully ionized primordial gas
X_HYDROGEN = 0.76  # primordial hydrogen mass fraction
Y_HELIUM = 0.24  # primordial helium mass fraction

# Solar metallicity (mass fraction of metals), Asplund-like
Z_SOLAR = 0.0127

# --- paper anchor values (Frontier-E, Section VI) -------------------------
# These are the published measurements the performance model must reproduce.
FRONTIER_E_NODES = 9000
FRONTIER_E_RANKS_PER_NODE = 8  # one MPI rank per GCD
FRONTIER_E_PM_GRID = 12600  # global PM mesh per dimension
FRONTIER_E_PARTICLES = 2 * 12600**3  # ~4 trillion total (DM + baryon tracers)
FRONTIER_E_PM_STEPS = 625
FRONTIER_E_BOX_GPC = 4.7  # comoving Gpc (~15.3 Gly)
FRONTIER_E_PEAK_PFLOPS = 513.1
FRONTIER_E_SUSTAINED_PFLOPS = 420.5
FRONTIER_E_PARTICLES_PER_SEC = 46.6e9
FRONTIER_E_WALLCLOCK_HOURS = 196.0
FRONTIER_E_GRAVITY_ONLY_HOURS = 12.0
FRONTIER_E_TOTAL_DATA_PB = 100.0
FRONTIER_E_SCIENCE_DATA_PB = 12.0
FRONTIER_E_EFFECTIVE_IO_TBPS = 5.45
FRONTIER_E_IO_HOURS = 5.1
FRONTIER_E_CHECKPOINT_TB = (150.0, 180.0)  # per-step checkpoint size range
FRONTIER_E_TTS_FRACTIONS = {
    "short_range": 0.796,
    "analysis": 0.116,
    "io": 0.026,
    "long_range": 0.017,
    "tree_build": 0.017,
    "other": 0.028,
}
FRONTIER_E_GPU_RESIDENCY = 0.912  # fraction of runtime on GPU
FRONTIER_E_STRONG_EFFICIENCY = 0.92
FRONTIER_E_WEAK_EFFICIENCY = 0.95
FRONTIER_E_UTIL_HIGHZ_PEAK = 0.33
FRONTIER_E_UTIL_HIGHZ_SUSTAINED = 0.265
FRONTIER_E_UTIL_LOWZ_PEAK = 0.34
FRONTIER_E_UTIL_LOWZ_SUSTAINED = 0.28
