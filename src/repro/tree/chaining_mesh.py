"""Chaining mesh (CM): fixed spatial bins for short-range interactions.

The CM grid divides a rank's (or box's) domain into cubical bins roughly
four FFT cells wide (paper Section IV-B1).  All short-range forces operate
only within a bin and its 26 neighbors, so the bin width must be at least
the largest interaction radius.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ChainingMesh:
    """Particles binned on a regular grid with CSR-style bin storage.

    Attributes
    ----------
    n_bins : bins per dimension (3-vector)
    widths : bin widths per dimension
    order : permutation sorting particles by bin id
    bin_start, bin_count : CSR offsets into ``order`` per flat bin id
    bin_index : flat bin id per (unsorted) particle
    periodic : whether neighbor stencils wrap around the domain
    """

    origin: np.ndarray
    extent: np.ndarray
    n_bins: np.ndarray
    widths: np.ndarray
    order: np.ndarray
    bin_start: np.ndarray
    bin_count: np.ndarray
    bin_index: np.ndarray
    periodic: bool

    @property
    def total_bins(self) -> int:
        return int(np.prod(self.n_bins))

    def bin_coords(self, flat: np.ndarray) -> np.ndarray:
        """Flat bin id -> (ix, iy, iz)."""
        nx, ny, nz = (int(v) for v in self.n_bins)
        iz = flat % nz
        iy = (flat // nz) % ny
        ix = flat // (ny * nz)
        return np.stack([ix, iy, iz], axis=-1)

    def flat_index(self, coords: np.ndarray) -> np.ndarray:
        """(ix, iy, iz) -> flat bin id, wrapping if periodic."""
        nx, ny, nz = (int(v) for v in self.n_bins)
        c = np.asarray(coords)
        if self.periodic:
            cx = np.mod(c[..., 0], nx)
            cy = np.mod(c[..., 1], ny)
            cz = np.mod(c[..., 2], nz)
            valid = np.ones(c.shape[:-1], dtype=bool)
        else:
            cx, cy, cz = c[..., 0], c[..., 1], c[..., 2]
            valid = (
                (cx >= 0) & (cx < nx) & (cy >= 0) & (cy < ny) & (cz >= 0) & (cz < nz)
            )
            cx = np.clip(cx, 0, nx - 1)
            cy = np.clip(cy, 0, ny - 1)
            cz = np.clip(cz, 0, nz - 1)
        flat = (cx * ny + cy) * nz + cz
        return np.where(valid, flat, -1)

    def particles_in_bin(self, flat: int) -> np.ndarray:
        """Original particle indices contained in one bin."""
        s = self.bin_start[flat]
        return self.order[s : s + self.bin_count[flat]]


def build_chaining_mesh(
    pos: np.ndarray,
    min_width: float,
    origin=None,
    extent=None,
    periodic: bool = True,
) -> ChainingMesh:
    """Bin particles on a grid with bins at least ``min_width`` wide.

    For a periodic box pass ``origin=0`` and ``extent=box``; otherwise the
    bounding box of the particles (slightly padded) is used.
    """
    pos = np.asarray(pos, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"positions must be (N, 3), got {pos.shape}")
    if min_width <= 0:
        raise ValueError("min_width must be positive")

    if origin is None or extent is None:
        lo = pos.min(axis=0)
        hi = pos.max(axis=0)
        pad = 1e-9 * np.maximum(hi - lo, 1.0)
        origin = lo - pad
        extent = (hi - lo) + 2 * pad
        periodic = False
    origin = np.broadcast_to(np.asarray(origin, dtype=np.float64), (3,)).copy()
    extent = np.broadcast_to(np.asarray(extent, dtype=np.float64), (3,)).copy()

    n_bins = np.maximum(np.floor(extent / min_width).astype(int), 1)
    total_bins = int(np.prod(n_bins.astype(np.float64)))
    if total_bins > 50_000_000:
        raise ValueError(
            f"chaining mesh would need {total_bins:.2e} bins "
            f"(extent {extent}, min_width {min_width}); the particle "
            f"distribution has likely blown up or min_width is too small"
        )
    widths = extent / n_bins

    rel = (pos - origin) / widths
    coords = np.floor(rel).astype(int)
    coords = np.clip(coords, 0, n_bins - 1)
    nx, ny, nz = (int(v) for v in n_bins)
    flat = (coords[:, 0] * ny + coords[:, 1]) * nz + coords[:, 2]

    order = np.argsort(flat, kind="stable")
    total = nx * ny * nz
    bin_count = np.bincount(flat, minlength=total)
    bin_start = np.concatenate([[0], np.cumsum(bin_count)[:-1]])

    return ChainingMesh(
        origin=origin,
        extent=extent,
        n_bins=n_bins,
        widths=widths,
        order=order,
        bin_start=bin_start,
        bin_count=bin_count,
        bin_index=flat,
        periodic=periodic,
    )


NEIGHBOR_OFFSETS = np.array(
    [(i, j, k) for i in (-1, 0, 1) for j in (-1, 0, 1) for k in (-1, 0, 1)]
)


def neighbor_pairs(
    pos: np.ndarray,
    h: np.ndarray,
    box: float | None = None,
    mesh: ChainingMesh | None = None,
    include_self: bool = True,
):
    """Symmetric neighbor pair lists via the chaining mesh (cell-list method).

    Returns ordered pair index arrays ``(pi, pj)`` containing every pair with
    ``|x_i - x_j| < max(h_i, h_j)`` in both orientations, plus self pairs if
    requested.  The max-h criterion makes the list symmetric by construction,
    which the conservative CRKSPH pairing requires.
    """
    pos = np.asarray(pos, dtype=np.float64)
    h = np.broadcast_to(np.asarray(h, dtype=np.float64), (pos.shape[0],))
    n = pos.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    hmax = float(h.max())
    if mesh is None:
        if box is not None:
            mesh = build_chaining_mesh(pos, hmax, origin=0.0, extent=box, periodic=True)
        else:
            mesh = build_chaining_mesh(pos, hmax)

    # Per-bin target table over the 27 stencil offsets.  In tiny periodic
    # meshes several offsets wrap onto the same neighbor bin; masking those
    # duplicates *per bin* (cheap: n_bins x 27) keeps the pair expansion
    # duplicate-free by construction, so no O(P log P) dedup is needed.
    all_bins = np.arange(mesh.total_bins)
    bin_coords_all = mesh.bin_coords(all_bins)
    targets = np.stack(
        [mesh.flat_index(bin_coords_all + off) for off in NEIGHBOR_OFFSETS]
    )  # (27, n_bins)
    fresh = np.ones_like(targets, dtype=bool)
    for o in range(1, len(NEIGHBOR_OFFSETS)):
        dup = (targets[:o] == targets[o][None, :]).any(axis=0)
        fresh[o] = ~dup
    fresh &= targets >= 0

    coords = mesh.bin_coords(mesh.bin_index)
    pi_chunks = []
    pj_chunks = []
    for o in range(len(NEIGHBOR_OFFSETS)):
        valid = fresh[o][mesh.bin_index]
        idx_i = np.nonzero(valid)[0]
        if len(idx_i) == 0:
            continue
        tb = targets[o][mesh.bin_index[idx_i]]
        counts = mesh.bin_count[tb]
        if counts.sum() == 0:
            continue
        rep_i = np.repeat(idx_i, counts)
        starts = np.repeat(mesh.bin_start[tb], counts)
        intra = np.arange(len(rep_i)) - np.repeat(
            np.concatenate([[0], np.cumsum(counts)[:-1]]), counts
        )
        rep_j = mesh.order[starts + intra]
        pi_chunks.append(rep_i)
        pj_chunks.append(rep_j)

    pi = np.concatenate(pi_chunks)
    pj = np.concatenate(pj_chunks)

    dx = pos[pi] - pos[pj]
    if box is not None:
        dx -= box * np.round(dx / box)
    r2 = np.einsum("pa,pa->p", dx, dx)
    rmax = np.maximum(h[pi], h[pj])
    keep = r2 < rmax * rmax
    if not include_self:
        keep &= pi != pj
    return pi[keep], pj[keep]
