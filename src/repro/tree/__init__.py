"""Chaining mesh + coarse-leaf k-d tree spatial structures (Section IV-B1)."""

from .bounding_boxes import aabb_of, contains, grow_to_cover, surface_area, union, volume
from .chaining_mesh import ChainingMesh, build_chaining_mesh, neighbor_pairs
from .interaction_lists import (
    InteractionList,
    active_leaf_mask,
    build_interaction_list,
    expand_to_particle_pairs,
)
from .kdtree import LeafSet, build_leaf_set
from .pair_cache import ActivePairSlices, PairCache

__all__ = [
    "ActivePairSlices",
    "ChainingMesh",
    "InteractionList",
    "LeafSet",
    "PairCache",
    "aabb_of",
    "active_leaf_mask",
    "build_chaining_mesh",
    "build_interaction_list",
    "build_leaf_set",
    "contains",
    "expand_to_particle_pairs",
    "grow_to_cover",
    "neighbor_pairs",
    "surface_area",
    "union",
    "volume",
]
