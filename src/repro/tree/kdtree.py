"""Coarse-leaf k-d trees built inside chaining-mesh bins.

Unlike CPU trees built to the single-particle level, CRK-HACC subdivides each
CM bin only down to base leaves of a few hundred particles (paper
Section IV-B1).  Only the leaves are retained; their bounding boxes are
allowed to grow during subcycling instead of rebuilding the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .chaining_mesh import ChainingMesh


@dataclass
class LeafSet:
    """Flattened set of tree leaves over all CM bins.

    ``order`` is a permutation of particle indices; leaf ``L`` owns
    ``order[leaf_start[L] : leaf_start[L] + leaf_count[L]]``.
    """

    order: np.ndarray
    leaf_start: np.ndarray
    leaf_count: np.ndarray
    leaf_bin: np.ndarray  # CM bin id per leaf
    aabb_min: np.ndarray  # (L, 3)
    aabb_max: np.ndarray  # (L, 3)
    #: per-particle leaf membership (inverse mapping)
    particle_leaf: np.ndarray = field(default=None)

    @property
    def n_leaves(self) -> int:
        return len(self.leaf_start)

    def particles_in_leaf(self, leaf: int) -> np.ndarray:
        s = self.leaf_start[leaf]
        return self.order[s : s + self.leaf_count[leaf]]

    def recompute_boxes(self, pos: np.ndarray, grow: bool = True) -> None:
        """Refresh leaf AABBs from current positions (vectorized reduceat).

        With ``grow=True`` (the CRK-HACC mode) boxes only expand — the union
        of the old box and the new particle extent — so interaction lists
        built against them remain conservative between tree rebuilds.  This
        is the cheap per-substep operation that replaces tree rebuilds.
        """
        if self.n_leaves == 0:
            return
        ordered = pos[self.order]
        nonempty = self.leaf_count > 0
        starts = self.leaf_start[nonempty]
        lo = np.minimum.reduceat(ordered, starts, axis=0)
        hi = np.maximum.reduceat(ordered, starts, axis=0)
        if grow:
            self.aabb_min[nonempty] = np.minimum(self.aabb_min[nonempty], lo)
            self.aabb_max[nonempty] = np.maximum(self.aabb_max[nonempty], hi)
        else:
            self.aabb_min[nonempty] = lo
            self.aabb_max[nonempty] = hi


def _split_recursive(pos, idx, max_leaf, out):
    """Median-split ``idx`` along the widest axis until <= max_leaf."""
    stack = [idx]
    while stack:
        cur = stack.pop()
        if len(cur) <= max_leaf:
            out.append(cur)
            continue
        p = pos[cur]
        widths = p.max(axis=0) - p.min(axis=0)
        axis = int(np.argmax(widths))
        med = len(cur) // 2
        part = np.argpartition(p[:, axis], med)
        stack.append(cur[part[:med]])
        stack.append(cur[part[med:]])


def build_leaf_set(
    pos: np.ndarray,
    mesh: ChainingMesh,
    max_leaf: int = 128,
) -> LeafSet:
    """Build coarse leaves by k-d splitting the particles of each CM bin."""
    if max_leaf < 1:
        raise ValueError("max_leaf must be >= 1")
    pos = np.asarray(pos, dtype=np.float64)
    order_chunks: list[np.ndarray] = []
    leaf_counts: list[int] = []
    leaf_bins: list[int] = []

    occupied = np.nonzero(mesh.bin_count)[0]
    for b in occupied:
        idx = mesh.particles_in_bin(int(b))
        leaves: list[np.ndarray] = []
        _split_recursive(pos, idx, max_leaf, leaves)
        for leaf_idx in leaves:
            order_chunks.append(leaf_idx)
            leaf_counts.append(len(leaf_idx))
            leaf_bins.append(int(b))

    if order_chunks:
        order = np.concatenate(order_chunks)
    else:
        order = np.empty(0, dtype=np.int64)
    leaf_count = np.asarray(leaf_counts, dtype=np.int64)
    leaf_start = np.concatenate([[0], np.cumsum(leaf_count)[:-1]]).astype(np.int64)

    n_leaves = len(leaf_count)
    aabb_min = np.full((n_leaves, 3), np.inf)
    aabb_max = np.full((n_leaves, 3), -np.inf)
    particle_leaf = np.full(pos.shape[0], -1, dtype=np.int64)
    for leaf in range(n_leaves):
        s = leaf_start[leaf]
        idx = order[s : s + leaf_count[leaf]]
        aabb_min[leaf] = pos[idx].min(axis=0)
        aabb_max[leaf] = pos[idx].max(axis=0)
        particle_leaf[idx] = leaf

    return LeafSet(
        order=order,
        leaf_start=leaf_start,
        leaf_count=leaf_count,
        leaf_bin=np.asarray(leaf_bins, dtype=np.int64),
        aabb_min=aabb_min,
        aabb_max=aabb_max,
        particle_leaf=particle_leaf,
    )
