"""Growable axis-aligned bounding boxes.

CRK-HACC builds its trees once per global PM step and lets leaf bounding
boxes *grow* as particles drift during subcycles (paper Section IV-B1).
This module provides the standalone AABB utilities used by the leaf set and
by tests/ablations that compare grow-vs-rebuild strategies.
"""

from __future__ import annotations

import numpy as np


def aabb_of(points: np.ndarray):
    """Tight AABB (min, max) of a point set."""
    points = np.asarray(points, dtype=np.float64)
    if points.size == 0:
        return np.full(3, np.inf), np.full(3, -np.inf)
    return points.min(axis=0), points.max(axis=0)


def union(amin, amax, bmin, bmax):
    """AABB union."""
    return np.minimum(amin, bmin), np.maximum(amax, bmax)


def contains(amin, amax, points, pad: float = 0.0) -> np.ndarray:
    """Boolean mask: which points lie inside the (padded) box."""
    points = np.asarray(points, dtype=np.float64)
    return np.all((points >= amin - pad) & (points <= amax + pad), axis=-1)


def volume(amin, amax) -> float:
    """Box volume (0 for inverted/empty boxes)."""
    ext = np.maximum(np.asarray(amax) - np.asarray(amin), 0.0)
    return float(np.prod(ext))


def surface_area(amin, amax) -> float:
    """Box surface area (0 for inverted/empty boxes)."""
    e = np.maximum(np.asarray(amax) - np.asarray(amin), 0.0)
    return float(2.0 * (e[0] * e[1] + e[1] * e[2] + e[0] * e[2]))


def grow_to_cover(amin, amax, points):
    """Expand a box minimally so it covers ``points`` (monotone growth)."""
    pmin, pmax = aabb_of(points)
    return union(amin, amax, pmin, pmax)
