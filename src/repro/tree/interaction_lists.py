"""Leaf-leaf interaction list assembly.

Interaction lists pair tree leaves whose padded bounding boxes overlap,
restricted to neighboring chaining-mesh bins.  Only "active" leaves (those
containing particles on the current timestep rung) have their lists
evaluated during subcycling, which is what keeps the adaptive integrator
cheap on the GPU (paper Section IV-B1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .chaining_mesh import NEIGHBOR_OFFSETS, ChainingMesh
from .kdtree import LeafSet


@dataclass
class InteractionList:
    """Ordered leaf pairs (li, lj); self pairs (li == lj) are included."""

    leaf_i: np.ndarray
    leaf_j: np.ndarray

    def __len__(self) -> int:
        return len(self.leaf_i)


def _boxes_overlap(amin, amax, bmin, bmax, pad, box, periodic):
    """Vectorized padded-AABB overlap test with optional periodic wrap."""
    # separation of box centers minus half-extents per axis
    delta = (amin + amax) / 2.0 - (bmin + bmax) / 2.0
    if periodic and box is not None:
        delta = delta - box * np.round(delta / box)
    half = (amax - amin) / 2.0 + (bmax - bmin) / 2.0 + pad
    return np.all(np.abs(delta) <= half, axis=-1)


def active_leaf_mask(leaves: LeafSet, active_particles: np.ndarray) -> np.ndarray:
    """Boolean mask over leaves containing at least one active particle.

    ``active_particles`` is a boolean mask or an index array over the
    particle set the leaves were built from.  Feed the result to
    :func:`build_interaction_list` as ``active_leaves`` so only sink-side
    active leaves have their lists emitted (paper Section IV-B1: inactive
    leaves are skipped during subcycles, but still appear as j-side
    sources).
    """
    active = np.asarray(active_particles)
    if active.dtype != bool:
        mask = np.zeros(len(leaves.particle_leaf), dtype=bool)
        mask[active] = True
        active = mask
    out = np.zeros(leaves.n_leaves, dtype=bool)
    hit = leaves.particle_leaf[active]
    out[hit[hit >= 0]] = True
    return out


def build_interaction_list(
    leaves: LeafSet,
    mesh: ChainingMesh,
    pad: float,
    box: float | None = None,
    active_leaves: np.ndarray | None = None,
) -> InteractionList:
    """All ordered leaf pairs within neighboring CM bins with AABB overlap.

    ``pad`` is the interaction radius (max smoothing length / short-range
    cutoff); boxes are padded by ``pad`` before the overlap test.  If
    ``active_leaves`` is given (boolean mask over leaves), only pairs whose
    *i*-side leaf is active are emitted — the j-side may be inactive, since
    inactive particles still act as sources.
    """
    n_leaves = leaves.n_leaves
    if n_leaves == 0:
        empty = np.empty(0, dtype=np.int64)
        return InteractionList(empty, empty)

    # group leaves by bin (CSR layout over bins)
    bin_of_leaf = leaves.leaf_bin
    order = np.argsort(bin_of_leaf, kind="stable")
    total_bins = mesh.total_bins
    per_bin = np.bincount(bin_of_leaf, minlength=total_bins)
    starts = np.concatenate([[0], np.cumsum(per_bin)[:-1]])

    coords_all = mesh.bin_coords(np.arange(total_bins))
    li_chunks = []
    lj_chunks = []

    active = (
        np.ones(n_leaves, dtype=bool) if active_leaves is None else active_leaves
    )

    leaf_ids = np.arange(n_leaves)
    occupied = np.nonzero(per_bin)[0]
    for b in occupied:
        leaves_b = order[starts[b] : starts[b] + per_bin[b]]
        leaves_b = leaves_b[active[leaves_b]]
        if len(leaves_b) == 0:
            continue
        for off in NEIGHBOR_OFFSETS:
            nb = mesh.flat_index(coords_all[b] + off)
            if nb < 0 or per_bin[nb] == 0:
                continue
            leaves_nb = order[starts[nb] : starts[nb] + per_bin[nb]]
            li = np.repeat(leaves_b, len(leaves_nb))
            lj = np.tile(leaves_nb, len(leaves_b))
            ok = _boxes_overlap(
                leaves.aabb_min[li],
                leaves.aabb_max[li],
                leaves.aabb_min[lj],
                leaves.aabb_max[lj],
                pad,
                box,
                mesh.periodic,
            )
            li_chunks.append(li[ok])
            lj_chunks.append(lj[ok])

    if li_chunks:
        li = np.concatenate(li_chunks)
        lj = np.concatenate(lj_chunks)
    else:
        li = np.empty(0, dtype=np.int64)
        lj = np.empty(0, dtype=np.int64)

    # periodic wrap can route multiple stencil offsets to the same bin pair
    key = li * n_leaves + lj
    _, uniq = np.unique(key, return_index=True)
    return InteractionList(leaf_i=li[uniq], leaf_j=lj[uniq])


def expand_to_particle_pairs(
    ilist: InteractionList,
    leaves: LeafSet,
    pos: np.ndarray,
    h: np.ndarray,
    box: float | None = None,
):
    """Expand leaf pairs into particle pairs with the symmetric distance cut.

    Returns ``(pi, pj)`` with every ordered pair satisfying
    ``|x_i - x_j| < max(h_i, h_j)`` (self pairs included via self leaf pairs).
    """
    pi_chunks = []
    pj_chunks = []
    for li, lj in zip(ilist.leaf_i, ilist.leaf_j):
        a = leaves.particles_in_leaf(int(li))
        b = leaves.particles_in_leaf(int(lj))
        pi_chunks.append(np.repeat(a, len(b)))
        pj_chunks.append(np.tile(b, len(a)))
    if not pi_chunks:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    pi = np.concatenate(pi_chunks)
    pj = np.concatenate(pj_chunks)
    dx = pos[pi] - pos[pj]
    if box is not None:
        dx -= box * np.round(dx / box)
    r2 = np.einsum("pa,pa->p", dx, dx)
    rmax = np.maximum(h[pi], h[pj])
    keep = r2 < rmax * rmax
    pi, pj = pi[keep], pj[keep]
    key = pi.astype(np.int64) * len(pos) + pj
    _, uniq = np.unique(key, return_index=True)
    return pi[uniq], pj[uniq]
