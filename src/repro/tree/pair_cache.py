"""Verlet-style cached pair lists with a skin radius.

The paper builds short-range interaction lists once per PM step and reuses
them across all subcycles (Section IV-B1); the CRK-HACC method papers
credit exactly this amortization for making the short-range solver the fast
path.  ``PairCache`` implements the classic Verlet-list version of that
idea for the chaining-mesh pair search:

* **Build** with per-particle search radii inflated by a skin,
  ``h_build = h * (1 + skin)``, and store the resulting superset pair list
  sorted by ``pi`` (CSR order, so downstream segment reductions never sort).
* **Query** filters the cached superset down to the exact fresh-list
  criterion ``|x_i - x_j| < max(h_i, h_j)`` at the *current* positions — a
  cheap vectorized pass — so consumers see precisely the pairs a fresh
  ``neighbor_pairs`` call would produce, and the symmetric-pair-list
  contract of the conservative CRKSPH pairing is preserved.
* **Rebuild** only when reuse could miss a pair: some particle drifted more
  than half its skin (``|x - x_build| > skin * h_build / 2``), a support
  radius grew beyond its build value, or the particle set itself changed.

The drift bound is the standard Verlet guarantee: for any pair,
``r_now <= r_build + d_i + d_j``, so with ``d_i <= skin * h_build_i / 2``
every pair now inside ``max(h_i, h_j)`` was inside
``max(h_build_i, h_build_j) * (1 + skin)`` at build time and is in the
cached superset.
"""

from __future__ import annotations

import numpy as np

from .chaining_mesh import neighbor_pairs

__all__ = ["PairCache"]


class PairCache:
    """Cached symmetric neighbor pair lists with skin-radius reuse.

    Parameters
    ----------
    skin : fractional skin radius; search radii are inflated to
        ``h * (1 + skin)`` at build and the list survives drifts up to
        ``skin * h / 2`` per particle
    box : periodic box (scalar or 3-vector) or ``None`` for open domains
    include_self : keep self pairs (the CRK gather convention needs them)

    Counters (``n_builds``, ``n_queries``, ``n_rebuilds_drift`` …) expose
    the amortization for benchmarks and the once-per-PM-step regression
    test.
    """

    def __init__(self, skin: float = 0.25, box=None, include_self: bool = True):
        if skin < 0:
            raise ValueError("skin must be non-negative")
        self.skin = float(skin)
        self.box = box
        self.include_self = include_self
        self.n_builds = 0
        self.n_queries = 0
        self.n_rebuilds_drift = 0
        self.n_rebuilds_h = 0
        self.n_rebuilds_ids = 0
        self.invalidate()

    # -- cache state -----------------------------------------------------------
    def invalidate(self) -> None:
        """Drop the cached list; the next query rebuilds."""
        self._pi = None
        self._pj = None
        self._ref_pos = None
        self._ref_h = None
        self._ref_ids = None

    def _minimum_image(self, d: np.ndarray) -> np.ndarray:
        if self.box is None:
            return d
        box = np.asarray(self.box, dtype=np.float64)
        return d - box * np.round(d / box)

    def _why_invalid(self, pos, h, ids) -> str | None:
        """Reason the cached list cannot serve this query, or None."""
        if self._pi is None:
            return "empty"
        if self._ref_ids is None:
            if ids is not None or len(pos) != len(self._ref_pos):
                return "ids"
        elif ids is None or not np.array_equal(ids, self._ref_ids):
            return "ids"
        # support growth beyond the build radii voids the superset guarantee
        if np.any(h > self._ref_h * (1.0 + 1e-12)):
            return "h"
        drift = self._minimum_image(pos - self._ref_pos)
        drift2 = np.einsum("na,na->n", drift, drift)
        allowed = 0.5 * self.skin * self._ref_h
        if np.any(drift2 > allowed * allowed):
            return "drift"
        return None

    def _build(self, pos, h, ids) -> None:
        pi, pj = neighbor_pairs(
            pos, h * (1.0 + self.skin), box=self.box,
            include_self=self.include_self,
        )
        # store in CSR (pi-sorted) order so downstream SegmentReducers and
        # PairBatches never pay an argsort
        order = np.argsort(pi, kind="stable")
        self._pi = pi[order]
        self._pj = pj[order]
        self._ref_pos = np.array(pos, dtype=np.float64, copy=True)
        self._ref_h = np.array(h, dtype=np.float64, copy=True)
        self._ref_ids = None if ids is None else np.array(ids, copy=True)
        self.n_builds += 1

    # -- queries ---------------------------------------------------------------
    def ensure(self, pos, h, ids=None) -> bool:
        """Validate (and if needed rebuild) the cached list without
        filtering.  Returns True when a rebuild happened — callers that
        attribute build time to a tree-build timer use this at PM-step
        boundaries."""
        pos = np.asarray(pos, dtype=np.float64)
        h = np.broadcast_to(np.asarray(h, dtype=np.float64), (len(pos),))
        reason = self._why_invalid(pos, h, ids)
        if reason is None:
            return False
        if reason == "drift":
            self.n_rebuilds_drift += 1
        elif reason == "h":
            self.n_rebuilds_h += 1
        elif reason == "ids":
            self.n_rebuilds_ids += 1
        self._build(pos, h, ids)
        return True

    def get(self, pos, h, ids=None):
        """Pair lists ``(pi, pj)`` for the current positions and supports.

        Equivalent (as a set of pairs) to
        ``neighbor_pairs(pos, h, box=box)``, reusing the cached skin-radius
        superset whenever the Verlet criterion allows.  Returned arrays are
        sorted by ``pi``.
        """
        self.n_queries += 1
        pos = np.asarray(pos, dtype=np.float64)
        h = np.broadcast_to(np.asarray(h, dtype=np.float64), (len(pos),))
        self.ensure(pos, h, ids=ids)
        pi, pj = self._pi, self._pj
        if len(pi) == 0:
            return pi, pj
        dx = self._minimum_image(pos[pi] - pos[pj])
        r2 = np.einsum("pa,pa->p", dx, dx)
        rmax = np.maximum(h[pi], h[pj])
        keep = r2 < rmax * rmax
        if not self.include_self:
            keep &= pi != pj
        return pi[keep], pj[keep]
