"""Verlet-style cached pair lists with a skin radius.

The paper builds short-range interaction lists once per PM step and reuses
them across all subcycles (Section IV-B1); the CRK-HACC method papers
credit exactly this amortization for making the short-range solver the fast
path.  ``PairCache`` implements the classic Verlet-list version of that
idea for the chaining-mesh pair search:

* **Build** with per-particle search radii inflated by a skin,
  ``h_build = h * (1 + skin)``, and store the resulting superset pair list
  sorted by ``pi`` (CSR order, so downstream segment reductions never sort).
* **Query** filters the cached superset down to the exact fresh-list
  criterion ``|x_i - x_j| < max(h_i, h_j)`` at the *current* positions — a
  cheap vectorized pass — so consumers see precisely the pairs a fresh
  ``neighbor_pairs`` call would produce, and the symmetric-pair-list
  contract of the conservative CRKSPH pairing is preserved.
* **Rebuild** only when reuse could miss a pair: some particle drifted more
  than half its skin (``|x - x_build| > skin * h_build / 2``), a support
  radius grew beyond its build value, or the particle set itself changed.

The drift bound is the standard Verlet guarantee: for any pair,
``r_now <= r_build + d_i + d_j``, so with ``d_i <= skin * h_build_i / 2``
every pair now inside ``max(h_i, h_j)`` was inside
``max(h_build_i, h_build_j) * (1 + skin)`` at build time and is in the
cached superset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .chaining_mesh import neighbor_pairs

__all__ = ["ActivePairSlices", "PairCache"]


@dataclass
class ActivePairSlices:
    """Pair-list slices needed to force-evaluate an active sink subset.

    CRKSPH forces on the ``sinks`` require intermediate per-particle fields
    on progressively wider neighbor closures (gather-only sources stay
    inactive):

    * ``tier1`` — sinks plus their neighbors; CRK corrections, density,
      pressure, and the Balsara switch must be fresh here because the pair
      force reads them at both ends of every sink pair.
    * ``tier2`` — tier1 plus *its* neighbors; volumes must be fresh here
      because the CRK moments of a tier1 particle gather its neighbors'
      volumes.

    ``pairs1 = (pi1, pj1)`` lists every pair whose sink is in ``tier1``
    (CSR order, sinks ascending); ``mask0`` selects the rows whose sink is
    in ``sinks`` — the pairs the final force assembly streams.  ``pairs2``
    covers tier2 sinks and only feeds the volume pass.  All index arrays
    are in the coordinate frame the cache was queried with.
    """

    sinks: np.ndarray
    tier1: np.ndarray
    tier2: np.ndarray
    pi1: np.ndarray
    pj1: np.ndarray
    mask0: np.ndarray
    pi2: np.ndarray
    pj2: np.ndarray

    @property
    def n_pairs(self) -> int:
        """Total pair rows streamed by an active evaluation (diagnostics)."""
        return len(self.pi1) + len(self.pi2) + int(self.mask0.sum())


class PairCache:
    """Cached symmetric neighbor pair lists with skin-radius reuse.

    Parameters
    ----------
    skin : fractional skin radius; search radii are inflated to
        ``h * (1 + skin)`` at build and the list survives drifts up to
        ``skin * h / 2`` per particle
    box : periodic box (scalar or 3-vector) or ``None`` for open domains
    include_self : keep self pairs (the CRK gather convention needs them)

    Counters (``n_builds``, ``n_queries``, ``n_rebuilds_drift`` …) expose
    the amortization for benchmarks and the once-per-PM-step regression
    test.
    """

    def __init__(self, skin: float = 0.25, box=None, include_self: bool = True):
        if skin < 0:
            raise ValueError("skin must be non-negative")
        self.skin = float(skin)
        self.box = box
        self.include_self = include_self
        self.n_builds = 0
        self.n_queries = 0
        self.n_rebuilds_drift = 0
        self.n_rebuilds_h = 0
        self.n_rebuilds_ids = 0
        self.invalidate()

    # -- cache state -----------------------------------------------------------
    def invalidate(self) -> None:
        """Drop the cached list; the next query rebuilds."""
        self._pi = None
        self._pj = None
        self._starts = None
        self._ref_pos = None
        self._ref_h = None
        self._ref_ids = None

    def _minimum_image(self, d: np.ndarray) -> np.ndarray:
        if self.box is None:
            return d
        box = np.asarray(self.box, dtype=np.float64)
        return d - box * np.round(d / box)

    def _why_invalid(self, pos, h, ids) -> str | None:
        """Reason the cached list cannot serve this query, or None."""
        if self._pi is None:
            return "empty"
        if self._ref_ids is None:
            if ids is not None or len(pos) != len(self._ref_pos):
                return "ids"
        elif ids is None or not np.array_equal(ids, self._ref_ids):
            return "ids"
        # support growth beyond the build radii voids the superset guarantee
        if np.any(h > self._ref_h * (1.0 + 1e-12)):
            return "h"
        drift = self._minimum_image(pos - self._ref_pos)
        drift2 = np.einsum("na,na->n", drift, drift)
        allowed = 0.5 * self.skin * self._ref_h
        if np.any(drift2 > allowed * allowed):
            return "drift"
        return None

    def _build(self, pos, h, ids) -> None:
        pi, pj = neighbor_pairs(
            pos, h * (1.0 + self.skin), box=self.box,
            include_self=self.include_self,
        )
        # store in CSR (pi-sorted) order so downstream SegmentReducers and
        # PairBatches never pay an argsort
        order = np.argsort(pi, kind="stable")
        self._pi = pi[order]
        self._pj = pj[order]
        # CSR row starts over sinks: rows of sink i live in
        # _pi[_starts[i]:_starts[i+1]] — the active-subset queries gather
        # whole sink rows through this without scanning the full list
        counts = np.bincount(self._pi, minlength=len(pos))
        self._starts = np.concatenate([[0], np.cumsum(counts)]).astype(np.intp)
        self._ref_pos = np.array(pos, dtype=np.float64, copy=True)
        self._ref_h = np.array(h, dtype=np.float64, copy=True)
        self._ref_ids = None if ids is None else np.array(ids, copy=True)
        self.n_builds += 1

    # -- queries ---------------------------------------------------------------
    def ensure(self, pos, h, ids=None) -> bool:
        """Validate (and if needed rebuild) the cached list without
        filtering.  Returns True when a rebuild happened — callers that
        attribute build time to a tree-build timer use this at PM-step
        boundaries."""
        pos = np.asarray(pos, dtype=np.float64)
        h = np.broadcast_to(np.asarray(h, dtype=np.float64), (len(pos),))
        reason = self._why_invalid(pos, h, ids)
        if reason is None:
            return False
        if reason == "drift":
            self.n_rebuilds_drift += 1
        elif reason == "h":
            self.n_rebuilds_h += 1
        elif reason == "ids":
            self.n_rebuilds_ids += 1
        self._build(pos, h, ids)
        return True

    def get(self, pos, h, ids=None):
        """Pair lists ``(pi, pj)`` for the current positions and supports.

        Equivalent (as a set of pairs) to
        ``neighbor_pairs(pos, h, box=box)``, reusing the cached skin-radius
        superset whenever the Verlet criterion allows.  Returned arrays are
        sorted by ``pi``.
        """
        self.n_queries += 1
        pos = np.asarray(pos, dtype=np.float64)
        h = np.broadcast_to(np.asarray(h, dtype=np.float64), (len(pos),))
        self.ensure(pos, h, ids=ids)
        pi, pj = self._pi, self._pj
        if len(pi) == 0:
            return pi, pj
        keep = self._fresh_mask(pos, h, pi, pj)
        return pi[keep], pj[keep]

    def _fresh_mask(self, pos, h, pi, pj) -> np.ndarray:
        """Exact fresh-list criterion over cached superset rows."""
        dx = self._minimum_image(pos[pi] - pos[pj])
        r2 = np.einsum("pa,pa->p", dx, dx)
        rmax = np.maximum(h[pi], h[pj])
        keep = r2 < rmax * rmax
        if not self.include_self:
            keep &= pi != pj
        return keep

    def _rows_for_sinks(self, sinks: np.ndarray) -> np.ndarray:
        """Cached-list row indices whose sink is in ``sinks`` (CSR gather).

        Preserves per-sink row order, so downstream segment reductions sum
        each sink's contributions in exactly the order a full query would.
        """
        starts = self._starts
        counts = starts[sinks + 1] - starts[sinks]
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.intp)
        offsets = np.cumsum(counts) - counts
        return (
            np.arange(total, dtype=np.intp)
            - np.repeat(offsets, counts)
            + np.repeat(starts[sinks], counts)
        )

    def get_for_sinks(self, pos, h, sinks, ids=None):
        """Pair lists restricted to rows whose *sink* is in ``sinks``.

        Equivalent to masking :meth:`get` output with
        ``np.isin(pi, sinks)`` — inactive particles still appear as
        gather-only sources on the ``pj`` side — but gathers only the
        active CSR rows.  ``sinks`` must be sorted ascending; returned
        arrays keep CSR (pi-ascending) order.
        """
        self.n_queries += 1
        pos = np.asarray(pos, dtype=np.float64)
        h = np.broadcast_to(np.asarray(h, dtype=np.float64), (len(pos),))
        self.ensure(pos, h, ids=ids)
        sinks = np.asarray(sinks, dtype=np.intp)
        rows = self._rows_for_sinks(sinks)
        pi, pj = self._pi[rows], self._pj[rows]
        if len(pi) == 0:
            return pi, pj
        keep = self._fresh_mask(pos, h, pi, pj)
        return pi[keep], pj[keep]

    def hop_closure(self, pos, h, seeds, hops: int, ids=None) -> np.ndarray:
        """Boolean mask of particles within ``hops`` pair-list hops of
        ``seeds`` (an index array or boolean mask; seeds are included).

        Expands through the *unfiltered* skin-radius superset rows, so the
        closure is conservative under any drift the cache itself tolerates.
        The distributed driver derives its interior/boundary particle split
        from this: rows outside the closure of the ghost-adjacent seeds
        provably never touch ghost data and can be evaluated while the
        exchange is still in flight.
        """
        pos = np.asarray(pos, dtype=np.float64)
        h = np.broadcast_to(np.asarray(h, dtype=np.float64), (len(pos),))
        self.ensure(pos, h, ids=ids)
        member = np.zeros(len(pos), dtype=bool)
        member[np.asarray(seeds)] = True
        for _ in range(hops):
            frontier = np.nonzero(member)[0]
            rows = self._rows_for_sinks(frontier)
            if len(rows) == 0:
                break
            before = member.sum()
            member[self._pj[rows]] = True
            if member.sum() == before:
                break
        return member

    def active_slices(self, pos, h, sinks, ids=None) -> ActivePairSlices:
        """Tiered pair slices for an active-set CRKSPH evaluation.

        Builds the 1-hop (``tier1``) and 2-hop (``tier2``) neighbor
        closures of ``sinks`` from the *filtered* pair lists and returns
        the pair rows needed at each tier (see :class:`ActivePairSlices`).
        ``sinks`` must be sorted ascending.
        """
        self.n_queries += 1
        pos = np.asarray(pos, dtype=np.float64)
        h = np.broadcast_to(np.asarray(h, dtype=np.float64), (len(pos),))
        self.ensure(pos, h, ids=ids)
        sinks = np.asarray(sinks, dtype=np.intp)

        def _filtered_rows(tier):
            rows = self._rows_for_sinks(tier)
            pi, pj = self._pi[rows], self._pj[rows]
            if len(pi):
                keep = self._fresh_mask(pos, h, pi, pj)
                pi, pj = pi[keep], pj[keep]
            return pi, pj

        n = len(pos)
        member = np.zeros(n, dtype=bool)
        member[sinks] = True

        _, pj0 = _filtered_rows(sinks)
        tier1_mask = member.copy()
        tier1_mask[pj0] = True
        tier1 = np.nonzero(tier1_mask)[0]

        pi1, pj1 = _filtered_rows(tier1)
        mask0 = member[pi1]

        tier2_mask = tier1_mask.copy()
        tier2_mask[pj1] = True
        tier2 = np.nonzero(tier2_mask)[0]

        pi2, pj2 = _filtered_rows(tier2)
        return ActivePairSlices(
            sinks=sinks, tier1=tier1, tier2=tier2,
            pi1=pi1, pj1=pj1, mask0=mask0, pi2=pi2, pj2=pj2,
        )
