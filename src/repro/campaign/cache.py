"""Content-addressed artifact cache shared across campaign tenants.

The perf core of the campaign engine: jobs that share physics re-use the
expensive run-independent artifacts instead of rebuilding them —

- **initial conditions** keyed by (seed, cosmology, N, box, a_init, LPT
  order): the Zel'dovich/2LPT field realization and displacement FFTs;
- **PM Green's functions** keyed by (grid, box, r_split, deconvolution):
  the spectral tables every :class:`~repro.core.gravity.pm.PMSolver`
  needs;
- **power spectra** keyed by (cosmology, z): the sigma8-normalized
  :class:`~repro.cosmology.power_spectrum.LinearPower` (normalization is
  a quadrature) and optional tabulated P(k, z) curves.

Keys are content hashes over every content-determining parameter, so two
tenants share an artifact iff the bytes they'd build are identical —
distinct cosmologies or seeds can never collide (key-isolation is
property-tested).  Values are frozen (ndarrays made read-only) and
consumers copy before mutating, so a cached run is bit-identical to a
cold one.

Bounded memory: an LRU byte budget with hit/miss/eviction/byte counters
per artifact kind in the run's metrics registry
(``campaign/cache/<kind>/{hits,misses,evictions}`` +
``campaign/cache/bytes``).  Concurrent requests for the same missing key
are single-flighted: one builder runs, the others block and count hits.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import fields as dataclass_fields

import numpy as np

from ..cosmology.background import Cosmology


# -- content keys --------------------------------------------------------------
def cosmology_key(cosmo: Cosmology) -> tuple:
    """Canonical tuple over every field of a cosmology (init fields only)."""
    return tuple(
        (f.name, repr(float(getattr(cosmo, f.name))))
        for f in dataclass_fields(cosmo)
        if f.init
    )


def ic_key(n_per_dim: int, box: float, cosmo: Cosmology, a_init: float,
           seed: int, order: int = 1) -> tuple:
    """Initial-conditions key: (seed, cosmology, N) plus realization knobs."""
    return ("ics", int(n_per_dim), repr(float(box)), cosmology_key(cosmo),
            repr(float(a_init)), int(seed), int(order))


def greens_key(n: int, box: float, r_split: float,
               deconvolve_cic: bool = True) -> tuple:
    """PM Green's-function key: grid shape, box, and filter order."""
    return ("greens", int(n), repr(float(box)), repr(float(r_split)),
            bool(deconvolve_cic))


def power_key(cosmo: Cosmology, z: float | None = None) -> tuple:
    """Power-spectrum key: cosmology plus the tabulation redshift
    (``None`` = the redshift-callable LinearPower object itself)."""
    ztag = "callable" if z is None else repr(float(z))
    return ("power", cosmology_key(cosmo), ztag)


def content_hash(key: tuple) -> str:
    """Stable hex digest of a canonical key tuple (the cache address)."""
    return hashlib.sha256(repr(key).encode()).hexdigest()


# -- value plumbing ------------------------------------------------------------
def _freeze(value) -> None:
    """Make every ndarray reachable from ``value`` read-only."""
    if isinstance(value, np.ndarray):
        value.flags.writeable = False
    elif isinstance(value, (list, tuple)):
        for v in value:
            _freeze(v)
    elif isinstance(value, dict):
        for v in value.values():
            _freeze(v)
    elif hasattr(value, "__dataclass_fields__"):
        for f in value.__dataclass_fields__:
            _freeze(getattr(value, f))


def estimate_nbytes(value) -> int:
    """Recursive ndarray byte count (floor 1 KiB for object overhead)."""
    nb = 0
    if isinstance(value, np.ndarray):
        nb += value.nbytes
    elif isinstance(value, (list, tuple)):
        nb += sum(estimate_nbytes(v) for v in value)
    elif isinstance(value, dict):
        nb += sum(estimate_nbytes(v) for v in value.values())
    elif hasattr(value, "__dataclass_fields__"):
        nb += sum(estimate_nbytes(getattr(value, f))
                  for f in value.__dataclass_fields__)
    return max(nb, 1024)


class _Build:
    """Single-flight slot for an in-progress builder."""

    __slots__ = ("event", "value", "nbytes", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value = None
        self.nbytes = 0
        self.error: BaseException | None = None


class ArtifactCache:
    """LRU content-addressed artifact store with a byte budget.

    Parameters
    ----------
    max_bytes : LRU memory budget; least-recently-used entries are evicted
        when the total estimated bytes exceed it.  The budget never evicts
        the entry being inserted (a single oversized artifact stays
        resident until something newer displaces it).
    registry : a :class:`~repro.observe.metrics.MetricsRegistry` the
        hit/miss/eviction/byte counters land in (optional).
    """

    def __init__(self, max_bytes: int = 256 << 20, registry=None):
        self.max_bytes = int(max_bytes)
        self.registry = registry
        self._entries: OrderedDict[str, tuple] = OrderedDict()  # addr -> (value, nbytes, kind)
        self._building: dict[str, _Build] = {}
        self._bytes = 0
        self._lock = threading.Lock()
        self._stats: dict[str, dict] = {}

    # -- accounting ------------------------------------------------------------
    def _count(self, kind: str, what: str, n: int = 1) -> None:
        st = self._stats.setdefault(
            kind, {"hits": 0, "misses": 0, "evictions": 0}
        )
        st[what] += n
        if self.registry is not None:
            self.registry.counter(f"campaign/cache/{kind}/{what}").add(n)

    def _set_bytes_gauge(self) -> None:
        if self.registry is not None:
            self.registry.gauge("campaign/cache/bytes").set(self._bytes)

    def stats(self, kind: str | None = None) -> dict:
        """Hit/miss/eviction counters (per kind, or summed over kinds)."""
        with self._lock:
            if kind is not None:
                return dict(self._stats.get(
                    kind, {"hits": 0, "misses": 0, "evictions": 0}
                ))
            out = {"hits": 0, "misses": 0, "evictions": 0}
            for st in self._stats.values():
                for k in out:
                    out[k] += st[k]
            return out

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- core ------------------------------------------------------------------
    def get_or_build(self, kind: str, key: tuple, builder,
                     nbytes: int | None = None):
        """Return the cached artifact for ``key``, building it on a miss.

        Concurrent callers of the same missing key are single-flighted:
        exactly one runs ``builder`` (counting one miss) while the others
        block on the result (each counting a hit), so the counters stay
        exact under pool concurrency.
        """
        addr = content_hash(key)
        while True:
            with self._lock:
                entry = self._entries.get(addr)
                if entry is not None:
                    self._entries.move_to_end(addr)
                    self._count(kind, "hits")
                    return entry[0]
                build = self._building.get(addr)
                if build is None:
                    build = self._building[addr] = _Build()
                    owner = True
                else:
                    owner = False
            if not owner:
                build.event.wait()
                if build.error is not None:
                    raise build.error
                with self._lock:
                    self._count(kind, "hits")
                return build.value
            try:
                value = builder()
                _freeze(value)
                nb = int(nbytes) if nbytes is not None \
                    else estimate_nbytes(value)
            except BaseException as exc:
                with self._lock:
                    build.error = exc
                    del self._building[addr]
                build.event.set()
                raise
            with self._lock:
                build.value = value
                build.nbytes = nb
                self._count(kind, "misses")
                self._entries[addr] = (value, nb, kind)
                self._bytes += nb
                while self._bytes > self.max_bytes and len(self._entries) > 1:
                    old_addr, (_, old_nb, old_kind) = \
                        self._entries.popitem(last=False)
                    if old_addr == addr:  # never evict the fresh insert
                        self._entries[addr] = (value, nb, kind)
                        self._entries.move_to_end(addr, last=False)
                        break
                    self._bytes -= old_nb
                    self._count(old_kind, "evictions")
                self._set_bytes_gauge()
                del self._building[addr]
            build.event.set()
            return value

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._set_bytes_gauge()
