"""Many-universe campaign execution engine.

Queued :class:`SimJob` requests — parameter sweeps, emulator grids,
per-tenant "run my universe" jobs — are admitted into a bounded priority
queue and drained by a shared worker pool (:class:`CampaignEngine`),
with every run-independent artifact (ICs, PM Green's functions, power
spectra) shared across tenants through a content-addressed
:class:`ArtifactCache`.  The headline metric is universes/hour.

Entry points::

    from repro.campaign import CampaignEngine, SimJob
    report = CampaignEngine(n_workers=4).run(jobs)

or from a JSON spec file: ``python -m repro campaign --spec sweep.json``.
"""

from .cache import (
    ArtifactCache,
    content_hash,
    cosmology_key,
    greens_key,
    ic_key,
    power_key,
)
from .jobs import (
    CampaignSpec,
    JobResult,
    SimJob,
    expand_sweep,
    job_from_dict,
)
from .runner import JobCancelled, build_simulation, run_job, state_hash
from .scheduler import (
    AdmissionError,
    CampaignEngine,
    CampaignReport,
    JobQueue,
)

__all__ = [
    "AdmissionError",
    "ArtifactCache",
    "CampaignEngine",
    "CampaignReport",
    "CampaignSpec",
    "JobCancelled",
    "JobQueue",
    "JobResult",
    "SimJob",
    "build_simulation",
    "content_hash",
    "cosmology_key",
    "expand_sweep",
    "greens_key",
    "ic_key",
    "job_from_dict",
    "power_key",
    "run_job",
    "state_hash",
]
