"""Campaign job model: queued simulation requests and sweep specs.

A :class:`SimJob` is one queued "run my universe" request — a parameter
sweep member, an emulator-grid point, or a per-tenant interactive job.
Jobs are immutable value objects: everything that determines the run
(cosmology, seed, N, integration window) lives on the job, so the
artifact cache can key off it and two identical jobs are bit-identical
runs.

Spec files (JSON) drive ``python -m repro campaign --spec``::

    {
      "workers": 2, "max_queue": 16, "policy": "block", "cache_mb": 256,
      "base":  {"n_per_dim": 5, "box": 20.0, "n_pm_steps": 1,
                "tenant": "sweep"},
      "sweep": {"seed": [1, 2, 3], "sigma8": [0.76, 0.81]},
      "jobs":  [{"name": "vip", "tenant": "alice", "priority": 0}]
    }

``sweep`` is a cartesian product over the listed values; cosmology
parameters (``omega_m``, ``sigma8``, ``h``, ...) are folded into the
job's :class:`~repro.cosmology.background.Cosmology`.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields as dataclass_fields, replace

from ..cosmology.background import Cosmology

#: job fields that parameterize the Cosmology rather than the job itself
COSMO_PARAMS = frozenset(
    f.name for f in dataclass_fields(Cosmology) if f.init
)


@dataclass(frozen=True)
class SimJob:
    """One queued simulation request (immutable).

    ``priority`` selects the scheduling lane: 0 is the interactive lane,
    higher values are batch lanes served after every lower lane (FIFO
    within a lane).  ``ranks > 0`` runs the job on the distributed driver
    with that many simulated ranks instead of the serial one.
    """

    name: str = "job"
    tenant: str = "default"
    priority: int = 1
    # -- universe spec ---------------------------------------------------------
    n_per_dim: int = 5
    box: float = 20.0
    pm_grid: int = 12
    a_init: float = 0.25
    a_final: float = 0.35
    n_pm_steps: int = 1
    seed: int = 1
    lpt_order: int = 1
    cosmo: Cosmology = field(default_factory=Cosmology)
    # -- physics / driver ------------------------------------------------------
    hydro: bool = True
    subgrid: bool = False
    u_init: float = 20.0
    max_rung: int = 2
    ranks: int = 0
    backend: str = "numpy"
    #: wall-clock budget for one run of this job (seconds; 0 = none).
    #: A running job past its deadline is cancelled at the next step
    #: boundary and lands in the ``cancelled`` terminal state — distinct
    #: from ``failed``, and never re-admitted by the retry policy.
    deadline_s: float = 0.0

    @property
    def n_particles(self) -> int:
        n = self.n_per_dim**3
        return 2 * n if self.hydro else n

    @property
    def z_final(self) -> float:
        return 1.0 / self.a_final - 1.0


@dataclass
class JobResult:
    """Completion record of one job (the scheduler's unit of accounting)."""

    job: SimJob
    status: str  # "completed" | "failed" | "cancelled"
    worker: int = -1
    #: how many times the engine ran this job (retries re-admit failed
    #: jobs under the engine's RetryPolicy; 1 = first and only attempt)
    attempts: int = 1
    wall_seconds: float = 0.0
    queue_wait_seconds: float = 0.0
    #: simulated-clock total delivered: Gyr of cosmic time this universe
    #: was evolved through (the tenant's "science clock")
    sim_gyr: float = 0.0
    n_steps: int = 0
    n_particles: int = 0
    #: sha256 over the final particle state — the cheap bit-identity probe
    #: the cache-correctness tests and the warm/cold ablation compare
    state_hash: str = ""
    #: final particle arrays, retained only when the engine runs with
    #: ``keep_state=True`` (tests, small campaigns)
    state: dict | None = None
    error: str = ""


def job_from_dict(d: dict, base: SimJob | None = None) -> SimJob:
    """Build a job from a spec dict, folding cosmology params in.

    Unknown keys raise — silent typos in a sweep spec would otherwise
    run the wrong campaign.
    """
    base = base if base is not None else SimJob()
    cosmo_over = {k: float(v) for k, v in d.items() if k in COSMO_PARAMS}
    job_over = {k: v for k, v in d.items() if k not in COSMO_PARAMS}
    valid = {f.name for f in dataclass_fields(SimJob)}
    unknown = set(job_over) - valid
    if unknown:
        raise ValueError(f"unknown job field(s): {sorted(unknown)}")
    if cosmo_over:
        cosmo_fields = {
            f.name: getattr(base.cosmo, f.name)
            for f in dataclass_fields(Cosmology) if f.init
        }
        cosmo_fields.update(cosmo_over)
        job_over["cosmo"] = Cosmology(**cosmo_fields)
    return replace(base, **job_over)


def expand_sweep(base: dict | None, sweep: dict | None) -> list[SimJob]:
    """Cartesian-product sweep expansion: one job per combination."""
    base_job = job_from_dict(base or {})
    if not sweep:
        return [base_job]
    keys = sorted(sweep)
    combos = list(itertools.product(*(sweep[k] for k in keys)))
    jobs = []
    for i, combo in enumerate(combos):
        over = dict(zip(keys, combo))
        over.setdefault("name", f"{base_job.name}-{i:04d}")
        jobs.append(job_from_dict(over, base=base_job))
    return jobs


@dataclass
class CampaignSpec:
    """A parsed campaign spec file: engine knobs plus the job list."""

    jobs: list
    workers: int = 2
    max_queue: int = 16
    policy: str = "block"
    cache_mb: float = 256.0

    @classmethod
    def from_dict(cls, doc: dict) -> "CampaignSpec":
        jobs = expand_sweep(doc.get("base"), doc.get("sweep")) \
            if (doc.get("base") or doc.get("sweep")) else []
        base_job = job_from_dict(doc.get("base") or {})
        for jd in doc.get("jobs", ()):
            jobs.append(job_from_dict(jd, base=base_job))
        if not jobs:
            raise ValueError("spec contains no jobs (need base/sweep or jobs)")
        return cls(
            jobs=jobs,
            workers=int(doc.get("workers", 2)),
            max_queue=int(doc.get("max_queue", 16)),
            policy=str(doc.get("policy", "block")),
            cache_mb=float(doc.get("cache_mb", 256.0)),
        )

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
