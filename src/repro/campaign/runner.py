"""Cache-aware job runner: one :class:`SimJob` -> one finished universe.

Builds a real :class:`~repro.core.simulation.Simulation` (or, for
``ranks > 0``, a :class:`~repro.parallel.distributed_sim.DistributedSimulation`)
from a job, sourcing every run-independent artifact through the shared
:class:`~repro.campaign.cache.ArtifactCache`:

- the sigma8-normalized linear power spectrum (quadrature normalization),
- the Zel'dovich/2LPT initial conditions (field realization FFTs),
- the PM Green's-function spectral tables (grid-sized rfft arrays).

Cached values are frozen; everything handed to the simulation is copied
first, so a warm-cache run is bit-identical to a cold one (asserted by
the cache-correctness tests and the throughput bench ablation).
"""

from __future__ import annotations

# wall_seconds IS the tenant's billable cost — whole-job wall time is the
# measured quantity here, not a phase inside a step
# sanitize: allow-file-clock-discipline

import hashlib
import time

import numpy as np

from ..core.gravity.pm import PMSolver, shared_green_tables, green_tables_nbytes
from ..core.particles import Particles, Species, make_gas_dm_pair
from ..core.simulation import Simulation, SimulationConfig
from ..cosmology.initial_conditions import zeldovich_ics
from ..cosmology.power_spectrum import LinearPower
from ..observe import Observatory
from .cache import ArtifactCache, greens_key, ic_key, power_key
from .jobs import JobResult, SimJob


class JobCancelled(RuntimeError):
    """A running job hit its deadline or was cancelled by the engine.

    Cancellation is cooperative and lands at step boundaries: the runner
    installs a per-step hook (serial ``io_hooks`` / distributed
    ``step_hooks``) that raises this once the job's ``deadline_s`` has
    elapsed or its cancel event is set.  The scheduler records the job
    under the ``cancelled`` terminal state — distinct from ``failed``,
    and exempt from retry re-admission.
    """


def state_hash(**arrays) -> str:
    """sha256 over named particle arrays — the bit-identity fingerprint."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        arr = arrays[name]
        if arr is None:
            continue
        h.update(name.encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _linear_power(job: SimJob, cache: ArtifactCache | None) -> LinearPower:
    if cache is None:
        return LinearPower(job.cosmo)
    return cache.get_or_build(
        "power", power_key(job.cosmo),
        lambda: LinearPower(job.cosmo), nbytes=1024,
    )


def _initial_conditions(job: SimJob, cache: ArtifactCache | None,
                        power: LinearPower):
    def build():
        return zeldovich_ics(
            job.n_per_dim, job.box, job.cosmo, a_init=job.a_init,
            seed=job.seed, order=job.lpt_order, power=power,
        )

    if cache is None:
        return build()
    key = ic_key(job.n_per_dim, job.box, job.cosmo, job.a_init,
                 job.seed, job.lpt_order)
    return cache.get_or_build("ics", key, build)


def _pm_solver(cfg: SimulationConfig, cache: ArtifactCache | None):
    """A PMSolver whose spectral tables went through the artifact cache.

    The tables themselves live in the pm module memo (shared across every
    solver in the process); routing the fetch through the artifact cache
    as well makes campaign cache counters see greens hits/misses and
    subjects the entry to the campaign LRU byte budget.
    """
    n = cfg.pm_grid
    box = float(cfg.box_array[0])
    if cache is not None:
        cache.get_or_build(
            "greens", greens_key(n, box, cfg.r_split),
            lambda: shared_green_tables(n, box, cfg.r_split),
            nbytes=green_tables_nbytes(n),
        )
    return PMSolver(n=n, box=box, r_split=cfg.r_split)


def build_simulation(job: SimJob, cache: ArtifactCache | None = None,
                     observe: Observatory | None = None) -> Simulation:
    """Construct the serial driver for a job through the artifact cache."""
    observe = observe if observe is not None else Observatory()
    tracer = observe.tracer
    with tracer.span("campaign/power", cat="campaign"):
        power = _linear_power(job, cache)
    with tracer.span("campaign/ics", cat="campaign"):
        ics = _initial_conditions(job, cache, power)
    with tracer.span("campaign/build", cat="campaign"):
        if job.hydro:
            parts = make_gas_dm_pair(
                ics.positions, ics.velocities, ics.particle_mass,
                job.cosmo.omega_b, job.cosmo.omega_m,
                u_init=job.u_init, box=job.box,
            )
        else:
            n = len(ics.positions)
            parts = Particles(
                pos=ics.positions.copy(),
                vel=ics.velocities.copy(),
                mass=np.full(n, ics.particle_mass),
                species=np.full(n, int(Species.DARK_MATTER), dtype=np.int8),
                u=np.zeros(n),
            )
        cfg = SimulationConfig(
            box=job.box, pm_grid=job.pm_grid, a_init=job.a_init,
            a_final=job.a_final, n_pm_steps=job.n_pm_steps,
            cosmo=job.cosmo, hydro=job.hydro, subgrid=job.subgrid,
            max_rung=job.max_rung, seed=job.seed, backend=job.backend,
        )
        pm = _pm_solver(cfg, cache) if cfg.gravity else None
        return Simulation(cfg, parts, observe=observe, pm=pm)


def _cancel_guard(job: SimJob, cancel_event, t0: float):
    """A zero-arg poll raising :class:`JobCancelled` when the job should
    stop: engine-side cancel event, or wall deadline exceeded."""
    deadline = t0 + job.deadline_s if job.deadline_s > 0 else None

    def check():
        if cancel_event is not None and cancel_event.is_set():
            raise JobCancelled(f"job {job.name!r} cancelled by the engine")
        if deadline is not None and time.perf_counter() > deadline:
            raise JobCancelled(
                f"job {job.name!r} exceeded its {job.deadline_s}s deadline"
            )

    return check


def _run_serial(job: SimJob, cache, observe, check=None) -> tuple[dict, int]:
    sim = build_simulation(job, cache, observe)
    if check is not None:
        sim.io_hooks.append(lambda _sim, _record: check())
    with observe.tracer.span("campaign/run", cat="campaign"):
        records = sim.run()
    p = sim.particles
    state = {"pos": p.pos, "vel": p.vel, "u": p.u, "mass": p.mass,
             "species": p.species}
    return state, len(records)


def _run_distributed(job: SimJob, cache, observe, check=None
                     ) -> tuple[dict, int]:
    from ..parallel.distributed_sim import (
        DistributedConfig,
        DistributedSimulation,
    )

    power = _linear_power(job, cache)
    ics = _initial_conditions(job, cache, power)
    # r_split_cells=1.0 keeps the short-range cutoff inside half a rank
    # domain for multi-rank decompositions of campaign-sized boxes
    cfg = DistributedConfig(
        box=job.box, pm_grid=job.pm_grid, a_init=job.a_init,
        a_final=job.a_final, n_pm_steps=job.n_pm_steps, cosmo=job.cosmo,
        hydro=False, r_split_cells=1.0, backend=job.backend,
    )
    sim = DistributedSimulation(cfg, n_ranks=job.ranks, observe=observe)
    if check is not None:
        # step boundaries on every rank; the raise aborts the world and
        # surfaces wrapped in a CommError (the scheduler unwraps the
        # __cause__ chain back to JobCancelled)
        sim.step_hooks.append(lambda _comm, _istep, _a, _my: check())
    with observe.tracer.span("campaign/run", cat="campaign"):
        n = len(ics.positions)
        pos, vel, ids = sim.run(
            ics.positions.copy(), ics.velocities.copy(),
            np.full(n, ics.particle_mass),
        )
    order = np.argsort(ids)  # canonical input order for the state hash
    state = {"pos": pos[order], "vel": vel[order]}
    return state, len(sim.step_records)


def run_job(job: SimJob, cache: ArtifactCache | None = None,
            observe: Observatory | None = None, worker: int = -1,
            keep_state: bool = False, cancel_event=None) -> JobResult:
    """Drive one job to completion; raises are left to the caller."""
    observe = observe if observe is not None else Observatory()
    t0 = time.perf_counter()
    check = (_cancel_guard(job, cancel_event, t0)
             if (cancel_event is not None or job.deadline_s > 0) else None)
    if job.ranks > 0:
        state, n_steps = _run_distributed(job, cache, observe, check)
    else:
        state, n_steps = _run_serial(job, cache, observe, check)
    wall = time.perf_counter() - t0
    sim_gyr = float(job.cosmo.age(job.a_final) - job.cosmo.age(job.a_init))
    return JobResult(
        job=job,
        status="completed",
        worker=worker,
        wall_seconds=wall,
        sim_gyr=sim_gyr,
        n_steps=n_steps,
        n_particles=job.n_particles if job.ranks == 0 else job.n_per_dim**3,
        state_hash=state_hash(**state),
        state={k: v.copy() for k, v in state.items()} if keep_state else None,
    )
