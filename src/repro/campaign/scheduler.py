"""Campaign execution engine: pooled scheduling with admission control.

The heavy-traffic front door of the reproduction: thousands of queued
:class:`~repro.campaign.jobs.SimJob` requests are admitted into a bounded
priority queue and drained by a fixed pool of worker threads, each
driving real simulation runs through the cache-aware runner.  Throughput
is the headline metric — universes/hour at fixed fidelity.

Admission control
-----------------
The queue is bounded (``max_queue``).  Two policies when it is full:

- ``"reject"`` — :meth:`CampaignEngine.submit` returns ``False`` and the
  job is counted under ``campaign/rejected`` (load shedding);
- ``"block"`` — the submitter waits for space (backpressure), so offered
  load above capacity slows producers instead of growing memory.

Priority lanes: jobs carry an integer ``priority``; lane 0 (interactive)
is always served before lane 1 (batch) and so on, FIFO within a lane.

Accounting
----------
Every job is traced (``campaign/queued`` async slice from admission to
dispatch, ``campaign/job`` span around the run on the worker's track) and
metered per tenant in the engine's metrics registry::

    campaign/jobs_completed{tenant=...}   universes delivered
    campaign/jobs_failed{tenant=...}
    campaign/jobs_cancelled{tenant=...}   deadline / explicit cancels
    campaign/retries{tenant=...}          failed-job re-admissions
    campaign/backoff_sim_s{tenant=...}    simulated-clock backoff billed
    campaign/wall_seconds{tenant=...}     wall clock consumed (cost)
    campaign/sim_gyr{tenant=...}          simulated-clock Gyr delivered

plus engine-wide ``campaign/{submitted,rejected,completed,failed,
cancelled}`` counters, a ``campaign/queue_depth`` gauge and a
``campaign/queue_wait_s`` histogram.  The derived per-tenant report is
:func:`repro.observe.derived.tenant_report`.

Failure handling
----------------
Jobs end in one of three terminal states.  ``completed`` and ``failed``
are the runner's verdicts; ``cancelled`` means the engine stopped the
job — a ``deadline_s`` expiry or an explicit :meth:`CampaignEngine.cancel`
— cooperatively at a step boundary.  A ``retry`` policy (duck-typed
``allows``/``backoff_s``, canonically
:class:`repro.resilience.retry.RetryPolicy`) re-admits *failed* jobs
only: cancellation is a decision, failure is an accident.
"""

from __future__ import annotations

# campaign wall time, queue-wait, and universes/hour are themselves the
# measured quantities (tenant cost accounting), not phases of a step
# sanitize: allow-file-clock-discipline

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field

from ..observe import Observatory
from ..observe.derived import tenant_report
from .cache import ArtifactCache
from .jobs import JobResult, SimJob
from .runner import JobCancelled, run_job


def _unwrap_cancelled(exc) -> JobCancelled | None:
    """Find a JobCancelled anywhere down the ``__cause__`` chain.

    A distributed job's cancellation hook raises on a rank thread, so
    ``World.run`` surfaces it wrapped in a CommError; the terminal state
    must still be ``cancelled``, not ``failed``.
    """
    seen = exc
    while seen is not None:
        if isinstance(seen, JobCancelled):
            return seen
        seen = seen.__cause__
    return None

#: campaign worker tracks start here so they never collide with the
#: per-rank tids (0..n_ranks) a distributed job claims for its rank threads
WORKER_TID_BASE = 1000


class AdmissionError(RuntimeError):
    """Raised by ``submit(..., strict=True)`` when a job is shed."""


class JobQueue:
    """Bounded multi-lane priority queue (thread-safe).

    Ordering is ``(priority, admission sequence)`` — strict lane priority,
    FIFO within a lane.  ``close()`` wakes every waiter; ``get`` returns
    ``None`` once closed and drained.
    """

    def __init__(self, max_depth: int = 16, policy: str = "block"):
        if policy not in ("block", "reject"):
            raise ValueError(f"unknown admission policy {policy!r}")
        self.max_depth = int(max_depth)
        self.policy = policy
        self._heap: list = []
        self._seq = itertools.count()
        self._closed = False
        self._cv = threading.Condition()

    def __len__(self) -> int:
        with self._cv:
            return len(self._heap)

    def put(self, item, priority: int = 1, timeout: float | None = None,
            force: bool = False) -> bool:
        """Admit ``item``; returns False when shed under the reject policy.

        ``force=True`` bypasses admission control *and* the closed check —
        the engine's retry path re-admits a failed job from inside a
        worker after ``close()``, and ``get`` keeps serving a closed queue
        until the heap drains, so a forced put is never lost.
        """
        with self._cv:
            if not force:
                if self.policy == "reject":
                    if len(self._heap) >= self.max_depth:
                        return False
                else:
                    deadline = None if timeout is None \
                        else time.monotonic() + timeout
                    while len(self._heap) >= self.max_depth \
                            and not self._closed:
                        remaining = None if deadline is None \
                            else deadline - time.monotonic()
                        if remaining is not None and remaining <= 0:
                            return False
                        self._cv.wait(remaining)
                if self._closed:
                    raise RuntimeError("queue is closed")
            heapq.heappush(self._heap, (int(priority), next(self._seq), item))
            self._cv.notify_all()
            return True

    def get(self):
        """Next item by (lane, FIFO) order; None once closed and empty."""
        with self._cv:
            while not self._heap and not self._closed:
                self._cv.wait()
            if not self._heap:
                return None
            _, _, item = heapq.heappop(self._heap)
            self._cv.notify_all()
            return item

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._cv.notify_all()


@dataclass
class CampaignReport:
    """What a drained campaign delivered."""

    results: list
    wall_seconds: float
    n_submitted: int
    n_rejected: int
    tenants: list = field(default_factory=list)
    cache_stats: dict = field(default_factory=dict)

    @property
    def n_completed(self) -> int:
        return sum(1 for r in self.results if r.status == "completed")

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.results if r.status == "failed")

    @property
    def n_cancelled(self) -> int:
        return sum(1 for r in self.results if r.status == "cancelled")

    @property
    def universes_per_hour(self) -> float:
        return self.n_completed / max(self.wall_seconds, 1e-9) * 3600.0


class CampaignEngine:
    """Shared worker pool executing queued simulation jobs.

    Usage::

        engine = CampaignEngine(n_workers=2, max_queue=8)
        for job in jobs:
            engine.submit(job)
        report = engine.drain()      # close intake, run to completion

    One engine = one bounded pool + one artifact cache + one metrics
    registry; tenants share all three, which is the point.
    """

    def __init__(self, n_workers: int = 2, max_queue: int = 16,
                 policy: str = "block", observe: Observatory | None = None,
                 cache: ArtifactCache | None = None,
                 cache_bytes: int = 256 << 20, keep_state: bool = False,
                 retry=None):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.observe = observe if observe is not None else Observatory()
        self.registry = self.observe.registry
        self.cache = cache if cache is not None else (
            ArtifactCache(max_bytes=cache_bytes, registry=self.registry)
            if cache_bytes else None
        )
        self.n_workers = int(n_workers)
        self.queue = JobQueue(max_depth=max_queue, policy=policy)
        self.keep_state = keep_state
        #: anything with ``allows(attempt)`` / ``backoff_s(attempt)`` —
        #: canonically a :class:`repro.resilience.retry.RetryPolicy`.
        #: Failed jobs it allows are re-admitted (same lane, attempt+1)
        #: with the backoff billed to a simulated-clock tenant counter;
        #: cancelled jobs are terminal and never re-admitted.
        self.retry = retry
        self.results: list[JobResult] = []
        self._acct = threading.Lock()
        self._n_submitted = 0
        self._n_rejected = 0
        #: submission id -> (job, cancel event); dropped on terminal record
        self._subs: dict[int, tuple[SimJob, threading.Event]] = {}
        self._sub_seq = itertools.count()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._t_start = time.perf_counter()

    # -- intake ----------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._t_start = time.perf_counter()
        for w in range(self.n_workers):
            t = threading.Thread(
                target=self._worker, args=(w,),
                name=f"campaign-worker-{w}", daemon=True,
            )
            t.start()
            self._threads.append(t)

    def submit(self, job: SimJob, strict: bool = False) -> bool:
        """Queue a job; False (or AdmissionError) when load-shed."""
        self.start()
        tracer = self.observe.tracer
        qid = tracer.next_id()
        sub_id = next(self._sub_seq)
        with self._acct:
            # registered before the put so a worker dispatching the job
            # immediately still finds its cancel event
            self._subs[sub_id] = (job, threading.Event())
        admitted = self.queue.put(
            (job, time.perf_counter(), qid, sub_id, 1), priority=job.priority
        )
        with self._acct:
            self._n_submitted += 1
            self.registry.counter("campaign/submitted").add(1)
            if not admitted:
                self._subs.pop(sub_id, None)
                self._n_rejected += 1
                self.registry.counter("campaign/rejected").add(1)
            self.registry.gauge("campaign/queue_depth").set(len(self.queue))
        if admitted:
            tracer.async_begin("campaign/queued", qid, cat="campaign",
                               job=job.name, tenant=job.tenant)
        elif strict:
            raise AdmissionError(
                f"queue full ({self.queue.max_depth}); job {job.name!r} shed"
            )
        return admitted

    def submit_many(self, jobs) -> int:
        """Submit a batch; returns how many were admitted."""
        return sum(1 for job in jobs if self.submit(job))

    def cancel(self, job_or_name) -> int:
        """Cancel every live submission of a job (by job or by name).

        Queued submissions are skipped at dispatch; a running one is
        stopped cooperatively at its next step boundary.  Returns how
        many submissions were newly flagged.  Cancellation is terminal:
        the result lands as ``cancelled`` and is never retried.
        """
        name = job_or_name.name if isinstance(job_or_name, SimJob) \
            else str(job_or_name)
        n = 0
        with self._acct:
            for job, event in self._subs.values():
                if job.name == name and not event.is_set():
                    event.set()
                    n += 1
        return n

    # -- drain -----------------------------------------------------------------
    def drain(self) -> CampaignReport:
        """Close intake, run every admitted job, join the pool, report."""
        self.start()
        self.queue.close()
        for t in self._threads:
            t.join()
        self._threads.clear()
        self._started = False
        wall = time.perf_counter() - self._t_start
        with self._acct:
            results = list(self.results)
        report = CampaignReport(
            results=results,
            wall_seconds=wall,
            n_submitted=self._n_submitted,
            n_rejected=self._n_rejected,
            tenants=tenant_report(self.registry),
            cache_stats=self.cache.stats() if self.cache is not None else {},
        )
        self.registry.gauge("campaign/universes_per_hour").set(
            report.universes_per_hour
        )
        return report

    def run(self, jobs) -> CampaignReport:
        """Submit a whole batch and drain it (the one-shot entry point)."""
        self.submit_many(jobs)
        return self.drain()

    # -- workers ---------------------------------------------------------------
    def _worker(self, widx: int) -> None:
        tracer = self.observe.tracer
        tracer.set_track(WORKER_TID_BASE + widx, f"campaign worker {widx}")
        while True:
            item = self.queue.get()
            if item is None:
                return
            job, t_submit, qid, sub_id, attempt = item
            queue_wait = time.perf_counter() - t_submit
            tracer.async_end("campaign/queued", qid, cat="campaign")
            with self._acct:
                self.registry.gauge("campaign/queue_depth").set(
                    len(self.queue)
                )
                sub = self._subs.get(sub_id)
            event = sub[1] if sub is not None else None
            with tracer.span("campaign/job", cat="campaign",
                             job=job.name, tenant=job.tenant):
                if event is not None and event.is_set():
                    result = JobResult(
                        job=job, status="cancelled", worker=widx,
                        attempts=attempt, error="cancelled while queued",
                    )
                else:
                    try:
                        result = run_job(job, cache=self.cache,
                                         observe=self.observe, worker=widx,
                                         keep_state=self.keep_state,
                                         cancel_event=event)
                        result.attempts = attempt
                    except Exception as exc:  # must not kill the pool
                        cancelled = _unwrap_cancelled(exc)
                        if cancelled is not None:
                            result = JobResult(job=job, status="cancelled",
                                               worker=widx, attempts=attempt,
                                               error=str(cancelled))
                        else:
                            result = JobResult(job=job, status="failed",
                                               worker=widx, attempts=attempt,
                                               error=repr(exc))
            result.queue_wait_seconds = queue_wait
            self._record(result, sub_id)

    def _requeue(self, result: JobResult, sub_id: int) -> None:
        """Re-admit a failed job under the retry policy (attempt + 1).

        The backoff is simulated-clock accounting, not a real sleep: the
        thread pool is shared and a sleeping worker would stall other
        tenants' jobs, so the penalty is billed to per-tenant counters
        (``campaign/backoff_sim_s``) the way iosim bills fabric time.
        """
        job = result.job
        backoff = float(self.retry.backoff_s(result.attempts))
        tracer = self.observe.tracer
        qid = tracer.next_id()
        self.queue.put(
            (job, time.perf_counter(), qid, sub_id, result.attempts + 1),
            priority=job.priority, force=True,
        )
        with self._acct:
            reg = self.registry
            reg.counter("campaign/retries", tenant=job.tenant).add(1)
            reg.counter("campaign/backoff_sim_s", tenant=job.tenant).add(
                backoff
            )
            # the failed attempt's wall clock is still the tenant's cost
            reg.counter("campaign/wall_seconds", tenant=job.tenant).add(
                result.wall_seconds
            )
        tracer.instant("campaign/retry", cat="campaign", job=job.name,
                       tenant=job.tenant, attempt=result.attempts,
                       backoff_s=backoff)
        tracer.async_begin("campaign/queued", qid, cat="campaign",
                           job=job.name, tenant=job.tenant)

    def _record(self, result: JobResult, sub_id: int | None = None) -> None:
        job = result.job
        if (result.status == "failed" and self.retry is not None
                and self.retry.allows(result.attempts)):
            self._requeue(result, sub_id)
            return
        if result.status == "cancelled":
            self.observe.tracer.instant(
                "campaign/cancelled", cat="campaign",
                job=job.name, tenant=job.tenant, attempt=result.attempts,
            )
        with self._acct:
            if sub_id is not None:
                self._subs.pop(sub_id, None)
            self.results.append(result)
            reg = self.registry
            if result.status == "completed":
                reg.counter("campaign/completed").add(1)
                reg.counter("campaign/jobs_completed", tenant=job.tenant).add(1)
                reg.counter("campaign/sim_gyr", tenant=job.tenant).add(
                    result.sim_gyr
                )
            elif result.status == "cancelled":
                reg.counter("campaign/cancelled").add(1)
                reg.counter("campaign/jobs_cancelled", tenant=job.tenant).add(1)
            else:
                reg.counter("campaign/failed").add(1)
                reg.counter("campaign/jobs_failed", tenant=job.tenant).add(1)
            reg.counter("campaign/wall_seconds", tenant=job.tenant).add(
                result.wall_seconds
            )
            reg.histogram("campaign/queue_wait_s").observe(
                result.queue_wait_seconds
            )
            reg.histogram("campaign/job_wall_s").observe(result.wall_seconds)
