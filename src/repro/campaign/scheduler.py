"""Campaign execution engine: pooled scheduling with admission control.

The heavy-traffic front door of the reproduction: thousands of queued
:class:`~repro.campaign.jobs.SimJob` requests are admitted into a bounded
priority queue and drained by a fixed pool of worker threads, each
driving real simulation runs through the cache-aware runner.  Throughput
is the headline metric — universes/hour at fixed fidelity.

Admission control
-----------------
The queue is bounded (``max_queue``).  Two policies when it is full:

- ``"reject"`` — :meth:`CampaignEngine.submit` returns ``False`` and the
  job is counted under ``campaign/rejected`` (load shedding);
- ``"block"`` — the submitter waits for space (backpressure), so offered
  load above capacity slows producers instead of growing memory.

Priority lanes: jobs carry an integer ``priority``; lane 0 (interactive)
is always served before lane 1 (batch) and so on, FIFO within a lane.

Accounting
----------
Every job is traced (``campaign/queued`` async slice from admission to
dispatch, ``campaign/job`` span around the run on the worker's track) and
metered per tenant in the engine's metrics registry::

    campaign/jobs_completed{tenant=...}   universes delivered
    campaign/jobs_failed{tenant=...}
    campaign/wall_seconds{tenant=...}     wall clock consumed (cost)
    campaign/sim_gyr{tenant=...}          simulated-clock Gyr delivered

plus engine-wide ``campaign/{submitted,rejected,completed,failed}``
counters, a ``campaign/queue_depth`` gauge and a
``campaign/queue_wait_s`` histogram.  The derived per-tenant report is
:func:`repro.observe.derived.tenant_report`.
"""

from __future__ import annotations

# campaign wall time, queue-wait, and universes/hour are themselves the
# measured quantities (tenant cost accounting), not phases of a step
# sanitize: allow-file-clock-discipline

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field

from ..observe import Observatory
from ..observe.derived import tenant_report
from .cache import ArtifactCache
from .jobs import JobResult, SimJob
from .runner import run_job

#: campaign worker tracks start here so they never collide with the
#: per-rank tids (0..n_ranks) a distributed job claims for its rank threads
WORKER_TID_BASE = 1000


class AdmissionError(RuntimeError):
    """Raised by ``submit(..., strict=True)`` when a job is shed."""


class JobQueue:
    """Bounded multi-lane priority queue (thread-safe).

    Ordering is ``(priority, admission sequence)`` — strict lane priority,
    FIFO within a lane.  ``close()`` wakes every waiter; ``get`` returns
    ``None`` once closed and drained.
    """

    def __init__(self, max_depth: int = 16, policy: str = "block"):
        if policy not in ("block", "reject"):
            raise ValueError(f"unknown admission policy {policy!r}")
        self.max_depth = int(max_depth)
        self.policy = policy
        self._heap: list = []
        self._seq = itertools.count()
        self._closed = False
        self._cv = threading.Condition()

    def __len__(self) -> int:
        with self._cv:
            return len(self._heap)

    def put(self, item, priority: int = 1, timeout: float | None = None
            ) -> bool:
        """Admit ``item``; returns False when shed under the reject policy."""
        with self._cv:
            if self.policy == "reject":
                if len(self._heap) >= self.max_depth:
                    return False
            else:
                deadline = None if timeout is None \
                    else time.monotonic() + timeout
                while len(self._heap) >= self.max_depth and not self._closed:
                    remaining = None if deadline is None \
                        else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        return False
                    self._cv.wait(remaining)
            if self._closed:
                raise RuntimeError("queue is closed")
            heapq.heappush(self._heap, (int(priority), next(self._seq), item))
            self._cv.notify_all()
            return True

    def get(self):
        """Next item by (lane, FIFO) order; None once closed and empty."""
        with self._cv:
            while not self._heap and not self._closed:
                self._cv.wait()
            if not self._heap:
                return None
            _, _, item = heapq.heappop(self._heap)
            self._cv.notify_all()
            return item

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._cv.notify_all()


@dataclass
class CampaignReport:
    """What a drained campaign delivered."""

    results: list
    wall_seconds: float
    n_submitted: int
    n_rejected: int
    tenants: list = field(default_factory=list)
    cache_stats: dict = field(default_factory=dict)

    @property
    def n_completed(self) -> int:
        return sum(1 for r in self.results if r.status == "completed")

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.results if r.status == "failed")

    @property
    def universes_per_hour(self) -> float:
        return self.n_completed / max(self.wall_seconds, 1e-9) * 3600.0


class CampaignEngine:
    """Shared worker pool executing queued simulation jobs.

    Usage::

        engine = CampaignEngine(n_workers=2, max_queue=8)
        for job in jobs:
            engine.submit(job)
        report = engine.drain()      # close intake, run to completion

    One engine = one bounded pool + one artifact cache + one metrics
    registry; tenants share all three, which is the point.
    """

    def __init__(self, n_workers: int = 2, max_queue: int = 16,
                 policy: str = "block", observe: Observatory | None = None,
                 cache: ArtifactCache | None = None,
                 cache_bytes: int = 256 << 20, keep_state: bool = False):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.observe = observe if observe is not None else Observatory()
        self.registry = self.observe.registry
        self.cache = cache if cache is not None else (
            ArtifactCache(max_bytes=cache_bytes, registry=self.registry)
            if cache_bytes else None
        )
        self.n_workers = int(n_workers)
        self.queue = JobQueue(max_depth=max_queue, policy=policy)
        self.keep_state = keep_state
        self.results: list[JobResult] = []
        self._acct = threading.Lock()
        self._n_submitted = 0
        self._n_rejected = 0
        self._threads: list[threading.Thread] = []
        self._started = False
        self._t_start = time.perf_counter()

    # -- intake ----------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._t_start = time.perf_counter()
        for w in range(self.n_workers):
            t = threading.Thread(
                target=self._worker, args=(w,),
                name=f"campaign-worker-{w}", daemon=True,
            )
            t.start()
            self._threads.append(t)

    def submit(self, job: SimJob, strict: bool = False) -> bool:
        """Queue a job; False (or AdmissionError) when load-shed."""
        self.start()
        tracer = self.observe.tracer
        qid = tracer.next_id()
        admitted = self.queue.put(
            (job, time.perf_counter(), qid), priority=job.priority
        )
        with self._acct:
            self._n_submitted += 1
            self.registry.counter("campaign/submitted").add(1)
            if not admitted:
                self._n_rejected += 1
                self.registry.counter("campaign/rejected").add(1)
            self.registry.gauge("campaign/queue_depth").set(len(self.queue))
        if admitted:
            tracer.async_begin("campaign/queued", qid, cat="campaign",
                               job=job.name, tenant=job.tenant)
        elif strict:
            raise AdmissionError(
                f"queue full ({self.queue.max_depth}); job {job.name!r} shed"
            )
        return admitted

    def submit_many(self, jobs) -> int:
        """Submit a batch; returns how many were admitted."""
        return sum(1 for job in jobs if self.submit(job))

    # -- drain -----------------------------------------------------------------
    def drain(self) -> CampaignReport:
        """Close intake, run every admitted job, join the pool, report."""
        self.start()
        self.queue.close()
        for t in self._threads:
            t.join()
        self._threads.clear()
        self._started = False
        wall = time.perf_counter() - self._t_start
        with self._acct:
            results = list(self.results)
        report = CampaignReport(
            results=results,
            wall_seconds=wall,
            n_submitted=self._n_submitted,
            n_rejected=self._n_rejected,
            tenants=tenant_report(self.registry),
            cache_stats=self.cache.stats() if self.cache is not None else {},
        )
        self.registry.gauge("campaign/universes_per_hour").set(
            report.universes_per_hour
        )
        return report

    def run(self, jobs) -> CampaignReport:
        """Submit a whole batch and drain it (the one-shot entry point)."""
        self.submit_many(jobs)
        return self.drain()

    # -- workers ---------------------------------------------------------------
    def _worker(self, widx: int) -> None:
        tracer = self.observe.tracer
        tracer.set_track(WORKER_TID_BASE + widx, f"campaign worker {widx}")
        while True:
            item = self.queue.get()
            if item is None:
                return
            job, t_submit, qid = item
            queue_wait = time.perf_counter() - t_submit
            tracer.async_end("campaign/queued", qid, cat="campaign")
            with self._acct:
                self.registry.gauge("campaign/queue_depth").set(
                    len(self.queue)
                )
            with tracer.span("campaign/job", cat="campaign",
                             job=job.name, tenant=job.tenant):
                try:
                    result = run_job(job, cache=self.cache,
                                     observe=self.observe, worker=widx,
                                     keep_state=self.keep_state)
                except Exception as exc:  # job failure must not kill the pool
                    result = JobResult(job=job, status="failed",
                                       worker=widx, error=repr(exc))
            result.queue_wait_seconds = queue_wait
            self._record(result)

    def _record(self, result: JobResult) -> None:
        job = result.job
        with self._acct:
            self.results.append(result)
            reg = self.registry
            if result.status == "completed":
                reg.counter("campaign/completed").add(1)
                reg.counter("campaign/jobs_completed", tenant=job.tenant).add(1)
                reg.counter("campaign/sim_gyr", tenant=job.tenant).add(
                    result.sim_gyr
                )
            else:
                reg.counter("campaign/failed").add(1)
                reg.counter("campaign/jobs_failed", tenant=job.tenant).add(1)
            reg.counter("campaign/wall_seconds", tenant=job.tenant).add(
                result.wall_seconds
            )
            reg.histogram("campaign/queue_wait_s").observe(
                result.queue_wait_seconds
            )
            reg.histogram("campaign/job_wall_s").observe(result.wall_seconds)
