"""Parallel file system (Lustre/Orion) model (paper Sections IV-B4, V-A).

Orion's theoretical peaks are 5.5 TB/s read and 4.6 TB/s write for
large-file workloads.  Achieved bandwidth varies with contention and
Lustre internals; the paper's run sustained 0.75-3.7 TB/s during
asynchronous bleeds.  The model captures: a shared bandwidth pool,
per-client link caps, metadata/contention penalties that grow with the
number of simultaneous writers, and stochastic variability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PFSModel:
    """Shared parallel file system bandwidth model."""

    peak_write_tbps: float = 4.6
    peak_read_tbps: float = 5.5
    #: per-client injection cap (node NIC/OST path), TB/s
    client_link_tbps: float = 0.0025  # 2.5 GB/s effective per node
    #: contention exponent: efficiency ~ (n*/n)^alpha beyond saturation
    contention_alpha: float = 0.25
    #: lognormal sigma of run-to-run Lustre variability
    variability_sigma: float = 0.35
    seed: int = 1

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def saturation_clients(self) -> float:
        """Writers needed to saturate the pool through their links."""
        return self.peak_write_tbps / self.client_link_tbps

    def effective_write_tbps(
        self, n_writers: int, sample_variability: bool = True
    ) -> float:
        """Aggregate achieved write bandwidth with ``n_writers`` bleeding.

        Below saturation the pool delivers n * link; above it, contention
        (lock/metadata pressure) erodes efficiency with a power law.  A
        lognormal factor models Lustre weather, clipped to the paper's
        observed 0.75-3.7 TB/s envelope at full machine scale.
        """
        if n_writers <= 0:
            return 0.0
        linear = n_writers * self.client_link_tbps
        n_star = self.saturation_clients()
        if n_writers <= n_star:
            bw = min(linear, self.peak_write_tbps)
        else:
            bw = self.peak_write_tbps * (n_star / n_writers) ** self.contention_alpha
        if sample_variability:
            factor = self._rng.lognormal(mean=-0.15, sigma=self.variability_sigma)
            bw = bw * factor
        return float(np.clip(bw, 0.05, self.peak_write_tbps))

    def write_seconds(
        self, total_tb: float, n_writers: int, sample_variability: bool = True
    ) -> float:
        bw = self.effective_write_tbps(n_writers, sample_variability)
        return total_tb / max(bw, 1e-9)
