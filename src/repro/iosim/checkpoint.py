"""GenericIO-style checkpoint format: real files, block table, CRC32.

Binary layout:

    [magic 8B][version u32][n_blocks u32][meta_len u32][meta JSON bytes]
    [block table: n_blocks x (name 32B, dtype 8B, ndim u32, shape 4xu64,
                              offset u64, nbytes u64, crc32 u32, pad u32)]
    [data blocks...]

Every array is a named block with its own CRC so corruption is detected at
read time — the property that makes per-step checkpointing a safe fault
tolerance strategy.  Writers emit to a temp file and rename, so a crash
mid-write never leaves a truncated checkpoint behind the canonical name.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass

import numpy as np

MAGIC = b"CRKHACC1"
VERSION = 1
_NAME_LEN = 32
_DTYPE_LEN = 8
_MAX_DIMS = 4
_BLOCK_FMT = f"<{_NAME_LEN}s{_DTYPE_LEN}sI{_MAX_DIMS}QQQII"


class CheckpointError(RuntimeError):
    """Raised on malformed or corrupted checkpoint files."""


@dataclass
class BlockInfo:
    name: str
    dtype: str
    shape: tuple
    offset: int
    nbytes: int
    crc32: int


def write_blocks(path: str, arrays: dict, metadata: dict | None = None) -> int:
    """Write named arrays + JSON metadata; returns total bytes written."""
    metadata = metadata or {}
    meta_bytes = json.dumps(metadata).encode()
    names = list(arrays)
    for name in names:
        if len(name.encode()) > _NAME_LEN:
            raise ValueError(f"block name too long: {name!r}")

    header_size = len(MAGIC) + 4 + 4 + 4 + len(meta_bytes)
    table_size = struct.calcsize(_BLOCK_FMT) * len(names)
    offset = header_size + table_size

    table = []
    for name in names:
        arr = np.ascontiguousarray(arrays[name])
        if arr.ndim > _MAX_DIMS:
            raise ValueError(f"block {name!r} has too many dims")
        raw = arr.tobytes()
        table.append(
            BlockInfo(
                name=name,
                dtype=arr.dtype.str,
                shape=arr.shape,
                offset=offset,
                nbytes=len(raw),
                crc32=zlib.crc32(raw),
            )
        )
        offset += len(raw)

    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(MAGIC)
        f.write(struct.pack("<III", VERSION, len(names), len(meta_bytes)))
        f.write(meta_bytes)
        for info, name in zip(table, names):
            shape = tuple(info.shape) + (0,) * (_MAX_DIMS - len(info.shape))
            f.write(
                struct.pack(
                    _BLOCK_FMT,
                    info.name.encode().ljust(_NAME_LEN, b"\0"),
                    info.dtype.encode().ljust(_DTYPE_LEN, b"\0"),
                    len(info.shape),
                    *shape,
                    info.offset,
                    info.nbytes,
                    info.crc32,
                    0,
                )
            )
        for name in names:
            f.write(np.ascontiguousarray(arrays[name]).tobytes())
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return offset


def read_blocks(path: str, validate: bool = True):
    """Read a checkpoint; returns (arrays dict, metadata dict).

    With ``validate=True`` every block's CRC is checked; mismatches raise
    CheckpointError.
    """
    with open(path, "rb") as f:
        magic = f.read(len(MAGIC))
        if magic != MAGIC:
            raise CheckpointError(f"bad magic in {path!r}")
        version, n_blocks, meta_len = struct.unpack("<III", f.read(12))
        if version != VERSION:
            raise CheckpointError(f"unsupported version {version}")
        metadata = json.loads(f.read(meta_len).decode())

        infos = []
        fmt_size = struct.calcsize(_BLOCK_FMT)
        for _ in range(n_blocks):
            fields = struct.unpack(_BLOCK_FMT, f.read(fmt_size))
            name = fields[0].rstrip(b"\0").decode()
            dtype = fields[1].rstrip(b"\0").decode()
            ndim = fields[2]
            shape = tuple(fields[3 : 3 + ndim])
            off, nbytes, crc = fields[3 + _MAX_DIMS : 6 + _MAX_DIMS]
            infos.append(BlockInfo(name, dtype, shape, off, nbytes, crc))

        arrays = {}
        for info in infos:
            f.seek(info.offset)
            raw = f.read(info.nbytes)
            if len(raw) != info.nbytes:
                raise CheckpointError(f"truncated block {info.name!r}")
            if validate and zlib.crc32(raw) != info.crc32:
                raise CheckpointError(f"CRC mismatch in block {info.name!r}")
            arrays[info.name] = np.frombuffer(raw, dtype=info.dtype).reshape(
                info.shape
            ).copy()
    return arrays, metadata


# -- particle-level convenience API ------------------------------------------

PARTICLE_FIELDS = ("pos", "vel", "mass", "species", "u", "h", "metallicity",
                   "ids", "rho", "rung")


def write_checkpoint(path: str, particles, a: float, step: int,
                     extra_metadata: dict | None = None) -> int:
    """Checkpoint a Particles container + simulation state."""
    arrays = {f: getattr(particles, f) for f in PARTICLE_FIELDS}
    meta = {"a": a, "step": step, "n_particles": len(particles)}
    meta.update(extra_metadata or {})
    return write_blocks(path, arrays, meta)


def read_checkpoint(path: str):
    """Restore (particles, metadata) from a checkpoint file."""
    from ..core.particles import Particles

    arrays, meta = read_blocks(path)
    missing = [f for f in PARTICLE_FIELDS if f not in arrays]
    if missing:
        raise CheckpointError(f"checkpoint missing blocks: {missing}")
    particles = Particles(**{f: arrays[f] for f in PARTICLE_FIELDS})
    return particles, meta
