"""Checkpoint manager: the full multi-tier I/O loop wired into the driver.

Combines the pieces of Section IV-B4 into the object a simulation actually
uses: attach a :class:`CheckpointManager` to a :class:`Simulation` as an
I/O hook and every PM step writes a CRC'd checkpoint to the local (NVMe)
directory synchronously, hands it to the background bleeder draining to
the PFS directory, and prunes beyond the retention window — then
``restore_latest`` recovers after a crash, falling back past corrupted
files exactly as an operator would.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .bleed import AsyncBleeder
from .checkpoint import CheckpointError, read_checkpoint, write_checkpoint


@dataclass
class CheckpointRecord:
    step: int
    a: float
    name: str
    nbytes: int


class CheckpointManager:
    """Per-step checkpointing through the NVMe -> async bleed -> PFS path.

    Use as a Simulation io_hook::

        manager = CheckpointManager(local_dir, pfs_dir, every=1)
        sim.io_hooks.append(manager)
        ...
        manager.close()

    or as a context manager.  ``restore_latest(pfs_dir)`` (classmethod)
    recovers the newest valid checkpoint after a crash.
    """

    def __init__(
        self,
        local_dir: str,
        pfs_dir: str,
        every: int = 1,
        retention: int = 3,
        throttle_bps: float | None = None,
    ):
        if every < 1:
            raise ValueError("checkpoint cadence must be >= 1 step")
        self.every = every
        self.bleeder = AsyncBleeder(
            local_dir, pfs_dir, throttle_bps=throttle_bps, retention=retention
        )
        self.written: list[CheckpointRecord] = []

    # -- hook interface -----------------------------------------------------------
    def __call__(self, sim, record) -> None:
        """Simulation io_hook: checkpoint this step if the cadence says so.

        Picks up the simulation's observe tracer (when present): the sync
        local write is an ``io/checkpoint`` span, and the bleeder's drain
        of the same file shows as an ``io/pfs_drain`` async slice.
        """
        if record.step % self.every != 0:
            return
        obs = getattr(sim, "observe", None)
        if obs is not None:
            self.bleeder.tracer = obs.tracer
        tracer = self.bleeder.tracer
        name = f"ckpt_{record.step:05d}.gio"
        path = os.path.join(self.bleeder.local_dir, name)
        with tracer.span("io/checkpoint", cat="io", step=record.step) as sp:
            nbytes = write_checkpoint(
                path, sim.particles, a=record.a, step=record.step + 1,
                extra_metadata={"n_substeps": record.n_substeps},
            )
            sp.set_args(bytes=nbytes)
            self.bleeder.submit(name)
        self.written.append(
            CheckpointRecord(step=record.step, a=record.a, name=name,
                             nbytes=nbytes)
        )

    # -- lifecycle ------------------------------------------------------------------
    def close(self, timeout: float = 60.0):
        """Flush the bleed queue; returns the bleeder statistics."""
        return self.bleeder.close(timeout)

    def __enter__(self) -> "CheckpointManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- recovery ---------------------------------------------------------------------
    @staticmethod
    def restore_latest(pfs_dir: str):
        """Restore the newest valid checkpoint from the PFS directory.

        Walks backward over corrupted/torn files (CRC failures) until one
        validates; raises CheckpointError if none do — mirroring the
        operator recovery procedure per-step checkpointing enables.
        """
        candidates = sorted(
            f for f in os.listdir(pfs_dir)
            if f.startswith("ckpt_") and f.endswith(".gio")
        )
        errors = []
        for name in reversed(candidates):
            try:
                particles, meta = read_checkpoint(os.path.join(pfs_dir, name))
                return particles, meta, name
            except CheckpointError as exc:
                errors.append(f"{name}: {exc}")
        raise CheckpointError(
            "no valid checkpoint found; tried: " + "; ".join(errors)
            if errors else "no checkpoint files present"
        )
