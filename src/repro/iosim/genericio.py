"""Distributed checkpoint sets: one shard per rank plus an index.

GenericIO (HACC's I/O library) writes rank-partitioned particle data where
every rank owns one contiguous region of the file set; readers reassemble
the global state from the shards.  This module reproduces that layout with
real files: per-rank shard files in the block format of
:mod:`repro.iosim.checkpoint`, a JSON index binding them together, and a
reader that validates completeness and CRCs before reassembly — the
durability contract behind per-step checkpointing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from .checkpoint import CheckpointError, read_blocks, write_blocks

INDEX_NAME = "index.json"


def shard_name(rank: int) -> str:
    return f"shard_{rank:05d}.gio"


def write_shard(
    directory: str, rank: int, arrays: dict, metadata: dict | None = None
) -> int:
    """Write one rank's shard; returns bytes written."""
    os.makedirs(directory, exist_ok=True)
    meta = {"rank": rank}
    meta.update(metadata or {})
    return write_blocks(os.path.join(directory, shard_name(rank)), arrays, meta)


def write_index(
    directory: str,
    n_ranks: int,
    step: int,
    a: float,
    extra: dict | None = None,
) -> None:
    """Write the set-level index (rank 0's job after a barrier)."""
    index = {
        "format": "repro-genericio-1",
        "n_ranks": n_ranks,
        "step": step,
        "a": a,
        "shards": [shard_name(r) for r in range(n_ranks)],
    }
    index.update(extra or {})
    tmp = os.path.join(directory, INDEX_NAME + ".tmp")
    with open(tmp, "w") as f:
        json.dump(index, f)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, os.path.join(directory, INDEX_NAME))


@dataclass
class DistributedCheckpointSet:
    """A validated, reassembled distributed checkpoint."""

    arrays: dict  # concatenated over ranks
    index: dict
    rank_offsets: np.ndarray  # row offset of each rank's slice

    @property
    def n_ranks(self) -> int:
        return self.index["n_ranks"]

    def rank_slice(self, rank: int) -> slice:
        return slice(
            int(self.rank_offsets[rank]), int(self.rank_offsets[rank + 1])
        )


def read_distributed(directory: str, validate: bool = True) -> DistributedCheckpointSet:
    """Reassemble a shard set; raises CheckpointError on any gap/corruption."""
    index_path = os.path.join(directory, INDEX_NAME)
    if not os.path.exists(index_path):
        raise CheckpointError(f"no index at {index_path!r}")
    with open(index_path) as f:
        index = json.load(f)
    if index.get("format") != "repro-genericio-1":
        raise CheckpointError("unrecognized checkpoint-set format")

    per_rank_arrays = []
    counts = []
    for rank, name in enumerate(index["shards"]):
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            raise CheckpointError(f"missing shard {name!r} (rank {rank})")
        arrays, meta = read_blocks(path, validate=validate)
        if meta.get("rank") != rank:
            raise CheckpointError(
                f"shard {name!r} claims rank {meta.get('rank')}, expected {rank}"
            )
        per_rank_arrays.append(arrays)
        first = next(iter(arrays.values())) if arrays else np.empty(0)
        counts.append(len(first))

    keys = set(per_rank_arrays[0]) if per_rank_arrays else set()
    for rank, arrays in enumerate(per_rank_arrays):
        if set(arrays) != keys:
            raise CheckpointError(f"shard {rank} has mismatched blocks")

    merged = {
        k: np.concatenate([a[k] for a in per_rank_arrays])
        for k in sorted(keys)
    }
    offsets = np.concatenate([[0], np.cumsum(counts)])
    return DistributedCheckpointSet(
        arrays=merged, index=index, rank_offsets=offsets
    )


def distributed_checkpoint(comm, directory: str, arrays: dict, step: int,
                           a: float) -> int:
    """SPMD entry point: every rank writes its shard; rank 0 writes the
    index after a barrier confirms all shards are durable.  Returns this
    rank's bytes written."""
    nbytes = write_shard(directory, comm.rank, arrays,
                         {"step": step, "a": a})
    comm.barrier()
    if comm.rank == 0:
        write_index(directory, comm.size, step, a)
    comm.barrier()
    return nbytes
