"""Node-local NVMe SSD model (paper Section V-A).

Frontier nodes carry two NVMe M.2 drives: ~3.5 TB combined, 8 GB/s read and
4 GB/s write sustained.  The model tracks capacity and computes transfer
durations, including the read+write interference the paper observed during
analysis output steps (up to 30% effective write-speed loss).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NVMeModel:
    """One node's local SSD."""

    capacity_tb: float = 3.5
    write_bw_gbps: float = 4.0  # GB/s
    read_bw_gbps: float = 8.0
    #: effective write-speed multiplier while concurrent reads are active
    read_interference: float = 0.7

    used_tb: float = 0.0
    files: dict = field(default_factory=dict)

    def write_seconds(self, size_tb: float, concurrent_read: bool = False) -> float:
        """Duration of a synchronous local write."""
        bw = self.write_bw_gbps * (self.read_interference if concurrent_read else 1.0)
        return size_tb * 1000.0 / bw

    def read_seconds(self, size_tb: float) -> float:
        return size_tb * 1000.0 / self.read_bw_gbps

    def store(self, name: str, size_tb: float) -> None:
        if size_tb < 0:
            raise ValueError("negative file size")
        if self.used_tb + size_tb > self.capacity_tb:
            raise IOError(
                f"NVMe full: {self.used_tb + size_tb:.2f} > {self.capacity_tb} TB"
            )
        self.files[name] = self.files.get(name, 0.0) + size_tb
        self.used_tb += size_tb

    def remove(self, name: str) -> float:
        size = self.files.pop(name, 0.0)
        self.used_tb -= size
        return size

    @property
    def free_tb(self) -> float:
        return self.capacity_tb - self.used_tb
