"""Asynchronous bleed: background threads draining NVMe files to the PFS.

This is the real mechanism of paper Section IV-B4, with real files and
real threads: the simulation synchronously writes checkpoints to a
node-local directory (the NVMe tier), a background thread moves completed
files to the parallel-file-system directory using low-level OS rename/copy
calls, and a second policy prunes checkpoints older than a retention
window.  The simulation never blocks on the PFS.
"""

from __future__ import annotations

import os
import queue
import shutil
import threading
import time
from dataclasses import dataclass, field

from ..observe.trace import NullTracer

_NULL_TRACER = NullTracer()


@dataclass
class BleedStats:
    files_bled: int = 0
    bytes_bled: int = 0
    files_pruned: int = 0
    errors: int = 0


class AsyncBleeder:
    """Background mover from a local (NVMe) directory to a PFS directory.

    ``submit(name)`` enqueues a completed local file; the worker thread
    copies it to the PFS and removes the local copy.  ``throttle_bps``
    optionally rate-limits the drain (to emulate a slow PFS and test
    stall behaviour).  Completed transfers are atomic on the PFS side
    (temp name + rename), so readers never observe torn files.
    """

    def __init__(
        self,
        local_dir: str,
        pfs_dir: str,
        throttle_bps: float | None = None,
        retention: int | None = None,
        tracer=None,
    ):
        self.local_dir = local_dir
        self.pfs_dir = pfs_dir
        self.throttle_bps = throttle_bps
        self.retention = retention
        #: each submit -> drain lifetime becomes an ``io/pfs_drain`` async
        #: slice (real wall clock; the drain runs on the worker thread)
        self.tracer = tracer if tracer is not None else _NULL_TRACER
        self._trace_ids: dict[str, str] = {}
        os.makedirs(local_dir, exist_ok=True)
        os.makedirs(pfs_dir, exist_ok=True)
        self.stats = BleedStats()
        self._queue: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._bled_order: list[str] = []
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._worker, daemon=True)
        self._thread.start()

    # -- producer side ----------------------------------------------------------
    def submit(self, name: str) -> None:
        """Queue a completed local file for draining (non-blocking)."""
        if self._stop.is_set():
            raise RuntimeError("bleeder already closed")
        tr = self.tracer
        if tr.enabled:
            drain_id = tr.next_id()
            with self._lock:
                self._trace_ids[name] = drain_id
            tr.async_begin("io/pfs_drain", drain_id, cat="io", file=name)
        self._queue.put(name)

    def pending(self) -> int:
        return self._queue.qsize()

    # -- worker ------------------------------------------------------------------
    def _worker(self) -> None:
        while not self._stop.is_set() or not self._queue.empty():
            try:
                name = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            try:
                self._bleed_one(name)
            except Exception:  # noqa: BLE001 - must keep draining
                self.stats.errors += 1
            finally:
                self._queue.task_done()

    def _bleed_one(self, name: str) -> None:
        src = os.path.join(self.local_dir, name)
        dst = os.path.join(self.pfs_dir, name)
        size = os.path.getsize(src)
        if self.throttle_bps:
            # move in chunks, sleeping to honor the bandwidth cap
            chunk = max(int(self.throttle_bps * 0.01), 4096)
            with open(src, "rb") as fin, open(dst + ".part", "wb") as fout:
                while True:
                    buf = fin.read(chunk)
                    if not buf:
                        break
                    fout.write(buf)
                    time.sleep(len(buf) / self.throttle_bps)
                fout.flush()
                os.fsync(fout.fileno())
        else:
            shutil.copyfile(src, dst + ".part")
        os.replace(dst + ".part", dst)
        os.remove(src)
        self.stats.files_bled += 1
        self.stats.bytes_bled += size
        tr = self.tracer
        if tr.enabled:
            with self._lock:
                drain_id = self._trace_ids.pop(name, None)
            if drain_id is not None:
                tr.async_end("io/pfs_drain", drain_id, cat="io", bytes=size)
        with self._lock:
            self._bled_order.append(name)
            if self.retention is not None:
                while len(self._bled_order) > self.retention:
                    victim = self._bled_order.pop(0)
                    vpath = os.path.join(self.pfs_dir, victim)
                    if os.path.exists(vpath):
                        os.remove(vpath)
                        self.stats.files_pruned += 1

    # -- lifecycle -----------------------------------------------------------------
    def drain(self, timeout: float = 30.0) -> bool:
        """Block until the queue is empty (end-of-run flush)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._queue.empty() and self._queue.unfinished_tasks == 0:
                return True
            time.sleep(0.01)
        return False

    def close(self, timeout: float = 30.0) -> BleedStats:
        """Flush outstanding work and stop the worker."""
        self.drain(timeout)
        self._stop.set()
        self._thread.join(timeout)
        return self.stats

    def __enter__(self) -> "AsyncBleeder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
