"""Multi-tiered I/O strategy (paper Section IV-B4).

Per PM step: every node writes its checkpoint shard synchronously to local
NVMe (the only part the simulation waits on), then a background thread
bleeds the files to the PFS while the next step computes; further
background threads prune checkpoints older than a retention window.  The
simulation stalls only if a bleed is still in flight when the *next* sync
write needs the drive, or if the NVMe fills up.

``DirectPFSWriter`` models the strategy the paper avoided — synchronous
writes straight to Lustre — as the ablation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..observe.clock import SIM_PID
from ..observe.trace import NullTracer
from .nvme import NVMeModel
from .pfs import PFSModel

_NULL_TRACER = NullTracer()


@dataclass
class StepIORecord:
    """I/O accounting for one PM step."""

    step: int
    data_tb: float
    sync_seconds: float  # simulation-blocking time
    bleed_seconds: float  # asynchronous PFS drain time
    stall_seconds: float  # sync delayed waiting on a previous bleed
    nvme_bw_tbps: float  # aggregate effective local write bandwidth
    pfs_bw_tbps: float  # aggregate effective bleed bandwidth
    pruned_tb: float = 0.0


@dataclass
class MultiTierWriter:
    """Simulates the NVMe -> async bleed -> PFS pipeline for all nodes.

    The model keys off aggregate quantities plus a node imbalance factor:
    the slowest node's shard is ``imbalance`` times the mean shard, and the
    synchronous phase completes when the slowest node finishes (paper: the
    size imbalance grew to ~2x by late times, halving effective NVMe
    bandwidth).
    """

    n_nodes: int
    nvme: NVMeModel = field(default_factory=NVMeModel)
    pfs: PFSModel = field(default_factory=PFSModel)
    retention_steps: int = 2  # checkpoints kept on the PFS/NVMe window
    records: list = field(default_factory=list)
    #: observe tracer; tier events land on the *simulated* clock process
    #: (pid=SIM_PID) with explicit model timestamps, bit-deterministic
    tracer: object = None

    def __post_init__(self) -> None:
        if self.tracer is None:
            self.tracer = _NULL_TRACER
        self._bleed_finishes_at = 0.0  # in simulated seconds
        self._clock = 0.0
        self._live_checkpoints: list[tuple[int, float]] = []  # (step, tb)
        self.total_written_tb = 0.0
        self.total_io_seconds = 0.0

    def checkpoint(
        self,
        step: int,
        data_tb: float,
        compute_seconds: float,
        imbalance: float = 1.0,
        concurrent_analysis_read: bool = False,
    ) -> StepIORecord:
        """Execute one step's checkpoint cycle.

        ``compute_seconds`` is the duration of the *next* compute phase,
        during which the asynchronous bleed can hide.
        """
        if data_tb < 0 or imbalance < 1.0:
            raise ValueError("need data_tb >= 0 and imbalance >= 1")
        t_begin = self._clock
        # stall if the previous bleed still holds the drive
        stall = max(0.0, self._bleed_finishes_at - self._clock)
        self._clock += stall

        # synchronous local write: slowest node gates completion
        mean_shard_tb = data_tb / self.n_nodes
        slow_shard = mean_shard_tb * imbalance
        sync = self.nvme.write_seconds(
            slow_shard, concurrent_read=concurrent_analysis_read
        )
        agg_nvme_bw = data_tb / max(sync, 1e-12)
        self._clock += sync

        # capacity management on the local drive
        self.nvme.store(f"ckpt_{step}", slow_shard)
        self._live_checkpoints.append((step, data_tb))
        pruned = self._prune(step)

        # asynchronous bleed to the PFS, overlapped with the next compute
        bleed = self.pfs.write_seconds(data_tb, n_writers=self.n_nodes)
        self._bleed_finishes_at = self._clock + bleed

        tr = self.tracer
        if tr.enabled:
            # simulated-clock track: stall + sync write as complete spans,
            # the bleed as an async slice overlapping the next compute
            tr.complete("io/stall", ts=t_begin, dur=stall, cat="io",
                        pid=SIM_PID, tid=0, step=step)
            tr.complete("io/nvme_write", ts=t_begin + stall, dur=sync,
                        cat="io", pid=SIM_PID, tid=0, step=step,
                        data_tb=data_tb)
            bleed_id = tr.next_id()
            tr.async_begin("io/bleed", bleed_id, cat="io", ts=self._clock,
                           pid=SIM_PID, tid=0, step=step, data_tb=data_tb)
            tr.async_end("io/bleed", bleed_id, cat="io",
                         ts=self._bleed_finishes_at, pid=SIM_PID, tid=0)

        # advance through the compute phase; bleed hides under it
        self._clock += compute_seconds

        rec = StepIORecord(
            step=step,
            data_tb=data_tb,
            sync_seconds=sync,
            bleed_seconds=bleed,
            stall_seconds=stall,
            nvme_bw_tbps=agg_nvme_bw,
            pfs_bw_tbps=data_tb / max(bleed, 1e-12),
            pruned_tb=pruned,
        )
        self.records.append(rec)
        self.total_written_tb += data_tb
        self.total_io_seconds += sync + stall
        return rec

    def _prune(self, current_step: int) -> float:
        """Remove checkpoints outside the retention window (time-window
        function of the paper) from both tiers."""
        pruned = 0.0
        keep = []
        for step, tb in self._live_checkpoints:
            if current_step - step >= self.retention_steps:
                self.nvme.remove(f"ckpt_{step}")
                pruned += tb
            else:
                keep.append((step, tb))
        self._live_checkpoints = keep
        return pruned

    @property
    def effective_bandwidth_tbps(self) -> float:
        """Total data / simulation-blocking I/O time — the paper's 5.45 TB/s
        'effective write bandwidth' metric (can exceed raw PFS peak)."""
        if self.total_io_seconds == 0:
            return 0.0
        return self.total_written_tb / self.total_io_seconds


@dataclass
class DirectPFSWriter:
    """Ablation baseline: synchronous checkpoints straight to Lustre."""

    n_nodes: int
    pfs: PFSModel = field(default_factory=PFSModel)
    records: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.total_written_tb = 0.0
        self.total_io_seconds = 0.0

    def checkpoint(self, step: int, data_tb: float, compute_seconds: float,
                   imbalance: float = 1.0, **_) -> StepIORecord:
        sync = self.pfs.write_seconds(data_tb, n_writers=self.n_nodes)
        rec = StepIORecord(
            step=step,
            data_tb=data_tb,
            sync_seconds=sync,
            bleed_seconds=0.0,
            stall_seconds=0.0,
            nvme_bw_tbps=0.0,
            pfs_bw_tbps=data_tb / max(sync, 1e-12),
        )
        self.records.append(rec)
        self.total_written_tb += data_tb
        self.total_io_seconds += sync
        return rec

    @property
    def effective_bandwidth_tbps(self) -> float:
        if self.total_io_seconds == 0:
            return 0.0
        return self.total_written_tb / self.total_io_seconds
