"""Machine interruption (MTTI) model and checkpoint/restart accounting.

Exascale systems interrupt every few hours (paper Section IV-B4, citing
Kokolis et al. 2024), which is why Frontier-E checkpointed *every* PM step.
This module simulates a run under exponential interruptions and quantifies
the trade between checkpoint cost and lost work, including the classic
Young/Daly optimal-interval comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass
class FaultRunStats:
    """Outcome of a simulated run under interruptions."""

    wallclock_hours: float
    work_hours: float
    checkpoint_hours: float
    lost_hours: float
    restart_hours: float
    n_interrupts: int

    @property
    def efficiency(self) -> float:
        """Useful work / wallclock."""
        if self.wallclock_hours == 0:
            return 1.0
        return self.work_hours / self.wallclock_hours


def young_daly_interval(checkpoint_cost_hours: float, mtti_hours: float) -> float:
    """Young/Daly optimal checkpoint interval sqrt(2 C M)."""
    if checkpoint_cost_hours < 0 or mtti_hours <= 0:
        raise ValueError("need checkpoint cost >= 0 and MTTI > 0")
    return math.sqrt(2.0 * checkpoint_cost_hours * mtti_hours)


def interruption_steps(mtti_steps: float, n_steps: int,
                       rng: np.random.Generator | None = None) -> list[int]:
    """Exponential interruption arrivals, quantized to PM-step indices.

    The step-unit analog of the hour-unit model above: interarrival
    times are drawn from ``Exp(mtti_steps)`` and floored to the step
    they land in, truncated at ``n_steps``.  This is what
    :meth:`repro.resilience.faults.FaultPlan.from_mtti` turns into live
    rank kills against the distributed driver.
    """
    if mtti_steps <= 0:
        raise ValueError("MTTI must be positive")
    rng = rng or np.random.default_rng(0)
    steps = []
    t = 0.0
    while True:
        t += float(rng.exponential(mtti_steps))
        if t >= n_steps:
            return steps
        steps.append(int(t))


def simulate_run_with_faults(
    total_work_hours: float,
    checkpoint_interval_hours: float,
    checkpoint_cost_hours: float,
    mtti_hours: float,
    restart_cost_hours: float = 0.25,
    rng: np.random.Generator | None = None,
    max_wallclock_hours: float = 1.0e5,
) -> FaultRunStats:
    """Simulate completing ``total_work_hours`` of compute with periodic
    checkpoints under exponential interruptions.

    Work lost at an interruption is everything since the last completed
    checkpoint.  Returns aggregate accounting; raises if the run cannot
    finish within ``max_wallclock_hours`` (checkpoint interval >= MTTI can
    make progress impossible).
    """
    rng = rng or np.random.default_rng(0)
    if checkpoint_interval_hours <= 0:
        raise ValueError("checkpoint interval must be positive")

    clock = 0.0
    done = 0.0  # durable (checkpointed) progress
    ckpt_time = 0.0
    lost = 0.0
    restarts = 0.0
    n_int = 0
    next_fault = rng.exponential(mtti_hours)

    while done < total_work_hours:
        if clock > max_wallclock_hours:
            raise RuntimeError(
                "run cannot complete: losing work faster than checkpointing"
            )
        segment = min(checkpoint_interval_hours, total_work_hours - done)
        segment_end = clock + segment + checkpoint_cost_hours
        if next_fault < segment_end:
            # interrupted mid-segment (or mid-checkpoint): segment lost
            wasted = next_fault - clock
            lost += wasted
            clock = next_fault + restart_cost_hours
            restarts += restart_cost_hours
            n_int += 1
            next_fault = clock + rng.exponential(mtti_hours)
            continue
        clock = segment_end
        done += segment
        ckpt_time += checkpoint_cost_hours

    return FaultRunStats(
        wallclock_hours=clock,
        work_hours=total_work_hours,
        checkpoint_hours=ckpt_time,
        lost_hours=lost,
        restart_hours=restarts,
        n_interrupts=n_int,
    )


def expected_efficiency(
    checkpoint_interval_hours: float,
    checkpoint_cost_hours: float,
    mtti_hours: float,
    restart_cost_hours: float = 0.25,
) -> float:
    """First-order analytic efficiency of a checkpoint interval.

    useful / wallclock ~ tau / [(tau + C) + (tau/2 + R) * (tau + C)/M]
    """
    tau = checkpoint_interval_hours
    c = checkpoint_cost_hours
    m = mtti_hours
    r = restart_cost_hours
    per_segment = (tau + c) * (1.0 + (tau / 2.0 + r) / m)
    return tau / per_segment
