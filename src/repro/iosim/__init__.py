"""Multi-tier I/O simulation: NVMe, PFS, async bleed, checkpoints, faults."""

from .checkpoint import (
    CheckpointError,
    read_blocks,
    read_checkpoint,
    write_blocks,
    write_checkpoint,
)
from .bleed import AsyncBleeder, BleedStats
from .genericio import (
    DistributedCheckpointSet,
    distributed_checkpoint,
    read_distributed,
    write_index,
    write_shard,
)
from .faults import (
    FaultRunStats,
    expected_efficiency,
    simulate_run_with_faults,
    young_daly_interval,
)
from .manager import CheckpointManager, CheckpointRecord
from .nvme import NVMeModel
from .pfs import PFSModel
from .tiers import DirectPFSWriter, MultiTierWriter, StepIORecord

__all__ = [
    "AsyncBleeder",
    "BleedStats",
    "CheckpointError",
    "CheckpointManager",
    "CheckpointRecord",
    "DirectPFSWriter",
    "DistributedCheckpointSet",
    "FaultRunStats",
    "MultiTierWriter",
    "NVMeModel",
    "PFSModel",
    "StepIORecord",
    "distributed_checkpoint",
    "expected_efficiency",
    "read_blocks",
    "read_distributed",
    "read_checkpoint",
    "simulate_run_with_faults",
    "write_blocks",
    "write_index",
    "write_checkpoint",
    "write_shard",
    "young_daly_interval",
]
