#!/usr/bin/env python
"""Static span-taxonomy check (CI guard for trace attribution).

Greps the instrumented modules for span-name string literals passed to
tracer calls (``span(...)``, ``complete(...)``, ``async_begin/end(...)``,
``instant(...)``, ``flow_start/end(...)``) and fails when any literal is
not registered in :mod:`repro.observe.taxonomy`.  The Fig. 2 / Fig. 6
derived metrics and CI trace diffs key off span names, so an instrumented
module inventing a name silently breaks attribution — this makes it a
loud failure instead.

Usage::

    python scripts/check_spans.py [module.py ...]

With no arguments, scans the default instrumented-module set.  Exits
nonzero listing the unregistered names, if any.
"""

from __future__ import annotations

import os
import re
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(_HERE)
_SRC = os.path.join(_REPO, "src")
sys.path.insert(0, _SRC)

#: modules whose tracer calls must only use registered span names
INSTRUMENTED = (
    "repro/core/simulation.py",
    "repro/parallel/comm.py",
    "repro/parallel/distributed_sim.py",
    "repro/parallel/swfft.py",
    "repro/gpusim/resident.py",
    "repro/iosim/tiers.py",
    "repro/iosim/bleed.py",
    "repro/iosim/manager.py",
)

#: tracer entry points that take a span name as their first argument
_CALL = re.compile(
    r"\.(?:span|complete|instant|async_begin|async_end|"
    r"flow_start|flow_end)\(\s*[\"']([^\"']+)[\"']"
)


def span_literals(path: str) -> list[tuple[int, str]]:
    """``(line_number, name)`` for every span-name literal in a file."""
    out = []
    with open(path, encoding="utf-8") as fh:
        for i, line in enumerate(fh, start=1):
            for m in _CALL.finditer(line):
                out.append((i, m.group(1)))
    return out


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    paths = args if args else [os.path.join(_SRC, m) for m in INSTRUMENTED]

    from repro.observe.taxonomy import SPAN_NAMES, unregistered

    found: dict[str, list[tuple[str, int]]] = {}
    n_literals = 0
    for path in paths:
        if not os.path.exists(path):
            print(f"check_spans: no such file: {path}", file=sys.stderr)
            return 2
        for lineno, name in span_literals(path):
            n_literals += 1
            found.setdefault(name, []).append(
                (os.path.relpath(path, _REPO), lineno)
            )

    bad = unregistered(found)
    if bad:
        print("check_spans: unregistered span names "
              "(add to repro/observe/taxonomy.py or rename):")
        for name in bad:
            for path, lineno in found[name]:
                print(f"  {path}:{lineno}: {name!r}")
        return 1

    print(f"check_spans: OK — {n_literals} span literals in {len(paths)} "
          f"files, all {len(found)} distinct names registered "
          f"({len(SPAN_NAMES)} in taxonomy)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
