#!/usr/bin/env python
"""Static span-taxonomy check (CI guard for trace attribution).

Thin shim over the lint engine's span-taxonomy rule
(:mod:`repro.sanitize.rules.spans`), kept for CI muscle memory and its
historical exit-code contract:

    0  every span literal in the scanned files is registered
    1  unregistered names found (listed as ``path:line: 'name'``)
    2  a named file does not exist

Usage::

    python scripts/check_spans.py [module.py ...]

With no arguments, scans the default instrumented-module set.  The same
check also runs AST-accurately inside ``python -m repro lint`` as the
``span-taxonomy`` rule; prefer that entry point for new tooling.
"""

from __future__ import annotations

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(_HERE)
_SRC = os.path.join(_REPO, "src")
sys.path.insert(0, _SRC)


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv

    from repro.observe.taxonomy import SPAN_NAMES
    from repro.sanitize.rules.spans import INSTRUMENTED, scan_span_files

    paths = args if args else [os.path.join(_SRC, m) for m in INSTRUMENTED]
    for path in paths:
        if not os.path.exists(path):
            print(f"check_spans: no such file: {path}", file=sys.stderr)
            return 2

    bad, n_literals, n_names = scan_span_files(paths)
    if bad:
        print("check_spans: unregistered span names "
              "(add to repro/observe/taxonomy.py or rename):")
        for name, sites in bad.items():
            for path, lineno in sites:
                try:
                    rel = os.path.relpath(path, _REPO)
                except ValueError:
                    rel = path
                print(f"  {rel}:{lineno}: {name!r}")
        return 1

    print(f"check_spans: OK — {n_literals} span literals in {len(paths)} "
          f"files, all {n_names} distinct names registered "
          f"({len(SPAN_NAMES)} in taxonomy)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
