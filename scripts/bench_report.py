#!/usr/bin/env python
"""Aggregate every ``benchmarks/BENCH_*.json`` trajectory into one table.

Each full-mode benchmark appends one record per recorded run to its JSON
artifact (see ``benchmarks/conftest.py::record_trajectory``), so the
artifacts together hold the repo's performance trajectory.  This script
renders them as a single table — one row per (benchmark, run) with the
headline metrics — and optionally dumps the full flattened data as JSON
(the CI artifact).

Usage::

    python scripts/bench_report.py [--dir benchmarks] [--json OUT] [--all]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

#: metric-name fragments that make a flattened leaf a headline number
HEADLINE = re.compile(
    r"(speedup|ratio|per_hour|uph|efficiency|reduction|fraction|"
    r"wall_s$|_ms$|tbps|hours)",
)

#: cap on headline metrics shown per row (text mode)
MAX_HEADLINE = 8


def flatten(value, prefix: str = "") -> dict:
    """Recursively flatten nested dicts/lists to ``{dotted.key: number}``."""
    out: dict[str, float] = {}
    if isinstance(value, bool):
        return out
    if isinstance(value, (int, float)):
        out[prefix or "value"] = float(value)
    elif isinstance(value, dict):
        for k, v in value.items():
            key = f"{prefix}.{k}" if prefix else str(k)
            out.update(flatten(v, key))
    elif isinstance(value, list):
        for i, v in enumerate(value):
            key = f"{prefix}[{i}]" if prefix else f"[{i}]"
            out.update(flatten(v, key))
    return out


def headline_metrics(flat: dict, show_all: bool = False) -> dict:
    """The subset of flattened metrics worth a text row."""
    if show_all:
        return dict(flat)
    picked = {k: v for k, v in flat.items() if HEADLINE.search(k)}
    if not picked:  # artifact with no recognizable headline: show a few
        picked = dict(list(flat.items())[:MAX_HEADLINE])
    if len(picked) > MAX_HEADLINE:
        picked = dict(sorted(picked.items())[:MAX_HEADLINE])
    return picked


def collect(bench_dir: Path) -> dict:
    """``{bench_name: [flattened record, ...]}`` over every artifact."""
    out = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        name = path.stem.replace("BENCH_", "")
        try:
            records = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            print(f"warning: skipping {path.name}: {exc}", file=sys.stderr)
            continue
        if isinstance(records, dict):
            records = [records]
        out[name] = [flatten(r) for r in records]
    return out


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e6:
        return str(int(v))
    if abs(v) >= 1e5 or (v != 0 and abs(v) < 1e-3):
        return f"{v:.3e}"
    return f"{v:.3f}"


def render_text(data: dict, show_all: bool = False) -> str:
    lines = []
    n_runs = sum(len(v) for v in data.values())
    lines.append(f"benchmark trajectory: {len(data)} artifacts, "
                 f"{n_runs} recorded runs")
    for name, runs in data.items():
        lines.append(f"\n{name} ({len(runs)} run{'s' * (len(runs) != 1)})")
        for i, flat in enumerate(runs):
            picked = headline_metrics(flat, show_all)
            lines.append(f"  run {i}:")
            for k, v in picked.items():
                lines.append(f"    {k:<48} {_fmt(v)}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default="benchmarks",
                        help="directory holding BENCH_*.json artifacts")
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="also write the flattened table as JSON")
    parser.add_argument("--all", action="store_true",
                        help="show every metric, not just headliners")
    args = parser.parse_args(argv)

    bench_dir = Path(args.dir)
    if not bench_dir.is_dir():
        print(f"no such directory: {bench_dir}", file=sys.stderr)
        return 2
    data = collect(bench_dir)
    if not data:
        print(f"no BENCH_*.json artifacts under {bench_dir}", file=sys.stderr)
        return 1
    print(render_text(data, show_all=args.all))
    if args.json:
        Path(args.json).write_text(json.dumps(data, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
