"""Figure 1: the simulation landscape — resolution elements vs box size.

Prints every marker of the figure (state-of-the-art hydro and gravity-only
campaigns plus Frontier-E) and the matching-resolution dotted line, and
checks the figure's claims: Frontier-E breaks the trillion-pair barrier,
is a >15x capability leap, and reaches gravity-only scales.
"""

import numpy as np

from repro.perfmodel import (
    capability_leap_factor,
    landscape_catalog,
    matching_resolution_elements,
)
from repro.perfmodel.landscape import FRONTIER_E

from conftest import print_table


def test_fig1_landscape(benchmark):
    catalog = benchmark.pedantic(landscape_catalog, rounds=1, iterations=1)

    rows = [
        (
            s.name,
            s.code,
            "hydro" if s.hydro else "gravity-only",
            f"{s.box_gpc:.2f}",
            f"{s.resolution_elements:.2e}",
            "GPU" if s.gpu_accelerated else "CPU",
        )
        for s in catalog
    ]
    print_table(
        "Figure 1: large-volume simulation landscape",
        ["Simulation", "Code", "Type", "Box (Gpc)", "Resolution elements", "Arch"],
        rows,
    )

    line_boxes = np.array([0.5, 1.0, 2.0, 4.7])
    line = matching_resolution_elements(line_boxes)
    print_table(
        "Matching-resolution line (dotted)",
        ["Box (Gpc)", "Elements to match Frontier-E resolution"],
        [(f"{b:.2f}", f"{v:.2e}") for b, v in zip(line_boxes, line)],
    )

    leap = capability_leap_factor()
    benchmark.extra_info["capability_leap"] = leap
    print(f"\nFrontier-E capability leap over largest prior hydro run: "
          f"{leap:.1f}x (paper: >15x)")

    # figure claims
    assert FRONTIER_E.resolution_elements > 1e12
    assert leap > 15.0
    gravity = [s for s in catalog if not s.hydro]
    assert FRONTIER_E.resolution_elements >= 0.9 * max(
        s.resolution_elements for s in gravity
    )
