"""X5 (Section IV-A): mixed precision — FP64 spectral solver, FP32 kernels.

The ablation behind the multi-scale precision design: the short-range GPU
kernels run in FP32 "gaining performance and memory efficiency without
compromising scientific fidelity", which is only safe because the FP32
force error sits far below the other error sources in the split.  The
bench quantifies the whole error budget on real particle data.
"""

import numpy as np

from repro.constants import G_COSMO
from repro.core.gravity import (
    PMSolver,
    compare_precisions,
    recommended_cutoff,
    short_range_accelerations,
)
from repro.tree import neighbor_pairs

from conftest import print_table


def test_x5_mixed_precision_error_budget(benchmark):
    rng = np.random.default_rng(13)
    box, n_part = 40.0, 500
    pos = rng.uniform(0, box, (n_part, 3))
    mass = rng.uniform(1, 2, n_part) * 1e10
    r_split = 2.5
    cutoff = recommended_cutoff(r_split, tol=1e-4)
    out = {}

    def run():
        pi, pj = neighbor_pairs(pos, np.full(n_part, cutoff), box=box)
        out["report"] = compare_precisions(
            pos, mass, pi, pj, r_split=r_split, softening=0.05, box=box
        )
        # PM mesh noise estimate: same field at two grid resolutions
        coeff = 4 * np.pi * G_COSMO
        a_lo = PMSolver(n=24, box=box, r_split=r_split).accelerations(
            pos, mass, coeff
        )
        a_hi = PMSolver(n=48, box=box, r_split=r_split).accelerations(
            pos, mass, coeff
        )
        mag = np.linalg.norm(a_hi, axis=1)
        out["pm_noise"] = float(
            np.median(
                np.linalg.norm(a_lo - a_hi, axis=1) / np.maximum(mag, 1e-30)
            )
        )
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    rep = out["report"]
    rows = [
        ("FP32 short-range kernels (rms)", f"{rep.rms_relative_error:.2e}"),
        ("FP32 short-range kernels (median)",
         f"{rep.median_relative_error:.2e}"),
        ("PM mesh discretization (median)", f"{out['pm_noise']:.2e}"),
        ("split handover tail (by construction)", "1.0e-04"),
        ("kernel state memory (FP32/FP64)", f"{rep.memory_ratio:.2f}x"),
    ]
    print_table("X5: force error budget of the mixed-precision design",
                ["Error source", "Relative size"], rows)
    benchmark.extra_info["fp32_rms"] = rep.rms_relative_error
    benchmark.extra_info["pm_noise"] = out["pm_noise"]

    # the design criterion: FP32 error far below the mesh noise, so
    # dropping precision on the GPU kernels is scientifically free
    assert rep.rms_relative_error < 0.1 * out["pm_noise"]
    assert rep.acceptable
    assert rep.memory_ratio == 0.5
