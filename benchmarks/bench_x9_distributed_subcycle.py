"""X9: rung-pipelined distributed subcycling + nonblocking migration.

The deepest-rung particles of a clustered problem need da/8 kicks while
the background needs one; a flat distributed driver must step *everyone*
at the deep cadence, paying a full ghost exchange, FFT, and 7-field
migration per fine step.  The subcycled driver assigns rungs once per PM
interval, serves the deep-rung force evaluations from rank-local
active-sink pair queries over the overloaded ghost zone, and pipelines
them behind the in-flight exchanges; migration goes nonblocking in two
waves (positions + kick-invariant fields behind the closing evaluation,
velocities/u/acc_long behind the next opening), so its wire time leaves
the critical path entirely.

Modes compared over the same clustered layout at 4 ranks on a simulated
high-latency fabric:

- ``sub_overlap``   — subcycle + active-set + overlap + two-wave
  migration, sanitizers armed (the tentpole configuration);
- ``sub_blocking``  — subcycle, every particle evaluated every substep,
  blocking collectives: the bit-identity reference;
- ``flat_overlap``  — no subcycling; the PM interval is split into
  2^depth flat steps (same fine cadence for everyone) using the previous
  generation's overlap driver.

Full-mode acceptance: sub_overlap is >= 2x faster per PM interval than
flat_overlap, its migration wait share sits below 0.5 (from ~0.83 for
the blocking-migration overlap driver in BENCH_comm_overlap.json), it is
bit-identical to sub_blocking, and the armed sanitizers report zero
findings.  Each full run appends to ``BENCH_distributed_subcycle.json``.
"""

import time
from pathlib import Path

import numpy as np

from repro.cosmology import PLANCK18
from repro.parallel.distributed_sim import (
    DistributedConfig,
    DistributedSimulation,
)

from conftest import FULL, print_table, record_trajectory, scaled

ARTIFACT = Path(__file__).parent / "BENCH_distributed_subcycle.json"

BOX = 120.0
N_RANKS = 4
MAX_RUNG = 3


def _clustered_ics(n_dm_side, n_blob, seed=7):
    """Jittered DM grid plus a tight heavy clump in one octant.

    The clump's mutual accelerations put its particles on deep rungs
    (the acceleration timestep criterion), concentrated on whichever
    ranks own that octant — deep-rung work is both rare and imbalanced,
    the regime the rung pipeline targets.
    """
    rng = np.random.default_rng(seed)
    g = (np.arange(n_dm_side) + 0.5) * BOX / n_dm_side
    grid = np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1)
    dm = np.mod(
        grid.reshape(-1, 3) + rng.normal(0, 1.0, (n_dm_side**3, 3)), BOX
    )
    blob = 75.0 + 0.5 * rng.standard_normal((n_blob, 3))
    pos = np.vstack([dm, blob])
    vel = rng.normal(0, 25.0, pos.shape)
    mass = np.full(len(pos), 1.0e10)
    mass[len(dm):] = 2.0e12
    return pos, vel, mass


def _config(n_pm_steps, latency, **kw):
    return DistributedConfig(
        box=BOX, pm_grid=32, a_init=0.3,
        a_final=0.3 + 0.02 * n_pm_steps, n_pm_steps=n_pm_steps,
        cosmo=PLANCK18, r_split_cells=1.0, max_rung=MAX_RUNG,
        net_latency_s=latency, **kw,
    )


def _run(cfg, ics):
    pos, vel, mass = ics
    sim = DistributedSimulation(cfg, N_RANKS)
    t0 = time.perf_counter()
    out = sim.run(pos.copy(), vel.copy(), mass.copy())
    wall = time.perf_counter() - t0
    recs = sim.step_records
    total_wall = sum(sum(r.timers.values()) for r in recs)
    total_wait = sum(sum(r.comm_wait.values()) for r in recs)
    mig_wall = sum(r.timers.get("migration", 0.0) for r in recs)
    mig_wait = sum(r.comm_wait.get("migration", 0.0) for r in recs)
    return {
        "out": out, "sim": sim, "wall": wall,
        "wait_fraction": total_wait / max(total_wall, 1e-12),
        "migration_wait_s": mig_wait,
        "migration_wait_share": mig_wait / max(mig_wall, 1e-12),
    }


def test_x9_distributed_subcycle(benchmark):
    n_pm_steps = scaled(2, 1)
    latency = scaled(0.15, 0.02)
    ics = _clustered_ics(
        n_dm_side=scaled(8, 4), n_blob=scaled(48, 24)
    )
    res = {}

    def run():
        res["sub_overlap"] = _run(
            _config(n_pm_steps, latency, comm_mode="overlap",
                    subcycle=True, active_set=True, sanitize=True),
            ics,
        )
        res["sub_blocking"] = _run(
            _config(n_pm_steps, latency, comm_mode="blocking",
                    subcycle=True, active_set=False),
            ics,
        )
        # flat reference at the fine cadence the deepest rung demands:
        # 2^depth flat steps per PM interval, previous-generation driver
        depth = max(r.deepest_rung
                    for r in res["sub_overlap"]["sim"].step_records)
        res["flat_overlap"] = _run(
            _config(n_pm_steps * 2**depth, latency, comm_mode="overlap",
                    subcycle=False),
            ics,
        )
        return res

    benchmark.pedantic(run, rounds=1, iterations=1)

    sub = res["sub_overlap"]
    recs = sub["sim"].step_records
    depth = max(r.deepest_rung for r in recs)
    nsub = max(r.n_substeps for r in recs)
    # per-PM-interval wall: the flat reference takes 2^depth driver steps
    # to cover one interval
    step_s = {
        "sub_overlap": sub["wall"] / n_pm_steps,
        "sub_blocking": res["sub_blocking"]["wall"] / n_pm_steps,
        "flat_overlap": res["flat_overlap"]["wall"] / n_pm_steps,
    }
    speedup = step_s["flat_overlap"] / step_s["sub_overlap"]

    print_table(
        f"X9: distributed subcycling ({len(ics[0])} particles, "
        f"{N_RANKS} ranks, depth {depth} -> {nsub} substeps, "
        f"latency {latency}s)",
        ["Mode", "s / PM interval", "Wait frac", "Migration wait share"],
        [
            (m, f"{step_s[m]:.2f}", f"{res[m]['wait_fraction']:.2f}",
             f"{res[m]['migration_wait_share']:.2f}")
            for m in ("flat_overlap", "sub_blocking", "sub_overlap")
        ],
    )
    print(f"sub_overlap vs flat_overlap: {speedup:.2f}x per PM interval")
    benchmark.extra_info.update({
        "depth": depth, "n_substeps": nsub, "speedup": speedup,
        "step_s": step_s,
        "migration_wait_share": sub["migration_wait_share"],
        "wait_fraction": sub["wait_fraction"],
    })

    # bit-identity: active-set overlap == full-evaluation blocking on the
    # same rung schedule, under fabric latency, sanitizers armed
    for a, b, name in zip(res["sub_overlap"]["out"],
                          res["sub_blocking"]["out"],
                          ("pos", "vel", "ids")):
        assert np.array_equal(a, b), f"{name} differs across modes"
    assert sub["sim"].world.sanitizer.findings == []
    # the layout actually produced a deep schedule with honest records
    assert depth >= 2 and nsub == 2**depth
    for r in recs:
        assert r.subcycle is not None
        assert r.n_substeps == 2**r.deepest_rung

    if FULL:
        # acceptance: the rung pipeline beats the flat fine-cadence
        # driver >= 2x per PM interval and the two-wave migration keeps
        # its wait share below 0.5
        assert speedup >= 2.0
        assert sub["migration_wait_share"] < 0.5
        record_trajectory(ARTIFACT, {
            "n_particles": len(ics[0]),
            "n_ranks": N_RANKS,
            "latency_s": latency,
            "depth": depth,
            "speedup_vs_flat": speedup,
            "step_s": step_s,
            "wait_fraction": sub["wait_fraction"],
            "migration_wait_share": sub["migration_wait_share"],
            "flat_wait_fraction": res["flat_overlap"]["wait_fraction"],
        })
