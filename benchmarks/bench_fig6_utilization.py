"""Figure 6: device utilization across vendors and across the machine.

Left panel: single-node sustained/peak utilization on NVIDIA H100, Intel
PVC, and AMD MI250X — consistent sustained performance across vendors with
slightly higher peak on NVIDIA.  Right panel: full 9,000-node per-rank
utilization distributions at high z, low z, and the artificial 'low-z
Flat' synchronized configuration (tight distribution, same mean).
"""

import numpy as np

from repro.gpusim import H100_SXM5, MI250X_GCD, PVC_TILE, peak_utilization
from repro.perfmodel import solver_portability

from conftest import print_table


def test_fig6_left_vendor_comparison(benchmark):
    from repro.observe import MetricsRegistry, derived

    registry = MetricsRegistry()

    def run():
        return derived.vendor_utilization_table(
            (H100_SXM5, PVC_TILE, MI250X_GCD), registry=registry
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figure 6 left: single-node utilization by vendor",
        ["Vendor", "Sustained", "Peak"],
        [(v, f"{s * 100:.1f}%", f"{p * 100:.1f}%") for v, (s, p) in res.items()],
    )
    # the figure numbers are now registry gauges any consumer can read
    for v, (s, p) in res.items():
        assert registry.get(f"utilization/sustained{{vendor={v}}}").value == s
        assert registry.get(f"utilization/peak{{vendor={v}}}").value == p
    benchmark.extra_info.update({v: {"sustained": s, "peak": p}
                                 for v, (s, p) in res.items()})

    sustained = [s for s, _ in res.values()]
    assert max(sustained) - min(sustained) < 0.03  # consistent across vendors
    assert res["NVIDIA"][1] > res["AMD"][1]  # slightly higher NVIDIA peak
    assert res["NVIDIA"][1] > res["Intel"][1]

    # Pennycook performance-portability metric (the paper's Ref. [20])
    pp = solver_portability(kind="sustained")
    print(f"performance portability PP = {pp['pp'] * 100:.1f}% "
          f"(harmonic mean over the three vendors)")
    benchmark.extra_info["pp_sustained"] = pp["pp"]
    assert pp["pp"] > 0.9 * max(sustained)


def test_fig6_right_full_machine_distributions(benchmark):
    from repro.observe import MetricsRegistry, derived

    n_ranks = 9000  # one profiled rank per node, as in the paper
    registry = MetricsRegistry()

    def run():
        return {
            "high_z": derived.rank_utilization_distribution(
                MI250X_GCD, a=0.1, n_ranks=n_ranks, seed=5,
                registry=registry, label="high_z",
            ),
            "low_z": derived.rank_utilization_distribution(
                MI250X_GCD, a=1.0, n_ranks=n_ranks, seed=6,
                registry=registry, label="low_z",
            ),
            "low_z_flat": derived.rank_utilization_distribution(
                MI250X_GCD, a=1.0, n_ranks=n_ranks, seed=7, flat=True,
                registry=registry, label="low_z_flat",
            ),
        }

    dists = benchmark.pedantic(run, rounds=1, iterations=1)

    # histogram instruments mirror the raw sample arrays to the bit
    for name, d in dists.items():
        h = registry.get(f"utilization/ranks{{phase={name}}}")
        assert h.count == n_ranks
        assert h.mean == d.mean() or abs(h.mean - d.mean()) < 1e-15
    rows = []
    for name, d in dists.items():
        rows.append(
            (name, f"{d.mean() * 100:.1f}%", f"{d.std() * 100:.2f}%",
             f"{np.percentile(d, 1) * 100:.1f}%",
             f"{np.percentile(d, 99) * 100:.1f}%")
        )
    print_table(
        "Figure 6 right: per-rank utilization distributions (9,000 ranks)",
        ["Phase", "Mean", "Std", "p1", "p99"],
        rows,
    )
    benchmark.extra_info.update(
        {k: {"mean": float(v.mean()), "std": float(v.std())}
         for k, v in dists.items()}
    )

    hz, lz, flat = dists["high_z"], dists["low_z"], dists["low_z_flat"]
    # anchors: ~26.5% sustained high-z, ~28% low-z
    assert abs(hz.mean() - 0.265) < 0.01
    assert abs(lz.mean() - 0.28) < 0.01
    # distribution broadens at low z due to timestep-depth variability
    assert lz.std() > 2 * hz.std()
    # Flat: variability collapses, mean preserved -> adaptivity is free
    assert flat.std() < 0.25 * lz.std()
    assert abs(flat.mean() - lz.mean()) < 0.01
