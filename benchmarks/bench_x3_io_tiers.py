"""X3 (Section IV-B4): multi-tier I/O vs direct-to-PFS writes.

The ablation behind the I/O strategy: per-step checkpoints through
node-local NVMe with asynchronous bleeds cost a small fraction of the
runtime and deliver effective bandwidth above the PFS peak, while direct
synchronous Lustre writes would stall the simulation.  Also sweeps the
fault-tolerance consequence: with a few-hour MTTI, per-step checkpointing
minimizes total time-to-solution.
"""

import numpy as np

from repro.iosim import (
    DirectPFSWriter,
    MultiTierWriter,
    NVMeModel,
    PFSModel,
    simulate_run_with_faults,
    young_daly_interval,
)

from conftest import print_table


def test_x3_multitier_vs_direct(benchmark):
    n_steps = 80
    compute_per_step = 1100.0  # seconds, ~196h/625
    results = {}

    def run():
        mt = MultiTierWriter(
            n_nodes=9000, nvme=NVMeModel(write_bw_gbps=1.8), pfs=PFSModel(seed=2)
        )
        direct = DirectPFSWriter(n_nodes=9000, pfs=PFSModel(seed=2))
        for s in range(n_steps):
            size = 150.0 + 30.0 * s / n_steps
            imb = 1.0 + s / n_steps
            mt.checkpoint(s, size, compute_per_step, imbalance=imb)
            direct.checkpoint(s, size, compute_per_step, imbalance=imb)
        results["mt"] = mt
        results["direct"] = direct
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    mt, direct = results["mt"], results["direct"]
    compute_total = n_steps * compute_per_step

    rows = [
        (
            "multi-tier (NVMe + async bleed)",
            f"{mt.total_io_seconds:.0f}",
            f"{mt.total_io_seconds / (compute_total + mt.total_io_seconds) * 100:.1f}%",
            f"{mt.effective_bandwidth_tbps:.2f}",
        ),
        (
            "direct to PFS (synchronous)",
            f"{direct.total_io_seconds:.0f}",
            f"{direct.total_io_seconds / (compute_total + direct.total_io_seconds) * 100:.1f}%",
            f"{direct.effective_bandwidth_tbps:.2f}",
        ),
    ]
    print_table(
        "X3: checkpoint strategy comparison (80 steps, 150-180 TB each)",
        ["Strategy", "Blocking I/O (s)", "I/O fraction", "Effective BW (TB/s)"],
        rows,
    )
    benchmark.extra_info["multitier_bw"] = mt.effective_bandwidth_tbps
    benchmark.extra_info["direct_bw"] = direct.effective_bandwidth_tbps

    assert mt.total_io_seconds < 0.4 * direct.total_io_seconds
    assert mt.effective_bandwidth_tbps > direct.pfs.peak_write_tbps
    assert direct.effective_bandwidth_tbps < direct.pfs.peak_write_tbps


def test_x3_fault_tolerance_sweep(benchmark):
    """Why checkpoint every step: wallclock vs checkpoint interval under
    the few-hour MTTI of modern machines."""
    intervals = [0.31, 1.0, 3.0, 8.0, 24.0]  # hours (0.31 h ~ 1 step)
    mtti = 3.0
    ckpt_cost = 30.0 / 3600.0

    def run():
        out = {}
        for tau in intervals:
            stats = simulate_run_with_faults(
                total_work_hours=196.0,
                checkpoint_interval_hours=tau,
                checkpoint_cost_hours=ckpt_cost,
                mtti_hours=mtti,
                rng=np.random.default_rng(9),
                max_wallclock_hours=1e5,
            )
            out[tau] = stats
        return out

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"{tau:.2f}", f"{s.wallclock_hours:.0f}", f"{s.lost_hours:.0f}",
         s.n_interrupts, f"{s.efficiency * 100:.0f}%")
        for tau, s in sweep.items()
    ]
    print_table(
        f"X3: 196h of work under MTTI = {mtti} h",
        ["Ckpt interval (h)", "Wallclock (h)", "Lost (h)", "Interrupts",
         "Efficiency"],
        rows,
    )
    yd = young_daly_interval(ckpt_cost, mtti)
    print(f"Young/Daly optimum: {yd:.2f} h "
          f"(per-step cadence 0.31 h is the nearest feasible choice)")
    benchmark.extra_info["young_daly_hours"] = yd

    # per-step checkpointing beats long intervals decisively
    assert sweep[0.31].wallclock_hours < sweep[8.0].wallclock_hours
    assert sweep[0.31].wallclock_hours < sweep[24.0].wallclock_hours
    assert sweep[0.31].efficiency > 0.8
