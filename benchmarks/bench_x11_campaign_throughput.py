"""X11: many-universe campaign throughput (universes/hour).

Two measurements on the pooled campaign execution engine:

1. **Saturation curve** — universes/hour vs offered load at a fixed
   worker-pool size.  Throughput rises with offered jobs until the pool
   saturates, then flattens; an overload point with a bounded queue and
   the ``reject`` policy shows admission control shedding the excess
   instead of queueing unboundedly.

2. **Cache-hit ablation** — the same repeated-cosmology sweep run cold
   (empty artifact cache) and warm (cache retained from the cold pass).
   The warm pass hits every artifact (linear power quadratures, IC
   realizations, PM Green's tables).  The final particle states must be
   bit-identical between the passes — the cache is a pure perf layer.

Full-mode acceptance: warm throughput >= 1.5x cold on the repeated
sweep.  Each full run appends a record to
``benchmarks/BENCH_campaign_throughput.json``.
"""

import time
from pathlib import Path

from repro.campaign import ArtifactCache, CampaignEngine, SimJob, expand_sweep
from repro.core.gravity.pm import clear_green_cache
from repro.observe import Observatory

from conftest import FULL, print_table, record_trajectory, scaled

ARTIFACT = Path(__file__).parent / "BENCH_campaign_throughput.json"

N_WORKERS = scaled(4, 2)
N_PER_DIM = scaled(6, 4)
OFFERED_LOADS = scaled((1, 2, 4, 8, 16), (1, 2, 4))
#: repeated-cosmology sweep: every (sigma8, seed) pair appears once, so a
#: warm cache hits every artifact while a cold one builds each exactly once
SWEEP_SIGMA8 = scaled([0.70, 0.72, 0.74, 0.76, 0.78, 0.80, 0.82, 0.84],
                      [0.76, 0.81])
SWEEP_SEEDS = scaled([1], [1, 2])


def _job(i: int, seed: int = 1) -> SimJob:
    return SimJob(name=f"load-{i}", tenant=f"tenant{i % 3}", seed=seed,
                  n_per_dim=N_PER_DIM, pm_grid=8)


def _throughput_at(offered: int) -> dict:
    clear_green_cache()
    engine = CampaignEngine(n_workers=N_WORKERS, max_queue=2 * offered + 1)
    report = engine.run([_job(i, seed=i + 1) for i in range(offered)])
    assert report.n_failed == 0
    return {
        "offered": offered,
        "completed": report.n_completed,
        "universes_per_hour": report.universes_per_hour,
        "wall_s": report.wall_seconds,
    }


def _overload_shedding(offered: int) -> dict:
    """Bounded queue + reject policy under the highest offered load."""
    clear_green_cache()
    engine = CampaignEngine(n_workers=N_WORKERS, max_queue=2,
                            policy="reject")
    report = engine.run([_job(i, seed=i + 1) for i in range(offered)])
    return {
        "offered": offered,
        "admitted": report.n_submitted - report.n_rejected,
        "rejected": report.n_rejected,
        "completed": report.n_completed,
    }


def _sweep_jobs() -> list:
    return expand_sweep(
        {"n_per_dim": N_PER_DIM, "pm_grid": 8, "tenant": "sweep"},
        {"sigma8": SWEEP_SIGMA8, "seed": SWEEP_SEEDS},
    )


def _ablation_pass(cache: ArtifactCache) -> dict:
    engine = CampaignEngine(n_workers=N_WORKERS, cache=cache,
                            observe=Observatory(),
                            max_queue=len(SWEEP_SIGMA8) * len(SWEEP_SEEDS))
    report = engine.run(_sweep_jobs())
    assert report.n_failed == 0
    return {
        "universes_per_hour": report.universes_per_hour,
        "wall_s": report.wall_seconds,
        "hashes": {r.job.name: r.state_hash for r in report.results},
        "cache": report.cache_stats,
    }


def test_x11_campaign_throughput(benchmark):
    out = {}

    def run():
        out["curve"] = [_throughput_at(n) for n in OFFERED_LOADS]
        out["overload"] = _overload_shedding(max(OFFERED_LOADS) * 2)

        clear_green_cache()
        cache = ArtifactCache()
        t0 = time.perf_counter()
        out["cold"] = _ablation_pass(cache)
        out["cold"]["pass_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        out["warm"] = _ablation_pass(cache)  # same cache, now hot
        out["warm"]["pass_s"] = time.perf_counter() - t0
        out["warm_speedup"] = (out["warm"]["universes_per_hour"]
                               / out["cold"]["universes_per_hour"])
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"X11: saturation curve ({N_WORKERS} workers, "
        f"{N_PER_DIM}^3 x2 particles/universe)",
        ["Offered", "Completed", "Universes/h", "Wall (s)"],
        [(p["offered"], p["completed"], f"{p['universes_per_hour']:.0f}",
          f"{p['wall_s']:.2f}") for p in out["curve"]],
    )
    ov = out["overload"]
    print(f"overload (queue=2, reject): offered {ov['offered']} -> "
          f"admitted {ov['admitted']}, shed {ov['rejected']}")
    n_sweep = len(SWEEP_SIGMA8) * len(SWEEP_SEEDS)
    print_table(
        f"X11: cache ablation ({n_sweep}-job repeated-cosmology sweep)",
        ["Pass", "Universes/h", "Wall (s)", "Hits", "Misses"],
        [(name, f"{out[name]['universes_per_hour']:.0f}",
          f"{out[name]['wall_s']:.2f}", out[name]["cache"]["hits"],
          out[name]["cache"]["misses"]) for name in ("cold", "warm")],
    )
    print(f"warm/cold throughput: {out['warm_speedup']:.2f}x")
    benchmark.extra_info.update({
        "curve": out["curve"], "warm_speedup": out["warm_speedup"],
        "cold_uph": out["cold"]["universes_per_hour"],
        "warm_uph": out["warm"]["universes_per_hour"],
    })

    # cached runs are bit-identical to cold runs — always asserted
    assert out["warm"]["hashes"] == out["cold"]["hashes"]
    # the cold pass built each artifact exactly once...
    n_cosmo = len(SWEEP_SIGMA8)
    assert out["cold"]["cache"]["misses"] == n_cosmo + n_sweep + 1
    # ... and the warm pass hit everything
    assert out["warm"]["cache"]["misses"] == out["cold"]["cache"]["misses"]
    assert out["warm"]["cache"]["hits"] >= \
        out["cold"]["cache"]["hits"] + 3 * n_sweep
    # admission control shed the overload instead of queueing it
    assert ov["rejected"] > 0
    assert ov["completed"] == ov["admitted"]

    if FULL:
        # acceptance: warm cache >= 1.5x throughput on the repeated sweep
        assert out["warm_speedup"] >= 1.5
        # the pool saturates: top-of-curve throughput beats single-job
        assert out["curve"][-1]["universes_per_hour"] >= \
            1.5 * out["curve"][0]["universes_per_hour"]
        record_trajectory(ARTIFACT, {
            "n_workers": N_WORKERS,
            "n_per_dim": N_PER_DIM,
            "curve": out["curve"],
            "overload": ov,
            "cold_uph": out["cold"]["universes_per_hour"],
            "warm_uph": out["warm"]["universes_per_hour"],
            "warm_speedup": out["warm_speedup"],
        })
