"""X4 (Section IV-B1): once-per-step tree build with growable leaf boxes
vs rebuilding the tree every substep.

The paper's claim: "updating bounding boxes and interaction lists is
significantly faster than executing the force kernels", enabled by
building the chaining mesh and k-d leaves once per PM step and letting
boxes grow during subcycles.  The bench isolates exactly that trade on
real particle data:

  * maintenance cost per substep — growable AABB refresh vs full
    mesh + leaf rebuild (the work the strategy eliminates);
  * the price paid — extra neighbor overlap from grown boxes;
  * correctness — pair lists from grown boxes remain a superset of the
    exact neighbor pairs after drift.
"""

import time

import numpy as np

from repro.tree import (
    build_chaining_mesh,
    build_interaction_list,
    build_leaf_set,
    expand_to_particle_pairs,
    neighbor_pairs,
)

from conftest import FULL, print_table, scaled


def test_x4_grow_vs_rebuild(benchmark):
    rng = np.random.default_rng(21)
    box = 8.0
    n = scaled(20000, 2000)
    pos0 = rng.uniform(0, box, (n, 3))
    n_substeps = scaled(16, 4)
    drift_sigma = 0.01
    out = {}

    def run():
        # strategy A (CRK-HACC): build once, grow boxes each substep
        pos = pos0.copy()
        rng_a = np.random.default_rng(77)
        t0 = time.perf_counter()
        mesh = build_chaining_mesh(pos, 0.9, origin=0.0, extent=box,
                                   periodic=True)
        leaves = build_leaf_set(pos, mesh, max_leaf=64)
        t_build_once = time.perf_counter() - t0
        t_maintain = 0.0
        for _ in range(n_substeps):
            pos = np.mod(pos + rng_a.normal(0, drift_sigma, pos.shape), box)
            t0 = time.perf_counter()
            leaves.recompute_boxes(pos, grow=True)
            t_maintain += time.perf_counter() - t0
        out["grow"] = {
            "build_s": t_build_once,
            "maintain_s": t_maintain,
            "leaves": leaves,
            "mesh": mesh,
            "pos_final": pos.copy(),
        }

        # strategy B: full mesh + leaf rebuild every substep
        pos = pos0.copy()
        rng_b = np.random.default_rng(77)
        t_rebuild = 0.0
        for _ in range(n_substeps):
            pos = np.mod(pos + rng_b.normal(0, drift_sigma, pos.shape), box)
            t0 = time.perf_counter()
            mesh_b = build_chaining_mesh(pos, 0.9, origin=0.0, extent=box,
                                         periodic=True)
            leaves_b = build_leaf_set(pos, mesh_b, max_leaf=64)
            t_rebuild += time.perf_counter() - t0
        out["rebuild"] = {
            "maintain_s": t_rebuild,
            "leaves": leaves_b,
            "mesh": mesh_b,
            "pos_final": pos.copy(),
        }
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    g, r = out["grow"], out["rebuild"]
    np.testing.assert_allclose(g["pos_final"], r["pos_final"])  # same drift

    # overlap cost: leaf-pair counts from grown vs tight boxes
    ilist_g = build_interaction_list(g["leaves"], g["mesh"], pad=0.45, box=box)
    ilist_r = build_interaction_list(r["leaves"], r["mesh"], pad=0.45, box=box)

    speedup = (r["maintain_s"]) / max(g["maintain_s"], 1e-12)
    overlap = len(ilist_g) / max(len(ilist_r), 1)
    print_table(
        f"X4: tree maintenance over {n_substeps} substeps ({n} particles)",
        ["Strategy", "Initial build (s)", "Per-substep maintain (s)",
         "Leaf pairs"],
        [
            ("grow boxes (CRK-HACC)", f"{g['build_s']:.3f}",
             f"{g['maintain_s'] / n_substeps:.4f}", len(ilist_g)),
            ("rebuild every substep", "-",
             f"{r['maintain_s'] / n_substeps:.4f}", len(ilist_r)),
        ],
    )
    print(f"maintenance speedup {speedup:.1f}x at {overlap:.2f}x neighbor "
          f"overlap (the paper's trade)")
    benchmark.extra_info["maintenance_speedup"] = speedup
    benchmark.extra_info["overlap_cost"] = overlap

    # the trade: per-substep maintenance much cheaper than rebuilding,
    # paid for with (bounded) extra neighbor overlap.  The timing ratio is
    # only meaningful at the full problem size.
    if FULL:
        assert g["maintain_s"] < 0.35 * r["maintain_s"]
    assert 1.0 <= overlap < 2.0

    # correctness: pairs from grown boxes cover the exact neighbor pairs
    pos_f = g["pos_final"]
    h = np.full(n, 0.45)
    pi_t, pj_t = expand_to_particle_pairs(
        ilist_g, g["leaves"], pos_f, h, box=box
    )
    pi_r, pj_r = neighbor_pairs(pos_f, h, box=box)
    tree_pairs = set(zip(pi_t.tolist(), pj_t.tolist()))
    exact_pairs = set(zip(pi_r.tolist(), pj_r.tolist()))
    assert exact_pairs <= tree_pairs
