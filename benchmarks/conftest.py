"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints
the same rows/series the paper reports (shape-comparable, not
absolute-hardware-comparable) and records the key numbers in
``benchmark.extra_info`` so they land in the pytest-benchmark JSON.
"""

from __future__ import annotations

import numpy as np
import pytest


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render an aligned text table to stdout (shown with -s or on failure)."""
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(r, widths)))


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.3f}"
    return str(v)


def series_summary(name: str, values) -> str:
    v = np.asarray(values, dtype=np.float64)
    return (
        f"{name}: n={len(v)} min={v.min():.3g} med={np.median(v):.3g} "
        f"max={v.max():.3g}"
    )


@pytest.fixture
def table_printer():
    return print_table
