"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints
the same rows/series the paper reports (shape-comparable, not
absolute-hardware-comparable) and records the key numbers in
``benchmark.extra_info`` so they land in the pytest-benchmark JSON.

Smoke mode (the default under plain ``pytest``): every ``bench_*`` script
runs a tiny-N version of itself in a few seconds, exercising the full
code path so benchmark bitrot fails tier-1 immediately.  Timing-ratio
assertions and on-disk JSON artifacts only make sense at real problem
sizes, so both are gated on ``REPRO_BENCH_FULL=1``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

#: full-size benchmark run (REPRO_BENCH_FULL=1); default is the tiny-N
#: smoke configuration used as a tier-1 bitrot check
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
SMOKE = not FULL


def scaled(full_value, smoke_value):
    """Pick the full-run or smoke-run value of a benchmark size knob."""
    return full_value if FULL else smoke_value


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render an aligned text table to stdout (shown with -s or on failure)."""
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(r, widths)))


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.3f}"
    return str(v)


def series_summary(name: str, values) -> str:
    v = np.asarray(values, dtype=np.float64)
    return (
        f"{name}: n={len(v)} min={v.min():.3g} med={np.median(v):.3g} "
        f"max={v.max():.3g}"
    )


def record_trajectory(artifact_path, point) -> None:
    """Append one measurement point to a bench's JSON trajectory artifact.

    Full-mode benches call this after their acceptance asserts pass; the
    artifact accumulates one entry per recorded run so the performance
    trajectory of the tracked numbers stays inspectable across PRs.
    No-op in smoke mode (tiny-N timings are not meaningful).
    """
    import json
    from pathlib import Path

    if not FULL:
        return
    path = Path(artifact_path)
    history = json.loads(path.read_text()) if path.exists() else []
    history.append(point)
    path.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture
def table_printer():
    return print_table


@pytest.fixture
def trace_path(request, tmp_path):
    """Where a benchmark should drop its Perfetto trace, if it records one.

    Defaults to the per-test tmp dir (discarded); set ``REPRO_TRACE_DIR``
    to collect traces somewhere inspectable after the run.
    """
    out_dir = os.environ.get("REPRO_TRACE_DIR", "")
    base = out_dir if out_dir else str(tmp_path)
    os.makedirs(base, exist_ok=True)
    name = request.node.name.replace("/", "_").replace("[", "_").rstrip("]")
    return os.path.join(base, f"{name}.trace.json")
