"""X1 (Section VI-B text): hydrodynamics costs ~16x over gravity-only.

Regenerates the comparison two ways: (a) the calibrated campaign model
(196 h vs ~12 h at Frontier-E scale) and (b) a real measured mini-run of
the same configuration with hydro on and off — the measured ratio will be
smaller (no subgrid subcycling pressure at toy resolution) but must show
hydro costing several times gravity-only, in the same direction.
"""

import numpy as np

from repro.cosmology import PLANCK18, zeldovich_ics
from repro.core.particles import Particles, make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig
from repro.perfmodel import hydro_vs_gravity_cost_ratio

from conftest import print_table


def test_x1_model_ratio(benchmark):
    r = benchmark.pedantic(hydro_vs_gravity_cost_ratio, rounds=1, iterations=1)
    print_table(
        "X1: hydro vs gravity-only (campaign model)",
        ["Run", "Wall clock (h)"],
        [
            ("hydro (Frontier-E)", f"{r['hydro_hours']:.1f}"),
            ("gravity-only", f"{r['gravity_only_hours']:.1f}"),
            ("ratio", f"{r['ratio']:.1f}x (paper ~16x)"),
        ],
    )
    benchmark.extra_info.update(r)
    assert 14.0 < r["ratio"] < 18.0
    assert r["gravity_only_hours"] < 13.5  # "just under 12 hours"


def test_x1_measured_minisim_ratio(benchmark):
    import time

    def run():
        box = 20.0
        ics = zeldovich_ics(7, box, PLANCK18, a_init=0.25, seed=4)

        def make(hydro):
            if hydro:
                parts = make_gas_dm_pair(
                    ics.positions, ics.velocities, ics.particle_mass,
                    PLANCK18.omega_b, PLANCK18.omega_m, u_init=20.0, box=box,
                )
            else:
                n = len(ics.positions)
                parts = Particles(
                    pos=ics.positions.copy(), vel=ics.velocities.copy(),
                    mass=np.full(n, ics.particle_mass),
                    species=np.zeros(n, dtype=np.int8),
                )
            cfg = SimulationConfig(
                box=box, pm_grid=14, a_init=0.25, a_final=0.4, n_pm_steps=2,
                cosmo=PLANCK18, hydro=hydro, max_rung=2,
            )
            return Simulation(cfg, parts)

        out = {}
        for mode in (True, False):
            sim = make(mode)
            t0 = time.perf_counter()
            sim.run()
            out["hydro" if mode else "gravity"] = time.perf_counter() - t0
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = times["hydro"] / times["gravity"]
    print_table(
        "X1: measured mini-sim cost",
        ["Run", "Seconds", "Ratio"],
        [
            ("hydro (2 species)", f"{times['hydro']:.1f}", ""),
            ("gravity-only (1 species)", f"{times['gravity']:.1f}",
             f"{ratio:.1f}x"),
        ],
    )
    benchmark.extra_info["measured_ratio"] = ratio
    # direction + magnitude: hydro costs several times gravity-only even at
    # toy scale (the paper's 16x includes deep feedback subcycling)
    assert ratio > 2.0
