"""X1 (Section VI-B text): hydrodynamics costs ~16x over gravity-only.

Regenerates the comparison two ways: (a) the calibrated campaign model
(196 h vs ~12 h at Frontier-E scale) and (b) a real measured mini-run of
the same configuration with hydro on and off — the measured ratio will be
smaller (no subgrid subcycling pressure at toy resolution) but must show
hydro costing several times gravity-only, in the same direction.
"""

import time

import numpy as np

from repro.cosmology import PLANCK18, zeldovich_ics
from repro.core.particles import Particles, make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig
from repro.perfmodel import hydro_vs_gravity_cost_ratio

from conftest import FULL, print_table, scaled


def test_x1_model_ratio(benchmark):
    r = benchmark.pedantic(hydro_vs_gravity_cost_ratio, rounds=1, iterations=1)
    print_table(
        "X1: hydro vs gravity-only (campaign model)",
        ["Run", "Wall clock (h)"],
        [
            ("hydro (Frontier-E)", f"{r['hydro_hours']:.1f}"),
            ("gravity-only", f"{r['gravity_only_hours']:.1f}"),
            ("ratio", f"{r['ratio']:.1f}x (paper ~16x)"),
        ],
    )
    benchmark.extra_info.update(r)
    assert 14.0 < r["ratio"] < 18.0
    assert r["gravity_only_hours"] < 13.5  # "just under 12 hours"


def test_x1_measured_minisim_ratio(benchmark):
    import time

    def run():
        box = 20.0
        ics = zeldovich_ics(scaled(7, 5), box, PLANCK18, a_init=0.25, seed=4)

        def make(hydro):
            if hydro:
                parts = make_gas_dm_pair(
                    ics.positions, ics.velocities, ics.particle_mass,
                    PLANCK18.omega_b, PLANCK18.omega_m, u_init=20.0, box=box,
                )
            else:
                n = len(ics.positions)
                parts = Particles(
                    pos=ics.positions.copy(), vel=ics.velocities.copy(),
                    mass=np.full(n, ics.particle_mass),
                    species=np.zeros(n, dtype=np.int8),
                )
            cfg = SimulationConfig(
                box=box, pm_grid=14, a_init=0.25, a_final=0.4, n_pm_steps=2,
                cosmo=PLANCK18, hydro=hydro, max_rung=2,
            )
            return Simulation(cfg, parts)

        out = {}
        for mode in (True, False):
            sim = make(mode)
            t0 = time.perf_counter()
            sim.run()
            out["hydro" if mode else "gravity"] = time.perf_counter() - t0
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = times["hydro"] / times["gravity"]
    print_table(
        "X1: measured mini-sim cost",
        ["Run", "Seconds", "Ratio"],
        [
            ("hydro (2 species)", f"{times['hydro']:.1f}", ""),
            ("gravity-only (1 species)", f"{times['gravity']:.1f}",
             f"{ratio:.1f}x"),
        ],
    )
    benchmark.extra_info["measured_ratio"] = ratio
    # direction + magnitude: hydro costs several times gravity-only even at
    # toy scale (the paper's 16x includes deep feedback subcycling).  At
    # smoke size the timing ratio is noise-dominated; only check direction.
    if FULL:
        assert ratio > 2.0
    else:
        assert ratio > 1.0


def test_x1_hydro_force_evaluation_speedup(benchmark):
    """Per-subcycle hydro force cost: pair engine vs the pre-engine path.

    The pre-engine strategy (what the seed's ``_hydro_derivs`` did every
    subcycle) rebuilds the chaining-mesh pair list and runs each CRKSPH
    stage standalone — displacements and base kernels re-derived per stage,
    every scatter a buffered ``np.add.at`` (restored here by patching the
    staged functions' ``segment_sum``).  The engine reuses a Verlet-cached
    list and threads one ``PairBatch`` through all stages.
    Acceptance: >= 2x.
    """
    import repro.core.sph.crk as crk_mod
    import repro.core.sph.hydro as hydro_mod
    import repro.core.sph.viscosity as visc_mod
    from repro.core.sph import (
        compute_corrections,
        compute_density,
        compute_number_density,
        crksph_derivatives,
        get_kernel,
    )
    from repro.core.sph.eos import IdealGasEOS
    from repro.core.sph.hydro import (
        symmetrized_gradients,
        update_smoothing_lengths,
    )
    from repro.core.sph.viscosity import (
        MonaghanViscosity,
        balsara_switch,
        velocity_divergence_curl,
    )
    from repro.tree import PairCache, neighbor_pairs

    rng = np.random.default_rng(0)
    n, box = scaled(1000, 400), 10.0
    pos = rng.uniform(0, box, size=(n, 3))
    vel = rng.normal(scale=3.0, size=(n, 3))
    mass = np.full(n, 1.0)
    u = np.full(n, 25.0)
    kernel = get_kernel("wendland_c4")
    h = np.full(n, 1.5 * box / n ** (1 / 3))
    for _ in range(3):
        pi, pj = neighbor_pairs(pos, h, box=box)
        _, vol = compute_number_density(pos, h, pi, pj, kernel, box=box)
        h = update_smoothing_lengths(vol, n_target=40, h_old=h)

    def best_of(fn, repeats=5):
        best = np.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def _add_at_segment_sum(values, ids, n_out, **_kw):
        v = np.asarray(values)
        out = np.zeros((n_out,) + v.shape[1:], dtype=v.dtype)
        np.add.at(out, ids, v)
        return out

    eos = IdealGasEOS()
    viscosity = MonaghanViscosity()

    def naive_subcycle():
        """The seed's per-subcycle hydro evaluation, stage by stage."""
        pi, pj = neighbor_pairs(pos, h, box=box)
        _, vol = compute_number_density(pos, h, pi, pj, kernel, box=box)
        corr = compute_corrections(pos, vol, h, pi, pj, kernel)
        rho = compute_density(pos, mass, h, pi, pj, kernel, corr, box=box)
        pressure = eos.pressure(rho, u)
        cs = eos.sound_speed(rho, u)
        g_pair, dx = symmetrized_gradients(corr, pos, h, pi, pj, kernel,
                                           box=box)
        dv = vel[pi] - vel[pj]
        h_ij = 0.5 * (h[pi] + h[pj])
        c_ij = 0.5 * (cs[pi] + cs[pj])
        rho_ij = 0.5 * (rho[pi] + rho[pj])
        div_v, curl_v = velocity_divergence_curl(
            pos, vel, vol, h, pi, pj, kernel, dx_pairs=dx
        )
        f = balsara_switch(div_v, curl_v, cs, h)
        pi_visc = viscosity.pi_pair(dx, dv, h_ij, c_ij, rho_ij,
                                    limiter=0.5 * (f[pi] + f[pj]))
        q_ij = 0.25 * rho[pi] * rho[pj] * pi_visc
        pbar = 0.5 * (pressure[pi] + pressure[pj]) + q_ij
        vv = vol[pi] * vol[pj]
        pair_force = (vv * pbar)[:, None] * g_pair
        accel = np.zeros((n, 3))
        np.add.at(accel, pi, -pair_force / mass[pi, None])
        du_dt = np.zeros(n)
        np.add.at(du_dt, pi, 0.5 * vv * pbar
                  * np.einsum("pa,pa->p", dv, g_pair) / mass[pi])
        vsig = np.zeros(n)
        mu = viscosity.mu_pair(dx, dv, h_ij)
        np.maximum.at(vsig, pi, c_ij - 2.0 * np.minimum(mu, 0.0))
        return accel, du_dt, vsig

    def naive_with_add_at_scatters():
        """Run the staged flow with the seed's np.add.at scatter cost."""
        patched = [(m, m.segment_sum) for m in (crk_mod, hydro_mod, visc_mod)]
        try:
            for m, _ in patched:
                m.segment_sum = _add_at_segment_sum
            return naive_subcycle()
        finally:
            for m, orig in patched:
                m.segment_sum = orig

    cache = PairCache(skin=0.25, box=box)
    cache.get(pos, h)

    def engine_subcycle():
        pi, pj = cache.get(pos, h)
        crksph_derivatives(pos, vel, mass, u, h, pi, pj, kernel, box=box)

    def run():
        return {"naive_s": best_of(naive_with_add_at_scatters),
                "engine_s": best_of(engine_subcycle)}

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = r["naive_s"] / r["engine_s"]
    print_table(
        "X1: per-subcycle hydro force evaluation",
        ["Strategy", "Seconds"],
        [
            ("fresh list + staged stages (pre-engine)", f"{r['naive_s']:.4f}"),
            ("cached list + shared batch (engine)", f"{r['engine_s']:.4f}"),
            ("speedup", f"{speedup:.1f}x"),
        ],
    )
    benchmark.extra_info.update(r)
    benchmark.extra_info["speedup"] = speedup
    if FULL:
        assert speedup >= 2.0
