"""Figure 5: cumulative time-to-solution and the multi-tier I/O trace.

Top panel: cumulative wall-clock per component over the 625 PM steps
(196 h total; short-range curve accelerating toward low redshift; FFT and
tree build flat).  Bottom panel: NVMe and PFS bandwidth over the run
(NVMe declining with the growing data imbalance, PFS within the 0.75-3.7
TB/s band) plus total data written (>100 PB) and the 5.45 TB/s effective
bandwidth headline.
"""

import numpy as np

from repro.perfmodel import CampaignModel

from conftest import print_table, series_summary


def test_fig5_tts_and_io(benchmark):
    result = benchmark.pedantic(
        lambda: CampaignModel().run(), rounds=1, iterations=1
    )

    # -- top panel: cumulative TTS samples -------------------------------------
    n = len(result.steps)
    sample_steps = [0, n // 4, n // 2, 3 * n // 4, n - 1]
    comps = ("short", "long", "tree", "analysis", "io", "other")
    cum = {c: result.cumulative(c) / 3600.0 for c in comps}
    rows = []
    for s in sample_steps:
        z = result.steps[s].z
        rows.append(
            (s + 1, f"{z:.2f}",
             *(f"{cum[c][s]:.2f}" for c in comps),
             f"{sum(cum[c][s] for c in comps):.1f}")
        )
    print_table(
        "Figure 5 top: cumulative TTS (hours) by component",
        ["Step", "z", "short", "long", "tree", "analysis", "io", "other",
         "total"],
        rows,
    )

    # -- bottom panel: bandwidth trace -----------------------------------------
    nvme = np.array([s.nvme_bw_tbps for s in result.steps])
    pfs = np.array([s.pfs_bw_tbps for s in result.steps])
    written = np.cumsum([s.checkpoint_tb + s.science_tb for s in result.steps])
    rows = []
    for s in sample_steps:
        rows.append(
            (s + 1, f"{nvme[s]:.1f}", f"{pfs[s]:.2f}",
             f"{written[s] / 1000.0:.1f}")
        )
    print_table(
        "Figure 5 bottom: I/O trace",
        ["Step", "NVMe BW (TB/s)", "PFS BW (TB/s)", "Data written (PB)"],
        rows,
    )
    print(series_summary("PFS bandwidth (TB/s)", pfs[pfs > 0]))
    print(
        f"Totals: {result.wallclock_hours:.1f} h wall clock (paper 196), "
        f"{result.node_hours / 1e6:.2f}M node-hours (~1.7M), "
        f"{result.total_data_pb:.1f} PB written (>100), "
        f"effective I/O {result.effective_io_tbps:.2f} TB/s (5.45)"
    )
    benchmark.extra_info["totals"] = {
        "wallclock_hours": result.wallclock_hours,
        "total_data_pb": result.total_data_pb,
        "effective_io_tbps": result.effective_io_tbps,
        "io_hours": result.io_hours,
    }

    # figure claims
    assert 190 < result.wallclock_hours < 202
    assert result.total_data_pb > 100
    assert result.effective_io_tbps > 4.6  # beats Orion's direct-write peak
    # short-range cumulative accelerates; long-range stays linear
    cshort = result.cumulative("short")
    early_slope = cshort[n // 4] - cshort[0]
    late_slope = cshort[-1] - cshort[-n // 4]
    assert late_slope > 3 * early_slope
    # NVMe bandwidth roughly halves (imbalance ~2x by run end)
    assert nvme[-1] < 0.65 * nvme[0]
    # PFS band
    active = pfs[pfs > 0]
    assert np.median(active) > 0.5 and active.max() <= 4.6
