"""Figure 4: strong and weak scaling, 128 to 9,000 Frontier nodes.

Regenerates both curves and the efficiency panel from the calibrated
scaling model, plus the headline point: 46.6 billion particles/s and
513.1/420.5 PFLOPs at the Frontier-E configuration.  A communicating
mini-version measures real SimComm weak scaling of the distributed FFT to
show the substrate exercises the same code path.
"""

import numpy as np

from repro.constants import (
    FRONTIER_E_PARTICLES_PER_SEC,
    FRONTIER_E_PEAK_PFLOPS,
    FRONTIER_E_SUSTAINED_PFLOPS,
)
from repro.parallel import DistributedFFT, World, scatter_slabs
from repro.perfmodel import figure4_table, machine_flop_rates

from conftest import print_table


def test_fig4_scaling_curves(benchmark):
    table = benchmark.pedantic(figure4_table, rounds=1, iterations=1)

    rows = [
        (
            p.n_nodes,
            f"{p.weak_particles_per_sec:.3e}",
            f"{p.weak_efficiency * 100:.1f}%",
            f"{p.strong_seconds_per_step:.2f}",
            f"{p.strong_efficiency * 100:.1f}%",
        )
        for p in table
    ]
    print_table(
        "Figure 4: scaling from 128 to 9,000 nodes",
        ["Nodes", "Weak rate (part/s)", "Weak eff", "Strong (s/step)",
         "Strong eff"],
        rows,
    )

    rates = machine_flop_rates()
    print(
        f"\nFrontier-E point: {table[-1].weak_particles_per_sec:.3e} particles/s "
        f"(paper 4.66e10), peak {rates['peak_pflops']:.1f} PFLOPs (513.1), "
        f"sustained {rates['sustained_pflops']:.1f} PFLOPs (420.5)"
    )
    benchmark.extra_info["frontier_e"] = {
        "particles_per_sec": table[-1].weak_particles_per_sec,
        **rates,
    }

    final = table[-1]
    assert final.n_nodes == 9000
    assert abs(final.weak_efficiency - 0.95) < 1e-9
    assert abs(final.strong_efficiency - 0.92) < 1e-9
    assert abs(final.weak_particles_per_sec - FRONTIER_E_PARTICLES_PER_SEC) < 1.0
    assert abs(rates["peak_pflops"] - FRONTIER_E_PEAK_PFLOPS) < 3.0
    assert abs(rates["sustained_pflops"] - FRONTIER_E_SUSTAINED_PFLOPS) < 3.0


def test_fig4_substrate_weak_scaling_measured(benchmark):
    """Real weak scaling of the SimComm slab FFT: per-rank grid fixed,
    rank count grows; the distributed result stays correct at every size."""

    def run():
        results = {}
        planes_per_rank = 4
        for n_ranks in (1, 2, 4):
            n = planes_per_rank * n_ranks
            rng = np.random.default_rng(n_ranks)
            field = rng.normal(size=(n, n, n))
            slabs = scatter_slabs(field, n_ranks)

            def fn(comm):
                fft = DistributedFFT(comm, n)
                return fft.forward(slabs[comm.rank])

            world = World(n_ranks)
            spec = np.concatenate(world.run(fn), axis=1)
            err = np.abs(spec - np.fft.fftn(field)).max()
            results[n_ranks] = err
        return results

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "SWFFT-analog weak scaling (correctness at every rank count)",
        ["Ranks", "Grid", "Max |error| vs numpy.fft"],
        [(r, f"{4 * r}^3", f"{e:.2e}") for r, e in errors.items()],
    )
    assert all(e < 1e-9 for e in errors.values())
