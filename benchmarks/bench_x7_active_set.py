"""X7: active-set subcycling (Section IV-A force-split kick scheduling).

Sweeps imposed rung distributions — a *uniform* scatter of deep-rung
particles and a spatially *clustered* blob (the realistic case: deep
rungs live in collapsed structures) — and compares full-evaluation vs
active-set subcycling on wall time, streamed pair counts, and long-range
FFT evaluations.  Rungs are imposed by stubbing the timestep criterion so
both modes integrate the identical schedule and the comparison is purely
the evaluation strategy.

Full-mode acceptance: on the clustered configuration with active fraction
<= 25%, the active-set path is >= 2x faster per PM step.  Each full run
appends a record to ``benchmarks/BENCH_active_set.json``.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.particles import Particles, Species
from repro.core.simulation import Simulation, SimulationConfig

from conftest import FULL, print_table, scaled

ARTIFACT = Path(__file__).parent / "BENCH_active_set.json"

DEEP_RUNG = 4
DEEP_FRACTION = 0.12


def _lattice_gas(n_per_dim, box, u0=20.0, jitter=0.3, seed=6):
    rng = np.random.default_rng(seed)
    spacing = box / n_per_dim
    coords = (np.arange(n_per_dim) + 0.5) * spacing
    gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
    pos = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)
    pos = np.mod(pos + rng.uniform(-jitter, jitter, pos.shape) * spacing, box)
    n = len(pos)
    return Particles(
        pos=pos,
        vel=rng.normal(scale=5.0, size=(n, 3)),
        mass=np.full(n, 1.0e9),
        species=np.full(n, int(Species.GAS), dtype=np.int8),
        u=np.full(n, u0),
    )


def _deep_set(pos, box, mode, seed=8):
    """Indices forced onto the deep rung: random scatter or spatial blob."""
    n = len(pos)
    k = max(int(round(DEEP_FRACTION * n)), 1)
    if mode == "uniform":
        rng = np.random.default_rng(seed)
        return np.sort(rng.choice(n, size=k, replace=False))
    # clustered: the k particles nearest a reference point (periodic metric)
    center = np.array([0.3, 0.6, 0.4]) * box
    d = pos - center
    d -= box * np.round(d / box)
    r2 = np.einsum("na,na->n", d, d)
    return np.sort(np.argsort(r2)[:k])


def _run_once(n_per_dim, box, deep_idx, active_set, n_pm_steps):
    parts = _lattice_gas(n_per_dim, box)
    cfg = SimulationConfig(
        box=box, pm_grid=12, a_init=0.3, a_final=0.4, n_pm_steps=n_pm_steps,
        max_rung=DEEP_RUNG, rung_margin=0, active_set=active_set,
    )
    sim = Simulation(cfg, parts)
    imposed = np.zeros(len(parts), dtype=np.int16)
    imposed[deep_idx] = DEEP_RUNG
    # identical schedule in both modes, no mid-step promotion churn
    sim._assign_rungs = lambda dp_da, vsig, da: imposed.copy()
    t0 = time.perf_counter()
    records = sim.run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "n_fft": sim.pm.n_evaluations,
        "n_pairs": sum(r.subcycle.n_pairs for r in records),
        "active_fraction": float(np.mean(
            [r.subcycle.mean_active_fraction for r in records]
        )),
        "pos": sim.particles.pos,
        "u": sim.particles.u,
    }


def test_x7_active_set_sweep(benchmark):
    n_per_dim = scaled(10, 5)
    n_pm_steps = scaled(2, 1)
    box = 20.0
    out = {}

    def run():
        parts_probe = _lattice_gas(n_per_dim, box)
        for mode in ("uniform", "clustered"):
            deep = _deep_set(parts_probe.pos, box, mode)
            full_eval = _run_once(n_per_dim, box, deep, False, n_pm_steps)
            active = _run_once(n_per_dim, box, deep, True, n_pm_steps)
            # both strategies integrate the same trajectories
            np.testing.assert_allclose(active["pos"], full_eval["pos"],
                                       rtol=1e-12, atol=1e-12)
            np.testing.assert_allclose(active["u"], full_eval["u"],
                                       rtol=1e-12, atol=1e-12)
            out[mode] = {
                "n": len(parts_probe),
                "full_wall_s": full_eval["wall_s"],
                "active_wall_s": active["wall_s"],
                "speedup": full_eval["wall_s"] / active["wall_s"],
                "full_pairs": full_eval["n_pairs"],
                "active_pairs": active["n_pairs"],
                "pair_reduction": full_eval["n_pairs"]
                / max(active["n_pairs"], 1),
                "full_fft": full_eval["n_fft"],
                "active_fft": active["n_fft"],
                "active_fraction": active["active_fraction"],
            }
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"X7: active-set subcycling ({out['uniform']['n']} gas particles, "
        f"{DEEP_FRACTION:.0%} on rung {DEEP_RUNG})",
        ["Rung layout", "Full (s)", "Active (s)", "Speedup", "Pair red.",
         "FFTs full/active", "Active frac"],
        [
            (mode, f"{r['full_wall_s']:.2f}", f"{r['active_wall_s']:.2f}",
             f"{r['speedup']:.1f}x", f"{r['pair_reduction']:.1f}x",
             f"{r['full_fft']}/{r['active_fft']}",
             f"{r['active_fraction']:.2f}")
            for mode, r in out.items()
        ],
    )
    benchmark.extra_info.update(out)

    for r in out.values():
        # the kick split holds long-range FFTs at n_steps + 1 in BOTH modes
        assert r["full_fft"] == r["active_fft"] == n_pm_steps + 1
        assert r["active_pairs"] < r["full_pairs"]
        assert r["active_fraction"] <= 0.25

    if FULL:
        # acceptance: >= 2x subcycle speedup on the clustered layout
        assert out["clustered"]["speedup"] >= 2.0
        history = []
        if ARTIFACT.exists():
            history = json.loads(ARTIFACT.read_text())
        history.append(out)
        ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")
