"""X8: compute/communication overlap in the distributed driver.

Runs the same mixed DM+gas problem (gas clustered into one octant, so the
short-range load is rank-imbalanced) through ``DistributedSimulation`` at
2/4/8 ranks in both comm modes over a simulated fabric with per-message
latency (``net_latency_s`` — the in-process stand-in for the Slingshot
wire), comparing wall-clock per PM step and the fraction of rank-time
spent blocked in communication waits.  Blocking mode pays every
collective's wire time idle on the critical path; overlap mode posts the
ghost exchange, the PM density reduction, and the pipelined FFT
transposes early and computes provably-interior rows / the next gradient
axis while they are in flight, so most of the wire time disappears behind
compute.  The two modes are bit-identical (asserted here and in tier-1).

Full-mode acceptance: >= 1.3x step-time speedup with a reduced comm-wait
fraction at 4 ranks.  Each full run appends to
``benchmarks/BENCH_comm_overlap.json``.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.cosmology import PLANCK18
from repro.parallel.distributed_sim import DistributedConfig, DistributedSimulation

from conftest import FULL, print_table, scaled

ARTIFACT = Path(__file__).parent / "BENCH_comm_overlap.json"

BOX = 120.0


def _clustered_mixed_ics(n_dm_side, n_gas_side, seed=4):
    """Jittered DM grid across the box + a gas blob in one octant.

    The blob concentrates the CRKSPH work on whichever ranks own that
    octant — the persistent load imbalance that makes blocking-mode
    collectives expensive (every other rank resynchronizes with the
    heavy ones at each exchange)."""
    rng = np.random.default_rng(seed)
    g = (np.arange(n_dm_side) + 0.5) * BOX / n_dm_side
    grid = np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1)
    dm = np.mod(grid.reshape(-1, 3) + rng.normal(0, 1.0, (n_dm_side**3, 3)),
                BOX)
    b = (np.arange(n_gas_side) + 0.5) * (0.45 * BOX) / n_gas_side
    blob = np.stack(np.meshgrid(b, b, b, indexing="ij"), axis=-1)
    gas_pos = np.mod(
        blob.reshape(-1, 3) + rng.normal(0, 0.6, (n_gas_side**3, 3)), BOX
    )
    pos = np.vstack([dm, gas_pos])
    vel = rng.normal(0, 25.0, pos.shape)
    mass = np.full(len(pos), 1.0e10)
    u = np.full(len(pos), 1.0e4)
    gas = np.zeros(len(pos), dtype=bool)
    gas[len(dm):] = True
    return pos, vel, mass, u, gas


#: simulated per-message wire latency; ~10 collectives/step make blocking
#: mode pay ~10x this idle while overlap hides all but the unhidable few
NET_LATENCY_S = 0.15


def _config(comm_mode, n_pm_steps):
    return DistributedConfig(
        box=BOX, pm_grid=32, a_init=0.3, a_final=0.3 + 0.02 * n_pm_steps,
        n_pm_steps=n_pm_steps, cosmo=PLANCK18, r_split_cells=1.0,
        hydro=True, sph_h=1.6 * BOX / 14, comm_mode=comm_mode,
        net_latency_s=NET_LATENCY_S,
    )


def _run_mode(mode, n_ranks, ics, n_pm_steps):
    pos, vel, mass, u, gas = ics
    sim = DistributedSimulation(_config(mode, n_pm_steps), n_ranks)
    t0 = time.perf_counter()
    out = sim.run(pos, vel, mass, u=u, gas=gas)
    wall = time.perf_counter() - t0
    total_wait = sum(sim.traffic.wait_seconds.values())
    return {
        "wall_s": wall,
        "step_s": wall / n_pm_steps,
        # fraction of aggregate rank-time spent blocked on communication
        "comm_wait_fraction": total_wait / (n_ranks * wall),
        "records": sim.step_records,
        "out": out,
    }


def test_x8_comm_overlap(benchmark):
    rank_counts = scaled([2, 4, 8], [2])
    n_pm_steps = scaled(2, 1)
    ics = _clustered_mixed_ics(
        n_dm_side=scaled(9, 6), n_gas_side=scaled(8, 5)
    )
    out = {}

    def run():
        for n_ranks in rank_counts:
            blk = _run_mode("blocking", n_ranks, ics, n_pm_steps)
            ovl = _run_mode("overlap", n_ranks, ics, n_pm_steps)
            # overlap is bit-identical to blocking — same arrays, same bits
            for a, b, name in zip(blk["out"], ovl["out"],
                                  ("pos", "vel", "u", "ids")):
                assert np.array_equal(a, b), f"{name} differs across modes"
            out[n_ranks] = {
                "n_particles": len(ics[0]),
                "blocking_step_s": blk["step_s"],
                "overlap_step_s": ovl["step_s"],
                "speedup": blk["step_s"] / ovl["step_s"],
                "blocking_wait_fraction": blk["comm_wait_fraction"],
                "overlap_wait_fraction": ovl["comm_wait_fraction"],
                "overlap_comm_wait_by_phase": {
                    k: sum(r.comm_wait[k] for r in ovl["records"])
                    for k in ("short_range", "long_range", "migration")
                },
            }
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"X8: comm overlap vs blocking ({out[rank_counts[0]]['n_particles']} "
        f"particles, clustered gas, {n_pm_steps} PM steps)",
        ["Ranks", "Blocking (s/step)", "Overlap (s/step)", "Speedup",
         "Wait frac blk", "Wait frac ovl"],
        [
            (r, f"{v['blocking_step_s']:.2f}", f"{v['overlap_step_s']:.2f}",
             f"{v['speedup']:.2f}x", f"{v['blocking_wait_fraction']:.2f}",
             f"{v['overlap_wait_fraction']:.2f}")
            for r, v in out.items()
        ],
    )
    benchmark.extra_info.update({str(k): v for k, v in out.items()})

    for v in out.values():
        # StepRecord instrumentation present in both modes
        assert set(v["overlap_comm_wait_by_phase"]) == {
            "short_range", "long_range", "migration"
        }

    if FULL:
        # acceptance: overlap is >= 1.3x faster per step at 4 ranks with a
        # smaller share of rank-time lost to communication waits
        assert out[4]["speedup"] >= 1.3
        for r in rank_counts:
            if r >= 4:
                assert (out[r]["overlap_wait_fraction"]
                        < out[r]["blocking_wait_fraction"])
        history = []
        if ARTIFACT.exists():
            history = json.loads(ARTIFACT.read_text())
        history.append({str(k): {kk: vv for kk, vv in v.items()}
                        for k, v in out.items()})
        ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")
