"""X6: pair-interaction engine microbenchmarks (Section IV-B1 amortization).

Measures the three legs of the pair-engine optimization against their
naive counterparts on a realistic clustered particle set:

* Verlet-cached pair-list query vs a fresh chaining-mesh build — the
  per-subcycle saving from reusing one list across a PM step;
* sorted-CSR ``segment_sum`` vs buffered ``np.add.at`` — the per-pair
  scatter cost on the force hot path;
* one full ``crksph_derivatives`` evaluation — the end-to-end number the
  ≥2x hydro-speedup acceptance test tracks.

Each run appends a record to ``benchmarks/BENCH_pair_engine.json`` so the
numbers form a perf trajectory across commits.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.scatter import segment_sum
from repro.core.sph import (
    compute_number_density,
    crksph_derivatives,
    get_kernel,
)
from repro.core.sph.hydro import update_smoothing_lengths
from repro.tree import PairCache, neighbor_pairs

from conftest import FULL, print_table, scaled

ARTIFACT = Path(__file__).parent / "BENCH_pair_engine.json"


def _clustered_setup(n=1500, box=20.0, seed=11):
    """Mildly clustered gas particles with equilibrated supports."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, box, size=(12, 3))
    pos = np.concatenate([
        np.mod(c + rng.normal(scale=box / 12, size=(n // 12, 3)), box)
        for c in centers
    ] + [rng.uniform(0, box, size=(n - 12 * (n // 12), 3))])
    mass = np.full(len(pos), 1.0)
    kernel = get_kernel("wendland_c4")
    h = np.full(len(pos), 1.5 * box / len(pos) ** (1 / 3))
    for _ in range(3):
        pi, pj = neighbor_pairs(pos, h, box=box)
        _, vol = compute_number_density(pos, h, pi, pj, kernel, box=box)
        h = update_smoothing_lengths(vol, n_target=40, h_old=h)
    return pos, mass, h, kernel, box


def _best_of(fn, repeats=5):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _append_record(record: dict) -> None:
    history = []
    if ARTIFACT.exists():
        history = json.loads(ARTIFACT.read_text())
    history.append(record)
    ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def test_x6_pair_engine(benchmark):
    pos, mass, h, kernel, box = _clustered_setup(n=scaled(1500, 600))
    n = len(pos)

    def run():
        out = {"n": n}

        # --- leg 1: fresh build vs cached Verlet query --------------------
        fresh = _best_of(lambda: neighbor_pairs(pos, h, box=box))
        cache = PairCache(skin=0.25, box=box)
        cache.get(pos, h)  # prime
        rng = np.random.default_rng(3)
        drift = rng.normal(scale=0.02 * h.min(), size=pos.shape)
        moved = np.mod(pos + drift, box)
        cached = _best_of(lambda: cache.get(moved, h))
        assert cache.n_builds == 1  # drift stayed inside the skin
        out["fresh_build_s"] = fresh
        out["cached_query_s"] = cached
        out["cache_speedup"] = fresh / cached

        # --- leg 2: np.add.at vs segment_sum on the pair scatter ----------
        pi, pj = cache.get(pos, h)
        out["n_pairs"] = len(pi)
        vals = rng.normal(size=(len(pi), 3))

        def add_at():
            acc = np.zeros((n, 3))
            np.add.at(acc, pi, vals)
            return acc

        t_add_at = _best_of(add_at)
        t_seg = _best_of(lambda: segment_sum(vals, pi, n, assume_sorted=True))
        assert np.allclose(add_at(), segment_sum(vals, pi, n))
        out["add_at_s"] = t_add_at
        out["segment_sum_s"] = t_seg
        out["scatter_speedup"] = t_add_at / t_seg

        # --- leg 3: end-to-end hydro derivative evaluation ----------------
        vel = rng.normal(scale=5.0, size=pos.shape)
        u = np.full(n, 30.0)
        out["hydro_deriv_s"] = _best_of(
            lambda: crksph_derivatives(
                pos, vel, mass, u, h, pi, pj, kernel, box=box
            ),
            repeats=3,
        )
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "X6: pair-interaction engine",
        ["Leg", "Naive (s)", "Engine (s)", "Speedup"],
        [
            ("pair list (fresh vs cached)", f"{r['fresh_build_s']:.4f}",
             f"{r['cached_query_s']:.4f}", f"{r['cache_speedup']:.1f}x"),
            ("pair scatter (add.at vs segment)", f"{r['add_at_s']:.5f}",
             f"{r['segment_sum_s']:.5f}", f"{r['scatter_speedup']:.1f}x"),
            ("crksph_derivatives (1 eval)", "", f"{r['hydro_deriv_s']:.4f}",
             ""),
        ],
    )
    benchmark.extra_info.update(r)

    # timing ratios and the on-disk perf trajectory only mean something at
    # the full problem size; the smoke run just proves the legs still run
    if FULL:
        _append_record(r)
        # a cached query must beat rebuilding the chaining mesh, and the
        # sorted-CSR reduction must beat the buffered ufunc scatter
        assert r["cache_speedup"] > 1.5
        assert r["scatter_speedup"] > 1.5
