"""X2 (Section IV-B2): warp splitting vs naive leaf-pair kernels.

The ablation behind the paper's key kernel optimization: identical
numerical results with lower register pressure, far less global memory
traffic (replaced by register shuffles), and leaf-level (not per-pair)
atomics — measured on the lane-accurate executor for all three kernels
and both warp widths (32 and 64).
"""

import numpy as np

from repro.gpusim import (
    H100_SXM5,
    MI250X_GCD,
    crk_coefficient_kernel,
    execute_leaf_pair_naive,
    execute_leaf_pair_warpsplit,
    gravity_potential_kernel,
    hydro_force_like_kernel,
    sph_density_kernel,
)

from conftest import print_table


def _setup(n, seed=0):
    rng = np.random.default_rng(seed)
    pos_i = rng.uniform(0, 1, (n, 3))
    pos_j = rng.uniform(0, 1, (n, 3)) + 1.5
    state = {
        "h": np.full(n, 0.5),
        "m": rng.uniform(1, 2, n),
        "vol": rng.uniform(0.9, 1.1, n) * 1e-3,
        "rho": rng.uniform(0.8, 1.2, n),
        "p": rng.uniform(0.5, 2.0, n),
        "c": rng.uniform(1.0, 2.0, n),
        "balsara": rng.uniform(0, 1, n),
        "u": rng.uniform(1.0, 3.0, n),
    }
    return pos_i, pos_j, state


KERNELS = {
    "sph_density": sph_density_kernel(0.5),
    "gravity_potential": gravity_potential_kernel(0.01),
    "crk_coefficients": crk_coefficient_kernel(0.5),
    "hydro_force_like": hydro_force_like_kernel(0.5),
}


def test_x2_warp_splitting_ablation(benchmark):
    n = 128
    pos_i, pos_j, state = _setup(n)
    results = {}

    def run():
        for name, kern in KERNELS.items():
            for device in (MI250X_GCD, H100_SXM5):
                si = {k: state[k] for k in kern.fields_i}
                sj = {k: state[k] for k in kern.fields_j}
                phi_s, _, cs = execute_leaf_pair_warpsplit(
                    kern, pos_i, si, pos_j, sj, device
                )
                phi_n, _, cn = execute_leaf_pair_naive(
                    kern, pos_i, si, pos_j, sj, device
                )
                results[(name, device.vendor)] = (phi_s, phi_n, cs, cn, kern)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (name, vendor), (phi_s, phi_n, cs, cn, kern) in results.items():
        np.testing.assert_allclose(phi_s, phi_n, rtol=1e-9)  # identical physics
        rows.append(
            (
                name,
                vendor,
                f"{cn.global_load_bytes / cs.global_load_bytes:.1f}x",
                f"{kern.register_estimate(False)} -> {kern.register_estimate(True)}",
                cs.shuffles,
                f"{cs.atomics} vs {cn.atomics}",
            )
        )
    print_table(
        "X2: warp splitting vs naive (traffic reduction, registers, shuffles)",
        ["Kernel", "Warp", "Mem traffic saved", "Registers naive->split",
         "Shuffles", "Atomics (split vs naive)"],
        rows,
    )

    for (name, vendor), (phi_s, phi_n, cs, cn, kern) in results.items():
        # (1) register usage reduced
        assert kern.register_estimate(True) < kern.register_estimate(False)
        # (2) global memory traffic much lower
        assert cs.global_load_bytes < 0.25 * cn.global_load_bytes
        # (3) shuffles do the communication instead
        assert cs.shuffles > 0 and cn.shuffles == 0
        # (4) atomics localized to per-leaf/tile reductions, never per pair
        n_pairs = len(phi_s) * len(phi_s)
        assert cs.atomics < 0.1 * n_pairs
        # (5) identical FLOP-weighted physics
        assert abs(cs.fp32_transcendental - cn.fp32_transcendental) <= max(
            cs.fp32_transcendental, cn.fp32_transcendental
        )
    benchmark.extra_info["n_configs"] = len(results)


def _activity_layouts(n, frac, seed=1):
    """Clustered-rung vs scattered activity masks at the same fraction.

    Clustered = one contiguous block (deep-rung particles sharing a halo
    core, the common adaptive-timestep layout); scattered = the same count
    spread uniformly (worst case for predication-only divergence claims)."""
    rng = np.random.default_rng(seed)
    k = max(1, int(round(frac * n)))
    clustered = np.zeros(n, dtype=bool)
    start = rng.integers(0, n - k + 1)
    clustered[start:start + k] = True
    scattered = np.zeros(n, dtype=bool)
    scattered[rng.choice(n, size=k, replace=False)] = True
    return {"clustered": clustered, "scattered": scattered}


def test_x2_active_compaction_divergence(benchmark):
    """Clustered-rung divergence ablation: predication vs compaction.

    Mixed-rung substeps activate only a fraction of each leaf.  Predication
    issues every tile with inactive lanes masked (divergence waste);
    compaction gathers the active rows into dense tiles.  The ablation
    sweeps activity fraction x layout, asserting compaction recovers lane
    efficiency and cuts issued tiles regardless of how the active rungs are
    laid out in the leaf."""
    from repro.gpusim import OpCounters, active_compaction_stats

    n = 128
    pos_i, pos_j, state = _setup(n)
    kern = KERNELS["hydro_force_like"]
    si = {k: state[k] for k in kern.fields_i}
    sj = {k: state[k] for k in kern.fields_j}
    device = MI250X_GCD
    results = {}

    def run():
        for frac in (0.125, 0.25, 0.5):
            for layout, active in _activity_layouts(n, frac).items():
                c_pred, c_comp = OpCounters(), OpCounters()
                phi_p, _, _ = execute_leaf_pair_warpsplit(
                    kern, pos_i, si, pos_j, sj, device, c_pred,
                    active_i=active,
                )
                phi_c, _, _ = execute_leaf_pair_warpsplit(
                    kern, pos_i, si, pos_j, sj, device, c_comp,
                    active_i=active, compact=True,
                )
                model = active_compaction_stats(
                    [n], [int(active.sum())], device.warp_size
                )
                results[(frac, layout)] = (phi_p, phi_c, c_pred, c_comp,
                                           model, active)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (frac, layout), (phi_p, phi_c, cp, cc, model, active) in (
            results.items()):
        rows.append((
            f"{frac:.3f}", layout,
            f"{cp.lane_efficiency:.2f} -> {cc.lane_efficiency:.2f}",
            f"{cp.issued_lane_ops / cc.issued_lane_ops:.2f}x",
            f"{model['issue_reduction']:.2f}x",
        ))
    print_table(
        "X2b: mixed-rung divergence — predication vs compaction (MI250X)",
        ["Active frac", "Layout", "Lane eff pred -> comp",
         "Issue reduction", "Model issue reduction"],
        rows,
    )

    half = device.warp_size // 2
    for (frac, layout), (phi_p, phi_c, cp, cc, model, active) in (
            results.items()):
        # same physics on the active rows, zeros elsewhere
        np.testing.assert_allclose(phi_c, phi_p, rtol=1e-12, atol=1e-13)
        assert np.all(phi_p[~active] == 0.0)
        # same useful lanes; compaction never issues more
        assert cc.active_lane_ops == cp.active_lane_ops
        assert cc.issued_lane_ops <= cp.issued_lane_ops
        assert cc.lane_efficiency >= cp.lane_efficiency
        # at sparse activity compaction must cut issue substantially,
        # for clustered AND scattered layouts alike
        if frac <= 0.25:
            assert cc.issued_lane_ops < 0.6 * cp.issued_lane_ops
            assert cc.lane_efficiency > 1.5 * cp.lane_efficiency
        # executor agrees with the analytic tile model
        n_tiles_j = -(-len(pos_j) // half)
        assert cp.issued_lane_ops == (
            model["issued_tiles_predicated"] * n_tiles_j * half * half
        )
        assert cc.issued_lane_ops == (
            model["issued_tiles_compacted"] * n_tiles_j * half * half
        )
    # scattered activity hurts predication as much as clustered (lane
    # masking is per-lane), so compaction's win is layout-independent
    for frac in (0.125, 0.25, 0.5):
        cp_c = results[(frac, "clustered")][2]
        cp_s = results[(frac, "scattered")][2]
        assert cp_c.issued_lane_ops == cp_s.issued_lane_ops
    benchmark.extra_info["n_configs"] = len(results)
