"""X2 (Section IV-B2): warp splitting vs naive leaf-pair kernels.

The ablation behind the paper's key kernel optimization: identical
numerical results with lower register pressure, far less global memory
traffic (replaced by register shuffles), and leaf-level (not per-pair)
atomics — measured on the lane-accurate executor for all three kernels
and both warp widths (32 and 64).
"""

import numpy as np

from repro.gpusim import (
    H100_SXM5,
    MI250X_GCD,
    crk_coefficient_kernel,
    execute_leaf_pair_naive,
    execute_leaf_pair_warpsplit,
    gravity_potential_kernel,
    hydro_force_like_kernel,
    sph_density_kernel,
)

from conftest import print_table


def _setup(n, seed=0):
    rng = np.random.default_rng(seed)
    pos_i = rng.uniform(0, 1, (n, 3))
    pos_j = rng.uniform(0, 1, (n, 3)) + 1.5
    state = {
        "h": np.full(n, 0.5),
        "m": rng.uniform(1, 2, n),
        "vol": rng.uniform(0.9, 1.1, n) * 1e-3,
        "rho": rng.uniform(0.8, 1.2, n),
        "p": rng.uniform(0.5, 2.0, n),
        "c": rng.uniform(1.0, 2.0, n),
        "balsara": rng.uniform(0, 1, n),
        "u": rng.uniform(1.0, 3.0, n),
    }
    return pos_i, pos_j, state


KERNELS = {
    "sph_density": sph_density_kernel(0.5),
    "gravity_potential": gravity_potential_kernel(0.01),
    "crk_coefficients": crk_coefficient_kernel(0.5),
    "hydro_force_like": hydro_force_like_kernel(0.5),
}


def test_x2_warp_splitting_ablation(benchmark):
    n = 128
    pos_i, pos_j, state = _setup(n)
    results = {}

    def run():
        for name, kern in KERNELS.items():
            for device in (MI250X_GCD, H100_SXM5):
                si = {k: state[k] for k in kern.fields_i}
                sj = {k: state[k] for k in kern.fields_j}
                phi_s, _, cs = execute_leaf_pair_warpsplit(
                    kern, pos_i, si, pos_j, sj, device
                )
                phi_n, _, cn = execute_leaf_pair_naive(
                    kern, pos_i, si, pos_j, sj, device
                )
                results[(name, device.vendor)] = (phi_s, phi_n, cs, cn, kern)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (name, vendor), (phi_s, phi_n, cs, cn, kern) in results.items():
        np.testing.assert_allclose(phi_s, phi_n, rtol=1e-9)  # identical physics
        rows.append(
            (
                name,
                vendor,
                f"{cn.global_load_bytes / cs.global_load_bytes:.1f}x",
                f"{kern.register_estimate(False)} -> {kern.register_estimate(True)}",
                cs.shuffles,
                f"{cs.atomics} vs {cn.atomics}",
            )
        )
    print_table(
        "X2: warp splitting vs naive (traffic reduction, registers, shuffles)",
        ["Kernel", "Warp", "Mem traffic saved", "Registers naive->split",
         "Shuffles", "Atomics (split vs naive)"],
        rows,
    )

    for (name, vendor), (phi_s, phi_n, cs, cn, kern) in results.items():
        # (1) register usage reduced
        assert kern.register_estimate(True) < kern.register_estimate(False)
        # (2) global memory traffic much lower
        assert cs.global_load_bytes < 0.25 * cn.global_load_bytes
        # (3) shuffles do the communication instead
        assert cs.shuffles > 0 and cn.shuffles == 0
        # (4) atomics localized to per-leaf/tile reductions, never per pair
        n_pairs = len(phi_s) * len(phi_s)
        assert cs.atomics < 0.1 * n_pairs
        # (5) identical FLOP-weighted physics
        assert abs(cs.fp32_transcendental - cn.fp32_transcendental) <= max(
            cs.fp32_transcendental, cn.fp32_transcendental
        )
    benchmark.extra_info["n_configs"] = len(results)
