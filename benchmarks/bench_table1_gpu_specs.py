"""Table I: GPU specifications and peak-kernel throughput per device.

Regenerates the table of peak single-precision rates and exercises the
paper's peak-FLOP measurement methodology: run the CRK-coefficient kernel
(the highest-throughput kernel, Section V-B) on each simulated device and
report counted FLOPs and modeled utilization.
"""

import numpy as np

from repro.gpusim import (
    TABLE_I,
    crk_coefficient_kernel,
    execute_leaf_pair_warpsplit,
    peak_utilization,
    table_i_rows,
)

from conftest import print_table


def _run_peak_kernel(device):
    rng = np.random.default_rng(42)
    n = 128
    pos_i = rng.uniform(0, 1, (n, 3))
    pos_j = rng.uniform(0, 1, (n, 3))
    vol = {"vol": rng.uniform(0.9, 1.1, n) * 1e-3}
    kern = crk_coefficient_kernel(0.4)
    _, _, counters = execute_leaf_pair_warpsplit(
        kern, pos_i, vol, pos_j, vol, device
    )
    return counters


def test_table1_gpu_specs(benchmark):
    counters_by_device = {}

    def run():
        for device in TABLE_I:
            counters_by_device[device.name] = _run_peak_kernel(device)
        return counters_by_device

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for device in TABLE_I:
        c = counters_by_device[device.name]
        util = peak_utilization(device)
        rows.append(
            (
                device.name,
                device.peak_fp32_tflops,
                device.warp_size,
                c.flops,
                f"{c.arithmetic_intensity:.1f}",
                f"{util * 100:.1f}%",
            )
        )
        benchmark.extra_info[device.name] = {
            "peak_fp32_tflops": device.peak_fp32_tflops,
            "peak_kernel_utilization": util,
            "counted_flops": int(c.flops),
        }
    print_table(
        "Table I: GPU specifications (+ peak-kernel measurement)",
        ["Device", "Peak FP32 (TFLOPs)", "Warp", "Kernel FLOPs",
         "AI (FLOP/B)", "Peak util"],
        rows,
    )

    # paper values, exactly
    assert dict(table_i_rows())["AMD MI250X (per GCD)"] == 23.9
    assert dict(table_i_rows())["Intel Max 1550 (per tile)"] == 22.5
    assert dict(table_i_rows())["NVIDIA SXM5 H100"] == 66.9
