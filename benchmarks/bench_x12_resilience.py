"""X12: rank-failure recovery overhead vs checkpoint cadence.

The paper's flagship run budgeted for a handful of node failures per
campaign day (MTTI at scale) by pairing buddy-replicated node-local
checkpoints with sparser PFS globals.  This bench puts a number on the
trade the cadence knob buys: a 4-rank overlap+subcycle chaos run loses
rank 2 mid–PM-interval and recovers through the
detect→cancel→restore→redistribute→resume pipeline, at NVMe checkpoint
cadences of every 1, 2, and 3 steps.  Sparser cadence means less I/O
per step but an older restore point — more recomputed steps per
failure, visible as a growing recovered-wall / clean-wall ratio.

Invariants asserted in every mode: the recovery restores from the
newest checkpoint the cadence allows, the recovered final state is
bit-identical to a clean restart of the resumed segment from that same
checkpoint, and the armed comm sanitizer reports a clean teardown.
Each full run appends to ``BENCH_resilience.json``.
"""

import time
from pathlib import Path

import numpy as np

from repro.campaign.runner import state_hash
from repro.cosmology import PLANCK18
from repro.observe import Observatory
from repro.observe.derived import recovery_report
from repro.parallel.distributed_sim import (
    DistributedConfig,
    DistributedSimulation,
)
from repro.resilience import (
    FaultPlan,
    RecoveryCoordinator,
    TieredCheckpointStore,
)

from conftest import FULL, print_table, record_trajectory, scaled

ARTIFACT = Path(__file__).parent / "BENCH_resilience.json"

BOX = 120.0
N_RANKS = 4


def _clustered_ics(n_blob, seed=7):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, BOX, size=(4, 3))
    pts = [np.mod(c + rng.normal(0, 6.0, size=(n_blob, 3)), BOX)
           for c in centers]
    pos = np.vstack(pts)
    vel = rng.normal(0, 50.0, size=pos.shape)
    mass = np.full(len(pos), 1.0e10)
    return pos, vel, mass


def _config(n_pm_steps):
    # r_split_cells=0.75 keeps the cutoff inside half the narrowest rank
    # domain after the decomposition shrinks onto 3 survivors
    return DistributedConfig(
        box=BOX, pm_grid=32, a_init=0.3,
        a_final=0.3 + 0.04 / 3 * n_pm_steps, n_pm_steps=n_pm_steps,
        cosmo=PLANCK18, r_split_cells=0.75, max_rung=3,
        comm_mode="overlap", subcycle=True, sanitize=True,
    )


def _chaos_case(cadence, ics, cfg, root):
    """One faulted run at a checkpoint cadence; returns its vitals."""
    pos, vel, mass = ics
    store = TieredCheckpointStore(root / f"cad{cadence}", n_nodes=N_RANKS)
    # kill in the final PM interval, mid-subcycle: the sparser the
    # cadence, the older the newest durable step at that point
    plan = FaultPlan.single(rank=2, step=cfg.n_pm_steps - 1, phase="rung")
    obs = Observatory()
    coord = RecoveryCoordinator(store, observe=obs,
                                checkpoint_every=cadence,
                                pfs_every=cadence)
    t0 = time.perf_counter()
    res = coord.run(cfg, N_RANKS, pos.copy(), vel.copy(), mass.copy(),
                    fault_plan=plan)
    wall = time.perf_counter() - t0
    rec = res.recoveries[0]

    # recovered-vs-clean hash check: clean restart of the resumed
    # segment from the same checkpoint on the surviving rank count
    if rec.restored_step is not None:
        arrays, _meta = store.restore(store.restorable_at(rec.restored_step))
        seed_state = (arrays["pos"], arrays["vel"], arrays["mass"])
    else:
        seed_state = (pos.copy(), vel.copy(), mass.copy())
    ref = DistributedSimulation(rec.resumed_config, rec.ranks_after)
    rpos, rvel, _ = ref.run(*seed_state)
    hash_ok = state_hash(pos=rpos, vel=rvel) == \
        state_hash(pos=res.pos, vel=res.vel)

    pipeline = {r.phase: r.seconds for r in recovery_report(obs.registry)}
    san = coord.last_sim.world.sanitizer
    return {
        "cadence": cadence,
        "wall": wall,
        "restored_step": rec.restored_step,
        "recomputed_steps": (cfg.n_pm_steps - 1) - (
            rec.restored_step if rec.restored_step is not None else -1
        ),
        "tier": rec.tier,
        "recovery_s": sum(pipeline.values()),
        "pipeline": pipeline,
        "hash_ok": hash_ok,
        "findings": len(san.findings) if san is not None else 0,
    }


def test_x12_resilience(benchmark, tmp_path):
    n_pm_steps = scaled(3, 2)
    cadences = scaled([1, 2, 3], [1, 2])
    ics = _clustered_ics(n_blob=scaled(24, 12))
    cfg = _config(n_pm_steps)
    res = {}

    def run():
        # clean reference: the same run with no faults
        t0 = time.perf_counter()
        sim = DistributedSimulation(cfg, N_RANKS)
        sim.run(ics[0].copy(), ics[1].copy(), ics[2].copy())
        res["clean_wall"] = time.perf_counter() - t0
        res["cases"] = [
            _chaos_case(c, ics, cfg, tmp_path) for c in cadences
        ]
        return res

    benchmark.pedantic(run, rounds=1, iterations=1)

    clean = res["clean_wall"]
    print_table(
        f"X12: recovery overhead vs checkpoint cadence "
        f"({len(ics[0])} particles, {N_RANKS} ranks, "
        f"{n_pm_steps} PM steps, kill at step {n_pm_steps - 1})",
        ["Cadence", "Tier", "Restored", "Recomputed",
         "Overhead x", "Recovery s", "Hash"],
        [
            (c["cadence"], c["tier"], c["restored_step"],
             c["recomputed_steps"], f"{c['wall'] / clean:.2f}",
             f"{c['recovery_s']:.3f}", "ok" if c["hash_ok"] else "FAIL")
            for c in res["cases"]
        ],
    )
    benchmark.extra_info.update({
        "clean_wall_s": clean,
        "cases": [
            {k: v for k, v in c.items() if k != "pipeline"}
            for c in res["cases"]
        ],
    })

    for c in res["cases"]:
        # every cadence recovers onto 3 ranks, bit-identical, clean audit
        assert c["hash_ok"], f"cadence {c['cadence']}: hash mismatch"
        assert c["findings"] == 0
        # the restore honors the cadence: newest durable step <= kill-1
        if c["restored_step"] is not None:
            assert c["restored_step"] % c["cadence"] == 0
    # sparser cadence never recomputes fewer steps
    recomp = [c["recomputed_steps"] for c in res["cases"]]
    assert recomp == sorted(recomp)

    if FULL:
        record_trajectory(ARTIFACT, {
            "n_particles": len(ics[0]),
            "n_ranks": N_RANKS,
            "n_pm_steps": n_pm_steps,
            "clean_wall_s": clean,
            "cases": [
                {k: v for k, v in c.items() if k != "pipeline"}
                for c in res["cases"]
            ],
            "pipeline_s": res["cases"][0]["pipeline"],
        })
