"""Figure 3: density / temperature slices at high vs low redshift.

Runs a real mini-simulation with full physics from the homogeneous era
into the clustered era and regenerates the figure's content as summary
statistics of the slice maps: the density field develops strong contrast
(cosmic web) and the gas develops a broad temperature distribution with
shock/feedback-heated regions, while the early universe is smooth and
cold.
"""

import numpy as np

from repro.analysis import density_temperature_slices
from repro.cosmology import PLANCK18, zeldovich_ics
from repro.core.particles import make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig

from conftest import FULL, print_table, scaled


def _slice_stats(sim):
    from repro.core.gravity.pm import cic_deposit

    dens, temp = density_temperature_slices(
        sim.particles, sim.config.box, n_grid=16, width=sim.config.box / 4
    )
    # clustering contrast on a coarse 3D grid with the Poisson shot-noise
    # variance removed (at 2x8^3 particles the raw per-cell counts are
    # shot-dominated, which would mask the growth the figure shows)
    n_grid = 8
    rho = cic_deposit(sim.particles.pos, np.ones(len(sim.particles)),
                      n_grid, float(sim.config.box_array[0]))
    mean_count = len(sim.particles) / n_grid**3
    var = (rho * (sim.config.box_array[0] / n_grid) ** 3).std() ** 2
    contrast = float(
        np.sqrt(max(var - mean_count, 0.0)) / mean_count
    )
    tvals = temp[temp > 0] if temp is not None else np.array([0.0])
    return {
        "density_contrast": contrast,
        "temp_median": float(np.median(tvals)) if len(tvals) else 0.0,
        "temp_max": float(tvals.max()) if len(tvals) else 0.0,
        "temp_spread_dex": float(
            np.log10(max(tvals.max(), 1.0) / max(np.median(tvals), 1.0))
        ),
    }


def test_fig3_high_vs_low_redshift_slices(benchmark):
    state = {}

    n_steps = scaled(10, 3)

    def run():
        box = 16.0
        ics = zeldovich_ics(scaled(8, 5), box, PLANCK18, a_init=0.12, seed=11)
        parts = make_gas_dm_pair(
            ics.positions, ics.velocities, ics.particle_mass,
            PLANCK18.omega_b, PLANCK18.omega_m, u_init=5.0, box=box,
        )
        cfg = SimulationConfig(
            box=box, pm_grid=scaled(16, 8), a_init=0.12, a_final=0.9,
            n_pm_steps=n_steps, cosmo=PLANCK18, subgrid=True,
            max_rung=scaled(5, 3), n_neighbors=24,
        )
        sim = Simulation(cfg, parts)
        # "high z": the near-homogeneous early universe (the ICs)
        state["high_z"] = _slice_stats(sim)
        state["high_z"]["z"] = 1.0 / sim.a - 1.0
        sim.run(n_steps)
        state["low_z"] = _slice_stats(sim)
        state["low_z"]["z"] = 1.0 / sim.a - 1.0
        return state

    benchmark.pedantic(run, rounds=1, iterations=1)
    hz, lz = state["high_z"], state["low_z"]

    print_table(
        "Figure 3: slice statistics, early vs late universe",
        ["Quantity", f"high z (z={hz['z']:.1f})", f"low z (z={lz['z']:.1f})"],
        [
            ("density contrast (std/mean)", f"{hz['density_contrast']:.3f}",
             f"{lz['density_contrast']:.3f}"),
            ("median gas T [K]", f"{hz['temp_median']:.3e}",
             f"{lz['temp_median']:.3e}"),
            ("max gas T [K]", f"{hz['temp_max']:.3e}", f"{lz['temp_max']:.3e}"),
            ("T dynamic range [dex]", f"{hz['temp_spread_dex']:.2f}",
             f"{lz['temp_spread_dex']:.2f}"),
        ],
    )
    benchmark.extra_info.update(state)

    # structural sanity in every mode
    assert np.isfinite(lz["density_contrast"]) and lz["density_contrast"] >= 0
    assert lz["temp_max"] >= 0.0
    # the figure's content needs the full run from the homogeneous era deep
    # into the clustered era: late universe strongly clustered and
    # multi-phase, early universe smooth and cold
    if FULL:
        assert lz["density_contrast"] > 2.0 * hz["density_contrast"]
        assert lz["temp_max"] > 10.0 * hz["temp_max"]
        assert lz["temp_spread_dex"] > hz["temp_spread_dex"]
