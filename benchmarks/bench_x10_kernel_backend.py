"""X10: compiled-kernel backend — numpy vs jit on the hot kernels.

Every prior bench made the hot kernels do *less* work (pair caches,
active sets, comm overlap); this one makes the kernels themselves
faster.  Per-kernel microbenchmarks time the registered numpy reference
against its numba-compiled equivalent on pair-list shapes matching the
bench_x1/x9 configurations, then an end-to-end serial PM step is timed
on both backends (same ICs, parity asserted to the per-kernel
contracts).

Without numba (the ``[jit]`` extra not installed) the jit columns fall
back to the reference implementation — the bench still runs, reports
1.0x, and records ``jit_available: false`` so the artifact stays honest
about what produced it.

Full-mode acceptance (with numba): >=2x on the CRKSPH pair-derivative
and CIC deposit microbenchmarks, a measurable end-to-end step speedup,
and bit/roundoff parity per contract.  Each full run appends to
``BENCH_kernel_backend.json``.
"""

import time
from pathlib import Path

import numpy as np

from repro.backend import get_kernel, kernel_spec, numba_available
from repro.backend import registry
from repro.core.scatter import SegmentReducer
from repro.cosmology import PLANCK18, zeldovich_ics
from repro.core.particles import make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig
import repro.core.gravity.pm  # noqa: F401  (registers pm.* kernels)
import repro.core.gravity.short_range  # noqa: F401
import repro.core.sph.crk  # noqa: F401
import repro.gpusim.warp  # noqa: F401

from conftest import FULL, print_table, record_trajectory, scaled

ARTIFACT = Path(__file__).parent / "BENCH_kernel_backend.json"

BOX = 20.0


def _impls(name):
    """(numpy, jit-or-fallback) implementations of one kernel."""
    if numba_available():
        registry._load_jit()
        registry.warm_up()
    return (
        get_kernel(name, backend="numpy"),
        get_kernel(name, backend="jit"),
    )


def _best_of(fn, args, repeat):
    best = np.inf
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def _contract_ok(name, ref, out):
    spec = kernel_spec(name)
    ref_t = ref if isinstance(ref, tuple) else (ref,)
    out_t = out if isinstance(out, tuple) else (out,)
    for a, b in zip(ref_t, out_t):
        if spec.contract == "bit-identical":
            if not np.array_equal(np.asarray(a), np.asarray(b)):
                return False
        elif not np.allclose(b, a, rtol=spec.rtol, atol=spec.atol):
            return False
    return True


def _kernel_cases(rng):
    """name -> (args tuple) on bench_x1-like pair-list shapes."""
    n = scaled(20_000, 400)
    pairs = scaled(600_000, 4_000)
    ids = np.sort(rng.integers(0, n, pairs))
    red = SegmentReducer(ids, n)
    vj = rng.uniform(0.5, 2.0, pairs)
    dx = rng.standard_normal((pairs, 3))
    w = rng.uniform(0.0, 1.0, pairs)
    gw = rng.standard_normal((pairs, 3))

    grid_n = scaled(64, 8)
    npart = scaled(200_000, 2_000)
    pos = rng.uniform(0, BOX, (npart, 3))
    mass = rng.uniform(0.5, 2.0, npart)

    sr_pi = ids
    sr_pj = rng.integers(0, n, pairs)

    ca = rng.uniform(0.8, 1.2, n)
    cb = 0.1 * rng.standard_normal((n, 3))
    cga = 0.1 * rng.standard_normal((n, 3))
    cgb = 0.1 * rng.standard_normal((n, 3, 3))

    return {
        "crk.moments": (vj, dx, w, gw, red),
        "crk.corrected_pairs": (ca, cb, cga, cgb, ids, dx, w, gw),
        "pm.cic_deposit": (pos, mass, grid_n, BOX),
        "scatter.segment_sum_csr": (red, dx),
        "gravity.short_range_pairs": (
            pos[:n], mass[:n], sr_pi, sr_pj, sr_pi, n, 2.0, 0.05, BOX,
            43.1,
        ),
    }


def _serial_sim(backend, n_side, n_pm_steps):
    ics = zeldovich_ics(n_side, BOX, PLANCK18, a_init=0.25, seed=11)
    parts = make_gas_dm_pair(
        ics.positions, ics.velocities, ics.particle_mass,
        PLANCK18.omega_b, PLANCK18.omega_m, u_init=20.0, box=BOX,
    )
    cfg = SimulationConfig(
        box=BOX, pm_grid=scaled(16, 12), a_init=0.25, a_final=0.32,
        n_pm_steps=n_pm_steps, cosmo=PLANCK18, max_rung=2,
        backend=backend,
    )
    return Simulation(cfg, parts)


def test_x10_kernel_backend(benchmark, monkeypatch):
    monkeypatch.delenv(registry.ENV_VAR, raising=False)
    rng = np.random.default_rng(42)
    repeat = scaled(5, 2)
    cases = _kernel_cases(rng)
    res = {}

    def run():
        for name, args in cases.items():
            np_fn, jit_fn = _impls(name)
            ref = np_fn(*args)
            out = jit_fn(*args)
            res[name] = {
                "numpy_s": _best_of(np_fn, args, repeat),
                "jit_s": _best_of(jit_fn, args, repeat),
                "parity": _contract_ok(name, ref, out),
            }

        # end-to-end serial step on both backends, same ICs
        n_side = scaled(10, 5)
        n_pm_steps = scaled(2, 1)
        walls = {}
        for backend in ("numpy", "jit"):
            sim = _serial_sim(backend, n_side, n_pm_steps)
            t0 = time.perf_counter()
            sim.run()
            walls[backend] = (time.perf_counter() - t0) / n_pm_steps
            res.setdefault("e2e", {})[backend] = sim.backend
        res["e2e"]["numpy_s"] = walls["numpy"]
        res["e2e"]["jit_s"] = walls["jit"]
        return res

    benchmark.pedantic(run, rounds=1, iterations=1)

    jit_on = numba_available()
    rows = []
    speedups = {}
    for name in cases:
        r = res[name]
        s = r["numpy_s"] / max(r["jit_s"], 1e-12)
        speedups[name] = s
        rows.append((name, f"{r['numpy_s'] * 1e3:.2f}",
                     f"{r['jit_s'] * 1e3:.2f}", f"{s:.2f}x",
                     "ok" if r["parity"] else "FAIL"))
    e2e_speedup = res["e2e"]["numpy_s"] / max(res["e2e"]["jit_s"], 1e-12)
    rows.append(("end-to-end step", f"{res['e2e']['numpy_s'] * 1e3:.2f}",
                 f"{res['e2e']['jit_s'] * 1e3:.2f}",
                 f"{e2e_speedup:.2f}x", "-"))
    mode = "on" if jit_on else "ABSENT — jit falls back to numpy"
    print_table(
        f"X10: kernel backend (numba {mode})",
        ["Kernel", "numpy (ms)", "jit (ms)", "Speedup", "Parity"],
        rows,
    )

    assert all(res[name]["parity"] for name in cases)
    if FULL and jit_on:
        # the acceptance pair: CRKSPH pair derivatives and CIC deposit
        assert speedups["crk.moments"] >= 2.0
        assert speedups["pm.cic_deposit"] >= 2.0
        assert e2e_speedup > 1.0

    benchmark.extra_info.update({
        "jit_available": jit_on,
        "e2e_step_speedup": e2e_speedup,
        **{f"speedup/{k}": v for k, v in speedups.items()},
    })
    record_trajectory(ARTIFACT, {
        "jit_available": jit_on,
        "n_pairs": len(cases["crk.moments"][0]),
        "kernels": {
            name: {
                "numpy_ms": res[name]["numpy_s"] * 1e3,
                "jit_ms": res[name]["jit_s"] * 1e3,
                "speedup": speedups[name],
            }
            for name in cases
        },
        "e2e_step_ms": {
            "numpy": res["e2e"]["numpy_s"] * 1e3,
            "jit": res["e2e"]["jit_s"] * 1e3,
        },
        "e2e_step_speedup": e2e_speedup,
    })
