"""Figure 2 (caption): time-to-solution component fractions.

Regenerates the breakdown {long-range 1.7%, tree build 1.7%, short-range
79.6%, in situ analysis 11.6%, I/O 2.6%} and >90% GPU residency from the
campaign model, and cross-checks the *structure* (short-range dominant,
tree+FFT negligible) against a real measured mini-simulation.
"""

import numpy as np

from repro.constants import FRONTIER_E_TTS_FRACTIONS
from repro.cosmology import PLANCK18, zeldovich_ics
from repro.core.particles import make_gas_dm_pair
from repro.core.simulation import Simulation, SimulationConfig
from repro.perfmodel import CampaignModel

from conftest import print_table, scaled


def test_fig2_breakdown_model(benchmark):
    result = benchmark.pedantic(
        lambda: CampaignModel().run(), rounds=1, iterations=1
    )
    rows = [
        (comp, f"{frac * 100:.1f}%", f"{FRONTIER_E_TTS_FRACTIONS[comp] * 100:.1f}%")
        for comp, frac in result.fractions.items()
    ]
    print_table(
        "Figure 2: TTS fractions (model vs paper)",
        ["Component", "Model", "Paper"],
        rows,
    )
    print(f"GPU-resident fraction: {result.gpu_resident_fraction * 100:.1f}% "
          f"(paper: 91.2%)")
    benchmark.extra_info["fractions"] = result.fractions
    benchmark.extra_info["gpu_resident"] = result.gpu_resident_fraction

    for comp, target in FRONTIER_E_TTS_FRACTIONS.items():
        assert abs(result.fractions[comp] - target) < 0.006
    assert result.gpu_resident_fraction > 0.90


def test_fig2_breakdown_measured_minisim(benchmark):
    """A real mini-simulation shows the same structural ordering."""

    from repro.observe import Observatory, derived

    obs = Observatory()

    def run():
        box = 20.0
        ics = zeldovich_ics(scaled(7, 6), box, PLANCK18, a_init=0.25, seed=2)
        parts = make_gas_dm_pair(
            ics.positions, ics.velocities, ics.particle_mass,
            PLANCK18.omega_b, PLANCK18.omega_m, u_init=20.0, box=box,
        )
        cfg = SimulationConfig(
            box=box, pm_grid=14, a_init=0.25, a_final=0.45,
            n_pm_steps=scaled(3, 2), cosmo=PLANCK18, max_rung=2,
        )
        sim = Simulation(cfg, parts, observe=obs)
        from repro.analysis import InSituPipeline

        sim.insitu_hooks.append(InSituPipeline(n_grid=14))
        sim.run()
        return derived.phase_fractions(sim.history)

    fractions = benchmark.pedantic(run, rounds=1, iterations=1)

    # the StepRecord timers are registry views: summing the raw counters
    # reproduces the derived fractions exactly
    per_phase = {}
    for key in obs.registry.names():
        if key.startswith("sim") and key.count("/") == 2:
            per_phase.setdefault(key.rsplit("/", 1)[1], 0.0)
            per_phase[key.rsplit("/", 1)[1]] += obs.registry.get(key).value
    total = sum(per_phase.values())
    for phase, frac in fractions.items():
        assert abs(per_phase[phase] / total - frac) < 1e-12
    rows = [(k, f"{v * 100:.1f}%") for k, v in sorted(
        fractions.items(), key=lambda kv: -kv[1]
    )]
    print_table("Measured mini-sim TTS fractions", ["Component", "Fraction"], rows)
    benchmark.extra_info["fractions"] = fractions

    # structural claims of the figure: short-range force evaluation
    # (gravity pair forces + hydro, reported separately since the timer
    # split) dominates; FFT long-range and tree build are small
    short = fractions["short_range"] + fractions.get("hydro", 0.0)
    assert short > 0.5
    assert short > 3 * fractions["analysis"]
    assert fractions["long_range"] < 0.15
    assert fractions["tree_build"] < 0.25


def test_fig2_distributed_comm_wait_breakdown(benchmark, trace_path):
    """Per-phase comm-wait share of a distributed step, both comm modes.

    The same breakdown the figure reports for compute now carries the
    communication dimension: each phase's wall time vs the portion of it
    spent blocked in waits — read back through the observe derived layer
    (comm_wait_report over the StepRecord registry views, per-rank
    traffic from the absorbed TrafficStats gauges), with the overlap run
    exported as a Perfetto trace.
    """
    from repro.cosmology import zeldovich_ics
    from repro.observe import Observatory, derived
    from repro.parallel.distributed_sim import (
        DistributedConfig,
        DistributedSimulation,
    )

    box = 100.0
    ics = zeldovich_ics(scaled(8, 6), box, PLANCK18, a_init=0.2, seed=11)
    mass = np.full(len(ics.positions), ics.particle_mass)
    sims = {}
    obs = Observatory(tracing=True)

    def run():
        for mode in ("blocking", "overlap"):
            cfg = DistributedConfig(
                box=box, pm_grid=32, a_init=0.2, a_final=0.25,
                n_pm_steps=scaled(2, 1), cosmo=PLANCK18, r_split_cells=1.0,
                comm_mode=mode, net_latency_s=0.02,
            )
            sim = DistributedSimulation(cfg, 2, observe=obs)
            sim.run(ics.positions, ics.velocities, mass)
            sims[mode] = sim
        return sims

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for mode, sim in sims.items():
        # no explicit phase list: the report unions the record keys, so
        # migration (and, for subcycled runs, the rung/<r> phases) shows
        # up in the wait-fraction table without being enumerated here
        report = derived.comm_wait_report(sim.step_records)
        assert {r.phase for r in report} >= {"short_range", "long_range",
                                             "migration"}
        for r in report:
            rows.append((mode, r.phase, f"{r.wall_seconds:.3f}",
                         f"{r.wait_seconds:.3f}",
                         f"{r.wait_share * 100:.0f}%"))
        rows.append((mode, "(all)", "", "",
                     f"{derived.comm_wait_fraction(sim.step_records) * 100:.0f}%"))
    print_table(
        "Figure 2 companion: per-phase comm wait (rank 0, simulated fabric)",
        ["Mode", "Phase", "Wall (s)", "Comm wait (s)", "Wait share"],
        rows,
    )

    # subcycled companion: the same table resolved per rung — which
    # synchronization levels of the substep schedule pay wire time
    sub_cfg = DistributedConfig(
        box=box, pm_grid=32, a_init=0.2, a_final=0.25,
        n_pm_steps=scaled(2, 1), cosmo=PLANCK18, r_split_cells=1.0,
        comm_mode="overlap", net_latency_s=0.02,
        subcycle=True, max_rung=2,
    )
    # own Observatory: keeps the shared registry's traffic gauges equal to
    # the overlap run's TrafficStats (asserted below)
    sub = DistributedSimulation(sub_cfg, 2, observe=Observatory())
    sub.run(ics.positions, ics.velocities, mass)
    rung_rows = [
        (r.phase, f"{r.wall_seconds:.3f}", f"{r.wait_seconds:.3f}",
         f"{r.wait_share * 100:.0f}%")
        for r in derived.rung_wait_report(sub.step_records)
    ]
    print_table(
        "Figure 2 companion: per-rung comm wait (subcycled overlap)",
        ["Rung phase", "Wall (s)", "Comm wait (s)", "Wait share"],
        rung_rows,
    )
    assert rung_rows, "subcycled run produced no rung/<r> phase timers"
    # every rung key the records carry is covered by the derived layer
    rung_keys = {k for rec in sub.step_records for k in rec.timers
                 if k.startswith("rung/")}
    assert {r[0] for r in rung_rows} == rung_keys
    # per-rank traffic, read from the registry (absorbed after the overlap
    # run, which executes last)
    reg = obs.registry
    t = sims["overlap"].traffic

    def _g(name, rank):
        inst = reg.get(f"{name}{{rank={rank}}}")
        return inst.value if inst is not None else 0.0

    print("per-rank traffic (overlap): " + ", ".join(
        f"rank {r}: {_g('comm/bytes', r) / 1e6:.2f} MB shipped, "
        f"{_g('comm/wait_seconds', r):.3f}s waited"
        for r in sorted(t.bytes_by_rank)
    ))
    obs.export_chrome_trace(trace_path)
    benchmark.extra_info["comm_wait_rows"] = rows
    benchmark.extra_info["trace_events"] = len(obs.tracer.events)

    for mode, sim in sims.items():
        for rec in sim.step_records:
            assert rec.comm_mode == mode
            assert set(rec.comm_wait) == {"short_range", "long_range",
                                          "migration"}
            for phase, wall in rec.timers.items():
                assert rec.comm_wait[phase] <= wall + 1e-9
        assert all(b > 0 for b in sim.traffic.bytes_by_rank.values())
    # registry gauges agree with the bespoke TrafficStats to the bit
    for r, nb in sims["overlap"].traffic.bytes_by_rank.items():
        assert reg.get(f"comm/bytes{{rank={r}}}").value == nb
