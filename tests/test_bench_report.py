"""scripts/bench_report.py: the aggregated benchmark-trajectory table."""

import json
import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parents[1] / "scripts"
sys.path.insert(0, str(SCRIPTS))

import bench_report  # noqa: E402


@pytest.fixture
def bench_dir(tmp_path):
    d = tmp_path / "benchmarks"
    d.mkdir()
    (d / "BENCH_alpha.json").write_text(json.dumps([
        {"speedup": 2.5, "detail": {"wall_s": 1.5, "n": 100}},
        {"speedup": 2.9, "detail": {"wall_s": 1.3, "n": 100}},
    ]))
    (d / "BENCH_beta.json").write_text(json.dumps([
        {"curve": [{"universes_per_hour": 10.0},
                   {"universes_per_hour": 19.0}]},
    ]))
    return d


class TestFlatten:
    def test_nested_dicts_and_lists(self):
        flat = bench_report.flatten(
            {"a": {"b": 1}, "c": [{"d": 2.5}, 3], "skip": "text",
             "flag": True}
        )
        assert flat == {"a.b": 1.0, "c[0].d": 2.5, "c[1]": 3.0}

    def test_headline_selection(self):
        flat = {"x.speedup": 2.0, "x.n": 100.0, "uph": 5.0,
                "curve[0].universes_per_hour": 7.0}
        picked = bench_report.headline_metrics(flat)
        assert "x.speedup" in picked
        assert "curve[0].universes_per_hour" in picked
        assert "x.n" not in picked


class TestCLI:
    def test_aggregates_every_artifact(self, bench_dir, capsys):
        assert bench_report.main(["--dir", str(bench_dir)]) == 0
        out = capsys.readouterr().out
        assert "2 artifacts, 3 recorded runs" in out
        assert "alpha" in out and "beta" in out
        assert "run 1:" in out  # alpha's trajectory has two runs

    def test_json_output(self, bench_dir, tmp_path, capsys):
        out_json = tmp_path / "report.json"
        assert bench_report.main(
            ["--dir", str(bench_dir), "--json", str(out_json)]) == 0
        data = json.loads(out_json.read_text())
        assert set(data) == {"alpha", "beta"}
        assert data["alpha"][1]["speedup"] == 2.9
        assert data["beta"][0]["curve[1].universes_per_hour"] == 19.0

    def test_missing_dir_is_usage_error(self, tmp_path):
        assert bench_report.main(["--dir", str(tmp_path / "nope")]) == 2

    def test_empty_dir_fails(self, tmp_path):
        assert bench_report.main(["--dir", str(tmp_path)]) == 1

    def test_real_repo_artifacts(self, capsys):
        bench_dir = SCRIPTS.parent / "benchmarks"
        assert bench_report.main(["--dir", str(bench_dir)]) == 0
        out = capsys.readouterr().out
        assert "campaign_throughput" in out
