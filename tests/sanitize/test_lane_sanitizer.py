"""Lane sanitizer: non-atomic write-write collisions in warp passes."""

import numpy as np
import pytest

from repro.gpusim import MI250X_GCD, GPUResidentSolver, sph_density_kernel
from repro.gpusim.warp import gravity_potential_kernel
from repro.sanitize import LaneCollisionError, LaneSanitizer
from repro.tree import build_chaining_mesh, build_interaction_list, build_leaf_set
from repro.tree.interaction_lists import InteractionList
from repro.tree.kdtree import LeafSet


def _leafset(order, starts_counts, pos):
    """Hand-built LeafSet (the malformed cases a builder never emits)."""
    starts = np.array([s for s, _ in starts_counts])
    counts = np.array([c for _, c in starts_counts])
    mins = np.array([pos[order[s:s + c]].min(axis=0) for s, c in starts_counts])
    maxs = np.array([pos[order[s:s + c]].max(axis=0) for s, c in starts_counts])
    return LeafSet(
        order=np.asarray(order), leaf_start=starts, leaf_count=counts,
        leaf_bin=np.zeros(len(starts), dtype=np.int64),
        aabb_min=mins, aabb_max=maxs,
    )


class TestUnitChecks:
    def test_duplicate_lane_in_one_leaf_raises(self):
        san = LaneSanitizer()
        leaves = object()
        with pytest.raises(LaneCollisionError) as exc:
            san.check_leaf_pair(
                leaves, 0, 1,
                idx_i=np.array([4, 7, 4]), idx_j=np.array([1, 2]),
                kernel_name="grav", two_sided=False,
            )
        assert "particle 4" in str(exc.value)
        assert "2 lanes" in str(exc.value)

    def test_two_sided_overlapping_leaves_raise(self):
        san = LaneSanitizer()
        with pytest.raises(LaneCollisionError) as exc:
            san.check_leaf_pair(
                object(), 0, 1,
                idx_i=np.array([0, 1, 2]), idx_j=np.array([2, 3]),
                kernel_name="grav", two_sided=True,
            )
        assert "share particle" in str(exc.value)
        assert "(0, 1)" in str(exc.value)

    def test_one_sided_overlap_is_legal(self):
        """Gather kernels only write the i side; j-side aliasing is fine."""
        san = LaneSanitizer()
        san.check_leaf_pair(
            object(), 0, 1,
            idx_i=np.array([0, 1, 2]), idx_j=np.array([2, 3]),
            kernel_name="density", two_sided=False,
        )
        assert san.findings == []

    def test_self_pair_is_exempt(self):
        """(a, a) pairs serialize same-leaf accumulation by construction."""
        san = LaneSanitizer()
        idx = np.array([0, 1, 2])
        san.check_leaf_pair(object(), 3, 3, idx, idx,
                            kernel_name="grav", two_sided=True)
        assert san.findings == []

    def test_non_strict_records_instead_of_raising(self):
        san = LaneSanitizer(strict=False)
        san.check_leaf_pair(
            object(), 0, 1,
            idx_i=np.array([4, 4]), idx_j=np.array([1]),
            kernel_name="grav", two_sided=False,
        )
        assert len(san.findings) == 1

    def test_clean_leaf_memoized_per_leafset(self):
        san = LaneSanitizer()
        leaves = object()
        idx = np.arange(5)
        for b in (1, 2, 3):
            san.check_leaf_pair(leaves, 0, b, idx, np.arange(5, 8),
                                kernel_name="k", two_sided=False)
        assert (id(leaves), 0) in san._clean_leaves
        assert san.n_pairs_checked == 3


class TestSolverIntegration:
    def test_clean_pass_reports_nothing(self):
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 4.0, (300, 3))
        mass = rng.uniform(1, 2, 300)
        mesh = build_chaining_mesh(pos, 1.0, origin=0.0, extent=4.0,
                                   periodic=False)
        leaves = build_leaf_set(pos, mesh, max_leaf=48)
        ilist = build_interaction_list(leaves, mesh, pad=0.4, box=None)
        san = LaneSanitizer()
        solver = GPUResidentSolver(MI250X_GCD, sanitizer=san)
        solver.upload(pos, {"m": mass, "h": np.full(300, 0.4)})
        solver.run_interaction_list(sph_density_kernel(0.4), leaves, ilist)
        assert san.findings == []
        assert san.n_pairs_checked == len(ilist)

    def test_sanitized_pass_is_bit_identical_to_unsanitized(self):
        rng = np.random.default_rng(5)
        pos = rng.uniform(0, 4.0, (200, 3))
        mass = rng.uniform(1, 2, 200)
        mesh = build_chaining_mesh(pos, 1.0, origin=0.0, extent=4.0,
                                   periodic=False)
        leaves = build_leaf_set(pos, mesh, max_leaf=32)
        ilist = build_interaction_list(leaves, mesh, pad=0.4, box=None)
        state = {"m": mass, "h": np.full(200, 0.4)}
        plain = GPUResidentSolver(MI250X_GCD)
        plain.upload(pos, state)
        checked = GPUResidentSolver(MI250X_GCD, sanitizer=LaneSanitizer())
        checked.upload(pos, state)
        kern = sph_density_kernel(0.4)
        a = plain.run_interaction_list(kern, leaves, ilist)
        b = checked.run_interaction_list(kern, leaves, ilist)
        assert np.array_equal(a.phi, b.phi)

    def test_malformed_leafset_duplicate_lane_caught_in_launch(self):
        """A leaf listing one particle in two lanes (a bad compaction)
        trips the sanitizer before the pair is issued."""
        pos = np.array([[0.1, 0.1, 0.1], [0.2, 0.1, 0.1], [0.3, 0.1, 0.1],
                        [1.1, 0.1, 0.1], [1.2, 0.1, 0.1]])
        # leaf 0 lists particle 1 twice
        leaves = _leafset([0, 1, 1, 3, 4], [(0, 3), (3, 2)], pos)
        ilist = InteractionList(leaf_i=np.array([0]), leaf_j=np.array([1]))
        solver = GPUResidentSolver(MI250X_GCD, sanitizer=LaneSanitizer())
        solver.upload(pos, {"m": np.ones(5), "h": np.full(5, 2.0)})
        with pytest.raises(LaneCollisionError) as exc:
            solver.run_interaction_list(sph_density_kernel(2.0), leaves, ilist)
        assert "particle 1" in str(exc.value)

    def test_overlapping_leaves_caught_only_for_reaction_kernels(self):
        """Leaves sharing particle 2: legal for a one-sided gather, a
        write-write collision for a reaction (two-sided) kernel."""
        pos = np.array([[0.1, 0.1, 0.1], [0.2, 0.1, 0.1], [0.6, 0.1, 0.1],
                        [1.1, 0.1, 0.1], [1.2, 0.1, 0.1]])
        leaves = _leafset([0, 1, 2, 2, 3, 4], [(0, 3), (3, 3)], pos)
        ilist = InteractionList(leaf_i=np.array([0]), leaf_j=np.array([1]))
        state = {"m": np.ones(5), "h": np.full(5, 2.0)}

        gather = GPUResidentSolver(MI250X_GCD, sanitizer=LaneSanitizer())
        gather.upload(pos, state)
        gather.run_interaction_list(sph_density_kernel(2.0), leaves, ilist)
        assert gather.sanitizer.findings == []

        reaction = GPUResidentSolver(MI250X_GCD, sanitizer=LaneSanitizer())
        reaction.upload(pos, state)
        kern = gravity_potential_kernel(0.05)
        assert kern.reaction != 0
        with pytest.raises(LaneCollisionError) as exc:
            reaction.run_interaction_list(kern, leaves, ilist)
        assert "share particle" in str(exc.value)
