"""Per-rule true/false positives on synthetic sources."""

from repro.sanitize import LintEngine, get_rules


def _findings(tmp_path, source, rule, relname="mod.py"):
    f = tmp_path / relname
    f.parent.mkdir(parents=True, exist_ok=True)
    f.write_text(source)
    engine = LintEngine(rules=get_rules([rule]), root=str(tmp_path))
    return engine.lint_paths([str(f)]).findings


class TestScatterRule:
    def test_flags_add_at_and_maximum_at(self, tmp_path):
        src = (
            "import numpy as np\n"
            "np.add.at(a, i, v)\n"
            "np.maximum.at(b, j, w)\n"
        )
        found = _findings(tmp_path, src, "scatter")
        assert [f.line for f in found] == [2, 3]
        assert "segment_sum" in found[0].message

    def test_respects_numpy_alias(self, tmp_path):
        src = "import numpy as xp\nxp.add.at(a, i, v)\n"
        assert len(_findings(tmp_path, src, "scatter")) == 1

    def test_flags_from_numpy_import_members(self, tmp_path):
        """Regression: ``from numpy import add`` scatters used to slip
        past the module-alias check entirely."""
        src = (
            "from numpy import add, maximum as mx\n"
            "add.at(a, i, v)\n"
            "mx.at(b, j, w)\n"
        )
        found = _findings(tmp_path, src, "scatter")
        assert [f.line for f in found] == [2, 3]
        assert "add.at" in found[0].message
        assert "maximum.at" in found[1].message

    def test_from_import_of_non_ufunc_is_ignored(self, tmp_path):
        src = (
            "from numpy import asarray\n"
            "from pandas import add\n"
            "asarray.at(a, i, v)\n"
            "add.at(a, i, v)\n"
        )
        assert _findings(tmp_path, src, "scatter") == []

    def test_ignores_segment_reductions_and_other_at(self, tmp_path):
        src = (
            "import numpy as np\n"
            "from repro.core.scatter import segment_sum\n"
            "out = segment_sum(v, i, n)\n"
            "df.at[3]\n"
            "other.add.at(a, i, v)\n"
        )
        assert _findings(tmp_path, src, "scatter") == []


class TestSpanTaxonomyRule:
    INSTRUMENTED = "repro/parallel/comm.py"

    def test_flags_unregistered_span_in_instrumented_module(self, tmp_path):
        src = "def f(tr):\n    with tr.span('made/up_name', cat='x'):\n        pass\n"
        found = _findings(tmp_path, src, "span-taxonomy",
                          relname=self.INSTRUMENTED)
        assert len(found) == 1
        assert "made/up_name" in found[0].message

    def test_registered_span_is_clean(self, tmp_path):
        src = "def f(tr):\n    tr.async_begin('gpu/kernel_launch', '1')\n"
        assert _findings(tmp_path, src, "span-taxonomy",
                         relname=self.INSTRUMENTED) == []

    def test_uninstrumented_module_is_exempt(self, tmp_path):
        src = "def f(tr):\n    with tr.span('made/up_name'):\n        pass\n"
        assert _findings(tmp_path, src, "span-taxonomy") == []


class TestClockDisciplineRule:
    INSTRUMENTED = "repro/parallel/swfft.py"

    def test_flags_perf_counter_in_instrumented_module(self, tmp_path):
        src = "import time\nt0 = time.perf_counter()\n"
        found = _findings(tmp_path, src, "clock-discipline",
                          relname=self.INSTRUMENTED)
        assert len(found) == 1
        assert "TimerGroup" in found[0].message

    def test_flags_from_import_alias(self, tmp_path):
        src = "from time import perf_counter as pc\nt0 = pc()\n"
        assert len(_findings(tmp_path, src, "clock-discipline",
                             relname=self.INSTRUMENTED)) == 1

    def test_sleep_is_not_a_wall_clock_read(self, tmp_path):
        src = "import time\ntime.sleep(0.1)\n"
        assert _findings(tmp_path, src, "clock-discipline",
                         relname=self.INSTRUMENTED) == []

    def test_uninstrumented_module_is_exempt(self, tmp_path):
        src = "import time\nt0 = time.time()\n"
        assert _findings(tmp_path, src, "clock-discipline") == []


class TestDeterminismRule:
    def test_flags_legacy_global_rng(self, tmp_path):
        src = "import numpy as np\nx = np.random.rand(3)\nnp.random.seed(1)\n"
        found = _findings(tmp_path, src, "determinism")
        assert [f.line for f in found] == [2, 3]
        assert "default_rng" in found[0].message

    def test_flags_seedless_default_rng(self, tmp_path):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        found = _findings(tmp_path, src, "determinism")
        assert len(found) == 1
        assert "seed" in found[0].message

    def test_seeded_default_rng_is_clean(self, tmp_path):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
            "x = rng.random(3)\n"
        )
        assert _findings(tmp_path, src, "determinism") == []


class TestDtypeDisciplineRule:
    CORE = "repro/core/sph/mod.py"

    def test_flags_float32_in_core(self, tmp_path):
        src = (
            "import numpy as np\n"
            "a = np.zeros(3, dtype=np.float32)\n"
            "b = np.asarray(x, dtype='float32')\n"
        )
        found = _findings(tmp_path, src, "dtype-discipline", relname=self.CORE)
        assert [f.line for f in found] == [2, 3]
        assert "float64" in found[0].message

    def test_float64_in_core_is_clean(self, tmp_path):
        src = "import numpy as np\na = np.zeros(3, dtype=np.float64)\n"
        assert _findings(tmp_path, src, "dtype-discipline",
                         relname=self.CORE) == []

    def test_float32_outside_core_is_exempt(self, tmp_path):
        src = "import numpy as np\na = np.zeros(3, dtype=np.float32)\n"
        assert _findings(tmp_path, src, "dtype-discipline",
                         relname="repro/gpusim/mod.py") == []
