"""``python -m repro lint``: exit codes, formats, baseline workflow."""

import json
import os

import pytest

from repro.__main__ import main

SCATTER_SRC = "import numpy as np\nnp.add.at(a, i, v)\n"


def _write(tmp_path, name, source):
    f = tmp_path / name
    f.write_text(source)
    return str(f)


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "ok.py", "x = 1\n")
        assert main(["lint", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = _write(tmp_path, "bad.py", SCATTER_SRC)
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "[scatter]" in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = _write(tmp_path, "ok.py", "x = 1\n")
        assert main(["lint", path, "--rules", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        path = _write(tmp_path, "ok.py", "x = 1\n")
        code = main(["lint", path, "--baseline", str(tmp_path / "no.json")])
        assert code == 2

    def test_missing_target_exits_one(self, tmp_path):
        assert main(["lint", str(tmp_path / "ghost.py")]) == 1


class TestFormats:
    def test_json_format_parses(self, tmp_path, capsys):
        path = _write(tmp_path, "bad.py", SCATTER_SRC)
        assert main(["lint", path, "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is False and doc["n_findings"] == 1
        assert doc["findings"][0]["rule"] == "scatter"

    def test_rule_subset(self, tmp_path, capsys):
        path = _write(
            tmp_path, "bad.py",
            "import numpy as np\nnp.add.at(a, i, np.random.rand(3))\n",
        )
        assert main(["lint", path, "--rules", "determinism",
                     "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in doc["findings"]] == ["determinism"]
        assert [r["name"] for r in doc["rules"]] == ["determinism"]


class TestBaselineWorkflow:
    def test_write_then_suppress_then_fresh_violation(self, tmp_path, capsys):
        path = _write(tmp_path, "debtor.py", SCATTER_SRC)
        debt = str(tmp_path / "debt.json")

        assert main(["lint", path, "--write-baseline", debt]) == 0
        capsys.readouterr()
        assert os.path.exists(debt)

        # recorded debt is green
        assert main(["lint", path, "--baseline", debt]) == 0
        assert "OK" in capsys.readouterr().out

        # a NEW violation still fails against the old baseline
        _write(tmp_path, "debtor.py",
               SCATTER_SRC + "np.maximum.at(b, j, w)\n")
        assert main(["lint", path, "--baseline", debt]) == 1
        assert "maximum.at" in capsys.readouterr().out


class TestDefaultTarget:
    def test_no_paths_lints_the_repro_package(self, capsys):
        """The acceptance bar: the shipped tree is lint-clean by default."""
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
