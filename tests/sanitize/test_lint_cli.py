"""``python -m repro lint``: exit codes, formats, baseline workflow."""

import json
import os
import subprocess

import pytest

from repro.__main__ import main

SCATTER_SRC = "import numpy as np\nnp.add.at(a, i, v)\n"


def _write(tmp_path, name, source):
    f = tmp_path / name
    f.write_text(source)
    return str(f)


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "ok.py", "x = 1\n")
        assert main(["lint", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = _write(tmp_path, "bad.py", SCATTER_SRC)
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "[scatter]" in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = _write(tmp_path, "ok.py", "x = 1\n")
        assert main(["lint", path, "--rules", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        path = _write(tmp_path, "ok.py", "x = 1\n")
        code = main(["lint", path, "--baseline", str(tmp_path / "no.json")])
        assert code == 2

    def test_missing_target_exits_one(self, tmp_path):
        assert main(["lint", str(tmp_path / "ghost.py")]) == 1


class TestFormats:
    def test_json_format_parses(self, tmp_path, capsys):
        path = _write(tmp_path, "bad.py", SCATTER_SRC)
        assert main(["lint", path, "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is False and doc["n_findings"] == 1
        assert doc["findings"][0]["rule"] == "scatter"

    def test_rule_subset(self, tmp_path, capsys):
        path = _write(
            tmp_path, "bad.py",
            "import numpy as np\nnp.add.at(a, i, np.random.rand(3))\n",
        )
        assert main(["lint", path, "--rules", "determinism",
                     "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in doc["findings"]] == ["determinism"]
        assert [r["name"] for r in doc["rules"]] == ["determinism"]


class TestBaselineWorkflow:
    def test_write_then_suppress_then_fresh_violation(self, tmp_path, capsys):
        path = _write(tmp_path, "debtor.py", SCATTER_SRC)
        debt = str(tmp_path / "debt.json")

        assert main(["lint", path, "--write-baseline", debt]) == 0
        capsys.readouterr()
        assert os.path.exists(debt)

        # recorded debt is green
        assert main(["lint", path, "--baseline", debt]) == 0
        assert "OK" in capsys.readouterr().out

        # a NEW violation still fails against the old baseline
        _write(tmp_path, "debtor.py",
               SCATTER_SRC + "np.maximum.at(b, j, w)\n")
        assert main(["lint", path, "--baseline", debt]) == 1
        assert "maximum.at" in capsys.readouterr().out


LEAKY_SRC = (
    "def leak(comm):\n"
    "    comm.irecv(source=1, tag=3)\n"
)


class TestDeepFlag:
    def test_deep_flags_request_leak(self, tmp_path, capsys):
        path = _write(tmp_path, "leaky.py", LEAKY_SRC)
        assert main(["lint", path, "--deep"]) == 1
        out = capsys.readouterr().out
        assert "[request-lifecycle]" in out
        assert "leaky.py:2" in out

    def test_deep_rule_name_implies_deep(self, tmp_path, capsys):
        path = _write(tmp_path, "leaky.py", LEAKY_SRC + SCATTER_SRC)
        assert main(["lint", path, "--rules", "request-lifecycle",
                     "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        # the shallow scatter finding is excluded by the rule subset
        assert [f["rule"] for f in doc["findings"]] == ["request-lifecycle"]
        assert [r["name"] for r in doc["rules"]] == ["request-lifecycle"]

    def test_deep_clean_file_exits_zero(self, tmp_path, capsys):
        path = _write(
            tmp_path, "ok.py",
            "def settle(comm):\n"
            "    req = comm.iallreduce(1.0)\n"
            "    return req.wait()\n",
        )
        assert main(["lint", path, "--deep"]) == 0
        assert "OK" in capsys.readouterr().out


def _git(cwd, *argv):
    subprocess.run(
        ["git", *argv], cwd=cwd, check=True, capture_output=True,
        env={**os.environ,
             "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
             "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
    )


class TestChangedFlag:
    def _repo(self, tmp_path):
        _git(tmp_path, "init", "-q", "-b", "main")
        clean = _write(tmp_path, "clean.py", SCATTER_SRC)
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-q", "-m", "seed")
        return clean

    def test_changed_skips_committed_violations(self, tmp_path, capsys,
                                                monkeypatch):
        self._repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        # the scatter call is committed, nothing changed since -> clean
        assert main(["lint", str(tmp_path), "--changed"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_changed_lints_new_and_modified_files(self, tmp_path, capsys,
                                                  monkeypatch):
        self._repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "fresh.py", SCATTER_SRC)  # untracked
        assert main(["lint", str(tmp_path), "--changed"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out and "clean.py" not in out

    def test_changed_never_widens_requested_paths(self, tmp_path, capsys,
                                                  monkeypatch):
        self._repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        sub = tmp_path / "pkg"
        sub.mkdir()
        _write(sub, "inner.py", SCATTER_SRC)   # changed, inside target
        _write(tmp_path, "outer.py", SCATTER_SRC)  # changed, outside target
        assert main(["lint", str(sub), "--changed"]) == 1
        out = capsys.readouterr().out
        assert "inner.py" in out and "outer.py" not in out

    def test_changed_outside_git_falls_back_to_full_tree(self, tmp_path,
                                                         capsys, monkeypatch):
        path = _write(tmp_path, "bad.py", SCATTER_SRC)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", path, "--changed"]) == 1
        assert "[scatter]" in capsys.readouterr().out


class TestDefaultTarget:
    def test_no_paths_lints_the_repro_package(self, capsys):
        """The acceptance bar: the shipped tree is lint-clean by default."""
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
