"""Tier-1 gate: the shipped source tree passes every lint rule.

Any new ``np.add.at`` hot-path scatter, unregistered span name, raw
wall-clock read in an instrumented module, unseeded RNG, or float32 in
``core/`` fails this test unless it carries an explicit
``# sanitize: allow-<rule>`` pragma (or is recorded in a committed
baseline debt file, of which the tree currently has none).
"""

import os

from repro.sanitize import LintEngine, default_rules, render_text

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src", "repro")


def test_src_tree_is_lint_clean():
    engine = LintEngine(root=REPO)
    result = engine.lint_paths([SRC])
    assert result.clean, "\n" + render_text(result, engine.rules)
    assert result.errors == []
    # the run actually covered the tree with the full rule set
    assert result.n_files >= 90
    assert len(engine.rules) >= 5


def test_rule_catalog_is_active():
    names = {r.name for r in default_rules()}
    assert names >= {
        "scatter", "span-taxonomy", "clock-discipline",
        "determinism", "dtype-discipline", "backend-discipline",
    }


def test_suppressions_are_deliberate_and_bounded():
    """Pragma count is a ratchet: a jump means someone is papering over
    findings instead of fixing them.  Update the bound consciously."""
    result = LintEngine(root=REPO).lint_paths([SRC])
    assert result.n_suppressed <= 60
